//! Facade crate re-exporting the whole Unbiased Space Saving workspace.
//!
//! This crate exists so that downstream users (and the examples and integration tests
//! in this repository) can depend on a single package:
//!
//! ```
//! use unbiased_space_saving::prelude::*;
//!
//! let mut sketch = UnbiasedSpaceSaving::with_seed(64, 7);
//! for row in 0u64..10_000 {
//!     sketch.offer(row % 257);
//! }
//! let snapshot = sketch.snapshot();
//! let estimate = snapshot.subset_sum(|item| item < 100);
//! assert!(estimate > 0.0);
//! ```
//!
//! See the individual crates for the full APIs:
//!
//! * [`core`] (`uss-core`) — the sketches, merges, estimators and variance tools.
//! * [`sampling`] (`uss-sampling`) — the PPS sampling substrate and baselines.
//! * [`baselines`] (`uss-baselines`) — competing frequent-item and
//!   disaggregated-subset-sum sketches.
//! * [`workloads`] (`uss-workloads`) — synthetic and ad-click workload generators.
//! * [`eval`] (`uss-eval`) — the experiment drivers reproducing the paper's figures.
//! * [`server`] (`uss-server`) — the TCP daemon, wire protocol and typed client.

#![warn(missing_docs)]

pub use uss_baselines as baselines;
pub use uss_core as core;
pub use uss_eval as eval;
pub use uss_sampling as sampling;
pub use uss_server as server;
pub use uss_workloads as workloads;

// Compile and run the README's quick-start as a doc-test, so the documented flow
// can never drift from the real API.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
pub struct ReadmeDoctests;

/// Commonly used items across the workspace.
pub mod prelude {
    pub use uss_core::prelude::*;
    pub use uss_eval::{EstimateAccumulator, Method};
    pub use uss_sampling::{PrioritySketch, WeightedItem};
    pub use uss_workloads::{shuffled_stream, FrequencyDistribution};
}
