//! Plain-text and CSV reporting for experiment results.
//!
//! The paper presents its results as figures; the reproduction binaries print the same
//! series as aligned text tables (and optionally CSV) so the shapes — who wins, by what
//! factor, where the crossovers are — can be read directly from a terminal or piped
//! into a plotting tool.

use std::fmt;

/// A simple column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// The table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row; the number of cells must match the number of headers.
    ///
    /// # Panics
    ///
    /// Panics on a column-count mismatch.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells but the table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Renders the table as CSV (headers first, comma separated, no quoting — cells
    /// produced by this crate never contain commas).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Column widths.
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let header_line: Vec<String> = self
            .headers
            .iter()
            .zip(&widths)
            .map(|(h, w)| format!("{h:>w$}"))
            .collect();
        writeln!(f, "{}", header_line.join("  "))?;
        let rule: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(rule))?;
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            writeln!(f, "{}", line.join("  "))?;
        }
        Ok(())
    }
}

/// Formats a float with a sensible number of significant digits for reports.
#[must_use]
pub fn fmt_num(x: f64) -> String {
    if !x.is_finite() {
        return format!("{x}");
    }
    let a = x.abs();
    if a >= 1000.0 || (a > 0.0 && a < 0.001) {
        format!("{x:.3e}")
    } else if a >= 10.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_text_and_csv() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push_row(vec!["alpha".to_string(), "1".to_string()]);
        t.push_row(vec!["b".to_string(), "22.5".to_string()]);
        let text = t.to_string();
        assert!(text.contains("## demo"));
        assert!(text.contains("alpha"));
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("name,value\n"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn mismatched_row_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["only one".to_string()]);
    }

    #[test]
    fn number_formatting_covers_ranges() {
        assert_eq!(fmt_num(0.5), "0.5000");
        assert_eq!(fmt_num(12.345), "12.35");
        assert!(fmt_num(123456.0).contains('e'));
        assert!(fmt_num(0.000001).contains('e'));
        assert_eq!(fmt_num(f64::INFINITY), "inf");
    }
}
