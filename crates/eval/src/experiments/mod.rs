//! Experiment drivers reproducing every figure of the paper's evaluation (section 7).
//!
//! Each submodule owns one figure (or a group of figures sharing a workload), exposes
//! a `*Config` struct with bench-scale defaults plus a `tiny()` constructor for fast
//! tests, a `run` function returning a structured result, and `to_table(s)` methods
//! rendering the same series the paper plots. The figure binaries in `uss-bench` are
//! thin CLI wrappers around these drivers.
//!
//! | figure | module | what it shows |
//! |--------|--------|---------------|
//! | 2 | [`fig2_inclusion`] | empirical inclusion probabilities match theoretical PPS |
//! | 3 | [`fig3_subset_error`] | USS vs priority sampling error by subset size / skew, m = 200 |
//! | 4 | [`fig4_bottomk`] | adds bottom-k, m = 100: uniform sampling is orders of magnitude worse |
//! | 5 | [`fig5_vs_priority`] | per-subset relative MSE scatter and relative efficiency |
//! | 6 | [`fig6_marginals`] | 1-way / 2-way marginals on the (synthetic) ad-click data |
//! | 7 | [`fig7_pathological`] | two-phase stream: Deterministic SS fails, USS stays PPS-like |
//! | 8–10 | [`fig8_10_sorted`] | sorted pathological stream: confidence intervals, variance estimate quality, per-epoch RRMSE |

pub mod fig2_inclusion;
pub mod fig3_subset_error;
pub mod fig4_bottomk;
pub mod fig5_vs_priority;
pub mod fig6_marginals;
pub mod fig7_pathological;
pub mod fig8_10_sorted;
pub mod subset_harness;
