//! Figure 2: empirical inclusion probabilities of Unbiased Space Saving match the
//! theoretical probability-proportional-to-size inclusion probabilities.
//!
//! The paper draws item counts from a heavily skewed rounded Weibull distribution,
//! sketches many independently shuffled streams, and plots the fraction of runs in
//! which each item appears in the sketch against the thresholded PPS inclusion
//! probability `min{1, α·n_i}` for the same space budget. Theorem 9 predicts the two
//! to agree asymptotically; the reproduction reports per-item pairs plus summary
//! agreement statistics.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::metrics::mean;
use crate::report::{fmt_num, Table};
use uss_core::{StreamSketch, UnbiasedSpaceSaving};
use uss_sampling::pps_inclusion_probabilities;
use uss_workloads::{shuffled_stream, FrequencyDistribution};

/// Configuration for the inclusion-probability experiment.
#[derive(Debug, Clone)]
pub struct InclusionConfig {
    /// Number of distinct items.
    pub n_items: usize,
    /// Sketch bins (`m`).
    pub bins: usize,
    /// Number of Monte-Carlo repetitions (independent stream shuffles).
    pub reps: usize,
    /// Item-frequency distribution.
    pub distribution: FrequencyDistribution,
    /// Cap applied to individual item counts to keep the stream length manageable
    /// (the paper's raw Weibull tail is astronomically long; see EXPERIMENTS.md).
    pub count_cap: u64,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for InclusionConfig {
    fn default() -> Self {
        Self {
            n_items: 1000,
            bins: 100,
            reps: 200,
            // Same shape (0.15) as the paper's Weibull(5·10⁵, 0.15) but with the scale
            // and cap reduced so that the default run finishes in seconds rather than
            // processing the paper's multi-billion-row streams; the inclusion-
            // probability profile only depends on the relative sizes.
            distribution: FrequencyDistribution::Weibull {
                scale: 20.0,
                shape: 0.15,
            },
            count_cap: 20_000,
            seed: 2,
        }
    }
}

impl InclusionConfig {
    /// A configuration small enough for unit tests. Uses a Zipf frequency profile so
    /// the top items are genuine certainties even at this scale.
    #[must_use]
    pub fn tiny() -> Self {
        Self {
            n_items: 120,
            bins: 20,
            reps: 60,
            distribution: FrequencyDistribution::Zipf {
                exponent: 1.2,
                max_count: 2000,
            },
            count_cap: 10_000,
            seed: 2,
        }
    }
}

/// Per-item result row.
#[derive(Debug, Clone, Copy)]
pub struct InclusionRow {
    /// Item index.
    pub item: u64,
    /// True count of the item.
    pub count: u64,
    /// Theoretical thresholded-PPS inclusion probability.
    pub theoretical: f64,
    /// Observed inclusion frequency across repetitions.
    pub observed: f64,
}

/// Result of the inclusion-probability experiment.
#[derive(Debug, Clone)]
pub struct InclusionResult {
    /// Per-item rows, sorted by ascending true count.
    pub rows: Vec<InclusionRow>,
    /// Mean absolute deviation between observed and theoretical probabilities.
    pub mean_abs_deviation: f64,
    /// Pearson correlation between observed and theoretical probabilities.
    pub correlation: f64,
    /// Number of repetitions used.
    pub reps: usize,
}

/// Runs the experiment.
#[must_use]
pub fn run(config: &InclusionConfig) -> InclusionResult {
    let counts: Vec<u64> = config
        .distribution
        .grid_counts(config.n_items)
        .into_iter()
        .map(|c| c.min(config.count_cap))
        .collect();
    let weights: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
    let design = pps_inclusion_probabilities(&weights, config.bins);

    let mut inclusion_counts = vec![0u64; config.n_items];
    let mut rng = StdRng::seed_from_u64(config.seed);
    for rep in 0..config.reps {
        let rows = shuffled_stream(&counts, &mut rng);
        let mut sketch =
            UnbiasedSpaceSaving::with_seed(config.bins, config.seed.wrapping_add(rep as u64));
        for &item in &rows {
            sketch.offer(item);
        }
        for (item, _) in sketch.entries() {
            inclusion_counts[item as usize] += 1;
        }
    }

    let mut rows: Vec<InclusionRow> = (0..config.n_items)
        .map(|i| InclusionRow {
            item: i as u64,
            count: counts[i],
            theoretical: design.inclusion_probabilities[i],
            observed: inclusion_counts[i] as f64 / config.reps as f64,
        })
        .collect();
    rows.sort_by_key(|r| r.count);

    let deviations: Vec<f64> = rows
        .iter()
        .map(|r| (r.observed - r.theoretical).abs())
        .collect();
    let obs: Vec<f64> = rows.iter().map(|r| r.observed).collect();
    let theo: Vec<f64> = rows.iter().map(|r| r.theoretical).collect();
    InclusionResult {
        mean_abs_deviation: mean(&deviations),
        correlation: pearson(&obs, &theo),
        rows,
        reps: config.reps,
    }
}

fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let ma = mean(a);
    let mb = mean(b);
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma).powi(2);
        vb += (y - mb).powi(2);
    }
    if va == 0.0 || vb == 0.0 {
        return 1.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

impl InclusionResult {
    /// Renders the per-item series (subsampled to at most `max_rows` rows) plus the
    /// agreement summary, mirroring both panels of Figure 2.
    #[must_use]
    pub fn to_table(&self, max_rows: usize) -> Table {
        let mut table = Table::new(
            format!(
                "Figure 2 — inclusion probabilities (reps = {}, mean |obs − PPS| = {}, corr = {})",
                self.reps,
                fmt_num(self.mean_abs_deviation),
                fmt_num(self.correlation)
            ),
            &["item_rank", "true_count", "theoretical_pps", "observed"],
        );
        let step = (self.rows.len() / max_rows.max(1)).max(1);
        for (rank, row) in self.rows.iter().enumerate().step_by(step) {
            table.push_row(vec![
                rank.to_string(),
                row.count.to_string(),
                fmt_num(row.theoretical),
                fmt_num(row.observed),
            ]);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observed_inclusion_tracks_theoretical_pps() {
        let result = run(&InclusionConfig::tiny());
        assert_eq!(result.rows.len(), 120);
        // Probabilities are valid and agree with the PPS design reasonably well even
        // at test scale.
        for r in &result.rows {
            assert!((0.0..=1.0).contains(&r.observed));
            assert!((0.0..=1.0 + 1e-9).contains(&r.theoretical));
        }
        assert!(
            result.mean_abs_deviation < 0.12,
            "mean absolute deviation {}",
            result.mean_abs_deviation
        );
        assert!(result.correlation > 0.9, "correlation {}", result.correlation);
    }

    #[test]
    fn most_frequent_items_are_always_included() {
        let result = run(&InclusionConfig::tiny());
        let top = result.rows.last().unwrap();
        assert!(top.observed > 0.95, "top item observed {}", top.observed);
        assert!((top.theoretical - 1.0).abs() < 1e-9);
    }

    #[test]
    fn table_rendering_subsamples() {
        let result = run(&InclusionConfig::tiny());
        let table = result.to_table(20);
        assert!(table.len() <= 25);
        assert!(!table.is_empty());
        assert!(table.to_csv().contains("theoretical_pps"));
    }

    #[test]
    fn pearson_of_identical_series_is_one() {
        let v = [0.1, 0.5, 0.9];
        assert!((pearson(&v, &v) - 1.0).abs() < 1e-12);
    }
}
