//! Shared Monte-Carlo harness for the random-subset experiments (Figures 3, 4 and 5).
//!
//! Given a per-item count vector, a list of query subsets, a list of methods and a
//! space budget, the harness repeatedly re-shuffles the disaggregated stream,
//! re-sketches it with every method and records each method's estimate of every
//! subset, returning an accuracy matrix of [`EstimateAccumulator`]s.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::methods::Method;
use crate::metrics::EstimateAccumulator;
use uss_workloads::{shuffled_stream, true_subset_sum};

/// Accuracy of one method on one subset, over all repetitions.
#[derive(Debug, Clone)]
pub struct SubsetAccuracy {
    /// The method that produced the estimates.
    pub method: Method,
    /// Index of the subset in the query list.
    pub subset_index: usize,
    /// True subset sum.
    pub truth: f64,
    /// Accumulated estimates.
    pub accumulator: EstimateAccumulator,
}

/// Runs the Monte-Carlo subset-sum comparison.
///
/// Returns one [`SubsetAccuracy`] per (method, subset) pair, in method-major order.
#[must_use]
pub fn run_subset_comparison(
    counts: &[u64],
    subsets: &[Vec<u64>],
    methods: &[Method],
    bins: usize,
    reps: usize,
    seed: u64,
) -> Vec<SubsetAccuracy> {
    let truths: Vec<f64> = subsets
        .iter()
        .map(|s| true_subset_sum(counts, s) as f64)
        .collect();
    let mut results: Vec<SubsetAccuracy> = methods
        .iter()
        .flat_map(|&method| {
            truths.iter().enumerate().map(move |(i, &t)| SubsetAccuracy {
                method,
                subset_index: i,
                truth: t,
                accumulator: EstimateAccumulator::new(t),
            })
        })
        .collect();

    let mut shuffle_rng = StdRng::seed_from_u64(seed ^ 0x5117_F1ED);
    for rep in 0..reps {
        let rows = shuffled_stream(counts, &mut shuffle_rng);
        for (m_idx, &method) in methods.iter().enumerate() {
            let estimates = method.estimate_subsets(
                &rows,
                counts,
                bins,
                subsets,
                seed.wrapping_add(rep as u64).wrapping_mul(0x9E37_79B9),
            );
            for (s_idx, est) in estimates.into_iter().enumerate() {
                results[m_idx * subsets.len() + s_idx].accumulator.push(est);
            }
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use uss_workloads::{random_subsets, FrequencyDistribution};

    #[test]
    fn harness_produces_one_cell_per_method_and_subset() {
        let counts = FrequencyDistribution::Geometric { p: 0.1 }.grid_counts(100);
        let mut rng = StdRng::seed_from_u64(1);
        let subsets = random_subsets(100, 20, 3, &mut rng);
        let methods = [Method::UnbiasedSpaceSaving, Method::PrioritySampling];
        let results = run_subset_comparison(&counts, &subsets, &methods, 30, 4, 7);
        assert_eq!(results.len(), 6);
        for r in &results {
            assert_eq!(r.accumulator.len(), 4);
            assert!(r.truth > 0.0);
        }
    }

    #[test]
    fn unbiased_methods_have_small_bias_over_many_reps() {
        let counts = FrequencyDistribution::Geometric { p: 0.08 }.grid_counts(150);
        let mut rng = StdRng::seed_from_u64(2);
        let subsets = random_subsets(150, 50, 2, &mut rng);
        let methods = [Method::UnbiasedSpaceSaving, Method::PrioritySampling];
        let results = run_subset_comparison(&counts, &subsets, &methods, 40, 60, 3);
        for r in results {
            assert!(
                r.accumulator.relative_bias().abs() < 0.15,
                "{} subset {}: bias {}",
                r.method.name(),
                r.subset_index,
                r.accumulator.relative_bias()
            );
        }
    }
}
