//! Figure 5: per-subset relative MSE of Unbiased Space Saving against priority
//! sampling, and the distribution of the relative efficiency
//! `Var(priority) / Var(USS)`.
//!
//! The paper scatters the relative MSE of each random subset under the two methods and
//! summarises the per-subset variance ratios (values between roughly 0.9 and 1.5,
//! i.e. USS is never worse and often slightly better despite operating on
//! disaggregated data). The reproduction reports the same per-subset pairs plus
//! quantiles of the efficiency ratio.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::experiments::subset_harness::run_subset_comparison;
use crate::methods::Method;
use crate::report::{fmt_num, Table};
use uss_workloads::{random_subsets, FrequencyDistribution};

/// Configuration for the Figure 5 comparison.
#[derive(Debug, Clone)]
pub struct VsPriorityConfig {
    /// Item frequency distribution.
    pub distribution: FrequencyDistribution,
    /// Number of distinct items.
    pub n_items: usize,
    /// Sketch bins / priority sample size.
    pub bins: usize,
    /// Items per random query subset.
    pub subset_size: usize,
    /// Number of random query subsets (points in the scatter).
    pub n_subsets: usize,
    /// Monte-Carlo repetitions per subset.
    pub reps: usize,
    /// Cap on item counts.
    pub count_cap: u64,
    /// Base seed.
    pub seed: u64,
}

impl Default for VsPriorityConfig {
    fn default() -> Self {
        Self {
            distribution: FrequencyDistribution::Weibull {
                scale: 200.0,
                shape: 0.32,
            },
            n_items: 1000,
            bins: 100,
            subset_size: 100,
            n_subsets: 150,
            reps: 120,
            count_cap: 50_000,
            seed: 5,
        }
    }
}

impl VsPriorityConfig {
    /// Test-scale configuration.
    #[must_use]
    pub fn tiny() -> Self {
        Self {
            distribution: FrequencyDistribution::Geometric { p: 0.04 },
            n_items: 200,
            bins: 40,
            subset_size: 30,
            n_subsets: 25,
            reps: 40,
            count_cap: 10_000,
            seed: 5,
        }
    }
}

/// One scatter point: the same subset estimated by both methods.
#[derive(Debug, Clone, Copy)]
pub struct ScatterPoint {
    /// True subset sum.
    pub truth: f64,
    /// Relative MSE of Unbiased Space Saving.
    pub uss_relative_mse: f64,
    /// Relative MSE of priority sampling.
    pub priority_relative_mse: f64,
    /// Relative efficiency `Var(priority) / Var(USS)` (> 1 means USS wins).
    pub relative_efficiency: f64,
}

/// Result of the Figure 5 experiment.
#[derive(Debug, Clone)]
pub struct VsPriorityResult {
    /// Per-subset scatter points.
    pub points: Vec<ScatterPoint>,
    /// Quantiles (min, 25%, median, 75%, max) of the relative efficiency.
    pub efficiency_quantiles: [f64; 5],
    /// Fraction of subsets where USS has lower relative MSE.
    pub uss_win_rate: f64,
}

/// Runs the experiment.
#[must_use]
pub fn run(config: &VsPriorityConfig) -> VsPriorityResult {
    let counts: Vec<u64> = config
        .distribution
        .grid_counts(config.n_items)
        .into_iter()
        .map(|c| c.min(config.count_cap))
        .collect();
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xF16);
    let subsets = random_subsets(config.n_items, config.subset_size, config.n_subsets, &mut rng);
    let methods = [Method::UnbiasedSpaceSaving, Method::PrioritySampling];
    let accuracy = run_subset_comparison(
        &counts,
        &subsets,
        &methods,
        config.bins,
        config.reps,
        config.seed,
    );

    let mut points = Vec::with_capacity(config.n_subsets);
    for i in 0..subsets.len() {
        let uss = &accuracy[i];
        let pri = &accuracy[subsets.len() + i];
        debug_assert_eq!(uss.method, Method::UnbiasedSpaceSaving);
        debug_assert_eq!(pri.method, Method::PrioritySampling);
        let uss_var = uss.accumulator.empirical_variance();
        let pri_var = pri.accumulator.empirical_variance();
        points.push(ScatterPoint {
            truth: uss.truth,
            uss_relative_mse: uss.accumulator.relative_mse(),
            priority_relative_mse: pri.accumulator.relative_mse(),
            relative_efficiency: if uss_var > 0.0 { pri_var / uss_var } else { 1.0 },
        });
    }

    let mut effs: Vec<f64> = points.iter().map(|p| p.relative_efficiency).collect();
    effs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let q = |p: f64| -> f64 {
        if effs.is_empty() {
            return f64::NAN;
        }
        let idx = ((effs.len() - 1) as f64 * p).round() as usize;
        effs[idx]
    };
    let wins = points
        .iter()
        .filter(|p| p.uss_relative_mse <= p.priority_relative_mse)
        .count();
    VsPriorityResult {
        efficiency_quantiles: [q(0.0), q(0.25), q(0.5), q(0.75), q(1.0)],
        uss_win_rate: wins as f64 / points.len().max(1) as f64,
        points,
    }
}

impl VsPriorityResult {
    /// The per-subset scatter (subsampled to at most `max_rows` rows).
    #[must_use]
    pub fn scatter_table(&self, max_rows: usize) -> Table {
        let mut table = Table::new(
            format!(
                "Figure 5 — relative MSE per subset (USS win rate = {})",
                fmt_num(self.uss_win_rate)
            ),
            &["true_count", "uss_rel_mse", "priority_rel_mse", "var_ratio"],
        );
        let step = (self.points.len() / max_rows.max(1)).max(1);
        for p in self.points.iter().step_by(step) {
            table.push_row(vec![
                fmt_num(p.truth),
                fmt_num(p.uss_relative_mse),
                fmt_num(p.priority_relative_mse),
                fmt_num(p.relative_efficiency),
            ]);
        }
        table
    }

    /// The relative-efficiency box summary (right panel of Figure 5).
    #[must_use]
    pub fn efficiency_table(&self) -> Table {
        let mut table = Table::new(
            "Figure 5 — relative efficiency Var(priority)/Var(USS)",
            &["min", "q25", "median", "q75", "max"],
        );
        table.push_row(self.efficiency_quantiles.iter().map(|&v| fmt_num(v)).collect());
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uss_is_competitive_with_priority_sampling() {
        let result = run(&VsPriorityConfig::tiny());
        assert_eq!(result.points.len(), 25);
        // Median relative efficiency should be in the vicinity of 1 (USS no worse).
        let median = result.efficiency_quantiles[2];
        assert!(
            median > 0.5,
            "median efficiency {median} suggests USS is much worse than priority sampling"
        );
        // And USS should win (or tie) a non-trivial fraction of subsets.
        assert!(result.uss_win_rate > 0.2, "win rate {}", result.uss_win_rate);
    }

    #[test]
    fn relative_mse_values_are_finite_and_nonnegative() {
        let result = run(&VsPriorityConfig::tiny());
        for p in &result.points {
            assert!(p.uss_relative_mse.is_finite() && p.uss_relative_mse >= 0.0);
            assert!(p.priority_relative_mse.is_finite() && p.priority_relative_mse >= 0.0);
            assert!(p.truth > 0.0);
        }
    }

    #[test]
    fn quantiles_are_sorted() {
        let result = run(&VsPriorityConfig::tiny());
        let q = result.efficiency_quantiles;
        for w in q.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn tables_render() {
        let result = run(&VsPriorityConfig::tiny());
        assert!(result.scatter_table(10).len() <= 15);
        assert_eq!(result.efficiency_table().len(), 1);
    }
}
