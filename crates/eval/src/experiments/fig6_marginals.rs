//! Figure 6: 1-way and 2-way marginal counts on the ad-impression data.
//!
//! The paper takes 9 categorical features of the Criteo click dataset, sketches the
//! impression stream at the granularity of the full feature tuple, and then queries
//! the counts of individual feature values (1-way marginals) and of feature-value
//! pairs (2-way marginals) — exactly the historical-count features used for
//! click-through-rate prediction. Unbiased Space Saving is compared to priority
//! sampling on the pre-aggregated tuples; both achieve a relative MSE below a few
//! percent for marginals above ~10⁵ rows and well below 1% for marginals covering a
//! large share of the data.
//!
//! The reproduction uses the synthetic impression stream of
//! [`uss_workloads::adclick`] (see DESIGN.md for the substitution argument) and
//! reports mean relative MSE bucketed by the true marginal count, separately for
//! 1-way and 2-way marginals.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::metrics::{BucketedSeries, EstimateAccumulator};
use crate::report::{fmt_num, Table};
use uss_core::hash::FxHashMap;
use uss_core::{QueryServer, QueryServerConfig, StreamSketch, UnbiasedSpaceSaving};
use uss_sampling::priority::priority_sample;
use uss_sampling::WeightedItem;
use uss_workloads::{AdClickConfig, AdClickGenerator, Impression, NUM_FEATURES};

/// Configuration for the marginal-estimation experiment.
#[derive(Debug, Clone)]
pub struct MarginalsConfig {
    /// Synthetic impression-stream configuration.
    pub adclick: AdClickConfig,
    /// Sketch bins / priority sample size.
    pub bins: usize,
    /// Monte-Carlo repetitions (sketch randomness; the data is fixed).
    pub reps: usize,
    /// Features whose 1-way marginals are queried (indices into the feature array).
    pub one_way_features: Vec<usize>,
    /// Feature pairs whose 2-way marginals are queried.
    pub two_way_features: Vec<(usize, usize)>,
    /// Only marginals with a true count at least this large are queried (rarer
    /// marginals are uninteresting for CTR features and dominated by noise).
    pub min_marginal_count: u64,
    /// Maximum number of marginal queries per feature (the most frequent values).
    pub max_queries_per_feature: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for MarginalsConfig {
    fn default() -> Self {
        Self {
            adclick: AdClickConfig {
                rows: 300_000,
                ..AdClickConfig::default()
            },
            bins: 2_000,
            reps: 30,
            one_way_features: vec![0, 3, 7],
            two_way_features: vec![(0, 5), (4, 6), (0, 3)],
            min_marginal_count: 200,
            max_queries_per_feature: 40,
            seed: 6,
        }
    }
}

impl MarginalsConfig {
    /// Test-scale configuration.
    #[must_use]
    pub fn tiny() -> Self {
        Self {
            adclick: AdClickConfig {
                rows: 15_000,
                advertisers: 50,
                ads: 500,
                campaigns: 100,
                sites: 80,
                verticals: 8,
                devices: 3,
                countries: 10,
                user_segments: 30,
                ad_formats: 4,
                skew: 1.05,
                base_ctr: 0.05,
                seed: 99,
            },
            bins: 300,
            reps: 12,
            one_way_features: vec![0, 4],
            two_way_features: vec![(4, 5)],
            min_marginal_count: 100,
            max_queries_per_feature: 15,
            seed: 6,
        }
    }
}

/// A marginal query: an arity (1 or 2), the features involved, and their values.
#[derive(Debug, Clone)]
struct MarginalQuery {
    arity: usize,
    features: Vec<usize>,
    values: Vec<u32>,
    truth: f64,
}

/// One output row: mean relative MSE per method per true-count bucket per arity.
#[derive(Debug, Clone)]
pub struct MarginalRow {
    /// 1 or 2 (marginal arity).
    pub arity: usize,
    /// Method name.
    pub method: &'static str,
    /// Lower edge of the true-count bucket.
    pub bucket_lo: f64,
    /// Upper edge of the true-count bucket.
    pub bucket_hi: f64,
    /// Mean relative MSE in the bucket.
    pub mean_relative_mse: f64,
    /// Number of marginal queries in the bucket.
    pub n_queries: u64,
}

/// Result of the marginal experiment.
#[derive(Debug, Clone)]
pub struct MarginalsResult {
    /// Bucketed error rows for both methods and arities.
    pub rows: Vec<MarginalRow>,
    /// Overall mean relative MSE per (arity, method).
    pub overall: Vec<(usize, &'static str, f64)>,
    /// Number of distinct feature tuples in the data (the number of "items").
    pub distinct_tuples: usize,
}

/// Runs the experiment.
#[must_use]
pub fn run(config: &MarginalsConfig) -> MarginalsResult {
    // Generate the impression stream once; it is the "ground truth dataset".
    let impressions: Vec<Impression> = AdClickGenerator::new(config.adclick).collect();

    // The unit of analysis is the full feature tuple.
    let all_features: Vec<usize> = (0..NUM_FEATURES).collect();
    let rows: Vec<u64> = impressions
        .iter()
        .map(|imp| imp.marginal_key(&all_features))
        .collect();
    let mut tuple_counts: FxHashMap<u64, u64> = FxHashMap::default();
    let mut tuple_features: FxHashMap<u64, [u32; NUM_FEATURES]> = FxHashMap::default();
    for (imp, &key) in impressions.iter().zip(&rows) {
        *tuple_counts.entry(key).or_insert(0) += 1;
        tuple_features.entry(key).or_insert(imp.features);
    }

    // Build the marginal queries from the true data.
    let mut queries: Vec<MarginalQuery> = Vec::new();
    for &f in &config.one_way_features {
        let mut value_counts: FxHashMap<u32, u64> = FxHashMap::default();
        for imp in &impressions {
            *value_counts.entry(imp.features[f]).or_insert(0) += 1;
        }
        let mut pairs: Vec<(u32, u64)> = value_counts
            .into_iter()
            .filter(|&(_, c)| c >= config.min_marginal_count)
            .collect();
        pairs.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        pairs.truncate(config.max_queries_per_feature);
        for (v, c) in pairs {
            queries.push(MarginalQuery {
                arity: 1,
                features: vec![f],
                values: vec![v],
                truth: c as f64,
            });
        }
    }
    for &(f1, f2) in &config.two_way_features {
        let mut value_counts: FxHashMap<(u32, u32), u64> = FxHashMap::default();
        for imp in &impressions {
            *value_counts
                .entry((imp.features[f1], imp.features[f2]))
                .or_insert(0) += 1;
        }
        let mut pairs: Vec<((u32, u32), u64)> = value_counts
            .into_iter()
            .filter(|&(_, c)| c >= config.min_marginal_count)
            .collect();
        pairs.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        pairs.truncate(config.max_queries_per_feature);
        for ((v1, v2), c) in pairs {
            queries.push(MarginalQuery {
                arity: 2,
                features: vec![f1, f2],
                values: vec![v1, v2],
                truth: c as f64,
            });
        }
    }

    // Accumulators per (method, query).
    let method_names = ["Unbiased Space Saving", "Priority Sampling"];
    let mut accumulators: Vec<Vec<EstimateAccumulator>> = method_names
        .iter()
        .map(|_| queries.iter().map(|q| EstimateAccumulator::new(q.truth)).collect())
        .collect();

    let matches = |features: &[u32; NUM_FEATURES], q: &MarginalQuery| -> bool {
        q.features
            .iter()
            .zip(&q.values)
            .all(|(&f, &v)| features[f] == v)
    };

    // The distinct feature combinations under query — one marginal roll-up each.
    let mut combos: Vec<Vec<usize>> = Vec::new();
    for q in &queries {
        if !combos.contains(&q.features) {
            combos.push(q.features.clone());
        }
    }

    let weighted_items: Vec<WeightedItem> = tuple_counts
        .iter()
        .map(|(&k, &c)| WeightedItem::new(k, c as f64))
        .collect();

    for rep in 0..config.reps {
        let rep_seed = config.seed.wrapping_add(rep as u64).wrapping_mul(0x9E37);
        // Unbiased Space Saving over the disaggregated tuple stream, queried
        // through the serving layer: one keyed marginal roll-up per feature
        // combination (the group-by form of the paper's Figure 6 workload), then a
        // table lookup per marginal query. Summation per key follows sketch entry
        // order, so the estimates are bit-identical to predicate subset sums.
        let mut sketch = UnbiasedSpaceSaving::with_seed(config.bins, rep_seed);
        for &key in &rows {
            sketch.offer(key);
        }
        let server = QueryServer::new(sketch, QueryServerConfig::new());
        let marginal_tables: Vec<FxHashMap<Vec<u32>, f64>> = combos
            .iter()
            .map(|combo| {
                server
                    .marginals(|item| {
                        tuple_features.get(&item).map(|features| {
                            combo.iter().map(|&f| features[f]).collect::<Vec<u32>>()
                        })
                    })
                    .into_iter()
                    .map(|(key, est)| (key, est.sum))
                    .collect()
            })
            .collect();
        for (q_idx, q) in queries.iter().enumerate() {
            let combo_idx = combos.iter().position(|c| *c == q.features).unwrap();
            let est = marginal_tables[combo_idx]
                .get(&q.values)
                .copied()
                .unwrap_or(0.0);
            accumulators[0][q_idx].push(est);
        }

        // Priority sampling over the pre-aggregated tuples.
        let mut rng = StdRng::seed_from_u64(rep_seed ^ 0xABCD);
        let sample = priority_sample(&weighted_items, config.bins, &mut rng);
        for (q_idx, q) in queries.iter().enumerate() {
            let est = sample.subset_sum(|item| {
                tuple_features
                    .get(&item)
                    .is_some_and(|features| matches(features, q))
            });
            accumulators[1][q_idx].push(est);
        }
    }

    // Bucket by true marginal count.
    let lo = queries
        .iter()
        .map(|q| q.truth)
        .fold(f64::INFINITY, f64::min)
        .max(1.0);
    let hi = queries.iter().map(|q| q.truth).fold(0.0, f64::max).max(lo * 2.0);
    let mut result_rows = Vec::new();
    let mut overall = Vec::new();
    for arity in [1usize, 2] {
        for (m_idx, &name) in method_names.iter().enumerate() {
            let mut series = BucketedSeries::geometric(lo, hi * 1.001, 6);
            let mut sum = 0.0;
            let mut n = 0usize;
            for (q_idx, q) in queries.iter().enumerate() {
                if q.arity != arity {
                    continue;
                }
                let rel_mse = accumulators[m_idx][q_idx].relative_mse();
                series.record(q.truth, rel_mse);
                sum += rel_mse;
                n += 1;
            }
            for (bucket_lo, bucket_hi, mean_relative_mse, n_queries) in series.rows() {
                result_rows.push(MarginalRow {
                    arity,
                    method: name,
                    bucket_lo,
                    bucket_hi,
                    mean_relative_mse,
                    n_queries,
                });
            }
            if n > 0 {
                overall.push((arity, name, sum / n as f64));
            }
        }
    }

    MarginalsResult {
        rows: result_rows,
        overall,
        distinct_tuples: tuple_counts.len(),
    }
}

impl MarginalsResult {
    /// Renders the bucketed error curves for both arities and methods.
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            format!(
                "Figure 6 — marginal relative MSE on ad data ({} distinct tuples)",
                self.distinct_tuples
            ),
            &[
                "arity",
                "method",
                "true_count_lo",
                "true_count_hi",
                "mean_rel_mse",
                "queries",
            ],
        );
        for r in &self.rows {
            table.push_row(vec![
                format!("{}-way", r.arity),
                r.method.to_string(),
                fmt_num(r.bucket_lo),
                fmt_num(r.bucket_hi),
                fmt_num(r.mean_relative_mse),
                r.n_queries.to_string(),
            ]);
        }
        table
    }

    /// Overall summary per (arity, method).
    #[must_use]
    pub fn summary_table(&self) -> Table {
        let mut table = Table::new(
            "Figure 6 — overall marginal accuracy",
            &["arity", "method", "mean_rel_mse"],
        );
        for (arity, method, mse) in &self.overall {
            table.push_row(vec![
                format!("{arity}-way"),
                (*method).to_string(),
                fmt_num(*mse),
            ]);
        }
        table
    }

    /// Overall mean relative MSE for a method and arity (used by tests).
    #[must_use]
    pub fn overall_mse(&self, arity: usize, method: &str) -> f64 {
        self.overall
            .iter()
            .find(|(a, m, _)| *a == arity && *m == method)
            .map_or(f64::NAN, |(_, _, v)| *v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marginal_estimates_are_accurate_for_both_methods() {
        let result = run(&MarginalsConfig::tiny());
        assert!(result.distinct_tuples > 1000);
        for (arity, method, mse) in &result.overall {
            assert!(
                *mse < 0.5,
                "{method} {arity}-way relative MSE {mse} is unreasonably large"
            );
        }
        // USS should be in the same ballpark as priority sampling.
        let uss = result.overall_mse(1, "Unbiased Space Saving");
        let pri = result.overall_mse(1, "Priority Sampling");
        assert!(uss.is_finite() && pri.is_finite());
        assert!(uss <= pri * 3.0 + 0.02, "USS {uss} vs priority {pri}");
    }

    #[test]
    fn one_way_queries_exist_for_each_configured_feature() {
        let cfg = MarginalsConfig::tiny();
        let result = run(&cfg);
        let one_way_rows: Vec<&MarginalRow> =
            result.rows.iter().filter(|r| r.arity == 1).collect();
        let two_way_rows: Vec<&MarginalRow> =
            result.rows.iter().filter(|r| r.arity == 2).collect();
        assert!(!one_way_rows.is_empty());
        assert!(!two_way_rows.is_empty());
    }

    #[test]
    fn tables_render() {
        let result = run(&MarginalsConfig::tiny());
        assert!(!result.to_table().is_empty());
        assert!(!result.summary_table().is_empty());
        assert!(result.to_table().to_csv().contains("arity"));
    }
}
