//! Figures 3 (and the shared machinery for Figure 4): relative error of random subset
//! sums versus the true subset count, across the three synthetic frequency
//! distributions.
//!
//! For each distribution the harness draws random subsets of items, repeatedly
//! re-shuffles the disaggregated stream, sketches it with every method, and reports the
//! relative RMSE of each subset bucketed by its true count — the smoothed "relative
//! error versus true count" curves of the paper. The headline observations to
//! reproduce: error falls as the true count grows, error falls as skew rises, and
//! Unbiased Space Saving matches (or slightly beats) priority sampling even though the
//! latter uses pre-aggregated data.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::experiments::subset_harness::run_subset_comparison;
use crate::methods::Method;
use crate::metrics::BucketedSeries;
use crate::report::{fmt_num, Table};
use uss_workloads::{random_subsets, FrequencyDistribution};

/// Configuration shared by Figures 3, 4 and 5.
#[derive(Debug, Clone)]
pub struct SubsetErrorConfig {
    /// Named frequency distributions to evaluate.
    pub distributions: Vec<(String, FrequencyDistribution)>,
    /// Methods to compare.
    pub methods: Vec<Method>,
    /// Number of distinct items per workload.
    pub n_items: usize,
    /// Sketch bins / sample size.
    pub bins: usize,
    /// Number of items per random query subset.
    pub subset_size: usize,
    /// Number of random query subsets.
    pub n_subsets: usize,
    /// Monte-Carlo repetitions.
    pub reps: usize,
    /// Cap on individual item counts (keeps stream lengths manageable).
    pub count_cap: u64,
    /// Number of geometric buckets for the error-vs-true-count curve.
    pub buckets: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl SubsetErrorConfig {
    /// The paper's three synthetic distributions at reduced scale.
    #[must_use]
    pub fn paper_distributions() -> Vec<(String, FrequencyDistribution)> {
        vec![
            (
                "Weibull(shape 0.32)".to_string(),
                FrequencyDistribution::Weibull {
                    scale: 200.0,
                    shape: 0.32,
                },
            ),
            (
                "Geometric(0.03)".to_string(),
                FrequencyDistribution::Geometric { p: 0.03 },
            ),
            (
                "Weibull(shape 0.15)".to_string(),
                FrequencyDistribution::Weibull {
                    scale: 20.0,
                    shape: 0.15,
                },
            ),
        ]
    }

    /// Figure 3 defaults: 200 bins, Unbiased Space Saving versus priority sampling.
    #[must_use]
    pub fn figure3() -> Self {
        Self {
            distributions: Self::paper_distributions(),
            methods: vec![Method::UnbiasedSpaceSaving, Method::PrioritySampling],
            n_items: 1000,
            bins: 200,
            subset_size: 100,
            n_subsets: 60,
            reps: 60,
            count_cap: 20_000,
            buckets: 8,
            seed: 3,
        }
    }

    /// A configuration small enough for unit tests.
    #[must_use]
    pub fn tiny() -> Self {
        Self {
            distributions: vec![(
                "Geometric(0.05)".to_string(),
                FrequencyDistribution::Geometric { p: 0.05 },
            )],
            methods: vec![Method::UnbiasedSpaceSaving, Method::PrioritySampling],
            n_items: 150,
            bins: 40,
            subset_size: 25,
            n_subsets: 8,
            reps: 30,
            count_cap: 10_000,
            buckets: 4,
            seed: 3,
        }
    }
}

/// One bucketed output row.
#[derive(Debug, Clone)]
pub struct ErrorRow {
    /// Distribution name.
    pub distribution: String,
    /// Method evaluated.
    pub method: Method,
    /// Lower edge of the true-count bucket.
    pub bucket_lo: f64,
    /// Upper edge of the true-count bucket.
    pub bucket_hi: f64,
    /// Mean relative RMSE of the subsets in this bucket.
    pub mean_rrmse: f64,
    /// Number of subsets in the bucket.
    pub n_subsets: u64,
}

/// Per-(distribution, method) overall summary.
#[derive(Debug, Clone)]
pub struct SummaryRow {
    /// Distribution name.
    pub distribution: String,
    /// Method evaluated.
    pub method: Method,
    /// Mean RRMSE over all subsets.
    pub mean_rrmse: f64,
    /// Mean absolute relative bias over all subsets (≈ 0 for unbiased methods).
    pub mean_abs_bias: f64,
}

/// Result of the subset-error experiment.
#[derive(Debug, Clone)]
pub struct SubsetErrorResult {
    /// Error-versus-true-count curve rows.
    pub rows: Vec<ErrorRow>,
    /// Per-method overall summaries.
    pub summaries: Vec<SummaryRow>,
    /// Sketch bins used.
    pub bins: usize,
}

/// Runs the experiment with the given configuration.
#[must_use]
pub fn run(config: &SubsetErrorConfig) -> SubsetErrorResult {
    let mut rows = Vec::new();
    let mut summaries = Vec::new();
    for (dist_idx, (name, dist)) in config.distributions.iter().enumerate() {
        let counts: Vec<u64> = dist
            .grid_counts(config.n_items)
            .into_iter()
            .map(|c| c.min(config.count_cap))
            .collect();
        let mut subset_rng =
            StdRng::seed_from_u64(config.seed.wrapping_add(dist_idx as u64 * 7919));
        let subsets = random_subsets(
            config.n_items,
            config.subset_size,
            config.n_subsets,
            &mut subset_rng,
        );
        let accuracy = run_subset_comparison(
            &counts,
            &subsets,
            &config.methods,
            config.bins,
            config.reps,
            config.seed.wrapping_add(dist_idx as u64),
        );

        let truths: Vec<f64> = accuracy
            .iter()
            .filter(|a| a.method == config.methods[0])
            .map(|a| a.truth)
            .collect();
        let lo = truths.iter().copied().fold(f64::INFINITY, f64::min).max(1.0);
        let hi = truths.iter().copied().fold(0.0, f64::max).max(lo * 2.0);

        for &method in &config.methods {
            let mut series = BucketedSeries::geometric(lo, hi * 1.001, config.buckets);
            let cells: Vec<_> = accuracy.iter().filter(|a| a.method == method).collect();
            for cell in &cells {
                series.record(cell.truth, cell.accumulator.rrmse());
            }
            for (bucket_lo, bucket_hi, mean_rrmse, n) in series.rows() {
                rows.push(ErrorRow {
                    distribution: name.clone(),
                    method,
                    bucket_lo,
                    bucket_hi,
                    mean_rrmse,
                    n_subsets: n,
                });
            }
            let mean_rrmse = cells.iter().map(|c| c.accumulator.rrmse()).sum::<f64>()
                / cells.len().max(1) as f64;
            let mean_abs_bias = cells
                .iter()
                .map(|c| c.accumulator.relative_bias().abs())
                .sum::<f64>()
                / cells.len().max(1) as f64;
            summaries.push(SummaryRow {
                distribution: name.clone(),
                method,
                mean_rrmse,
                mean_abs_bias,
            });
        }
    }
    SubsetErrorResult {
        rows,
        summaries,
        bins: config.bins,
    }
}

impl SubsetErrorResult {
    /// The error-versus-true-count curve (both panels of Figure 3 / 4).
    #[must_use]
    pub fn curve_table(&self, figure_name: &str) -> Table {
        let mut table = Table::new(
            format!("{figure_name} — relative RMSE vs true subset count (m = {})", self.bins),
            &[
                "distribution",
                "method",
                "true_count_lo",
                "true_count_hi",
                "mean_rrmse",
                "subsets",
            ],
        );
        for r in &self.rows {
            table.push_row(vec![
                r.distribution.clone(),
                r.method.name().to_string(),
                fmt_num(r.bucket_lo),
                fmt_num(r.bucket_hi),
                fmt_num(r.mean_rrmse),
                r.n_subsets.to_string(),
            ]);
        }
        table
    }

    /// The overall per-method summary.
    #[must_use]
    pub fn summary_table(&self, figure_name: &str) -> Table {
        let mut table = Table::new(
            format!("{figure_name} — overall accuracy (m = {})", self.bins),
            &["distribution", "method", "mean_rrmse", "mean_abs_bias"],
        );
        for s in &self.summaries {
            table.push_row(vec![
                s.distribution.clone(),
                s.method.name().to_string(),
                fmt_num(s.mean_rrmse),
                fmt_num(s.mean_abs_bias),
            ]);
        }
        table
    }

    /// Mean RRMSE for one method across all distributions (used by tests and by the
    /// Figure 4 assertions about bottom-k).
    #[must_use]
    pub fn overall_rrmse(&self, method: Method) -> f64 {
        let cells: Vec<&SummaryRow> = self
            .summaries
            .iter()
            .filter(|s| s.method == method)
            .collect();
        cells.iter().map(|s| s.mean_rrmse).sum::<f64>() / cells.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_shape_unbiased_matches_priority() {
        let result = run(&SubsetErrorConfig::tiny());
        let uss = result.overall_rrmse(Method::UnbiasedSpaceSaving);
        let pri = result.overall_rrmse(Method::PrioritySampling);
        assert!(uss.is_finite() && pri.is_finite());
        // The paper's headline: USS is comparable to (or better than) priority
        // sampling. Allow a generous factor at test scale.
        assert!(
            uss <= pri * 2.0,
            "USS RRMSE {uss} should be comparable to priority sampling {pri}"
        );
        // Both unbiased methods must have tiny bias.
        for s in &result.summaries {
            assert!(
                s.mean_abs_bias < 0.2,
                "{}: bias {}",
                s.method.name(),
                s.mean_abs_bias
            );
        }
    }

    #[test]
    fn error_decreases_with_true_count() {
        let result = run(&SubsetErrorConfig::tiny());
        // Compare the first and last populated buckets for USS: larger subsets should
        // have (weakly) smaller relative error.
        let uss_rows: Vec<&ErrorRow> = result
            .rows
            .iter()
            .filter(|r| r.method == Method::UnbiasedSpaceSaving)
            .collect();
        if uss_rows.len() >= 2 {
            let first = uss_rows.first().unwrap();
            let last = uss_rows.last().unwrap();
            assert!(
                last.mean_rrmse <= first.mean_rrmse * 1.5,
                "error should not grow with the true count: {} -> {}",
                first.mean_rrmse,
                last.mean_rrmse
            );
        }
    }

    #[test]
    fn tables_render() {
        let result = run(&SubsetErrorConfig::tiny());
        let curve = result.curve_table("Figure 3");
        let summary = result.summary_table("Figure 3");
        assert!(!curve.is_empty());
        assert_eq!(summary.len(), result.summaries.len());
        assert!(curve.to_string().contains("Unbiased Space Saving"));
    }
}
