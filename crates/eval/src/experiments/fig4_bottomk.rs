//! Figure 4: with a smaller space budget (m = 100) and the bottom-k uniform item
//! sampler added, Unbiased Space Saving is orders of magnitude more accurate than
//! uniform sampling on skewed data while remaining comparable to priority sampling.
//!
//! Shares its machinery with Figure 3 (`fig3_subset_error`); only the configuration
//! (bins, method list) differs, plus assertions/summaries about the bottom-k gap.

use crate::experiments::fig3_subset_error::{run, SubsetErrorConfig, SubsetErrorResult};
use crate::methods::Method;
use crate::report::{fmt_num, Table};

/// Figure 4 configuration: m = 100, adds bottom-k.
#[must_use]
pub fn figure4_config() -> SubsetErrorConfig {
    SubsetErrorConfig {
        bins: 100,
        methods: vec![
            Method::UnbiasedSpaceSaving,
            Method::PrioritySampling,
            Method::BottomK,
        ],
        ..SubsetErrorConfig::figure3()
    }
}

/// A test-scale configuration.
#[must_use]
pub fn tiny_config() -> SubsetErrorConfig {
    SubsetErrorConfig {
        bins: 25,
        methods: vec![
            Method::UnbiasedSpaceSaving,
            Method::PrioritySampling,
            Method::BottomK,
        ],
        ..SubsetErrorConfig::tiny()
    }
}

/// Result of the Figure 4 experiment: the shared subset-error result plus the
/// bottom-k/USS error ratio per distribution.
#[derive(Debug, Clone)]
pub struct BottomKResult {
    /// Underlying subset-error result (curves and summaries for all three methods).
    pub inner: SubsetErrorResult,
    /// `(distribution, bottom-k RRMSE / USS RRMSE)` pairs.
    pub bottomk_ratio: Vec<(String, f64)>,
}

/// Runs the Figure 4 experiment.
#[must_use]
pub fn run_figure4(config: &SubsetErrorConfig) -> BottomKResult {
    let inner = run(config);
    let mut bottomk_ratio = Vec::new();
    let distributions: Vec<String> = config.distributions.iter().map(|(n, _)| n.clone()).collect();
    for name in distributions {
        let uss = inner
            .summaries
            .iter()
            .find(|s| s.distribution == name && s.method == Method::UnbiasedSpaceSaving)
            .map_or(f64::NAN, |s| s.mean_rrmse);
        let bk = inner
            .summaries
            .iter()
            .find(|s| s.distribution == name && s.method == Method::BottomK)
            .map_or(f64::NAN, |s| s.mean_rrmse);
        bottomk_ratio.push((name, bk / uss));
    }
    BottomKResult {
        inner,
        bottomk_ratio,
    }
}

impl BottomKResult {
    /// Summary table of the uniform-sampling penalty.
    #[must_use]
    pub fn ratio_table(&self) -> Table {
        let mut table = Table::new(
            "Figure 4 — Bottom-k error relative to Unbiased Space Saving",
            &["distribution", "bottomk_rrmse_over_uss"],
        );
        for (name, ratio) in &self.bottomk_ratio {
            table.push_row(vec![name.clone(), fmt_num(*ratio)]);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bottom_k_is_clearly_worse_than_unbiased_space_saving() {
        let result = run_figure4(&tiny_config());
        for (name, ratio) in &result.bottomk_ratio {
            assert!(
                *ratio > 1.5,
                "{name}: bottom-k should be substantially worse (ratio {ratio})"
            );
        }
    }

    #[test]
    fn uss_still_comparable_to_priority_at_smaller_m() {
        let result = run_figure4(&tiny_config());
        let uss = result.inner.overall_rrmse(Method::UnbiasedSpaceSaving);
        let pri = result.inner.overall_rrmse(Method::PrioritySampling);
        assert!(uss <= pri * 2.0, "USS {uss} vs priority {pri}");
    }

    #[test]
    fn ratio_table_renders_one_row_per_distribution() {
        let cfg = tiny_config();
        let result = run_figure4(&cfg);
        assert_eq!(result.ratio_table().len(), cfg.distributions.len());
    }
}
