//! Figure 7: the two-phase pathological stream on which Deterministic Space Saving
//! fails while Unbiased Space Saving keeps behaving like a PPS sample.
//!
//! The stream is split into two halves drawn from disjoint item populations (e.g. data
//! partitioned by hashed user id and processed partition by partition). Deterministic
//! Space Saving's tail bins only remember the most recent labels, so items that appear
//! only in the first half are almost never retained (unless they are among the very
//! top), and querying them gives estimates near zero with relative error up to 100%.
//! Unbiased Space Saving's inclusion probabilities still follow the PPS profile over
//! the *whole* stream, and its subset estimates for first-half items stay unbiased.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::metrics::{mean, EstimateAccumulator};
use crate::report::{fmt_num, Table};
use uss_core::{DeterministicSpaceSaving, StreamSketch, UnbiasedSpaceSaving};
use uss_sampling::pps_inclusion_probabilities;
use uss_workloads::{two_phase_stream, FrequencyDistribution};

/// Configuration for the two-phase pathological experiment.
#[derive(Debug, Clone)]
pub struct PathologicalConfig {
    /// Items per half (the halves use disjoint item id ranges).
    pub items_per_half: usize,
    /// Sketch bins.
    pub bins: usize,
    /// Monte-Carlo repetitions (fresh shuffles of each half and fresh sketch seeds).
    pub reps: usize,
    /// Frequency distribution of each half.
    pub distribution: FrequencyDistribution,
    /// Cap on item counts.
    pub count_cap: u64,
    /// Number of query subsets drawn from the first half (contiguous count-sorted
    /// slices, mirroring the paper's "query items in the first half" evaluation).
    pub n_first_half_queries: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for PathologicalConfig {
    fn default() -> Self {
        Self {
            items_per_half: 1000,
            bins: 100,
            reps: 200,
            distribution: FrequencyDistribution::Weibull {
                scale: 50.0,
                shape: 0.32,
            },
            count_cap: 50_000,
            n_first_half_queries: 20,
            seed: 7,
        }
    }
}

impl PathologicalConfig {
    /// Test-scale configuration.
    #[must_use]
    pub fn tiny() -> Self {
        Self {
            items_per_half: 150,
            bins: 30,
            reps: 80,
            distribution: FrequencyDistribution::Geometric { p: 0.04 },
            count_cap: 10_000,
            n_first_half_queries: 6,
            seed: 7,
        }
    }
}

/// Inclusion-probability comparison row (one bucket of first-half items).
#[derive(Debug, Clone, Copy)]
pub struct InclusionComparisonRow {
    /// Lower edge of the true-count bucket.
    pub count_lo: f64,
    /// Upper edge of the true-count bucket.
    pub count_hi: f64,
    /// Mean theoretical PPS inclusion probability (over the full stream).
    pub theoretical: f64,
    /// Mean observed inclusion probability under Unbiased Space Saving.
    pub unbiased: f64,
    /// Mean observed inclusion probability under Deterministic Space Saving.
    pub deterministic: f64,
    /// Number of items in the bucket.
    pub n_items: u64,
}

/// Subset-error comparison row for first-half queries.
#[derive(Debug, Clone, Copy)]
pub struct QueryErrorRow {
    /// True subset count.
    pub truth: f64,
    /// Relative RMSE of Unbiased Space Saving.
    pub unbiased_rrmse: f64,
    /// Relative RMSE of Deterministic Space Saving.
    pub deterministic_rrmse: f64,
    /// Relative bias of Deterministic Space Saving (large and negative when it forgets
    /// the first half).
    pub deterministic_bias: f64,
}

/// Result of the pathological experiment.
#[derive(Debug, Clone)]
pub struct PathologicalResult {
    /// Inclusion probability comparison (first-half items only, bucketed by count).
    pub inclusion: Vec<InclusionComparisonRow>,
    /// Per-query error comparison for first-half subsets.
    pub queries: Vec<QueryErrorRow>,
    /// Mean inclusion probability of first-half items under each sketch.
    pub mean_inclusion_unbiased: f64,
    /// Mean inclusion probability of first-half items under Deterministic SS.
    pub mean_inclusion_deterministic: f64,
}

/// Runs the experiment.
#[must_use]
pub fn run(config: &PathologicalConfig) -> PathologicalResult {
    let n = config.items_per_half;
    let counts_a: Vec<u64> = config
        .distribution
        .grid_counts(n)
        .into_iter()
        .map(|c| c.min(config.count_cap))
        .collect();
    let counts_b = counts_a.clone();
    // Combined per-item counts over both halves (items n..2n are the second half).
    let combined: Vec<u64> = counts_a.iter().chain(counts_b.iter()).copied().collect();
    let weights: Vec<f64> = combined.iter().map(|&c| c as f64).collect();
    let design = pps_inclusion_probabilities(&weights, config.bins);

    // First-half queries: contiguous slices of the count-sorted first-half items.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| counts_a[i]);
    let slice_len = (n / config.n_first_half_queries).max(1);
    let query_sets: Vec<Vec<u64>> = (0..config.n_first_half_queries)
        .map(|q| {
            let start = q * slice_len;
            let end = ((q + 1) * slice_len).min(n);
            let mut items: Vec<u64> = order[start..end].iter().map(|&i| i as u64).collect();
            items.sort_unstable();
            items
        })
        .filter(|s| !s.is_empty())
        .collect();
    let query_truths: Vec<f64> = query_sets
        .iter()
        .map(|s| s.iter().map(|&i| counts_a[i as usize] as f64).sum())
        .collect();

    let mut unbiased_inclusions = vec![0u64; n];
    let mut deterministic_inclusions = vec![0u64; n];
    let mut unbiased_acc: Vec<EstimateAccumulator> = query_truths
        .iter()
        .map(|&t| EstimateAccumulator::new(t))
        .collect();
    let mut deterministic_acc: Vec<EstimateAccumulator> = query_truths
        .iter()
        .map(|&t| EstimateAccumulator::new(t))
        .collect();

    let mut rng = StdRng::seed_from_u64(config.seed);
    for rep in 0..config.reps {
        let rows = two_phase_stream(&counts_a, &counts_b, &mut rng);
        let mut uss =
            UnbiasedSpaceSaving::with_seed(config.bins, config.seed.wrapping_add(rep as u64));
        let mut dss = DeterministicSpaceSaving::new(config.bins);
        for &item in &rows {
            uss.offer(item);
            dss.offer(item);
        }
        let uss_snap = uss.snapshot();
        for (item, _) in uss_snap.entries() {
            if (*item as usize) < n {
                unbiased_inclusions[*item as usize] += 1;
            }
        }
        for (item, _) in dss.entries() {
            if (item as usize) < n {
                deterministic_inclusions[item as usize] += 1;
            }
        }
        for (q_idx, items) in query_sets.iter().enumerate() {
            unbiased_acc[q_idx]
                .push(uss_snap.subset_sum(|item| items.binary_search(&item).is_ok()));
            deterministic_acc[q_idx]
                .push(dss.subset_sum(&mut |item| items.binary_search(&item).is_ok()));
        }
    }

    // Bucket the inclusion probabilities by true count (geometric bucket edges).
    let lo = counts_a.iter().copied().min().unwrap_or(1).max(1) as f64;
    let hi = counts_a.iter().copied().max().unwrap_or(2) as f64;
    let upper = (hi * 1.001).max(lo * 2.0);
    let mut inclusion_rows = Vec::new();
    {
        let buckets_n = 6;
        let ratio = (upper / lo).powf(1.0 / buckets_n as f64);
        let mut edges = Vec::with_capacity(buckets_n);
        let mut edge = lo;
        for _ in 0..buckets_n {
            edges.push((edge, edge * ratio));
            edge *= ratio;
        }
        for (bucket_lo, bucket_hi) in edges {
            let items: Vec<usize> = (0..n)
                .filter(|&i| {
                    let c = counts_a[i] as f64;
                    c >= bucket_lo && (c < bucket_hi || bucket_hi >= hi)
                })
                .collect();
            if items.is_empty() {
                continue;
            }
            let theoretical = mean(
                &items
                    .iter()
                    .map(|&i| design.inclusion_probabilities[i])
                    .collect::<Vec<f64>>(),
            );
            let unbiased = mean(
                &items
                    .iter()
                    .map(|&i| unbiased_inclusions[i] as f64 / config.reps as f64)
                    .collect::<Vec<f64>>(),
            );
            let deterministic = mean(
                &items
                    .iter()
                    .map(|&i| deterministic_inclusions[i] as f64 / config.reps as f64)
                    .collect::<Vec<f64>>(),
            );
            inclusion_rows.push(InclusionComparisonRow {
                count_lo: bucket_lo,
                count_hi: bucket_hi,
                theoretical,
                unbiased,
                deterministic,
                n_items: items.len() as u64,
            });
        }
    }

    let queries = query_truths
        .iter()
        .enumerate()
        .map(|(q, &truth)| QueryErrorRow {
            truth,
            unbiased_rrmse: unbiased_acc[q].rrmse(),
            deterministic_rrmse: deterministic_acc[q].rrmse(),
            deterministic_bias: deterministic_acc[q].relative_bias(),
        })
        .collect();

    let mean_inclusion_unbiased = mean(
        &unbiased_inclusions
            .iter()
            .map(|&c| c as f64 / config.reps as f64)
            .collect::<Vec<f64>>(),
    );
    let mean_inclusion_deterministic = mean(
        &deterministic_inclusions
            .iter()
            .map(|&c| c as f64 / config.reps as f64)
            .collect::<Vec<f64>>(),
    );

    PathologicalResult {
        inclusion: inclusion_rows,
        queries,
        mean_inclusion_unbiased,
        mean_inclusion_deterministic,
    }
}

impl PathologicalResult {
    /// The inclusion-probability comparison (left panels of Figure 7).
    #[must_use]
    pub fn inclusion_table(&self) -> Table {
        let mut table = Table::new(
            format!(
                "Figure 7 — first-half inclusion probabilities (mean: unbiased {}, deterministic {})",
                fmt_num(self.mean_inclusion_unbiased),
                fmt_num(self.mean_inclusion_deterministic)
            ),
            &[
                "count_lo",
                "count_hi",
                "theoretical_pps",
                "unbiased",
                "deterministic",
                "items",
            ],
        );
        for r in &self.inclusion {
            table.push_row(vec![
                fmt_num(r.count_lo),
                fmt_num(r.count_hi),
                fmt_num(r.theoretical),
                fmt_num(r.unbiased),
                fmt_num(r.deterministic),
                r.n_items.to_string(),
            ]);
        }
        table
    }

    /// The first-half query error comparison (right panel of Figure 7).
    #[must_use]
    pub fn error_table(&self) -> Table {
        let mut table = Table::new(
            "Figure 7 — relative error on first-half subsets",
            &["true_count", "unbiased_rrmse", "deterministic_rrmse", "deterministic_bias"],
        );
        for q in &self.queries {
            table.push_row(vec![
                fmt_num(q.truth),
                fmt_num(q.unbiased_rrmse),
                fmt_num(q.deterministic_rrmse),
                fmt_num(q.deterministic_bias),
            ]);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_space_saving_forgets_the_first_half() {
        let result = run(&PathologicalConfig::tiny());
        // Unbiased Space Saving retains first-half items far more often than the
        // deterministic sketch does.
        assert!(
            result.mean_inclusion_unbiased > 2.0 * result.mean_inclusion_deterministic,
            "unbiased {} vs deterministic {}",
            result.mean_inclusion_unbiased,
            result.mean_inclusion_deterministic
        );
    }

    #[test]
    fn deterministic_queries_are_badly_biased_unbiased_are_not() {
        let result = run(&PathologicalConfig::tiny());
        let mean_det_bias = mean(
            &result
                .queries
                .iter()
                .map(|q| q.deterministic_bias)
                .collect::<Vec<f64>>(),
        );
        // Deterministic SS underestimates first-half subsets badly (mostly forgotten).
        assert!(
            mean_det_bias < -0.3,
            "deterministic bias {mean_det_bias} should be strongly negative"
        );
        // And on the larger first-half subsets (where the relative error of an
        // unbiased estimator is small) the deterministic sketch is far worse. Tiny
        // subsets are dominated by sampling noise for every method, so restrict the
        // comparison to queries above the median true count, as the paper's
        // error-versus-true-count panel does.
        let mut truths: Vec<f64> = result.queries.iter().map(|q| q.truth).collect();
        truths.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median_truth = truths[truths.len() / 2];
        let large: Vec<&QueryErrorRow> = result
            .queries
            .iter()
            .filter(|q| q.truth >= median_truth)
            .collect();
        let det = mean(&large.iter().map(|q| q.deterministic_rrmse).collect::<Vec<f64>>());
        let unb = mean(&large.iter().map(|q| q.unbiased_rrmse).collect::<Vec<f64>>());
        assert!(
            det > 1.5 * unb,
            "deterministic RRMSE {det} vs unbiased {unb} on large subsets"
        );
    }

    #[test]
    fn unbiased_inclusion_tracks_theoretical_pps() {
        let result = run(&PathologicalConfig::tiny());
        for r in &result.inclusion {
            assert!(
                (r.unbiased - r.theoretical).abs() < 0.25,
                "bucket [{}, {}): observed {} vs theoretical {}",
                r.count_lo,
                r.count_hi,
                r.unbiased,
                r.theoretical
            );
        }
    }

    #[test]
    fn tables_render() {
        let result = run(&PathologicalConfig::tiny());
        assert!(!result.inclusion_table().is_empty());
        assert!(!result.error_table().is_empty());
    }
}
