//! Figures 8, 9 and 10: the sorted (ascending-frequency) pathological stream.
//!
//! The stream presents items in ascending order of frequency — the worst case for
//! Unbiased Space Saving, because every frequent item arrives only after the sketch is
//! saturated with tail items. The items are split into ten "epochs" of equal distinct
//! item count, and the per-epoch subset sums are queried. Three views are reported:
//!
//! * **Figure 8** — per-epoch true counts, the average width of the nominal-95%
//!   Normal confidence interval built from the equation-5 variance estimator, and the
//!   empirical coverage (≥ the nominal level wherever the CLT applies).
//! * **Figure 9** — the ratio of the estimated standard deviation to the true
//!   (empirical) standard deviation, and the ratio of the empirical standard deviation
//!   to that of an ideal PPS sample of the same size.
//! * **Figure 10** — per-epoch relative RMSE of Deterministic versus Unbiased Space
//!   Saving: the deterministic sketch answers early epochs with 0 and the last epoch
//!   with the whole stream, giving errors orders of magnitude larger.

use crate::metrics::{CoverageCounter, EstimateAccumulator};
use crate::report::{fmt_num, Table};
use uss_core::{DeterministicSpaceSaving, StreamSketch, UnbiasedSpaceSaving};
use uss_sampling::pps_inclusion_probabilities;
use uss_workloads::{epoch_ranges, sorted_stream, FrequencyDistribution};

/// Configuration for the sorted-stream experiment.
#[derive(Debug, Clone)]
pub struct SortedStreamConfig {
    /// Number of distinct items.
    pub n_items: usize,
    /// Number of epochs (contiguous item ranges of equal size).
    pub n_epochs: usize,
    /// Sketch bins.
    pub bins: usize,
    /// Monte-Carlo repetitions.
    pub reps: usize,
    /// Item frequency distribution.
    pub distribution: FrequencyDistribution,
    /// Cap on item counts.
    pub count_cap: u64,
    /// Confidence level for the intervals (e.g. 0.95).
    pub confidence: f64,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for SortedStreamConfig {
    fn default() -> Self {
        Self {
            n_items: 2_000,
            n_epochs: 10,
            bins: 400,
            reps: 200,
            distribution: FrequencyDistribution::Weibull {
                scale: 50.0,
                shape: 0.32,
            },
            count_cap: 100_000,
            confidence: 0.95,
            seed: 8,
        }
    }
}

impl SortedStreamConfig {
    /// Test-scale configuration.
    #[must_use]
    pub fn tiny() -> Self {
        Self {
            n_items: 300,
            n_epochs: 5,
            bins: 60,
            reps: 80,
            distribution: FrequencyDistribution::Geometric { p: 0.04 },
            count_cap: 10_000,
            confidence: 0.95,
            seed: 8,
        }
    }
}

/// Per-epoch result row.
#[derive(Debug, Clone, Copy)]
pub struct EpochRow {
    /// Epoch index (1-based, matching the paper's figures).
    pub epoch: usize,
    /// True total count of the epoch's items.
    pub truth: f64,
    /// Mean Unbiased Space Saving estimate.
    pub unbiased_mean: f64,
    /// Mean width of the nominal confidence interval.
    pub mean_ci_width: f64,
    /// Empirical coverage of the nominal interval.
    pub coverage: f64,
    /// Mean estimated standard deviation (equation 5).
    pub mean_estimated_std: f64,
    /// Empirical standard deviation of the Unbiased Space Saving estimates.
    pub empirical_std: f64,
    /// Standard deviation of an ideal PPS sample of the same size (equation 1).
    pub pps_std: f64,
    /// Relative RMSE of Unbiased Space Saving.
    pub unbiased_rrmse: f64,
    /// Relative RMSE of Deterministic Space Saving.
    pub deterministic_rrmse: f64,
}

/// Result of the sorted-stream experiment (shared by Figures 8–10).
#[derive(Debug, Clone)]
pub struct SortedStreamResult {
    /// Per-epoch rows.
    pub epochs: Vec<EpochRow>,
    /// Confidence level used.
    pub confidence: f64,
}

/// Runs the experiment.
#[must_use]
pub fn run(config: &SortedStreamConfig) -> SortedStreamResult {
    let counts: Vec<u64> = config
        .distribution
        .grid_counts(config.n_items)
        .into_iter()
        .map(|c| c.min(config.count_cap))
        .collect();
    let rows = sorted_stream(&counts, true);
    let ranges = epoch_ranges(config.n_items, config.n_epochs);
    let truths: Vec<f64> = ranges
        .iter()
        .map(|r| {
            counts[r.start as usize..r.end as usize]
                .iter()
                .map(|&c| c as f64)
                .sum()
        })
        .collect();

    // Ideal PPS variance per epoch (equation 1 with α = τ): Σ_{i∈S} τ·n_i·(1 − π_i).
    let weights: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
    let design = pps_inclusion_probabilities(&weights, config.bins);
    let pps_std: Vec<f64> = ranges
        .iter()
        .map(|r| {
            let var: f64 = (r.start as usize..r.end as usize)
                .map(|i| {
                    let pi = design.inclusion_probabilities[i];
                    if pi >= 1.0 {
                        0.0
                    } else {
                        design.threshold * weights[i] * (1.0 - pi)
                    }
                })
                .sum();
            var.sqrt()
        })
        .collect();

    let mut unbiased_acc: Vec<EstimateAccumulator> = truths
        .iter()
        .map(|&t| EstimateAccumulator::new(t))
        .collect();
    let mut deterministic_acc: Vec<EstimateAccumulator> = truths
        .iter()
        .map(|&t| EstimateAccumulator::new(t))
        .collect();
    let mut coverage: Vec<CoverageCounter> = vec![CoverageCounter::new(); config.n_epochs];
    let mut estimated_std_sums = vec![0.0f64; config.n_epochs];

    for rep in 0..config.reps {
        let mut uss =
            UnbiasedSpaceSaving::with_seed(config.bins, config.seed.wrapping_add(rep as u64));
        for &item in &rows {
            uss.offer(item);
        }
        let snap = uss.snapshot();
        for (e, range) in ranges.iter().enumerate() {
            let est = snap.subset_estimate(|item| range.contains(&item));
            unbiased_acc[e].push(est.sum);
            estimated_std_sums[e] += est.std_dev();
            let ci = est.confidence_interval(config.confidence);
            coverage[e].record(ci.contains(truths[e]), ci.width());
        }
    }
    // The deterministic sketch has no randomness, so a single pass suffices; feed its
    // fixed estimate into the accumulator once per repetition to keep the RRMSE
    // definition identical.
    let mut dss = DeterministicSpaceSaving::new(config.bins);
    for &item in &rows {
        dss.offer(item);
    }
    for (e, range) in ranges.iter().enumerate() {
        let est = dss.subset_sum(&mut |item| range.contains(&item));
        for _ in 0..config.reps {
            deterministic_acc[e].push(est);
        }
    }

    let epochs = (0..config.n_epochs)
        .map(|e| EpochRow {
            epoch: e + 1,
            truth: truths[e],
            unbiased_mean: unbiased_acc[e].mean_estimate(),
            mean_ci_width: coverage[e].mean_width(),
            coverage: coverage[e].coverage(),
            mean_estimated_std: estimated_std_sums[e] / config.reps as f64,
            empirical_std: unbiased_acc[e].empirical_std_dev(),
            pps_std: pps_std[e],
            unbiased_rrmse: unbiased_acc[e].rrmse(),
            deterministic_rrmse: deterministic_acc[e].rrmse(),
        })
        .collect();
    SortedStreamResult {
        epochs,
        confidence: config.confidence,
    }
}

impl SortedStreamResult {
    /// Figure 8: per-epoch true counts, interval widths and coverage.
    #[must_use]
    pub fn figure8_table(&self) -> Table {
        let mut table = Table::new(
            format!(
                "Figure 8 — true counts, CI width and coverage (nominal {}%)",
                self.confidence * 100.0
            ),
            &["epoch", "true_count", "mean_estimate", "mean_ci_width", "coverage"],
        );
        for e in &self.epochs {
            table.push_row(vec![
                e.epoch.to_string(),
                fmt_num(e.truth),
                fmt_num(e.unbiased_mean),
                fmt_num(e.mean_ci_width),
                fmt_num(e.coverage),
            ]);
        }
        table
    }

    /// Figure 9: standard-deviation overestimation and comparison to an ideal PPS
    /// sample.
    #[must_use]
    pub fn figure9_table(&self) -> Table {
        let mut table = Table::new(
            "Figure 9 — variance estimator quality",
            &["epoch", "estimated_std_over_true", "empirical_std_over_pps"],
        );
        for e in &self.epochs {
            let over = if e.empirical_std > 0.0 {
                e.mean_estimated_std / e.empirical_std
            } else {
                f64::NAN
            };
            let vs_pps = if e.pps_std > 0.0 {
                e.empirical_std / e.pps_std
            } else {
                f64::NAN
            };
            table.push_row(vec![e.epoch.to_string(), fmt_num(over), fmt_num(vs_pps)]);
        }
        table
    }

    /// Figure 10: per-epoch relative RMSE of Deterministic vs Unbiased Space Saving.
    #[must_use]
    pub fn figure10_table(&self) -> Table {
        let mut table = Table::new(
            "Figure 10 — %RRMSE per epoch, Deterministic vs Unbiased",
            &["epoch", "deterministic_pct_rrmse", "unbiased_pct_rrmse", "ratio"],
        );
        for e in &self.epochs {
            let ratio = if e.unbiased_rrmse > 0.0 {
                e.deterministic_rrmse / e.unbiased_rrmse
            } else {
                f64::INFINITY
            };
            table.push_row(vec![
                e.epoch.to_string(),
                fmt_num(e.deterministic_rrmse * 100.0),
                fmt_num(e.unbiased_rrmse * 100.0),
                fmt_num(ratio),
            ]);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> SortedStreamResult {
        run(&SortedStreamConfig::tiny())
    }

    #[test]
    fn unbiased_estimates_are_unbiased_per_epoch() {
        let r = result();
        for e in &r.epochs {
            let bias = (e.unbiased_mean - e.truth).abs() / e.truth.max(1.0);
            assert!(
                bias < 0.2,
                "epoch {}: mean {} vs truth {} (bias {bias})",
                e.epoch,
                e.unbiased_mean,
                e.truth
            );
        }
    }

    #[test]
    fn coverage_is_near_or_above_nominal_for_late_epochs() {
        let r = result();
        // Late epochs contain many sketch items, so the CLT applies and the upward
        // biased variance estimate should give coverage at or above ~nominal.
        let late: Vec<&EpochRow> = r.epochs.iter().filter(|e| e.epoch >= 3).collect();
        for e in late {
            assert!(
                e.coverage >= 0.85,
                "epoch {}: coverage {} too far below nominal",
                e.epoch,
                e.coverage
            );
        }
    }

    #[test]
    fn deterministic_fails_badly_while_unbiased_does_not() {
        let r = result();
        // Early epochs: the deterministic sketch answers ~0, i.e. ~100% error.
        let first = &r.epochs[0];
        assert!(
            first.deterministic_rrmse > 0.9,
            "deterministic RRMSE {} on the first epoch should be ~1",
            first.deterministic_rrmse
        );
        // Late (but not final) epochs hold a large share of the mass yet are still
        // answered with ~0 by the deterministic sketch, while Unbiased Space Saving is
        // accurate there — this is where the paper's 50× gap shows up.
        let late = &r.epochs[r.epochs.len() - 2];
        assert!(
            late.deterministic_rrmse > 2.0 * late.unbiased_rrmse,
            "epoch {}: deterministic {} vs unbiased {}",
            late.epoch,
            late.deterministic_rrmse,
            late.unbiased_rrmse
        );
    }

    #[test]
    fn variance_estimator_is_upward_biased_but_in_the_right_ballpark() {
        let r = result();
        for e in &r.epochs {
            if e.empirical_std > 0.0 {
                let ratio = e.mean_estimated_std / e.empirical_std;
                assert!(
                    ratio > 0.5 && ratio < 20.0,
                    "epoch {}: estimated/empirical std ratio {ratio}",
                    e.epoch
                );
            }
        }
        // At least one epoch should show the (documented) upward bias.
        assert!(r
            .epochs
            .iter()
            .any(|e| e.empirical_std > 0.0 && e.mean_estimated_std >= e.empirical_std));
    }

    #[test]
    fn empirical_std_is_comparable_to_pps() {
        let r = result();
        for e in &r.epochs {
            if e.pps_std > 0.0 && e.empirical_std > 0.0 {
                let ratio = e.empirical_std / e.pps_std;
                assert!(
                    ratio < 5.0,
                    "epoch {}: empirical/PPS std ratio {ratio} too large",
                    e.epoch
                );
            }
        }
    }

    #[test]
    fn tables_render_one_row_per_epoch() {
        let r = result();
        assert_eq!(r.figure8_table().len(), r.epochs.len());
        assert_eq!(r.figure9_table().len(), r.epochs.len());
        assert_eq!(r.figure10_table().len(), r.epochs.len());
    }
}
