//! Evaluation harness reproducing the experimental section (section 7) of
//! *"Data Sketches for Disaggregated Subset Sum and Frequent Item Estimation"*.
//!
//! The harness has four layers:
//!
//! * [`metrics`] — RRMSE / relative-MSE accumulators, coverage counters, and
//!   bucketed error-versus-true-count series.
//! * [`methods`] — the estimation methods under comparison (Unbiased and
//!   Deterministic Space Saving, priority sampling, bottom-k, adaptive
//!   sample-and-hold) behind a single subset-estimation interface.
//! * [`experiments`] — one driver per paper figure, each with bench-scale defaults, a
//!   `tiny()` test configuration, and table renderers producing the series the paper
//!   plots.
//! * [`report`] — plain-text / CSV table output.
//!
//! The figure binaries in the `uss-bench` crate are thin command-line wrappers around
//! [`experiments`]; see EXPERIMENTS.md at the workspace root for the recorded
//! paper-versus-measured comparison.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod methods;
pub mod metrics;
pub mod report;

pub use methods::Method;
pub use metrics::{BucketedSeries, CoverageCounter, EstimateAccumulator};
pub use report::Table;
