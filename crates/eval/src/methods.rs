//! The estimation methods compared in the paper's evaluation, behind one interface.
//!
//! A [`Method`] consumes a workload — both its *disaggregated* row stream and its
//! *pre-aggregated* per-item counts — and produces subset-sum estimates for a list of
//! query subsets. Disaggregated methods (the Space Saving family, adaptive
//! sample-and-hold, bottom-k) only look at the rows; pre-aggregated methods (priority
//! sampling) only look at the counts, which is exactly the informational advantage the
//! paper's comparison highlights: Unbiased Space Saving matches priority sampling
//! without ever seeing the aggregated counts.

use rand::rngs::StdRng;
use rand::SeedableRng;

use uss_baselines::AdaptiveSampleAndHold;
use uss_core::{
    DeterministicSpaceSaving, QueryServer, QueryServerConfig, StreamSketch, UnbiasedSpaceSaving,
};
use uss_sampling::priority::priority_sample;
use uss_sampling::{BottomKSketch, WeightedItem};

/// A subset-sum estimation method under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Unbiased Space Saving on the disaggregated stream (the paper's contribution).
    UnbiasedSpaceSaving,
    /// Deterministic Space Saving on the disaggregated stream (biased baseline).
    DeterministicSpaceSaving,
    /// Priority sampling on pre-aggregated per-item counts (state-of-the-art baseline
    /// that requires the expensive pre-aggregation step).
    PrioritySampling,
    /// Bottom-k uniform item sampling on the disaggregated stream (weak baseline).
    BottomK,
    /// Adaptive sample-and-hold on the disaggregated stream (prior disaggregated
    /// state of the art).
    AdaptiveSampleAndHold,
}

impl Method {
    /// All methods, in the order used by report tables.
    pub const ALL: [Method; 5] = [
        Method::UnbiasedSpaceSaving,
        Method::DeterministicSpaceSaving,
        Method::PrioritySampling,
        Method::BottomK,
        Method::AdaptiveSampleAndHold,
    ];

    /// Human-readable name used in reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Method::UnbiasedSpaceSaving => "Unbiased Space Saving",
            Method::DeterministicSpaceSaving => "Deterministic Space Saving",
            Method::PrioritySampling => "Priority Sampling",
            Method::BottomK => "Bottom-k",
            Method::AdaptiveSampleAndHold => "Adaptive Sample-and-Hold",
        }
    }

    /// Whether the method requires pre-aggregated counts (rather than the raw rows).
    #[must_use]
    pub fn needs_preaggregation(&self) -> bool {
        matches!(self, Method::PrioritySampling)
    }

    /// Estimates the subset sums for every query in `subsets` (each a sorted list of
    /// item indices) from one pass over the workload with a space budget of `bins`.
    ///
    /// `rows` is the disaggregated stream (item index per row) and `counts` the
    /// pre-aggregated truth vector indexed by item (`counts[i]` = occurrences of item
    /// `i`). `seed` controls all randomness so experiments are reproducible.
    #[must_use]
    pub fn estimate_subsets(
        &self,
        rows: &[u64],
        counts: &[u64],
        bins: usize,
        subsets: &[Vec<u64>],
        seed: u64,
    ) -> Vec<f64> {
        match self {
            Method::UnbiasedSpaceSaving => {
                let mut sketch = UnbiasedSpaceSaving::with_seed(bins, seed);
                sketch.offer_batch(rows);
                // Query through the serving layer — the same read path production
                // code uses — rather than against a hand-built snapshot.
                let server = QueryServer::new(sketch, QueryServerConfig::new());
                subsets
                    .iter()
                    .map(|s| server.subset_estimate(s).0.sum)
                    .collect()
            }
            Method::DeterministicSpaceSaving => {
                let mut sketch = DeterministicSpaceSaving::new(bins);
                sketch.offer_batch(rows);
                subsets
                    .iter()
                    .map(|s| {
                        sketch.subset_sum(&mut |item| s.binary_search(&item).is_ok())
                    })
                    .collect()
            }
            Method::PrioritySampling => {
                let items: Vec<WeightedItem> = counts
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| WeightedItem::new(i as u64, c as f64))
                    .collect();
                let mut rng = StdRng::seed_from_u64(seed);
                let sample = priority_sample(&items, bins, &mut rng);
                subsets
                    .iter()
                    .map(|s| sample.subset_sum(|item| s.binary_search(&item).is_ok()))
                    .collect()
            }
            Method::BottomK => {
                let mut sketch = BottomKSketch::new(bins, seed);
                sketch.offer_batch(rows);
                let sample = sketch.into_sample();
                subsets
                    .iter()
                    .map(|s| sample.subset_sum(|item| s.binary_search(&item).is_ok()))
                    .collect()
            }
            Method::AdaptiveSampleAndHold => {
                let mut sketch = AdaptiveSampleAndHold::new(bins, seed);
                sketch.offer_batch(rows);
                subsets
                    .iter()
                    .map(|s| {
                        sketch.subset_sum(&mut |item| s.binary_search(&item).is_ok())
                    })
                    .collect()
            }
        }
    }

    /// Estimates the count of every individual item (as a subset of size one each) —
    /// convenience used by the per-item error experiments.
    #[must_use]
    pub fn estimate_items(
        &self,
        rows: &[u64],
        counts: &[u64],
        bins: usize,
        items: &[u64],
        seed: u64,
    ) -> Vec<f64> {
        let subsets: Vec<Vec<u64>> = items.iter().map(|&i| vec![i]).collect();
        self.estimate_subsets(rows, counts, bins, &subsets, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use uss_workloads::{shuffled_stream, true_subset_sum, FrequencyDistribution};

    fn workload() -> (Vec<u64>, Vec<u64>) {
        let counts = FrequencyDistribution::Geometric { p: 0.05 }.grid_counts(200);
        let mut rng = StdRng::seed_from_u64(1);
        let rows = shuffled_stream(&counts, &mut rng);
        (rows, counts)
    }

    #[test]
    fn all_methods_produce_one_estimate_per_subset() {
        let (rows, counts) = workload();
        let subsets = vec![vec![0, 1, 2, 3, 4], (0..100u64).collect::<Vec<_>>()];
        for method in Method::ALL {
            let est = method.estimate_subsets(&rows, &counts, 50, &subsets, 7);
            assert_eq!(est.len(), 2, "{}", method.name());
            assert!(est.iter().all(|e| e.is_finite() && *e >= 0.0));
        }
    }

    #[test]
    fn unbiased_methods_are_close_on_large_subsets() {
        // A subset holding half the mass should be estimated within a modest relative
        // error by every unbiased method in a single run.
        let (rows, counts) = workload();
        let subset: Vec<u64> = (0..100u64).collect();
        let truth = true_subset_sum(&counts, &subset) as f64;
        for method in [
            Method::UnbiasedSpaceSaving,
            Method::PrioritySampling,
            Method::AdaptiveSampleAndHold,
        ] {
            let est =
                method.estimate_subsets(&rows, &counts, 60, std::slice::from_ref(&subset), 3)[0];
            let rel = (est - truth).abs() / truth;
            assert!(rel < 0.5, "{}: rel error {rel}", method.name());
        }
    }

    #[test]
    fn priority_sampling_ignores_row_order() {
        let (rows, counts) = workload();
        let mut reversed = rows.clone();
        reversed.reverse();
        let subsets = vec![(0..50u64).collect::<Vec<_>>()];
        let a = Method::PrioritySampling.estimate_subsets(&rows, &counts, 40, &subsets, 9);
        let b = Method::PrioritySampling.estimate_subsets(&reversed, &counts, 40, &subsets, 9);
        assert_eq!(a, b, "pre-aggregated methods only see the counts");
    }

    #[test]
    fn names_and_flags_are_consistent() {
        assert!(Method::PrioritySampling.needs_preaggregation());
        assert!(!Method::UnbiasedSpaceSaving.needs_preaggregation());
        let names: std::collections::HashSet<&str> =
            Method::ALL.iter().map(Method::name).collect();
        assert_eq!(names.len(), Method::ALL.len(), "names must be unique");
    }

    #[test]
    fn estimate_items_matches_singleton_subsets() {
        let (rows, counts) = workload();
        let items = vec![0u64, 5, 10];
        let a = Method::UnbiasedSpaceSaving.estimate_items(&rows, &counts, 30, &items, 11);
        let subsets: Vec<Vec<u64>> = items.iter().map(|&i| vec![i]).collect();
        let b = Method::UnbiasedSpaceSaving.estimate_subsets(&rows, &counts, 30, &subsets, 11);
        assert_eq!(a, b);
    }
}
