//! Error metrics used throughout the evaluation.
//!
//! The paper reports the *relative root mean squared error* (RRMSE)
//! `sqrt(MSE) / n_S` of subset-sum estimates, empirical inclusion probabilities, the
//! coverage of nominal-95% confidence intervals, and ratios of estimated to true
//! standard deviations. This module provides small, well-tested building blocks for
//! all of them.

/// Relative error `(estimate − truth) / truth` (signed). Returns 0 when both are zero
/// and infinity when only the truth is zero.
#[must_use]
pub fn relative_error(estimate: f64, truth: f64) -> f64 {
    if truth == 0.0 {
        if estimate == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (estimate - truth) / truth
    }
}

/// Mean of a slice (0 for an empty slice).
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population variance of a slice (0 for fewer than two values).
#[must_use]
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64
}

/// Standard deviation of a slice.
#[must_use]
pub fn std_dev(values: &[f64]) -> f64 {
    variance(values).sqrt()
}

/// Accumulates repeated estimates of a single true quantity and reports bias, MSE,
/// RRMSE and empirical variance.
#[derive(Debug, Clone)]
pub struct EstimateAccumulator {
    truth: f64,
    estimates: Vec<f64>,
}

impl EstimateAccumulator {
    /// Creates an accumulator for estimates of `truth`.
    #[must_use]
    pub fn new(truth: f64) -> Self {
        Self {
            truth,
            estimates: Vec::new(),
        }
    }

    /// The true value.
    #[must_use]
    pub fn truth(&self) -> f64 {
        self.truth
    }

    /// Adds one estimate.
    pub fn push(&mut self, estimate: f64) {
        self.estimates.push(estimate);
    }

    /// Number of estimates recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.estimates.len()
    }

    /// Whether no estimates have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.estimates.is_empty()
    }

    /// Mean of the recorded estimates.
    #[must_use]
    pub fn mean_estimate(&self) -> f64 {
        mean(&self.estimates)
    }

    /// Signed relative bias `(mean − truth)/truth`.
    #[must_use]
    pub fn relative_bias(&self) -> f64 {
        relative_error(self.mean_estimate(), self.truth)
    }

    /// Mean squared error against the truth.
    #[must_use]
    pub fn mse(&self) -> f64 {
        if self.estimates.is_empty() {
            return 0.0;
        }
        self.estimates
            .iter()
            .map(|e| (e - self.truth).powi(2))
            .sum::<f64>()
            / self.estimates.len() as f64
    }

    /// Relative root mean squared error `sqrt(MSE)/truth` — the paper's headline
    /// metric. Infinite when the truth is zero and the MSE is not.
    #[must_use]
    pub fn rrmse(&self) -> f64 {
        if self.truth == 0.0 {
            if self.mse() == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.mse().sqrt() / self.truth
        }
    }

    /// Relative MSE `MSE / truth²` (the quantity scattered in Figure 5).
    #[must_use]
    pub fn relative_mse(&self) -> f64 {
        let r = self.rrmse();
        r * r
    }

    /// Empirical variance of the estimates themselves (not around the truth).
    #[must_use]
    pub fn empirical_variance(&self) -> f64 {
        variance(&self.estimates)
    }

    /// Empirical standard deviation of the estimates.
    #[must_use]
    pub fn empirical_std_dev(&self) -> f64 {
        self.empirical_variance().sqrt()
    }
}

/// Tracks how often confidence intervals cover their true value.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoverageCounter {
    covered: u64,
    total: u64,
    width_sum: f64,
}

impl CoverageCounter {
    /// Creates an empty counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one interval: whether it covered the truth and its width.
    pub fn record(&mut self, covered: bool, width: f64) {
        self.total += 1;
        if covered {
            self.covered += 1;
        }
        self.width_sum += width;
    }

    /// Number of intervals recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Empirical coverage in `[0, 1]` (1 when nothing was recorded).
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.covered as f64 / self.total as f64
        }
    }

    /// Average interval width.
    #[must_use]
    pub fn mean_width(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.width_sum / self.total as f64
        }
    }
}

/// Buckets `(truth, value)` observations by the magnitude of `truth` and reports the
/// per-bucket mean, mirroring the smoothed "error versus true count" curves of
/// Figures 3, 4, 6 and 7.
#[derive(Debug, Clone)]
pub struct BucketedSeries {
    edges: Vec<f64>,
    sums: Vec<f64>,
    counts: Vec<u64>,
}

impl BucketedSeries {
    /// Creates a series with the given ascending bucket edges; values with truth below
    /// `edges[0]` land in bucket 0, above the last edge in the final bucket.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two edges are given or they are not strictly ascending.
    #[must_use]
    pub fn new(edges: Vec<f64>) -> Self {
        assert!(edges.len() >= 2, "need at least two bucket edges");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges must be strictly ascending"
        );
        let n = edges.len() - 1;
        Self {
            edges,
            sums: vec![0.0; n],
            counts: vec![0; n],
        }
    }

    /// Creates geometrically spaced bucket edges covering `[lo, hi]`.
    #[must_use]
    pub fn geometric(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(lo > 0.0 && hi > lo && buckets > 0);
        let ratio = (hi / lo).powf(1.0 / buckets as f64);
        let mut edges = Vec::with_capacity(buckets + 1);
        let mut edge = lo;
        for _ in 0..=buckets {
            edges.push(edge);
            edge *= ratio;
        }
        Self::new(edges)
    }

    /// Records one observation.
    pub fn record(&mut self, truth: f64, value: f64) {
        let n = self.counts.len();
        let mut bucket = n - 1;
        for i in 0..n {
            if truth < self.edges[i + 1] {
                bucket = i;
                break;
            }
        }
        self.sums[bucket] += value;
        self.counts[bucket] += 1;
    }

    /// Per-bucket `(lower edge, upper edge, mean value, observation count)` rows,
    /// skipping empty buckets.
    #[must_use]
    pub fn rows(&self) -> Vec<(f64, f64, f64, u64)> {
        (0..self.counts.len())
            .filter(|&i| self.counts[i] > 0)
            .map(|i| {
                (
                    self.edges[i],
                    self.edges[i + 1],
                    self.sums[i] / self.counts[i] as f64,
                    self.counts[i],
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_handles_zero_truth() {
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert!(relative_error(1.0, 0.0).is_infinite());
        assert!((relative_error(110.0, 100.0) - 0.1).abs() < 1e-12);
        assert!((relative_error(90.0, 100.0) + 0.1).abs() < 1e-12);
    }

    #[test]
    fn mean_variance_std() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-12);
        assert!((variance(&v) - 4.0).abs() < 1e-12);
        assert!((std_dev(&v) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn accumulator_computes_bias_mse_rrmse() {
        let mut acc = EstimateAccumulator::new(100.0);
        for e in [90.0, 110.0, 100.0, 100.0] {
            acc.push(e);
        }
        assert_eq!(acc.len(), 4);
        assert!((acc.mean_estimate() - 100.0).abs() < 1e-12);
        assert!(acc.relative_bias().abs() < 1e-12);
        assert!((acc.mse() - 50.0).abs() < 1e-12);
        assert!((acc.rrmse() - 50.0_f64.sqrt() / 100.0).abs() < 1e-12);
        assert!((acc.relative_mse() - 50.0 / 10_000.0).abs() < 1e-12);
        assert!((acc.empirical_variance() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn accumulator_zero_truth() {
        let mut acc = EstimateAccumulator::new(0.0);
        acc.push(0.0);
        assert_eq!(acc.rrmse(), 0.0);
        acc.push(1.0);
        assert!(acc.rrmse().is_infinite());
    }

    #[test]
    fn coverage_counter_tracks_rates_and_width() {
        let mut c = CoverageCounter::new();
        c.record(true, 10.0);
        c.record(true, 20.0);
        c.record(false, 30.0);
        c.record(true, 40.0);
        assert_eq!(c.total(), 4);
        assert!((c.coverage() - 0.75).abs() < 1e-12);
        assert!((c.mean_width() - 25.0).abs() < 1e-12);
        assert_eq!(CoverageCounter::new().coverage(), 1.0);
    }

    #[test]
    fn bucketed_series_routes_observations() {
        let mut s = BucketedSeries::new(vec![0.0, 10.0, 100.0, 1000.0]);
        s.record(5.0, 1.0);
        s.record(7.0, 3.0);
        s.record(50.0, 10.0);
        s.record(5000.0, 7.0); // beyond the last edge -> final bucket
        let rows = s.rows();
        assert_eq!(rows.len(), 3);
        assert!((rows[0].2 - 2.0).abs() < 1e-12);
        assert_eq!(rows[0].3, 2);
        assert!((rows[1].2 - 10.0).abs() < 1e-12);
        assert!((rows[2].2 - 7.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_buckets_cover_range() {
        let s = BucketedSeries::geometric(1.0, 1000.0, 3);
        assert_eq!(s.edges.len(), 4);
        assert!((s.edges[0] - 1.0).abs() < 1e-9);
        assert!((s.edges[3] - 1000.0).abs() < 1e-6);
        assert!((s.edges[1] - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn non_ascending_edges_panic() {
        let _ = BucketedSeries::new(vec![0.0, 5.0, 5.0]);
    }
}
