//! Golden regression tests for the figure experiments.
//!
//! Each test runs a figure driver at its fixed-seed test scale, renders the result —
//! both the human-readable CSV tables and a full-precision (`{:?}`-formatted, i.e.
//! round-trip exact) dump of every numeric output — and asserts byte equality with a
//! committed golden file. Estimator refactors therefore cannot silently shift the
//! paper's reproduced results: any change in a single random draw, float operation
//! order, or query routing shows up as a golden diff that must be reviewed and
//! regenerated on purpose.
//!
//! To regenerate after an *intentional* change:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test -p uss-eval --test golden_figures
//! git diff crates/eval/tests/golden/   # review the shift, then commit it
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

use uss_eval::experiments::{fig2_inclusion, fig3_subset_error, fig6_marginals};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `rendered` against the committed golden file, or rewrites the file when
/// `GOLDEN_REGEN=1` is set.
fn assert_golden(name: &str, rendered: &str) {
    let path = golden_path(name);
    if std::env::var("GOLDEN_REGEN").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run GOLDEN_REGEN=1 cargo test -p uss-eval \
             --test golden_figures to create it"
        , path.display())
    });
    assert!(
        expected == rendered,
        "{name} drifted from its golden output.\n\
         If the change is intentional, regenerate with:\n\
         GOLDEN_REGEN=1 cargo test -p uss-eval --test golden_figures\n\
         and review+commit the diff under crates/eval/tests/golden/.\n\
         --- expected ---\n{expected}\n--- actual ---\n{rendered}"
    );
}

#[test]
fn fig2_inclusion_probabilities_are_bit_stable() {
    let result = fig2_inclusion::run(&fig2_inclusion::InclusionConfig::tiny());
    let table = result.to_table(20);
    let mut out = String::new();
    writeln!(out, "# {}", table.title()).unwrap();
    out.push_str(&table.to_csv());
    writeln!(out, "# raw (full precision)").unwrap();
    writeln!(out, "mean_abs_deviation,{:?}", result.mean_abs_deviation).unwrap();
    writeln!(out, "correlation,{:?}", result.correlation).unwrap();
    writeln!(out, "reps,{}", result.reps).unwrap();
    for row in &result.rows {
        writeln!(
            out,
            "{},{},{:?},{:?}",
            row.item, row.count, row.theoretical, row.observed
        )
        .unwrap();
    }
    assert_golden("fig2_inclusion.golden", &out);
}

#[test]
fn fig3_subset_error_curves_are_bit_stable() {
    let result = fig3_subset_error::run(&fig3_subset_error::SubsetErrorConfig::tiny());
    let curve = result.curve_table("Figure 3");
    let summary = result.summary_table("Figure 3");
    let mut out = String::new();
    writeln!(out, "# {}", curve.title()).unwrap();
    out.push_str(&curve.to_csv());
    writeln!(out, "# {}", summary.title()).unwrap();
    out.push_str(&summary.to_csv());
    writeln!(out, "# raw (full precision)").unwrap();
    for r in &result.rows {
        writeln!(
            out,
            "{},{},{:?},{:?},{:?},{}",
            r.distribution,
            r.method.name(),
            r.bucket_lo,
            r.bucket_hi,
            r.mean_rrmse,
            r.n_subsets
        )
        .unwrap();
    }
    for s in &result.summaries {
        writeln!(
            out,
            "{},{},{:?},{:?}",
            s.distribution,
            s.method.name(),
            s.mean_rrmse,
            s.mean_abs_bias
        )
        .unwrap();
    }
    assert_golden("fig3_subset_error.golden", &out);
}

#[test]
fn fig6_marginals_are_bit_stable() {
    let result = fig6_marginals::run(&fig6_marginals::MarginalsConfig::tiny());
    let table = result.to_table();
    let summary = result.summary_table();
    let mut out = String::new();
    writeln!(out, "# {}", table.title()).unwrap();
    out.push_str(&table.to_csv());
    writeln!(out, "# {}", summary.title()).unwrap();
    out.push_str(&summary.to_csv());
    writeln!(out, "# raw (full precision)").unwrap();
    writeln!(out, "distinct_tuples,{}", result.distinct_tuples).unwrap();
    for r in &result.rows {
        writeln!(
            out,
            "{},{},{:?},{:?},{:?},{}",
            r.arity, r.method, r.bucket_lo, r.bucket_hi, r.mean_relative_mse, r.n_queries
        )
        .unwrap();
    }
    for (arity, method, mse) in &result.overall {
        writeln!(out, "{arity},{method},{mse:?}").unwrap();
    }
    assert_golden("fig6_marginals.golden", &out);
}
