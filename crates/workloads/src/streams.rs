//! Stream orderings: how the disaggregated rows implied by a per-item count vector are
//! arranged in time.
//!
//! The order matters a great deal (section 6.3 of the paper): Deterministic Space
//! Saving is accurate on exchangeable (randomly permuted) streams but fails completely
//! on streams whose item arrival rates drift — partially sorted data, partitioned
//! data processed partition by partition, periodic bursts, or all-distinct rows. This
//! module generates all of the orderings used in the paper's experiments. Item `i`
//! (0-based) occurs exactly `counts[i]` times in every ordering; only the positions
//! differ.

use rand::seq::SliceRandom;
use rand::Rng;

/// Expands a count vector into rows in item order: all of item 0, then item 1, ...
/// (i.e. sorted by item index, which for grid-generated counts means sorted ascending
/// by frequency).
#[must_use]
pub fn rows_in_item_order(counts: &[u64]) -> Vec<u64> {
    let total: u64 = counts.iter().sum();
    let mut rows = Vec::with_capacity(total as usize);
    for (item, &count) in counts.iter().enumerate() {
        rows.extend(std::iter::repeat_n(item as u64, count as usize));
    }
    rows
}

/// A randomly permuted (exchangeable) stream: the i.i.d. setting of the paper's
/// theorems, by de Finetti's argument.
pub fn shuffled_stream<R: Rng + ?Sized>(counts: &[u64], rng: &mut R) -> Vec<u64> {
    let mut rows = rows_in_item_order(counts);
    rows.shuffle(rng);
    rows
}

/// A stream sorted by item frequency. `ascending = true` puts the least frequent items
/// first (the worst case for Unbiased Space Saving studied in Figures 8–10);
/// `ascending = false` is the optimally favourable order where every frequent item is
/// seen first and retained deterministically.
#[must_use]
pub fn sorted_stream(counts: &[u64], ascending: bool) -> Vec<u64> {
    let mut order: Vec<usize> = (0..counts.len()).collect();
    if ascending {
        order.sort_by_key(|&i| counts[i]);
    } else {
        order.sort_by_key(|&i| std::cmp::Reverse(counts[i]));
    }
    let total: u64 = counts.iter().sum();
    let mut rows = Vec::with_capacity(total as usize);
    for i in order {
        rows.extend(std::iter::repeat_n(i as u64, counts[i] as usize));
    }
    rows
}

/// The two-phase pathological stream of Figure 7: the first half draws from one item
/// population, the second half from a disjoint population (item ids are offset by
/// `first.len()`), and each half is internally shuffled. This models data partitioned
/// by some key and processed partition by partition.
pub fn two_phase_stream<R: Rng + ?Sized>(
    first_half_counts: &[u64],
    second_half_counts: &[u64],
    rng: &mut R,
) -> Vec<u64> {
    let mut rows = shuffled_stream(first_half_counts, rng);
    let offset = first_half_counts.len() as u64;
    let mut second = shuffled_stream(second_half_counts, rng);
    for item in &mut second {
        *item += offset;
    }
    rows.extend(second);
    rows
}

/// A stream in which every row is a distinct item — the most extreme pathological
/// case: Deterministic Space Saving degenerates to "the last m rows".
#[must_use]
pub fn all_unique_stream(rows: usize) -> Vec<u64> {
    (0..rows as u64).collect()
}

/// A periodic-burst stream: `n_bursts` bursts of `burst_item` (each of length
/// `burst_len`) are interleaved into an otherwise shuffled background stream at evenly
/// spaced positions. Models an item whose arrival rate spikes periodically and drops
/// below the guaranteed-retention threshold in between.
pub fn bursty_stream<R: Rng + ?Sized>(
    background_counts: &[u64],
    burst_item: u64,
    n_bursts: usize,
    burst_len: usize,
    rng: &mut R,
) -> Vec<u64> {
    let background = shuffled_stream(background_counts, rng);
    if n_bursts == 0 || burst_len == 0 {
        return background;
    }
    let mut rows = Vec::with_capacity(background.len() + n_bursts * burst_len);
    let segment = background.len() / n_bursts.max(1);
    let mut cursor = 0;
    for b in 0..n_bursts {
        let end = if b + 1 == n_bursts {
            background.len()
        } else {
            (b + 1) * segment
        };
        rows.extend_from_slice(&background[cursor..end]);
        rows.extend(std::iter::repeat_n(burst_item, burst_len));
        cursor = end;
    }
    rows
}

/// Splits `n_items` item indices into `n_epochs` contiguous ranges of (nearly) equal
/// size, used by the sorted-stream experiments (Figures 8–10) to query per-epoch
/// subset sums.
#[must_use]
pub fn epoch_ranges(n_items: usize, n_epochs: usize) -> Vec<std::ops::Range<u64>> {
    assert!(n_epochs > 0, "need at least one epoch");
    let base = n_items / n_epochs;
    let remainder = n_items % n_epochs;
    let mut ranges = Vec::with_capacity(n_epochs);
    let mut start = 0u64;
    for e in 0..n_epochs {
        let len = base + usize::from(e < remainder);
        ranges.push(start..start + len as u64);
        start += len as u64;
    }
    ranges
}

/// Draws `n_subsets` random item subsets of the given size (without replacement within
/// a subset), used for the random filter-condition queries of Figures 3–5.
pub fn random_subsets<R: Rng + ?Sized>(
    n_items: usize,
    subset_size: usize,
    n_subsets: usize,
    rng: &mut R,
) -> Vec<Vec<u64>> {
    assert!(subset_size <= n_items, "subset larger than the population");
    let mut all: Vec<u64> = (0..n_items as u64).collect();
    (0..n_subsets)
        .map(|_| {
            all.shuffle(rng);
            let mut subset = all[..subset_size].to_vec();
            subset.sort_unstable();
            subset
        })
        .collect()
}

/// True subset sum for a subset of item indices against a count vector.
#[must_use]
pub fn true_subset_sum(counts: &[u64], subset: &[u64]) -> u64 {
    subset
        .iter()
        .map(|&i| counts.get(i as usize).copied().unwrap_or(0))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn histogram(rows: &[u64]) -> HashMap<u64, u64> {
        let mut h = HashMap::new();
        for &r in rows {
            *h.entry(r).or_insert(0) += 1;
        }
        h
    }

    #[test]
    fn item_order_expansion_matches_counts() {
        let counts = vec![2, 0, 3, 1];
        let rows = rows_in_item_order(&counts);
        assert_eq!(rows, vec![0, 0, 2, 2, 2, 3]);
    }

    #[test]
    fn shuffling_preserves_the_multiset() {
        let counts = vec![5, 1, 7, 0, 2];
        let mut rng = StdRng::seed_from_u64(1);
        let rows = shuffled_stream(&counts, &mut rng);
        let h = histogram(&rows);
        for (item, &count) in counts.iter().enumerate() {
            assert_eq!(h.get(&(item as u64)).copied().unwrap_or(0), count);
        }
        assert_eq!(rows.len(), 15);
    }

    #[test]
    fn sorted_ascending_puts_rare_items_first() {
        let counts = vec![10, 1, 5];
        let rows = sorted_stream(&counts, true);
        assert_eq!(rows[0], 1, "the rarest item must come first");
        assert_eq!(*rows.last().unwrap(), 0, "the most frequent item must come last");
        assert_eq!(histogram(&rows), histogram(&rows_in_item_order(&counts)));
    }

    #[test]
    fn sorted_descending_puts_frequent_items_first() {
        let counts = vec![10, 1, 5];
        let rows = sorted_stream(&counts, false);
        assert_eq!(rows[0], 0);
        assert_eq!(*rows.last().unwrap(), 1);
    }

    #[test]
    fn two_phase_stream_uses_disjoint_item_ranges() {
        let a = vec![3, 3];
        let b = vec![2, 2];
        let mut rng = StdRng::seed_from_u64(2);
        let rows = two_phase_stream(&a, &b, &mut rng);
        assert_eq!(rows.len(), 10);
        assert!(rows[..6].iter().all(|&i| i < 2));
        assert!(rows[6..].iter().all(|&i| (2..4).contains(&i)));
    }

    #[test]
    fn all_unique_stream_has_no_repeats() {
        let rows = all_unique_stream(1000);
        let h = histogram(&rows);
        assert_eq!(h.len(), 1000);
        assert!(h.values().all(|&c| c == 1));
    }

    #[test]
    fn bursty_stream_contains_all_bursts_and_background() {
        let counts = vec![4, 4, 4];
        let mut rng = StdRng::seed_from_u64(3);
        let rows = bursty_stream(&counts, 99, 3, 5, &mut rng);
        let h = histogram(&rows);
        assert_eq!(h[&99], 15);
        assert_eq!(rows.len(), 12 + 15);
        for item in 0..3u64 {
            assert_eq!(h[&item], 4);
        }
    }

    #[test]
    fn bursty_stream_with_zero_bursts_is_just_background() {
        let counts = vec![2, 2];
        let mut rng = StdRng::seed_from_u64(4);
        let rows = bursty_stream(&counts, 99, 0, 5, &mut rng);
        assert_eq!(rows.len(), 4);
        assert!(!rows.contains(&99));
    }

    #[test]
    fn epoch_ranges_cover_everything_without_overlap() {
        let ranges = epoch_ranges(1003, 10);
        assert_eq!(ranges.len(), 10);
        assert_eq!(ranges[0].start, 0);
        assert_eq!(ranges.last().unwrap().end, 1003);
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        let sizes: Vec<u64> = ranges.iter().map(|r| r.end - r.start).collect();
        assert!(sizes.iter().all(|&s| s == 100 || s == 101));
    }

    #[test]
    fn random_subsets_have_requested_size_and_no_duplicates() {
        let mut rng = StdRng::seed_from_u64(5);
        let subsets = random_subsets(500, 100, 20, &mut rng);
        assert_eq!(subsets.len(), 20);
        for s in &subsets {
            assert_eq!(s.len(), 100);
            let mut dedup = s.clone();
            dedup.dedup();
            assert_eq!(dedup.len(), 100, "subset contains duplicates");
            assert!(s.iter().all(|&i| i < 500));
        }
    }

    #[test]
    fn true_subset_sum_sums_the_right_items() {
        let counts = vec![10, 20, 30, 40];
        assert_eq!(true_subset_sum(&counts, &[0, 3]), 50);
        assert_eq!(true_subset_sum(&counts, &[]), 0);
        assert_eq!(true_subset_sum(&counts, &[99]), 0);
    }

    #[test]
    #[should_panic(expected = "at least one epoch")]
    fn zero_epochs_panics() {
        let _ = epoch_ranges(10, 0);
    }
}
