//! Synthetic ad-impression streams standing in for the Criteo click dataset.
//!
//! The paper's real-data experiments (Figures 5–6) use a 45-million-impression sample
//! of the Criteo Kaggle display-advertising dataset, keeping 9 categorical features
//! and measuring how well the sketches estimate 1-way and 2-way marginal counts (the
//! historical-count features used in click prediction). The dataset is not
//! redistributable, so this module generates a synthetic impression stream with the
//! properties the experiments actually exercise:
//!
//! * 9 categorical features with heavy-tailed (Zipf) value distributions and widely
//!   varying cardinalities (tens to hundreds of thousands of values);
//! * correlations between features (e.g. ad → advertiser is a deterministic mapping,
//!   site → vertical is many-to-one), so multi-way marginals are not independent
//!   products;
//! * a click label driven by a logistic model with per-advertiser and per-site
//!   effects, so click-through-rate style queries are meaningful.
//!
//! The estimators under test only ever see hashed feature tuples and row multiplicity,
//! so matching cardinality and skew profiles exercises identical code paths to the
//! real data (see DESIGN.md, "Substitutions").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::distributions::ZipfSampler;

/// Number of categorical features, matching the 9 used from the Criteo data.
pub const NUM_FEATURES: usize = 9;

/// Human-readable names for the synthetic features.
pub const FEATURE_NAMES: [&str; NUM_FEATURES] = [
    "advertiser",
    "ad",
    "campaign",
    "site",
    "vertical",
    "device",
    "country",
    "user_segment",
    "ad_format",
];

/// One synthetic ad impression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Impression {
    /// Categorical feature values, indexed as in [`FEATURE_NAMES`].
    pub features: [u32; NUM_FEATURES],
    /// Whether the impression was clicked.
    pub clicked: bool,
}

impl Impression {
    /// Hashes the values of the selected features into a 64-bit item identifier, the
    /// unit of analysis for marginal-count queries. Feature indices must be strictly
    /// increasing.
    #[must_use]
    pub fn marginal_key(&self, feature_indices: &[usize]) -> u64 {
        let mut key = 0xcbf2_9ce4_8422_2325_u64;
        for &f in feature_indices {
            let v = u64::from(self.features[f]) | ((f as u64) << 32);
            key = splitmix(key ^ v);
        }
        key
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Configuration of the synthetic impression stream.
#[derive(Debug, Clone, Copy)]
pub struct AdClickConfig {
    /// Number of impressions to generate.
    pub rows: usize,
    /// Number of distinct advertisers.
    pub advertisers: usize,
    /// Number of distinct ads (each ad belongs to exactly one advertiser).
    pub ads: usize,
    /// Number of distinct campaigns (each campaign belongs to exactly one advertiser).
    pub campaigns: usize,
    /// Number of distinct publisher sites (each site belongs to one vertical).
    pub sites: usize,
    /// Number of site verticals.
    pub verticals: usize,
    /// Number of device types.
    pub devices: usize,
    /// Number of countries.
    pub countries: usize,
    /// Number of user segments.
    pub user_segments: usize,
    /// Number of ad formats.
    pub ad_formats: usize,
    /// Zipf exponent controlling the skew of every categorical marginal.
    pub skew: f64,
    /// Base click-through rate.
    pub base_ctr: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AdClickConfig {
    fn default() -> Self {
        Self {
            rows: 100_000,
            advertisers: 2_000,
            ads: 50_000,
            campaigns: 10_000,
            sites: 5_000,
            verticals: 25,
            devices: 4,
            countries: 40,
            user_segments: 1_000,
            ad_formats: 8,
            skew: 1.05,
            base_ctr: 0.03,
            seed: 0xAD5EED,
        }
    }
}

/// Generator of synthetic ad impressions.
#[derive(Debug, Clone)]
pub struct AdClickGenerator {
    config: AdClickConfig,
    ad_sampler: ZipfSampler,
    site_sampler: ZipfSampler,
    campaign_sampler: ZipfSampler,
    segment_sampler: ZipfSampler,
    country_sampler: ZipfSampler,
    /// ad -> advertiser mapping (deterministic, skewed toward low advertiser ids).
    ad_to_advertiser: Vec<u32>,
    /// site -> vertical mapping.
    site_to_vertical: Vec<u32>,
    /// Per-advertiser additive CTR effect.
    advertiser_effect: Vec<f64>,
    /// Per-site additive CTR effect.
    site_effect: Vec<f64>,
    rng: StdRng,
    generated: usize,
}

impl AdClickGenerator {
    /// Creates a generator from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if any cardinality is zero or `base_ctr` is outside `(0, 1)`.
    #[must_use]
    pub fn new(config: AdClickConfig) -> Self {
        assert!(config.rows > 0, "rows must be positive");
        assert!(
            config.advertisers > 0
                && config.ads > 0
                && config.campaigns > 0
                && config.sites > 0
                && config.verticals > 0
                && config.devices > 0
                && config.countries > 0
                && config.user_segments > 0
                && config.ad_formats > 0,
            "all cardinalities must be positive"
        );
        assert!(
            config.base_ctr > 0.0 && config.base_ctr < 1.0,
            "base_ctr must be in (0, 1)"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let advertiser_zipf = ZipfSampler::new(config.advertisers, config.skew);
        let vertical_zipf = ZipfSampler::new(config.verticals, config.skew);
        let ad_to_advertiser = (0..config.ads)
            .map(|_| advertiser_zipf.sample(&mut rng) as u32)
            .collect();
        let site_to_vertical = (0..config.sites)
            .map(|_| vertical_zipf.sample(&mut rng) as u32)
            .collect();
        let advertiser_effect = (0..config.advertisers)
            .map(|_| rng.gen_range(-0.5..0.5))
            .collect();
        let site_effect = (0..config.sites).map(|_| rng.gen_range(-0.5..0.5)).collect();
        Self {
            ad_sampler: ZipfSampler::new(config.ads, config.skew),
            site_sampler: ZipfSampler::new(config.sites, config.skew),
            campaign_sampler: ZipfSampler::new(config.campaigns, config.skew),
            segment_sampler: ZipfSampler::new(config.user_segments, config.skew),
            country_sampler: ZipfSampler::new(config.countries, 0.8),
            ad_to_advertiser,
            site_to_vertical,
            advertiser_effect,
            site_effect,
            rng,
            config,
            generated: 0,
        }
    }

    /// The configuration this generator was built from.
    #[must_use]
    pub fn config(&self) -> &AdClickConfig {
        &self.config
    }

    fn next_impression(&mut self) -> Impression {
        let ad = self.ad_sampler.sample(&mut self.rng) as u32;
        let advertiser = self.ad_to_advertiser[ad as usize];
        let campaign = self.campaign_sampler.sample(&mut self.rng) as u32;
        let site = self.site_sampler.sample(&mut self.rng) as u32;
        let vertical = self.site_to_vertical[site as usize];
        let device = self.rng.gen_range(0..self.config.devices) as u32;
        let country = self.country_sampler.sample(&mut self.rng) as u32;
        let segment = self.segment_sampler.sample(&mut self.rng) as u32;
        let format = self.rng.gen_range(0..self.config.ad_formats) as u32;

        // Logistic CTR model with advertiser and site effects.
        let logit = (self.config.base_ctr / (1.0 - self.config.base_ctr)).ln()
            + self.advertiser_effect[advertiser as usize]
            + self.site_effect[site as usize];
        let ctr = 1.0 / (1.0 + (-logit).exp());
        let clicked = self.rng.gen_bool(ctr.clamp(0.0, 1.0));

        Impression {
            features: [
                advertiser, ad, campaign, site, vertical, device, country, segment, format,
            ],
            clicked,
        }
    }

    /// Generates the full stream into a vector.
    #[must_use]
    pub fn generate(mut self) -> Vec<Impression> {
        let rows = self.config.rows;
        (0..rows).map(|_| self.next_impression()).collect()
    }
}

impl Iterator for AdClickGenerator {
    type Item = Impression;

    fn next(&mut self) -> Option<Impression> {
        if self.generated >= self.config.rows {
            return None;
        }
        self.generated += 1;
        Some(self.next_impression())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.config.rows - self.generated;
        (remaining, Some(remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    fn small_config() -> AdClickConfig {
        AdClickConfig {
            rows: 20_000,
            advertisers: 100,
            ads: 1_000,
            campaigns: 300,
            sites: 200,
            verticals: 10,
            devices: 3,
            countries: 12,
            user_segments: 50,
            ad_formats: 4,
            skew: 1.05,
            base_ctr: 0.05,
            seed: 42,
        }
    }

    #[test]
    fn generates_the_requested_number_of_rows() {
        let rows = AdClickGenerator::new(small_config()).generate();
        assert_eq!(rows.len(), 20_000);
    }

    #[test]
    fn iterator_and_generate_agree_on_length_and_determinism() {
        let a: Vec<Impression> = AdClickGenerator::new(small_config()).collect();
        let b = AdClickGenerator::new(small_config()).generate();
        assert_eq!(a, b, "same seed must give the same stream");
    }

    #[test]
    fn feature_values_respect_cardinalities() {
        let cfg = small_config();
        let rows = AdClickGenerator::new(cfg).generate();
        let limits = [
            cfg.advertisers,
            cfg.ads,
            cfg.campaigns,
            cfg.sites,
            cfg.verticals,
            cfg.devices,
            cfg.countries,
            cfg.user_segments,
            cfg.ad_formats,
        ];
        for imp in &rows {
            for (f, &v) in imp.features.iter().enumerate() {
                assert!((v as usize) < limits[f], "feature {f} value {v} out of range");
            }
        }
    }

    #[test]
    fn ad_to_advertiser_mapping_is_consistent() {
        let rows = AdClickGenerator::new(small_config()).generate();
        let mut mapping: HashMap<u32, u32> = HashMap::new();
        for imp in &rows {
            let ad = imp.features[1];
            let advertiser = imp.features[0];
            if let Some(&prev) = mapping.get(&ad) {
                assert_eq!(prev, advertiser, "ad {ad} maps to two advertisers");
            } else {
                mapping.insert(ad, advertiser);
            }
        }
    }

    #[test]
    fn site_to_vertical_mapping_is_consistent() {
        let rows = AdClickGenerator::new(small_config()).generate();
        let mut mapping: HashMap<u32, u32> = HashMap::new();
        for imp in &rows {
            let site = imp.features[3];
            let vertical = imp.features[4];
            assert_eq!(*mapping.entry(site).or_insert(vertical), vertical);
        }
    }

    #[test]
    fn marginals_are_skewed() {
        let rows = AdClickGenerator::new(small_config()).generate();
        let mut ad_counts: HashMap<u32, u64> = HashMap::new();
        for imp in &rows {
            *ad_counts.entry(imp.features[1]).or_insert(0) += 1;
        }
        let mut counts: Vec<u64> = ad_counts.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top_share: u64 = counts.iter().take(counts.len() / 20 + 1).sum();
        let total: u64 = counts.iter().sum();
        assert!(
            top_share as f64 / total as f64 > 0.15,
            "top 5% of ads should carry a disproportionate share (got {:.3})",
            top_share as f64 / total as f64
        );
    }

    #[test]
    fn overall_ctr_is_near_the_configured_base_rate() {
        let cfg = small_config();
        let rows = AdClickGenerator::new(cfg).generate();
        let clicks = rows.iter().filter(|r| r.clicked).count();
        let ctr = clicks as f64 / rows.len() as f64;
        assert!(
            ctr > cfg.base_ctr / 3.0 && ctr < cfg.base_ctr * 3.0,
            "ctr {ctr} too far from base {}",
            cfg.base_ctr
        );
    }

    #[test]
    fn marginal_key_distinguishes_feature_sets() {
        let imp = Impression {
            features: [1, 2, 3, 4, 5, 6, 7, 8, 9],
            clicked: false,
        };
        let k1 = imp.marginal_key(&[0]);
        let k2 = imp.marginal_key(&[1]);
        let k12 = imp.marginal_key(&[0, 1]);
        assert_ne!(k1, k2);
        assert_ne!(k1, k12);
        // Same features, same values -> same key.
        let other = Impression {
            features: [1, 2, 99, 99, 99, 99, 99, 99, 99],
            clicked: true,
        };
        assert_eq!(imp.marginal_key(&[0, 1]), other.marginal_key(&[0, 1]));
    }

    #[test]
    fn distinct_marginal_keys_scale_with_feature_cardinality() {
        let rows = AdClickGenerator::new(small_config()).generate();
        let devices: HashSet<u64> = rows.iter().map(|r| r.marginal_key(&[5])).collect();
        let ads: HashSet<u64> = rows.iter().map(|r| r.marginal_key(&[1])).collect();
        assert!(devices.len() <= 3);
        assert!(ads.len() > 300);
    }

    #[test]
    #[should_panic(expected = "cardinalities")]
    fn zero_cardinality_panics() {
        let _ = AdClickGenerator::new(AdClickConfig {
            devices: 0,
            ..small_config()
        });
    }
}
