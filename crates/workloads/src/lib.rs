//! Workload generators for the Unbiased Space Saving evaluation.
//!
//! Three layers:
//!
//! * [`distributions`] — per-item frequency distributions (discretized Weibull,
//!   geometric, Zipf) generated on a reproducible quantile grid, exactly as in
//!   section 7 of the paper.
//! * [`streams`] — orderings of the disaggregated rows implied by a count vector:
//!   random permutation (the exchangeable / i.i.d. setting), frequency-sorted
//!   (pathological for Unbiased Space Saving), two-phase partitioned (pathological for
//!   Deterministic Space Saving), bursty, and all-unique; plus epoch / random-subset
//!   query helpers.
//! * [`adclick`] — a synthetic 9-feature ad-impression stream standing in for the
//!   Criteo dataset used in Figures 5–6 (see DESIGN.md for the substitution
//!   rationale).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adclick;
pub mod distributions;
pub mod streams;

pub use adclick::{AdClickConfig, AdClickGenerator, Impression, FEATURE_NAMES, NUM_FEATURES};
pub use distributions::{summarize_counts, CountSummary, FrequencyDistribution, ZipfSampler};
pub use streams::{
    all_unique_stream, bursty_stream, epoch_ranges, random_subsets, rows_in_item_order,
    shuffled_stream, sorted_stream, true_subset_sum, two_phase_stream,
};
