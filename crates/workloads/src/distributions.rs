//! Item-frequency distributions used by the paper's experiments (section 7).
//!
//! The paper draws per-item counts from a *discretized Weibull* distribution — a
//! generalisation of the geometric distribution whose tail weight is tuned by the
//! shape parameter — using the inverse-CDF method on a regular grid of quantiles so
//! runs are reproducible. The three synthetic configurations are
//! `Weibull(5·10⁵, 0.32)`, `Geometric(0.03)` and `Weibull(5·10⁵, 0.15)` (increasing
//! skew). A Zipf generator is also provided for the ad-impression simulator.

use rand::Rng;

/// Inverse CDF of the (continuous) Weibull distribution with the given `scale` (λ) and
/// `shape` (k): `F⁻¹(u) = λ · (−ln(1−u))^{1/k}`.
///
/// # Panics
///
/// Panics if `u` is outside `[0, 1)` or the parameters are not positive.
#[must_use]
pub fn weibull_inverse_cdf(u: f64, scale: f64, shape: f64) -> f64 {
    assert!((0.0..1.0).contains(&u), "u must be in [0, 1)");
    assert!(scale > 0.0 && shape > 0.0, "parameters must be positive");
    scale * (-(1.0 - u).ln()).powf(1.0 / shape)
}

/// Inverse CDF of the geometric distribution (number of trials, support `1, 2, ...`)
/// with success probability `p`.
///
/// # Panics
///
/// Panics if `u` is outside `[0, 1)` or `p` is not in `(0, 1)`.
#[must_use]
pub fn geometric_inverse_cdf(u: f64, p: f64) -> u64 {
    assert!((0.0..1.0).contains(&u), "u must be in [0, 1)");
    assert!(p > 0.0 && p < 1.0, "p must be in (0, 1)");
    ((1.0 - u).ln() / (1.0 - p).ln()).ceil().max(1.0) as u64
}

/// The three synthetic frequency distributions evaluated in the paper, plus Zipf.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FrequencyDistribution {
    /// Rounded Weibull with the given scale (λ) and shape (k). Smaller shapes are more
    /// skewed; the paper uses shapes 0.32 and 0.15 with scale 5·10⁵.
    Weibull {
        /// Scale parameter λ.
        scale: f64,
        /// Shape parameter k.
        shape: f64,
    },
    /// Geometric with success probability `p` (the paper uses `p = 0.03`).
    Geometric {
        /// Success probability.
        p: f64,
    },
    /// Zipf over ranks `1..=n` with the given exponent, scaled so the most frequent
    /// item has approximately `max_count` occurrences.
    Zipf {
        /// Tail exponent (≥ 0); larger is more skewed.
        exponent: f64,
        /// Count of the most frequent item.
        max_count: u64,
    },
}

impl FrequencyDistribution {
    /// The paper's `Weibull(5·10⁵, 0.32)` configuration (moderate skew).
    #[must_use]
    pub fn paper_weibull_moderate() -> Self {
        Self::Weibull {
            scale: 5.0e5,
            shape: 0.32,
        }
    }

    /// The paper's `Geometric(0.03)` configuration.
    #[must_use]
    pub fn paper_geometric() -> Self {
        Self::Geometric { p: 0.03 }
    }

    /// The paper's `Weibull(5·10⁵, 0.15)` configuration (heavy skew; standard
    /// deviation roughly 30× the mean).
    #[must_use]
    pub fn paper_weibull_heavy() -> Self {
        Self::Weibull {
            scale: 5.0e5,
            shape: 0.15,
        }
    }

    /// Draws a single count at quantile `u ∈ [0, 1)`. Counts are at least 1 so every
    /// item occurs in the stream.
    #[must_use]
    pub fn count_at_quantile(&self, u: f64, n_items: usize, rank: usize) -> u64 {
        match *self {
            Self::Weibull { scale, shape } => {
                weibull_inverse_cdf(u, scale, shape).round().max(1.0) as u64
            }
            Self::Geometric { p } => geometric_inverse_cdf(u, p),
            Self::Zipf {
                exponent,
                max_count,
            } => {
                // Quantile is ignored; Zipf counts are deterministic in the rank.
                // `rank` 0 is the least frequent item, so its Zipf rank is `n_items`
                // and the most frequent item (rank `n_items - 1`) has Zipf rank 1.
                let _ = u;
                let zipf_rank = (n_items - rank) as f64;
                ((max_count as f64) / zipf_rank.powf(exponent))
                    .round()
                    .max(1.0) as u64
            }
        }
    }

    /// Generates `n_items` per-item counts with the paper's reproducible grid method:
    /// quantiles `u_i = (i + 0.5)/n` on a regular grid rather than random draws.
    #[must_use]
    pub fn grid_counts(&self, n_items: usize) -> Vec<u64> {
        (0..n_items)
            .map(|i| {
                let u = (i as f64 + 0.5) / n_items as f64;
                self.count_at_quantile(u, n_items, i)
            })
            .collect()
    }

    /// Generates `n_items` per-item counts with independent random quantiles.
    pub fn random_counts<R: Rng + ?Sized>(&self, n_items: usize, rng: &mut R) -> Vec<u64> {
        (0..n_items)
            .map(|i| {
                let u: f64 = rng.gen_range(0.0..1.0);
                self.count_at_quantile(u, n_items, i)
            })
            .collect()
    }
}

/// Simple Zipf ranks: probability of rank `r` (1-based) proportional to `1/r^s`,
/// normalised over `1..=n`. Used for categorical feature values in the ad-click
/// simulator.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `n` ranks with exponent `s ≥ 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is negative / non-finite.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "n must be positive");
        assert!(s.is_finite() && s >= 0.0, "exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 1..=n {
            acc += 1.0 / (r as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Number of ranks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler is empty (never true; `new` requires `n > 0`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a 0-based rank (0 is the most frequent).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("finite"))
        {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability of the 0-based rank `r`.
    #[must_use]
    pub fn probability(&self, r: usize) -> f64 {
        if r >= self.cdf.len() {
            return 0.0;
        }
        if r == 0 {
            self.cdf[0]
        } else {
            self.cdf[r] - self.cdf[r - 1]
        }
    }
}

/// Summary statistics of a count vector, used to report workload skew.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CountSummary {
    /// Number of items.
    pub items: usize,
    /// Total of all counts (the number of stream rows).
    pub total: u64,
    /// Largest count.
    pub max: u64,
    /// Mean count.
    pub mean: f64,
    /// Standard deviation of the counts.
    pub std_dev: f64,
}

/// Computes summary statistics for a count vector.
#[must_use]
pub fn summarize_counts(counts: &[u64]) -> CountSummary {
    let items = counts.len();
    let total: u64 = counts.iter().sum();
    let max = counts.iter().copied().max().unwrap_or(0);
    let mean = if items == 0 {
        0.0
    } else {
        total as f64 / items as f64
    };
    let var = if items == 0 {
        0.0
    } else {
        counts
            .iter()
            .map(|&c| (c as f64 - mean).powi(2))
            .sum::<f64>()
            / items as f64
    };
    CountSummary {
        items,
        total,
        max,
        mean,
        std_dev: var.sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weibull_inverse_cdf_is_monotone() {
        let mut prev = 0.0;
        for i in 1..100 {
            let u = i as f64 / 100.0;
            let v = weibull_inverse_cdf(u, 1000.0, 0.5);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn weibull_median_matches_closed_form() {
        // Median of Weibull(λ, k) is λ (ln 2)^{1/k}.
        let scale = 500.0;
        let shape = 1.5;
        let median = weibull_inverse_cdf(0.5, scale, shape);
        let expected = scale * std::f64::consts::LN_2.powf(1.0 / shape);
        assert!((median - expected).abs() < 1e-9);
    }

    #[test]
    fn geometric_inverse_cdf_matches_distribution() {
        // F(k) = 1 - (1-p)^k, so F^{-1}(F(k)) = k.
        let p: f64 = 0.2;
        for k in 1..20u64 {
            let u = 1.0 - (1.0 - p).powi(k as i32) - 1e-12;
            assert_eq!(geometric_inverse_cdf(u, p), k);
        }
    }

    #[test]
    fn grid_counts_are_reproducible_and_positive() {
        let d = FrequencyDistribution::paper_weibull_heavy();
        let a = d.grid_counts(1000);
        let b = d.grid_counts(1000);
        assert_eq!(a, b);
        assert!(a.iter().all(|&c| c >= 1));
    }

    #[test]
    fn heavy_weibull_is_more_skewed_than_moderate() {
        let heavy = summarize_counts(&FrequencyDistribution::paper_weibull_heavy().grid_counts(1000));
        let moderate =
            summarize_counts(&FrequencyDistribution::paper_weibull_moderate().grid_counts(1000));
        let heavy_cv = heavy.std_dev / heavy.mean;
        let moderate_cv = moderate.std_dev / moderate.mean;
        assert!(
            heavy_cv > moderate_cv,
            "heavy skew must exceed moderate: {heavy_cv} vs {moderate_cv}"
        );
        // The paper notes the heavy configuration has std-dev ≈ 30× the mean over its
        // infinite support; on a 1000-point grid the ratio is smaller but still large.
        assert!(heavy_cv > 5.0, "coefficient of variation {heavy_cv}");
    }

    #[test]
    fn geometric_counts_have_expected_mean() {
        let d = FrequencyDistribution::paper_geometric();
        let counts = d.grid_counts(10_000);
        let s = summarize_counts(&counts);
        // Mean of Geometric(p) (number of trials) is 1/p ≈ 33.3.
        assert!((s.mean - 1.0 / 0.03).abs() < 2.0, "mean {}", s.mean);
    }

    #[test]
    fn zipf_counts_are_monotone_in_rank() {
        let d = FrequencyDistribution::Zipf {
            exponent: 1.1,
            max_count: 10_000,
        };
        let counts = d.grid_counts(500);
        // grid_counts indexes rank 0 as the least frequent by construction.
        for w in counts.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(*counts.last().unwrap(), 10_000);
    }

    #[test]
    fn random_counts_use_the_rng() {
        let d = FrequencyDistribution::paper_geometric();
        let mut rng1 = StdRng::seed_from_u64(1);
        let mut rng2 = StdRng::seed_from_u64(1);
        let mut rng3 = StdRng::seed_from_u64(2);
        assert_eq!(d.random_counts(100, &mut rng1), d.random_counts(100, &mut rng2));
        assert_ne!(d.random_counts(100, &mut rng1), d.random_counts(100, &mut rng3));
    }

    #[test]
    fn zipf_sampler_probabilities_sum_to_one_and_decay() {
        let z = ZipfSampler::new(100, 1.0);
        let total: f64 = (0..100).map(|r| z.probability(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(z.probability(0) > z.probability(1));
        assert!(z.probability(1) > z.probability(50));
        assert_eq!(z.probability(500), 0.0);
        assert_eq!(z.len(), 100);
        assert!(!z.is_empty());
    }

    #[test]
    fn zipf_sampler_empirical_frequencies_match() {
        let z = ZipfSampler::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u32; 10];
        let reps = 100_000;
        for _ in 0..reps {
            counts[z.sample(&mut rng)] += 1;
        }
        for (r, &count) in counts.iter().enumerate() {
            let emp = count as f64 / reps as f64;
            assert!(
                (emp - z.probability(r)).abs() < 0.01,
                "rank {r}: {emp} vs {}",
                z.probability(r)
            );
        }
    }

    #[test]
    fn summary_handles_empty_input() {
        let s = summarize_counts(&[]);
        assert_eq!(s.items, 0);
        assert_eq!(s.total, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    #[should_panic(expected = "u must be")]
    fn invalid_quantile_panics() {
        let _ = weibull_inverse_cdf(1.0, 10.0, 1.0);
    }
}
