//! Property-based tests for the workload generators: every stream ordering must be a
//! permutation of the multiset implied by the count vector, and the query helpers must
//! partition the item space correctly.

use proptest::collection::vec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

use uss_workloads::{
    epoch_ranges, random_subsets, rows_in_item_order, shuffled_stream, sorted_stream,
    true_subset_sum, two_phase_stream, FrequencyDistribution,
};

fn histogram(rows: &[u64]) -> HashMap<u64, u64> {
    let mut h = HashMap::new();
    for &r in rows {
        *h.entry(r).or_insert(0) += 1;
    }
    h
}

fn expected(counts: &[u64]) -> HashMap<u64, u64> {
    counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(i, &c)| (i as u64, c))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every ordering is a permutation of the same multiset of rows.
    #[test]
    fn orderings_preserve_the_multiset(counts in vec(0u64..20, 1..80), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let want = expected(&counts);
        prop_assert_eq!(histogram(&rows_in_item_order(&counts)), want.clone());
        prop_assert_eq!(histogram(&shuffled_stream(&counts, &mut rng)), want.clone());
        prop_assert_eq!(histogram(&sorted_stream(&counts, true)), want.clone());
        prop_assert_eq!(histogram(&sorted_stream(&counts, false)), want);
    }

    /// The two-phase stream concatenates the two halves on disjoint id ranges and
    /// preserves both multisets.
    #[test]
    fn two_phase_preserves_both_halves(
        a in vec(0u64..15, 1..40),
        b in vec(0u64..15, 1..40),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows = two_phase_stream(&a, &b, &mut rng);
        let first_len: u64 = a.iter().sum();
        let h = histogram(&rows);
        for (item, &count) in &expected(&a) {
            prop_assert_eq!(h.get(item).copied().unwrap_or(0), count);
        }
        for (item, &count) in &expected(&b) {
            prop_assert_eq!(h.get(&(item + a.len() as u64)).copied().unwrap_or(0), count);
        }
        // The first half of the stream only contains first-half items.
        prop_assert!(rows[..first_len as usize].iter().all(|&i| (i as usize) < a.len()));
    }

    /// Epoch ranges partition the item space exactly, with sizes differing by at most
    /// one.
    #[test]
    fn epoch_ranges_partition(n_items in 1usize..5000, n_epochs in 1usize..20) {
        let ranges = epoch_ranges(n_items, n_epochs);
        prop_assert_eq!(ranges.len(), n_epochs);
        prop_assert_eq!(ranges[0].start, 0);
        prop_assert_eq!(ranges.last().unwrap().end, n_items as u64);
        let mut sizes = Vec::new();
        for w in ranges.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
        }
        for r in &ranges {
            sizes.push(r.end - r.start);
        }
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        prop_assert!(max - min <= 1);
    }

    /// Random subsets have the requested size, contain no duplicates, stay in range,
    /// and their true sums are consistent with the count vector.
    #[test]
    fn random_subsets_are_valid(counts in vec(0u64..50, 10..200), subset_size in 1usize..10, seed in any::<u64>()) {
        prop_assume!(subset_size <= counts.len());
        let mut rng = StdRng::seed_from_u64(seed);
        let subsets = random_subsets(counts.len(), subset_size, 5, &mut rng);
        let total: u64 = counts.iter().sum();
        for s in &subsets {
            prop_assert_eq!(s.len(), subset_size);
            let mut dedup = s.clone();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), subset_size);
            prop_assert!(s.iter().all(|&i| (i as usize) < counts.len()));
            prop_assert!(true_subset_sum(&counts, s) <= total);
        }
    }

    /// Grid counts are deterministic, positive, and non-decreasing in the item index
    /// for the distributions whose inverse CDF is monotone.
    #[test]
    fn grid_counts_are_monotone(n_items in 2usize..500, p in 0.01f64..0.5) {
        let counts = FrequencyDistribution::Geometric { p }.grid_counts(n_items);
        prop_assert_eq!(counts.len(), n_items);
        prop_assert!(counts.iter().all(|&c| c >= 1));
        for w in counts.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        prop_assert_eq!(counts, FrequencyDistribution::Geometric { p }.grid_counts(n_items));
    }
}
