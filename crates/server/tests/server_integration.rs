//! Integration tests for the sketch daemon: wire answers must be bit-identical
//! to in-process `QueryServer` answers, concurrent clients must conserve mass,
//! a deliberately-killed worker must degrade to a typed error frame instead of
//! killing the daemon, and checkpoint-on-shutdown / restore-on-boot must
//! round-trip the registry.

use std::time::Duration;

use uss_core::persist::TemporalMeta;
use uss_core::{
    answer_query, Query, QueryAnswer, QueryServer, QueryServerConfig,
    TemporalIngestEngine, TimeRange,
};
use uss_server::{ClientError, ErrorCode, ServerConfig, SketchClient, SketchServer};

const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

fn spec(shards: u64, seed: u64) -> TemporalMeta {
    TemporalMeta {
        shards,
        capacity: 128,
        seed,
        bucket_width: 50,
        fine_buckets: 16,
        tier_factor: 4,
        tiers: 2,
    }
}

fn start_server() -> SketchServer {
    SketchServer::start("127.0.0.1:0", ServerConfig::default()).expect("bind ephemeral port")
}

fn connect(server: &SketchServer) -> SketchClient {
    let mut client = SketchClient::connect(server.addr()).expect("connect");
    client.set_timeout(Some(CLIENT_TIMEOUT)).expect("timeout");
    client
}

/// The rows every bit-identity test ingests: a skewed, multi-bucket stream.
fn rows(n: u64) -> Vec<(u64, u64)> {
    (0..n).map(|i| ((i * i + 7) % 97, i / 10)).collect()
}

#[test]
fn wire_answers_are_bit_identical_to_in_process_query_server() {
    let seed = 42;
    let server = start_server();
    let mut client = connect(&server);
    assert!(client.create_stream("clicks", spec(2, seed)).unwrap());
    // Re-creating with the same spec is idempotent; a different spec is typed.
    assert!(!client.create_stream("clicks", spec(2, seed)).unwrap());
    match client.create_stream("clicks", spec(4, seed)) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::StreamExists),
        other => panic!("expected StreamExists, got {other:?}"),
    }

    let stream_rows = rows(20_000);
    assert_eq!(client.ingest("clicks", &stream_rows).unwrap(), 20_000);

    // The reference: an in-process engine with the identical config and seed,
    // fed the identical rows, served by an in-process QueryServer over the
    // identical time range.
    let config = spec(2, seed).to_config().unwrap();
    let local = TemporalIngestEngine::try_new(config).unwrap();
    let mut handle = local.handle();
    handle.offer_batch_at(&stream_rows);
    handle.flush();
    let query_server = QueryServer::new(
        local.range_source(TimeRange::All),
        QueryServerConfig::new().confidence(0.95),
    );

    let queries = [
        Query::SubsetSum {
            items: (0..50).collect(),
        },
        Query::Proportion {
            items: (50..97).collect(),
        },
        Query::TopK { k: 10 },
        Query::FrequentItems { phi: 0.02 },
        Query::RankQuantile { q: 0.5 },
    ];
    for query in &queries {
        let (wire_rows, wire_answer) = client.query("clicks", &TimeRange::All, query).unwrap();
        let local_response = query_server.execute(query);
        assert_eq!(wire_rows, local_response.rows, "rows for {query:?}");
        assert_eq!(wire_answer, local_response.answer, "answer for {query:?}");
    }

    // Sub-range queries answer bit-identically too (both sides fold the same
    // bucket reports under the same salted merge-seed sequence).
    let range = TimeRange::Between { start: 200, end: 1_500 };
    let wire = client
        .query("clicks", &range, &Query::TopK { k: 8 })
        .unwrap();
    let snap = local.range_capture(&range);
    assert_eq!(wire.0, snap.rows_processed());
    assert_eq!(wire.1, answer_query(&snap, &Query::TopK { k: 8 }, 0.95));

    // Keyed marginals: same roll-up, same estimates, same intervals.
    let (marg_rows, entries) = client
        .marginals("clicks", &TimeRange::All, 3, 0xF, 0.95)
        .unwrap();
    let local_snap = local.range_capture(&TimeRange::All);
    assert_eq!(marg_rows, local_snap.rows_processed());
    let local_marginals = local_snap.marginals(|item| Some((item >> 3) & 0xF));
    assert_eq!(entries.len(), local_marginals.len());
    for (wire_entry, (key, estimate)) in entries.iter().zip(&local_marginals) {
        assert_eq!(wire_entry.key, *key);
        assert_eq!(wire_entry.estimate, *estimate);
        assert_eq!(wire_entry.ci, estimate.confidence_interval(0.95));
    }

    server.shutdown();
}

#[test]
fn concurrent_clients_conserve_mass() {
    let server = start_server();
    let mut admin = connect(&server);
    admin.create_stream("mixed", spec(3, 7)).unwrap();

    const WRITERS: u64 = 3;
    const READERS: usize = 2;
    const ROWS_PER_WRITER: u64 = 8_000;

    let addr = server.addr();
    let mut threads = Vec::new();
    for writer in 0..WRITERS {
        threads.push(std::thread::spawn(move || {
            let mut client = SketchClient::connect(addr).expect("writer connect");
            client.set_timeout(Some(CLIENT_TIMEOUT)).unwrap();
            // Each writer owns a congruence class of items so the final
            // marginal structure is predictable; timestamps interleave.
            let rows: Vec<(u64, u64)> = (0..ROWS_PER_WRITER)
                .map(|i| ((i % 30) * WRITERS + writer, i / 20))
                .collect();
            // Split into several requests so ingest interleaves with queries.
            for chunk in rows.chunks(1_000) {
                assert_eq!(client.ingest("mixed", chunk).unwrap(), chunk.len() as u64);
            }
        }));
    }
    for _ in 0..READERS {
        threads.push(std::thread::spawn(move || {
            let mut client = SketchClient::connect(addr).expect("reader connect");
            client.set_timeout(Some(CLIENT_TIMEOUT)).unwrap();
            for _ in 0..20 {
                // Mid-ingest queries must answer (any prefix of the stream).
                let (rows, answer) = client
                    .query("mixed", &TimeRange::All, &Query::TopK { k: 5 })
                    .unwrap();
                if let QueryAnswer::Items(items) = answer {
                    assert!(items.len() <= 5);
                    assert!(items.iter().all(|&(_, count)| count >= 0.0));
                } else {
                    panic!("TopK answered a non-item payload");
                }
                assert!(rows <= WRITERS * ROWS_PER_WRITER);
            }
        }));
    }
    for thread in threads {
        thread.join().expect("client thread");
    }

    // All rows are in: the full-universe subset sum must conserve mass exactly
    // (Unbiased Space Saving never loses total count), and the keyed marginals
    // must partition that mass.
    let total = (WRITERS * ROWS_PER_WRITER) as f64;
    let universe: Vec<u64> = (0..30 * WRITERS).collect();
    let (rows_seen, answer) = admin
        .query("mixed", &TimeRange::All, &Query::SubsetSum { items: universe })
        .unwrap();
    assert_eq!(rows_seen, WRITERS * ROWS_PER_WRITER);
    let QueryAnswer::Estimate { estimate, ci } = answer else {
        panic!("SubsetSum answered a non-estimate payload");
    };
    assert!(
        (estimate.sum - total).abs() < 1e-6,
        "mass not conserved: {} vs {total}",
        estimate.sum
    );
    assert!(ci.lower <= estimate.sum && estimate.sum <= ci.upper);

    let (_, marginals) = admin
        .marginals("mixed", &TimeRange::All, 0, u64::MAX, 0.95)
        .unwrap();
    let marginal_mass: f64 = marginals.iter().map(|entry| entry.estimate.sum).sum();
    assert!(
        (marginal_mass - total).abs() < 1e-6,
        "marginals lost mass: {marginal_mass} vs {total}"
    );

    server.shutdown();
}

#[test]
fn killed_worker_degrades_to_typed_errors_and_daemon_survives() {
    let server = start_server();
    let mut client = connect(&server);
    client.create_stream("fragile", spec(2, 11)).unwrap();
    client.create_stream("healthy", spec(2, 12)).unwrap();
    client.ingest("fragile", &rows(2_000)).unwrap();
    client.ingest("healthy", &rows(2_000)).unwrap();

    assert!(server.debug_kill_shard("fragile", 1));

    // Queries against the damaged stream answer with a typed ShardDown error
    // frame — the request degrades, the daemon does not die.
    match client.query("fragile", &TimeRange::All, &Query::TopK { k: 3 }) {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, ErrorCode::ShardDown, "{message}");
        }
        other => panic!("expected ShardDown, got {other:?}"),
    }
    // Ingest into the damaged stream degrades the same way.
    match client.ingest("fragile", &rows(500)) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::ShardDown),
        other => panic!("expected ShardDown, got {other:?}"),
    }

    // The same connection keeps serving: ping, the healthy stream, and the
    // registry all still answer.
    assert_eq!(client.ping().unwrap(), uss_server::PROTOCOL_VERSION);
    let (rows_seen, _) = client
        .query("healthy", &TimeRange::All, &Query::TopK { k: 3 })
        .unwrap();
    assert_eq!(rows_seen, 2_000);
    assert_eq!(client.list_streams().unwrap().len(), 2);

    // A fresh connection is not poisoned by the damaged stream either.
    let mut second = connect(&server);
    assert_eq!(second.ping().unwrap(), uss_server::PROTOCOL_VERSION);

    server.shutdown();
}

#[test]
fn checkpoint_on_shutdown_restores_on_boot() {
    let dir = std::env::temp_dir().join(format!(
        "uss-server-ckpt-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let total_rows = 12_000;
    let first_boot = SketchServer::start(
        "127.0.0.1:0",
        ServerConfig {
            data_dir: Some(dir.clone()),
            metrics_addr: None,
        },
    )
    .unwrap();
    let mut client = connect(&first_boot);
    client.create_stream("durable", spec(2, 21)).unwrap();
    client.ingest("durable", &rows(total_rows)).unwrap();
    // The wire shutdown request checkpoints every stream and stops the daemon.
    client.shutdown_server().unwrap();
    first_boot.join();

    // Boot a second daemon over the same data dir: the stream must come back
    // with its full history, reconstructed from the manifest alone.
    let second_boot = SketchServer::start(
        "127.0.0.1:0",
        ServerConfig {
            data_dir: Some(dir.clone()),
            metrics_addr: None,
        },
    )
    .unwrap();
    let mut client = connect(&second_boot);
    let streams = client.list_streams().unwrap();
    assert_eq!(streams.len(), 1);
    assert_eq!(streams[0].name, "durable");
    assert_eq!(streams[0].spec, spec(2, 21));
    assert_eq!(streams[0].rows, total_rows);

    // Mass survives the round trip exactly.
    let universe: Vec<u64> = (0..97).collect();
    let (rows_seen, answer) = client
        .query("durable", &TimeRange::All, &Query::SubsetSum { items: universe })
        .unwrap();
    assert_eq!(rows_seen, total_rows);
    let QueryAnswer::Estimate { estimate, .. } = answer else {
        panic!("SubsetSum answered a non-estimate payload");
    };
    assert!((estimate.sum - total_rows as f64).abs() < 1e-6);

    // The restored stream accepts new rows and window queries keep working.
    client.ingest("durable", &rows(1_000)).unwrap();
    let (rows_seen, _) = client
        .query("durable", &TimeRange::LastBuckets(4), &Query::TopK { k: 3 })
        .unwrap();
    assert!(rows_seen <= total_rows + 1_000);

    second_boot.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn invalid_configs_and_unknown_streams_answer_typed_errors() {
    let server = start_server();
    let mut client = connect(&server);

    // Zero shards fails engine validation, not the daemon.
    let mut bad = spec(2, 1);
    bad.shards = 0;
    match client.create_stream("bad", bad) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::InvalidConfig),
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
    // Tier factor below 2 is a typed window-config error.
    let mut bad = spec(2, 1);
    bad.tier_factor = 1;
    match client.create_stream("bad", bad) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::InvalidConfig),
        other => panic!("expected InvalidConfig, got {other:?}"),
    }

    match client.query("ghost", &TimeRange::All, &Query::TopK { k: 1 }) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::UnknownStream),
        other => panic!("expected UnknownStream, got {other:?}"),
    }
    match client.ingest("ghost", &[(1, 1)]) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::UnknownStream),
        other => panic!("expected UnknownStream, got {other:?}"),
    }

    // The connection survived every rejection.
    assert_eq!(client.ping().unwrap(), uss_server::PROTOCOL_VERSION);
    server.shutdown();
}
