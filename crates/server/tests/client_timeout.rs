//! Client deadline regression tests: a server that accepts but never answers
//! must surface as the typed [`ClientError::Timeout`] instead of a client
//! stuck forever in a blocking read.

use std::net::TcpListener;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use uss_server::{ClientError, ServerConfig, SketchClient, SketchServer};

/// A listener that accepts connections and then goes silent: it holds every
/// socket open without ever writing a byte, until the test ends.
fn silent_listener() -> (std::net::SocketAddr, mpsc::Sender<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind silent listener");
    let addr = listener.local_addr().expect("local addr");
    let (stop_tx, stop_rx) = mpsc::channel::<()>();
    std::thread::spawn(move || {
        let mut held = Vec::new();
        listener.set_nonblocking(true).expect("nonblocking");
        loop {
            if let Ok(conn) = listener.accept() {
                held.push(conn);
            }
            match stop_rx.try_recv() {
                Err(mpsc::TryRecvError::Empty) => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                _ => return,
            }
        }
    });
    (addr, stop_tx)
}

#[test]
fn silent_server_times_out_with_the_typed_error() {
    let (addr, _stop) = silent_listener();
    let mut client = SketchClient::connect(addr).expect("connect succeeds");
    client
        .set_timeout(Some(Duration::from_millis(200)))
        .expect("set timeout");
    let started = Instant::now();
    match client.ping() {
        Err(ClientError::Timeout { operation }) => {
            assert_eq!(operation, "read", "the read deadline fires first");
        }
        other => panic!("expected Timeout, got {other:?}"),
    }
    // The deadline actually bounded the wait: well under a blocking forever,
    // comfortably above the configured 200ms floor minus scheduling slack.
    let waited = started.elapsed();
    assert!(waited < Duration::from_secs(10), "waited {waited:?}");
    assert!(waited >= Duration::from_millis(100), "returned early: {waited:?}");
}

#[test]
fn connect_timeout_applies_the_deadline_to_the_whole_session() {
    let (addr, _stop) = silent_listener();
    let mut client =
        SketchClient::connect_timeout(addr, Duration::from_millis(200)).expect("connect");
    // The connect deadline carried over to reads: no explicit set_timeout.
    match client.ping() {
        Err(ClientError::Timeout { operation }) => assert_eq!(operation, "read"),
        other => panic!("expected Timeout, got {other:?}"),
    }
    // And the error formats as a human-readable deadline message.
    let err = ClientError::Timeout { operation: "read" };
    assert_eq!(err.to_string(), "read timed out");
}

#[test]
fn connect_timeout_against_a_live_daemon_just_works() {
    let server = SketchServer::start("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client = SketchClient::connect_timeout(server.addr(), Duration::from_secs(30))
        .expect("connect with deadline");
    assert_eq!(client.ping().expect("ping"), uss_server::PROTOCOL_VERSION);
    server.shutdown();
}
