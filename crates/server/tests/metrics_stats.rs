//! The two metrics exposures against a live daemon: the wire `Stats`
//! snapshot and the Prometheus text exposition must agree with each other
//! (the per-stream sample lines are byte-identical by construction) and with
//! ground truth — rows ingested, requests served, error frames provoked —
//! and the per-kind latency histograms must conserve their bucket sums even
//! after hostile wire-fuzz traffic.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use uss_core::metrics::{MetricKind, CORE_FAMILIES};
use uss_core::persist::TemporalMeta;
use uss_core::{Query, TimeRange};
use uss_server::wire::ServerStats;
use uss_server::{ClientError, ErrorCode, ServerConfig, SketchClient, SketchServer};

const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

/// Request-kind indices (kind − 1), mirroring the wire registry.
const IDX_CREATE_STREAM: usize = 1;
const IDX_INGEST: usize = 3;
const IDX_QUERY: usize = 4;
const IDX_STATS: usize = 7;

fn spec(shards: u64, seed: u64) -> TemporalMeta {
    TemporalMeta {
        shards,
        capacity: 128,
        seed,
        bucket_width: 50,
        fine_buckets: 16,
        tier_factor: 4,
        tiers: 2,
    }
}

fn start_metrics_server() -> SketchServer {
    let config = ServerConfig {
        metrics_addr: Some(String::from("127.0.0.1:0")),
        ..ServerConfig::default()
    };
    SketchServer::start("127.0.0.1:0", config).expect("bind ephemeral ports")
}

fn connect(server: &SketchServer) -> SketchClient {
    let mut client = SketchClient::connect(server.addr()).expect("connect");
    client.set_timeout(Some(CLIENT_TIMEOUT)).expect("timeout");
    client
}

/// One HTTP exchange against the exposition listener; returns (status line,
/// body).
fn scrape(server: &SketchServer, request_head: &str) -> (String, String) {
    let addr = server.metrics_addr().expect("metrics listener bound");
    let mut stream = TcpStream::connect(addr).expect("connect metrics");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(request_head.as_bytes()).expect("send scrape");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read scrape");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    let status = head.lines().next().unwrap_or_default().to_string();
    (status, body.to_string())
}

/// Every latency histogram must conserve its bucket sum, and — thanks to the
/// bump-after-write discipline — equal the request counter for its kind at
/// any quiescent snapshot.
fn assert_latency_conservation(stats: &ServerStats) {
    assert_eq!(stats.latency.len(), stats.requests.len());
    for (k, hist) in stats.latency.iter().enumerate() {
        let bucket_total: u64 = hist.buckets.iter().map(|&(_, n)| n).sum();
        assert_eq!(bucket_total, hist.count, "kind {k}: bucket sum vs count");
        assert_eq!(
            hist.count, stats.requests[k],
            "kind {k}: latency count vs request counter"
        );
    }
}

#[test]
fn stats_and_exposition_agree_with_each_other_and_ground_truth() {
    let server = start_metrics_server();
    let mut client = connect(&server);
    assert!(client.create_stream("clicks", spec(2, 42)).unwrap());
    let rows: Vec<(u64, u64)> = (0..10_000).map(|i| ((i * i + 7) % 97, i / 10)).collect();
    assert_eq!(client.ingest("clicks", &rows).unwrap(), 10_000);
    // Any query quiesces the workers: worker-side counters are exact after it.
    let (rows_seen, _) = client
        .query("clicks", &TimeRange::All, &Query::TopK { k: 5 })
        .unwrap();
    assert_eq!(rows_seen, 10_000);

    // The ladder idle-builder may still be materialising nodes; wait for the
    // per-stream samples to reach their fixed point (finite work, monotone).
    let mut stats = client.stats().expect("stats");
    for _ in 0..200 {
        let next = client.stats().expect("stats");
        if next.streams == stats.streams {
            stats = next;
            break;
        }
        stats = next;
        std::thread::sleep(Duration::from_millis(10));
    }

    // Ground truth, server side: exactly one create, one ingest, one query
    // served before the first stats call; the snapshot's own stats request is
    // never half-counted (bump-after-write), so IDX_STATS counts only the
    // *earlier* stats calls.
    assert_eq!(stats.requests[IDX_CREATE_STREAM], 1);
    assert_eq!(stats.requests[IDX_INGEST], 1);
    assert_eq!(stats.requests[IDX_QUERY], 1);
    assert!(stats.requests[IDX_STATS] >= 1, "earlier stats calls counted");
    assert!(stats.connections_accepted >= 1);
    assert_eq!(stats.error_frames.iter().sum::<u64>(), 0);
    assert_latency_conservation(&stats);

    // Ground truth, stream side: the enqueue hint and the worker-side row
    // counters both reconcile with the 10 000 rows actually sent.
    assert_eq!(stats.streams.len(), 1);
    let stream = &stats.streams[0];
    assert_eq!(stream.name, "clicks");
    assert_eq!(stream.rows_ingested, 10_000);
    let worker_rows: u64 = stream
        .samples
        .iter()
        .filter(|(name, _)| name.starts_with("uss_ingest_rows_total{"))
        .map(|&(_, v)| v)
        .sum();
    assert_eq!(worker_rows, 10_000, "per-shard row counters sum to rows sent");
    assert_eq!(stream.requests[IDX_INGEST], 1);
    assert_eq!(stream.requests[IDX_QUERY], 1);

    // The text exposition renders from the same snapshot builder: every
    // per-stream sample must appear byte-for-byte as `name{labels} value`.
    let (status, body) = scrape(&server, "GET /metrics HTTP/1.0\r\n\r\n");
    assert!(status.contains("200"), "scrape status: {status}");
    for (sample, value) in &stream.samples {
        let line = format!("{sample} {value}");
        assert!(
            body.lines().any(|l| l == line),
            "exposition missing sample line {line:?}"
        );
    }
    // Every core family carries its HELP/TYPE header with the right type.
    for desc in CORE_FAMILIES {
        assert!(
            body.contains(&format!("# HELP {} ", desc.name)),
            "missing HELP for {}",
            desc.name
        );
        let type_name = match desc.kind {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        };
        assert!(
            body.contains(&format!("# TYPE {} {type_name}\n", desc.name)),
            "missing TYPE for {}",
            desc.name
        );
    }
    // Server families: the request counter lines carry kind labels, and the
    // latency histogram exposes the cumulative +Inf bucket per kind.
    assert!(body.contains("# TYPE uss_server_requests_total counter"));
    assert!(body.contains("uss_server_requests_total{kind=\"ingest\"} 1\n"));
    assert!(body.contains("# TYPE uss_server_request_latency_nanos histogram"));
    assert!(body.contains("uss_server_request_latency_nanos_bucket{kind=\"query\",le=\"+Inf\"} 1\n"));
    assert!(body.contains("uss_server_request_latency_nanos_count{kind=\"query\"} 1\n"));

    // Anything that is not a GET fails loudly.
    let (bad_status, _) = scrape(&server, "POST /metrics HTTP/1.0\r\n\r\n");
    assert!(bad_status.contains("400"), "non-GET status: {bad_status}");

    server.shutdown();
}

#[test]
fn error_frames_and_latency_conserve_under_hostile_traffic() {
    let server = start_metrics_server();
    let mut client = connect(&server);
    assert!(client.create_stream("s", spec(1, 7)).unwrap());

    // A typed payload error: querying a stream that does not exist.
    match client.query("nope", &TimeRange::All, &Query::TopK { k: 1 }) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::UnknownStream),
        other => panic!("expected UnknownStream, got {other:?}"),
    }

    // A framing error: garbage bytes on a fresh connection.
    {
        let mut hostile = TcpStream::connect(server.addr()).expect("connect");
        hostile
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        hostile
            .write_all(b"USSX total garbage, not a frame at all.....")
            .expect("send garbage");
        // Drain whatever the server answers until it closes the connection,
        // so the error frame is fully written (and counted) before stats.
        let mut sink = Vec::new();
        let _ = hostile.read_to_end(&mut sink);
    }

    let stats = client.stats().expect("stats");
    // ErrorCode indices are code − 1: BadFrame = 1, UnknownStream = 3.
    assert_eq!(stats.error_frames[ErrorCode::BadFrame as usize - 1], 1);
    assert_eq!(stats.error_frames[ErrorCode::UnknownStream as usize - 1], 1);
    assert_eq!(stats.error_frames.iter().sum::<u64>(), 2);
    // The failed query still counted as a served request of its kind (an
    // error response is written like any other), and every histogram
    // conserves its buckets.
    assert_latency_conservation(&stats);

    // The exposition agrees on the error-frame counters.
    let (_, body) = scrape(&server, "GET / HTTP/1.0\r\n\r\n");
    assert!(body.contains("uss_server_error_frames_total{code=\"bad_frame\"} 1\n"));
    assert!(body.contains("uss_server_error_frames_total{code=\"unknown_stream\"} 1\n"));

    server.shutdown();
}
