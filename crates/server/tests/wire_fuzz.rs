//! Protocol fuzzing against a *live* daemon, in the `persist_properties`
//! style: truncated, single-bit-flipped, wrong-version, oversized-length and
//! pure-garbage frames must all yield a typed error response or a clean
//! connection close — never a panic, never a hang. Every case finishes by
//! pinging the daemon over a fresh connection, proving the hostile bytes did
//! not take the process (or its accept loop) down.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::OnceLock;
use std::time::Duration;

use proptest::collection::vec;
use proptest::prelude::*;

use uss_core::persist::TemporalMeta;
use uss_core::{Query, TimeRange};
use uss_server::wire::{decode_response_frame, Request, Response, HEADER_LEN};
use uss_server::{ServerConfig, SketchClient, SketchServer};

/// How long a fuzz connection waits for a response before concluding the
/// server (correctly) chose to wait for more bytes instead of answering.
const HOSTILE_READ_TIMEOUT: Duration = Duration::from_millis(300);

/// One past the highest defined *request* kind (`0x01..=0x08`). uss-lint R2
/// pins this to the `KIND_*` registry in `wire.rs`: adding a request kind
/// without extending the fuzz coverage here fails the lint.
const FIRST_UNDEFINED_REQUEST_KIND: u8 = 0x09;

/// One past the highest defined *response* kind (`0x41..=0x48`, error `0x7F`
/// aside). Pinned by uss-lint R2 like its request-side twin.
const FIRST_UNDEFINED_RESPONSE_KIND: u8 = 0x49;

/// One daemon shared by every fuzz case: survival across the whole battery is
/// exactly the property under test.
fn server_addr() -> SocketAddr {
    static SERVER: OnceLock<SketchServer> = OnceLock::new();
    SERVER
        .get_or_init(|| {
            let server =
                SketchServer::start("127.0.0.1:0", ServerConfig::default()).expect("bind");
            let mut client = SketchClient::connect(server.addr()).expect("connect");
            client
                .create_stream(
                    "fuzz",
                    TemporalMeta {
                        shards: 2,
                        capacity: 64,
                        seed: 3,
                        bucket_width: 10,
                        fine_buckets: 8,
                        tier_factor: 4,
                        tiers: 1,
                    },
                )
                .expect("create fuzz stream");
            client.ingest("fuzz", &[(1, 1), (2, 2), (3, 3)]).expect("seed rows");
            server
        })
        .addr()
}

/// Sends raw bytes, then reads whatever the server answers (if anything)
/// within the hostile timeout. Returns the raw response bytes.
fn exchange(bytes: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(server_addr()).expect("connect");
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(HOSTILE_READ_TIMEOUT))
        .unwrap();
    if let Err(err) = stream.write_all(bytes) {
        // The server may already have rejected and torn the connection down;
        // that is a legitimate outcome for hostile bytes, not a test failure.
        assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::BrokenPipe | std::io::ErrorKind::ConnectionReset
            ),
            "unexpected transport error on write: {err}"
        );
        return Vec::new();
    }
    let mut response = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => response.extend_from_slice(&buf[..n]),
            Err(err)
                if matches!(
                    err.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                break
            }
            // A reset voids whatever partial answer was in flight.
            Err(err) if err.kind() == std::io::ErrorKind::ConnectionReset => return Vec::new(),
            Err(err) => panic!("unexpected transport error: {err}"),
        }
    }
    response
}

/// The server must either stay silent (still waiting for bytes, or it closed
/// the connection after an unrecoverable frame) or answer with well-formed
/// frames whose *first* is a typed error.
fn assert_error_or_silence(response: &[u8]) {
    if response.is_empty() {
        return;
    }
    let decoded = decode_response_frame(response);
    match decoded {
        Ok(Response::Error { .. }) => {}
        Ok(other) => panic!("hostile bytes got a non-error answer: {other:?}"),
        Err(err) => panic!("server sent an undecodable response: {err}"),
    }
}

/// The daemon (and its accept loop) must still serve typed requests after
/// every hostile exchange.
fn assert_server_alive() {
    let mut client = SketchClient::connect(server_addr()).expect("reconnect");
    client
        .set_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    assert_eq!(client.ping().expect("ping"), uss_server::PROTOCOL_VERSION);
    let (rows, _) = client
        .query("fuzz", &TimeRange::All, &Query::TopK { k: 2 })
        .expect("query");
    assert_eq!(rows, 3);
}

/// A pool of well-formed requests whose frames the fuzz cases mutate.
fn valid_frames() -> Vec<Vec<u8>> {
    vec![
        Request::Ping.encode(),
        Request::ListStreams.encode(),
        Request::Ingest {
            name: "fuzz".into(),
            rows: vec![(9, 9), (10, 10)],
        }
        .encode(),
        Request::Query {
            name: "fuzz".into(),
            range: TimeRange::LastBuckets(4),
            confidence: 0.95,
            query: Query::SubsetSum { items: vec![1, 2, 3] },
        }
        .encode(),
        Request::Marginals {
            name: "fuzz".into(),
            range: TimeRange::All,
            confidence: 0.9,
            shift: 1,
            mask: 0xFF,
        }
        .encode(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pure garbage: random bytes are answered with an error frame or silence,
    /// and the daemon survives.
    #[test]
    fn garbage_bytes_never_panic_or_hang(bytes in vec(any::<u8>(), 0..256)) {
        let response = exchange(&bytes);
        assert_error_or_silence(&response);
        assert_server_alive();
    }

    /// Truncation at every kind of boundary: the server either waits for the
    /// rest (silence; the client hangs up) or reports a bad frame. It never
    /// crashes on a partial header, partial payload or partial checksum.
    #[test]
    fn truncated_frames_never_panic_or_hang(which in 0usize..5, cut_frac in 0.0f64..1.0) {
        let frame = &valid_frames()[which];
        let cut = ((frame.len() as f64 * cut_frac) as usize).min(frame.len() - 1);
        let response = exchange(&frame[..cut]);
        assert_error_or_silence(&response);
        assert_server_alive();
    }

    /// A single flipped bit anywhere in a valid frame is caught by the magic,
    /// version, kind, length or CRC gate — typed error or silence, no panic.
    #[test]
    fn bit_flipped_frames_never_panic_or_hang(
        which in 0usize..5,
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut frame = valid_frames()[which].clone();
        let byte = ((frame.len() as f64 * byte_frac) as usize).min(frame.len() - 1);
        frame[byte] ^= 1 << bit;
        let response = exchange(&frame);
        assert_error_or_silence(&response);
        assert_server_alive();
    }

    /// Hostile floats and out-of-range fields inside a structurally sound,
    /// correctly-checksummed frame come back as a typed error response on a
    /// connection that KEEPS SERVING (payload errors do not desync framing).
    #[test]
    fn hostile_payloads_get_typed_errors_and_connection_survives(which in 0usize..6) {
        const HOSTILE_CONFIDENCES: [f64; 6] =
            [f64::NAN, f64::INFINITY, -1.0, 0.0, 1.0, 2.0];
        let bad = Request::Query {
            name: "fuzz".into(),
            range: TimeRange::All,
            confidence: HOSTILE_CONFIDENCES[which],
            query: Query::TopK { k: 1 },
        };
        let mut stream = TcpStream::connect(server_addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream.write_all(&bad.encode()).unwrap();
        let (kind, payload) = uss_server::wire::read_frame(&mut stream).expect("error frame");
        let got_error = matches!(Response::decode(kind, &payload), Ok(Response::Error { .. }));
        prop_assert!(got_error, "hostile confidence was not answered with an error frame");
        // Same connection, follow-up valid request: still served.
        stream.write_all(&Request::Ping.encode()).unwrap();
        let (kind, payload) = uss_server::wire::read_frame(&mut stream).expect("pong");
        let got_pong = matches!(Response::decode(kind, &payload), Ok(Response::Pong { .. }));
        prop_assert!(got_pong, "connection stopped serving after a payload error");
    }
}

#[test]
fn wrong_version_frame_is_rejected() {
    let mut frame = Request::Ping.encode();
    frame[4..6].copy_from_slice(&7u16.to_le_bytes());
    let response = exchange(&frame);
    assert!(!response.is_empty(), "wrong version deserves an answer");
    assert_error_or_silence(&response);
    assert_server_alive();
}

#[test]
fn oversized_length_is_rejected_from_the_header_alone() {
    // A header promising a 1 TiB payload: the server must reject it after the
    // 16 header bytes, without waiting for (or allocating) the payload.
    let mut frame = Request::Ping.encode();
    frame.truncate(HEADER_LEN);
    frame[8..16].copy_from_slice(&(1u64 << 40).to_le_bytes());
    let response = exchange(&frame);
    assert!(!response.is_empty(), "oversized length deserves an answer");
    assert_error_or_silence(&response);
    assert_server_alive();
}

#[test]
fn unknown_kind_with_valid_checksum_is_rejected() {
    // Build a frame with an undefined kind byte but a *correct* checksum, so
    // only the kind gate can reject it.
    let mut frame = Request::Ping.encode();
    frame[6] = 0x3F;
    let body_len = frame.len() - 8;
    let crc = uss_core::persist::crc64(&frame[..body_len]);
    frame[body_len..].copy_from_slice(&crc.to_le_bytes());
    let response = exchange(&frame);
    assert!(!response.is_empty(), "unknown kind deserves an answer");
    assert_error_or_silence(&response);
    assert_server_alive();
}

#[test]
fn first_undefined_kinds_are_rejected() {
    // The first byte past each defined kind range, with a *correct* checksum:
    // exactly the frame a version-skewed peer speaking "one more kind" would
    // send. The kind gate must bounce both before any payload handling.
    for kind in [FIRST_UNDEFINED_REQUEST_KIND, FIRST_UNDEFINED_RESPONSE_KIND] {
        let mut frame = Request::Ping.encode();
        frame[6] = kind;
        let body_len = frame.len() - 8;
        let crc = uss_core::persist::crc64(&frame[..body_len]);
        frame[body_len..].copy_from_slice(&crc.to_le_bytes());
        let response = exchange(&frame);
        assert!(!response.is_empty(), "undefined kind {kind:#04x} deserves an answer");
        assert_error_or_silence(&response);
        assert_server_alive();
    }
}

#[test]
fn response_kind_sent_as_request_is_rejected() {
    // A well-formed *response* frame aimed at the server: correct magic,
    // version and checksum, but a kind the request decoder must refuse.
    let frame = Response::Pong {
        protocol: uss_server::PROTOCOL_VERSION,
    }
    .encode();
    let response = exchange(&frame);
    assert!(!response.is_empty(), "response-kind frame deserves an answer");
    assert_error_or_silence(&response);
    assert_server_alive();
}
