//! A typed client for the sketch daemon.
//!
//! [`SketchClient`] wraps one TCP connection and exposes the wire protocol as
//! ordinary typed methods; every server-side error frame becomes a
//! [`ClientError::Server`] carrying the machine-readable [`ErrorCode`].

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use uss_core::persist::TemporalMeta;
use uss_core::{Query, QueryAnswer, TimeRange};

use crate::wire::{
    read_frame, write_frame, ErrorCode, MarginalEntry, Request, Response, ServerStats, StreamInfo,
    WireError, MAX_PAYLOAD,
};

/// Rows per `Ingest` frame when a batch is auto-chunked: 8 MiB of rows, half
/// the frame payload ceiling.
const INGEST_CHUNK_ROWS: usize = MAX_PAYLOAD / 2 / 16;

/// Why a client call failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum ClientError {
    /// The transport or the response frame was broken.
    Wire(WireError),
    /// The server answered with a typed error frame.
    Server {
        /// Machine-readable class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The server answered with a well-formed frame of the wrong kind.
    UnexpectedResponse(String),
    /// A configured deadline expired: the connect, a read or a write sat
    /// longer than the timeout without the server moving a byte.
    Timeout {
        /// Which operation timed out (`"connect"`, `"read"`, `"write"`).
        operation: &'static str,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Wire(err) => write!(f, "wire failure: {err}"),
            Self::Server { code, message } => write!(f, "server error ({code:?}): {message}"),
            Self::UnexpectedResponse(got) => write!(f, "unexpected response kind: {got}"),
            Self::Timeout { operation } => write!(f, "{operation} timed out"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Wire(err) => Some(err),
            _ => None,
        }
    }
}

impl From<WireError> for ClientError {
    fn from(err: WireError) -> Self {
        Self::Wire(err)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(err: std::io::Error) -> Self {
        Self::Wire(WireError::Io(err))
    }
}

/// One connection to a sketch daemon.
pub struct SketchClient {
    stream: TcpStream,
}

impl SketchClient {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// [`ClientError::Wire`] wrapping the connect failure.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Connects to a daemon with a connect deadline, then applies the same
    /// deadline to every read and write (as [`SketchClient::set_timeout`]
    /// would). A server that accepts but never answers surfaces as
    /// [`ClientError::Timeout`] instead of a stuck client.
    ///
    /// # Errors
    ///
    /// [`ClientError::Timeout`] when the deadline expires mid-connect, and
    /// [`ClientError::Wire`] for other connect failures — including address
    /// resolution yielding no candidates.
    pub fn connect_timeout<A: ToSocketAddrs>(
        addr: A,
        timeout: Duration,
    ) -> Result<Self, ClientError> {
        let mut last: Option<std::io::Error> = None;
        for candidate in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&candidate, timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    let mut client = Self { stream };
                    client.set_timeout(Some(timeout))?;
                    return Ok(client);
                }
                Err(err) => last = Some(err),
            }
        }
        Err(match last {
            Some(err) if is_timeout(&err) => ClientError::Timeout {
                operation: "connect",
            },
            Some(err) => ClientError::Wire(WireError::Io(err)),
            None => ClientError::Wire(WireError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to no candidates",
            ))),
        })
    }

    /// Sets a receive deadline for every subsequent call, turning a hung or
    /// silent server into a [`ClientError::Timeout`] instead of a stuck
    /// client.
    ///
    /// # Errors
    ///
    /// [`ClientError::Wire`] wrapping the socket configuration failure.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)?;
        Ok(())
    }

    fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &request.encode()).map_err(|err| classify(err, "write"))?;
        let (kind, payload) = read_frame(&mut self.stream).map_err(|err| classify(err, "read"))?;
        let response = Response::decode(kind, &payload)?;
        if let Response::Error { code, message } = response {
            return Err(ClientError::Server { code, message });
        }
        Ok(response)
    }

    /// Liveness check; returns the protocol version the server speaks.
    ///
    /// # Errors
    ///
    /// Transport failures and server error frames.
    pub fn ping(&mut self) -> Result<u16, ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong { protocol } => Ok(protocol),
            other => Err(unexpected(&other)),
        }
    }

    /// Creates a stream (idempotent when the spec matches the existing one).
    /// Returns `true` when this call created it.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::StreamExists`] on a spec mismatch,
    /// [`ErrorCode::InvalidConfig`] on geometry the engine rejects.
    pub fn create_stream(&mut self, name: &str, spec: TemporalMeta) -> Result<bool, ClientError> {
        let request = Request::CreateStream {
            name: name.to_string(),
            spec,
        };
        match self.call(&request)? {
            Response::StreamCreated { created } => Ok(created),
            other => Err(unexpected(&other)),
        }
    }

    /// Lists every registered stream, sorted by name.
    ///
    /// # Errors
    ///
    /// Transport failures and server error frames.
    pub fn list_streams(&mut self) -> Result<Vec<StreamInfo>, ClientError> {
        match self.call(&Request::ListStreams)? {
            Response::Streams(streams) => Ok(streams),
            other => Err(unexpected(&other)),
        }
    }

    /// Appends `(item, timestamp)` rows to a stream, auto-chunking batches that
    /// would overflow one frame. Returns the total rows acknowledged.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::UnknownStream`] for unregistered names,
    /// [`ErrorCode::ShardDown`] when a worker died mid-stream.
    pub fn ingest(&mut self, name: &str, rows: &[(u64, u64)]) -> Result<u64, ClientError> {
        let mut total = 0u64;
        for chunk in rows.chunks(INGEST_CHUNK_ROWS.max(1)) {
            let request = Request::Ingest {
                name: name.to_string(),
                rows: chunk.to_vec(),
            };
            match self.call(&request)? {
                Response::Ingested { rows } => total += rows,
                other => return Err(unexpected(&other)),
            }
        }
        Ok(total)
    }

    /// Evaluates one typed query over a time range at 95% confidence.
    /// Returns `(rows_in_snapshot, answer)`.
    ///
    /// # Errors
    ///
    /// As [`SketchClient::query_with_confidence`].
    pub fn query(
        &mut self,
        name: &str,
        range: &TimeRange,
        query: &Query,
    ) -> Result<(u64, QueryAnswer), ClientError> {
        self.query_with_confidence(name, range, query, 0.95)
    }

    /// Evaluates one typed query over a time range at the given confidence.
    /// The answer is bit-identical to what an in-process
    /// [`uss_core::QueryServer`] would produce from the same range snapshot.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::UnknownStream`], [`ErrorCode::BadRequest`] for invalid
    /// floats, [`ErrorCode::ShardDown`] when a worker died.
    pub fn query_with_confidence(
        &mut self,
        name: &str,
        range: &TimeRange,
        query: &Query,
        confidence: f64,
    ) -> Result<(u64, QueryAnswer), ClientError> {
        let request = Request::Query {
            name: name.to_string(),
            range: *range,
            confidence,
            query: query.clone(),
        };
        match self.call(&request)? {
            Response::Answer { rows, answer } => Ok((rows, answer)),
            other => Err(unexpected(&other)),
        }
    }

    /// Keyed marginals over a time range: every item rolls up to
    /// `(item >> shift) & mask`, and each key gets a subset estimate with a
    /// confidence interval. Returns `(rows_in_snapshot, entries)` in
    /// first-seen entry order.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::UnknownStream`], [`ErrorCode::BadRequest`] for a shift
    /// over 63, [`ErrorCode::ShardDown`] when a worker died.
    pub fn marginals(
        &mut self,
        name: &str,
        range: &TimeRange,
        shift: u8,
        mask: u64,
        confidence: f64,
    ) -> Result<(u64, Vec<MarginalEntry>), ClientError> {
        let request = Request::Marginals {
            name: name.to_string(),
            range: *range,
            confidence,
            shift,
            mask,
        };
        match self.call(&request)? {
            Response::MarginalsAnswer { rows, entries } => Ok((rows, entries)),
            other => Err(unexpected(&other)),
        }
    }

    /// Snapshots the daemon's metrics registry: connection lifecycle, per-kind
    /// request counts and latency histograms, error frames by code, and every
    /// per-stream core metric (ingest, rings, temporal, checkpoints) rendered
    /// exactly as the Prometheus exposition endpoint would print it.
    ///
    /// ```
    /// # use uss_server::{SketchClient, SketchServer, ServerConfig};
    /// # use uss_core::persist::TemporalMeta;
    /// # let server = SketchServer::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    /// # let mut client = SketchClient::connect(server.addr()).unwrap();
    /// # client.create_stream("clicks", TemporalMeta {
    /// #     shards: 2, capacity: 256, seed: 42,
    /// #     bucket_width: 60, fine_buckets: 32, tier_factor: 4, tiers: 2,
    /// # }).unwrap();
    /// # use uss_core::{Query, TimeRange};
    /// client.ingest("clicks", &[(7, 0), (8, 0), (7, 1)]).unwrap();
    /// // Quiesce the workers (any query does) so the ingest counters are
    /// // exact, then snapshot.
    /// client.query("clicks", &TimeRange::All, &Query::TopK { k: 1 }).unwrap();
    /// let stats = client.stats().unwrap();
    /// let clicks = stats.streams.iter().find(|s| s.name == "clicks").unwrap();
    /// assert_eq!(clicks.rows_ingested, 3);
    /// // Worker-side row counters conserve the rows the client sent.
    /// let applied: u64 = clicks
    ///     .samples
    ///     .iter()
    ///     .filter(|(name, _)| name.starts_with("uss_ingest_rows_total{"))
    ///     .map(|&(_, value)| value)
    ///     .sum();
    /// assert_eq!(applied, 3);
    /// # server.shutdown();
    /// ```
    ///
    /// # Errors
    ///
    /// Transport failures and server error frames.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the daemon to checkpoint every stream and exit.
    ///
    /// # Errors
    ///
    /// Transport failures and server error frames.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(response: &Response) -> ClientError {
    ClientError::UnexpectedResponse(format!("{response:?}"))
}

/// True for the two `ErrorKind`s a platform reports when a socket deadline
/// expires (`WouldBlock` on Unix, `TimedOut` on Windows).
fn is_timeout(err: &std::io::Error) -> bool {
    matches!(
        err.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Maps a deadline expiry inside the frame layer to the typed
/// [`ClientError::Timeout`]; everything else stays a wire failure.
fn classify(err: WireError, operation: &'static str) -> ClientError {
    match err {
        WireError::Io(io) if is_timeout(&io) => ClientError::Timeout { operation },
        other => ClientError::Wire(other),
    }
}
