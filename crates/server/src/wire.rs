//! The wire protocol: length-prefixed, versioned, CRC-checksummed frames.
//!
//! This is the persist codec's frame discipline lifted onto a socket. Every
//! request and every response is one *frame*, and every decode path is total:
//! truncated, bit-flipped, oversized, wrong-version and garbage frames all come
//! back as a [`WireError`], never a panic. The payload bodies are assembled and
//! parsed with the persist codec's own [`PayloadWriter`] / [`PayloadReader`],
//! so the byte conventions (little-endian everything, counts validated against
//! the bytes actually present before any allocation) are identical to the
//! on-disk format.
//!
//! # Frame layout
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"USSW"
//! 4       2     protocol version  (currently 1)
//! 6       1     frame kind        (see below)
//! 7       1     reserved          (0)
//! 8       8     payload length  n (little-endian; at most 16 MiB)
//! 16      n     payload           (kind-specific, see below)
//! 16+n    8     CRC-64/ECMA checksum over bytes [0, 16+n)
//! ```
//!
//! # Frame kinds and payloads
//!
//! Requests occupy `0x01..=0x08`; each response kind is its request kind with
//! bit 6 set (`0x41..=0x48`), and `0x7F` is the error response. A *name* is
//! `len u32, len × utf-8 byte` (at most 128 bytes, `[A-Za-z0-9_.-]`, non-empty
//! — names double as checkpoint directory names, so they must be
//! filesystem-safe). A *spec* is the 7 × u64 stream identity `shards, capacity,
//! seed, bucket_width, fine_buckets, tier_factor, tiers` (the persist layer's
//! [`TemporalMeta`]). A *range* is `tag u8` (`0` = all, `1` = last buckets,
//! `2` = between) followed by `n u64` for tag 1 and `start u64, end u64` for
//! tag 2.
//!
//! | kind | frame | payload |
//! |------|-------|---------|
//! | 0x01 | `Ping` | empty |
//! | 0x02 | `CreateStream` | name, spec |
//! | 0x03 | `ListStreams` | empty |
//! | 0x04 | `Ingest` | name, `n u64, n × (item u64, ts u64)` |
//! | 0x05 | `Query` | name, range, `confidence f64`, query (below) |
//! | 0x06 | `Marginals` | name, range, `confidence f64, shift u8, mask u64` |
//! | 0x07 | `Shutdown` | empty |
//! | 0x08 | `Stats` | empty |
//! | 0x41 | `Pong` | `protocol u16` |
//! | 0x42 | `StreamCreated` | `created u8` (1 = new, 0 = already existed) |
//! | 0x43 | `Streams` | `n u64, n × (name, spec, rows u64)` |
//! | 0x44 | `Ingested` | `rows u64` |
//! | 0x45 | `Answer` | `rows u64`, answer (below) |
//! | 0x46 | `MarginalsAnswer` | `rows u64, n u64, n × (key u64, sum f64, variance f64, in_sketch u64, lower f64, upper f64)` |
//! | 0x47 | `ShuttingDown` | empty |
//! | 0x48 | `StatsReply` | server stats (below) |
//! | 0x7F | `Error` | `code u8`, message (u32-length-prefixed utf-8) |
//!
//! A query is `tag u8` then: `0` subset sum (`n u64, n × item u64`, sorted
//! ascending), `1` proportion (same), `2` top-k (`k u64`), `3` frequent items
//! (`phi f64`, finite, in `(0, 1)`), `4` rank quantile (`q f64`). An answer is
//! `tag u8` then: `0` estimate (`sum f64, variance f64, in_sketch u64,
//! lower f64, upper f64, confidence f64`), `1` items (`n u64, n × (item u64,
//! count f64)`), `2` rank (`present u8 [, item u64, count f64]`).
//!
//! Client-supplied floats that feed panicking estimator contracts (`confidence`,
//! `phi`) are validated *at decode time*, so a hostile frame is rejected with
//! [`WireError::Invalid`] before it can reach an `assert!` in the query layer.
//!
//! Server stats (the `StatsReply` payload) are `connections_accepted u64,
//! connections_closed u64`, [`REQUEST_KIND_COUNT`] × `requests u64` (indexed by
//! request kind − 1), [`ERROR_CODE_COUNT`] × `error_frames u64` (indexed by
//! [`ErrorCode`] − 1), [`REQUEST_KIND_COUNT`] × histogram, then `n u64, n ×
//! stream-stats`. A *histogram* is `m u64, m × (bucket u8, count u64)` (bucket
//! indices strictly increasing, below 64; only occupied buckets are encoded)
//! followed by `count u64, sum u64`. A *stream-stats* is name,
//! `rows_ingested u64`, [`REQUEST_KIND_COUNT`] × `requests u64`, then `s u64,
//! s × (sample-text, value u64)` where sample-text is a u32-length-prefixed
//! utf-8 rendered sample name (`family{labels}`), capped at 4096 bytes.

use std::io::{Read, Write};

use uss_core::persist::{crc64, PayloadReader, PayloadWriter, PersistError, TemporalMeta};
use uss_core::{HistogramSnapshot, Query, QueryAnswer, SubsetEstimate, TimeRange};
use uss_core::variance::ConfidenceInterval;

/// Frame magic: `USSW` (Unbiased Space Saving, Wire).
pub const MAGIC: [u8; 4] = *b"USSW";
/// Current protocol version.
pub const PROTOCOL_VERSION: u16 = 1;
/// Fixed frame header length in bytes.
pub const HEADER_LEN: usize = 16;
/// CRC-64 trailer length in bytes.
pub const CHECKSUM_LEN: usize = 8;
/// Hard ceiling on a frame payload. Anything larger is rejected from the header
/// alone, before any allocation.
pub const MAX_PAYLOAD: usize = 16 << 20;
/// Longest permitted stream name, in bytes.
pub const MAX_NAME_LEN: usize = 128;
/// Number of defined request kinds (`0x01..=0x08`). Per-kind stats arrays are
/// indexed by `kind - 1`.
pub const REQUEST_KIND_COUNT: usize = 8;
/// Number of defined [`ErrorCode`] classes (`1..=7`). Per-code stats arrays are
/// indexed by `code - 1`.
pub const ERROR_CODE_COUNT: usize = 7;

/// Decode-time ceilings on client-supplied stream geometry, so a hostile
/// `CreateStream` cannot make the server eagerly allocate absurd state.
pub mod limits {
    /// Most worker shards a client may request per stream.
    pub const MAX_SHARDS: u64 = 64;
    /// Most sketch bins a client may request per bucket.
    pub const MAX_CAPACITY: u64 = 1 << 20;
    /// Most fine buckets a client may request per shard.
    pub const MAX_FINE_BUCKETS: u64 = 1 << 16;
    /// Most buckets-per-tier a client may request.
    pub const MAX_TIER_FACTOR: u64 = 1 << 16;
    /// Most retention tiers a client may request.
    pub const MAX_TIERS: u64 = 64;
}

/// Why a frame failed to decode (or why a socket read could not produce one).
#[derive(Debug)]
#[non_exhaustive]
pub enum WireError {
    /// The bytes ran out before the structure they promised.
    Truncated {
        /// Bytes the next field needed.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The frame does not start with [`MAGIC`].
    BadMagic,
    /// The frame's version is one this build does not speak.
    UnsupportedVersion(u16),
    /// The frame kind byte is not one of the defined kinds.
    UnknownKind(u8),
    /// The payload length field exceeds [`MAX_PAYLOAD`].
    Oversized(u64),
    /// The CRC-64 trailer does not match the frame bytes.
    BadChecksum,
    /// The payload decoded but violates a protocol rule (bad name, bad float,
    /// geometry over the [`limits`], trailing bytes, …).
    Invalid(String),
    /// The underlying socket failed mid-frame.
    Io(std::io::Error),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, got {got}")
            }
            Self::BadMagic => write!(f, "bad frame magic (expected \"USSW\")"),
            Self::UnsupportedVersion(v) => {
                write!(f, "unsupported protocol version {v} (this build speaks {PROTOCOL_VERSION})")
            }
            Self::UnknownKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            Self::Oversized(n) => {
                write!(f, "payload length {n} exceeds the {MAX_PAYLOAD}-byte ceiling")
            }
            Self::BadChecksum => write!(f, "frame checksum mismatch"),
            Self::Invalid(why) => write!(f, "invalid payload: {why}"),
            Self::Io(err) => write!(f, "i/o failure mid-frame: {err}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<PersistError> for WireError {
    fn from(err: PersistError) -> Self {
        match err {
            PersistError::Truncated { needed, got } => Self::Truncated { needed, got },
            other => Self::Invalid(other.to_string()),
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(err: std::io::Error) -> Self {
        Self::Io(err)
    }
}

/// Machine-readable error classes carried by [`Response::Error`] frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The request frame itself could not be decoded.
    BadFrame = 1,
    /// The frame decoded but the request is semantically wrong.
    BadRequest = 2,
    /// The named stream does not exist.
    UnknownStream = 3,
    /// `CreateStream` named an existing stream with a different spec.
    StreamExists = 4,
    /// The supplied stream geometry fails engine validation.
    InvalidConfig = 5,
    /// A worker shard died; the request degraded instead of the daemon.
    ShardDown = 6,
    /// Something else went wrong server-side.
    Internal = 7,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Result<Self, WireError> {
        Ok(match v {
            1 => Self::BadFrame,
            2 => Self::BadRequest,
            3 => Self::UnknownStream,
            4 => Self::StreamExists,
            5 => Self::InvalidConfig,
            6 => Self::ShardDown,
            7 => Self::Internal,
            other => return Err(WireError::Invalid(format!("unknown error code {other}"))),
        })
    }
}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness / version check.
    Ping,
    /// Create (or idempotently re-open) a named stream with the given identity.
    CreateStream {
        /// The stream name (filesystem-safe, at most [`MAX_NAME_LEN`] bytes).
        name: String,
        /// The stream's engine geometry.
        spec: TemporalMeta,
    },
    /// Enumerate the registry.
    ListStreams,
    /// Append timestamped rows to a stream.
    Ingest {
        /// Target stream.
        name: String,
        /// `(item, timestamp)` rows.
        rows: Vec<(u64, u64)>,
    },
    /// Evaluate one typed query over a time range of a stream.
    Query {
        /// Target stream.
        name: String,
        /// The time range to merge and query.
        range: TimeRange,
        /// Confidence level for interval answers, in `(0, 1)`.
        confidence: f64,
        /// The query itself.
        query: Query,
    },
    /// Keyed marginals (`key = (item >> shift) & mask`) over a time range.
    Marginals {
        /// Target stream.
        name: String,
        /// The time range to merge and query.
        range: TimeRange,
        /// Confidence level for the per-key intervals, in `(0, 1)`.
        confidence: f64,
        /// Right-shift applied to each item before masking (at most 63).
        shift: u8,
        /// Mask applied after the shift.
        mask: u64,
    },
    /// Checkpoint every stream and stop the daemon.
    Shutdown,
    /// Snapshot the server's metrics registry.
    Stats,
}

/// One row of a [`Response::Streams`] listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamInfo {
    /// The stream name.
    pub name: String,
    /// The stream's engine geometry.
    pub spec: TemporalMeta,
    /// Rows enqueued so far.
    pub rows: u64,
}

/// Per-stream slice of a [`ServerStats`] snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamStats {
    /// The stream name.
    pub name: String,
    /// Rows enqueued into the stream's engine so far.
    pub rows_ingested: u64,
    /// Requests that named this stream, indexed by request kind − 1.
    pub requests: [u64; REQUEST_KIND_COUNT],
    /// Core metric samples for this stream's engine, rendered as
    /// `(family{labels}, value)` pairs — the same names the Prometheus
    /// exposition endpoint serves, so the two views agree by construction.
    pub samples: Vec<(String, u64)>,
}

/// A point-in-time snapshot of the server's metrics registry, carried by
/// [`Response::Stats`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Connections accepted since boot.
    pub connections_accepted: u64,
    /// Connections closed (cleanly or not) since boot.
    pub connections_closed: u64,
    /// Well-formed requests served, indexed by request kind − 1.
    pub requests: [u64; REQUEST_KIND_COUNT],
    /// Error frames sent, indexed by [`ErrorCode`] − 1.
    pub error_frames: [u64; ERROR_CODE_COUNT],
    /// Request-latency histograms, one per request kind (same index as
    /// `requests`), in nanoseconds. Empty only in hand-built values; the
    /// codec always carries exactly [`REQUEST_KIND_COUNT`] entries.
    pub latency: Vec<HistogramSnapshot>,
    /// Per-stream stats, in registry iteration order.
    pub streams: Vec<StreamStats>,
}

/// One keyed marginal: the key, its estimate, and its confidence interval.
#[derive(Debug, Clone, PartialEq)]
pub struct MarginalEntry {
    /// The roll-up key (`(item >> shift) & mask`).
    pub key: u64,
    /// The key's subset estimate (sum, equation-5 variance, entry count).
    pub estimate: SubsetEstimate,
    /// Normal-approximation interval at the request's confidence.
    pub ci: ConfidenceInterval,
}

/// A decoded response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Liveness reply, echoing the protocol version the server speaks.
    Pong {
        /// The server's [`PROTOCOL_VERSION`].
        protocol: u16,
    },
    /// `CreateStream` outcome.
    StreamCreated {
        /// `true` when the stream was created by this request, `false` when it
        /// already existed with an identical spec.
        created: bool,
    },
    /// The registry listing.
    Streams(Vec<StreamInfo>),
    /// Rows accepted by an `Ingest`.
    Ingested {
        /// Rows in the accepted batch.
        rows: u64,
    },
    /// A query answer.
    Answer {
        /// Rows in the snapshot that answered.
        rows: u64,
        /// The answer payload, bit-identical to the in-process
        /// [`uss_core::answer_query`] result for the same snapshot.
        answer: QueryAnswer,
    },
    /// A keyed-marginals answer, in first-seen entry order.
    MarginalsAnswer {
        /// Rows in the snapshot that answered.
        rows: u64,
        /// The per-key estimates.
        entries: Vec<MarginalEntry>,
    },
    /// Shutdown acknowledged; the connection closes after this frame.
    ShuttingDown,
    /// A metrics snapshot answering [`Request::Stats`].
    Stats(ServerStats),
    /// The request failed.
    Error {
        /// Machine-readable class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

// ----- kind bytes -----

const KIND_PING: u8 = 0x01;
const KIND_CREATE_STREAM: u8 = 0x02;
const KIND_LIST_STREAMS: u8 = 0x03;
const KIND_INGEST: u8 = 0x04;
const KIND_QUERY: u8 = 0x05;
const KIND_MARGINALS: u8 = 0x06;
const KIND_SHUTDOWN: u8 = 0x07;
const KIND_STATS: u8 = 0x08;
const KIND_PONG: u8 = 0x41;
const KIND_STREAM_CREATED: u8 = 0x42;
const KIND_STREAMS: u8 = 0x43;
const KIND_INGESTED: u8 = 0x44;
const KIND_ANSWER: u8 = 0x45;
const KIND_MARGINALS_ANSWER: u8 = 0x46;
const KIND_SHUTTING_DOWN: u8 = 0x47;
const KIND_STATS_REPLY: u8 = 0x48;
const KIND_ERROR: u8 = 0x7F;

// ----- frame layer -----

/// Copies a slice the caller has already length-checked into a fixed-size
/// array, so frame readers never reach for `try_into().unwrap()`.
// lint: total-decode
fn header_array<const N: usize>(slice: &[u8]) -> [u8; N] {
    let mut out = [0u8; N];
    out.copy_from_slice(slice);
    out
}

fn encode_frame(kind: u8, payload: Vec<u8>) -> Vec<u8> {
    debug_assert!(payload.len() <= MAX_PAYLOAD);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + CHECKSUM_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    out.push(kind);
    out.push(0);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    let crc = crc64(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Validates a 16-byte frame header, returning `(kind, payload_len)`.
///
/// This is the first gate on hostile bytes: magic, version and the payload
/// ceiling are all checked before a single payload byte is read, so an
/// attacker-controlled length field cannot drive an allocation.
///
/// # Errors
///
/// [`WireError::Truncated`] on a short header, [`WireError::BadMagic`],
/// [`WireError::UnsupportedVersion`], [`WireError::UnknownKind`] and
/// [`WireError::Oversized`] for each respective violation.
pub fn check_header(header: &[u8]) -> Result<(u8, usize), WireError> {
    if header.len() < HEADER_LEN {
        return Err(WireError::Truncated {
            needed: HEADER_LEN,
            got: header.len(),
        });
    }
    if header[0..4] != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = u16::from_le_bytes(header_array(&header[4..6]));
    if version != PROTOCOL_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let kind = header[6];
    if !matches!(kind, KIND_PING..=KIND_STATS | KIND_PONG..=KIND_STATS_REPLY | KIND_ERROR) {
        return Err(WireError::UnknownKind(kind));
    }
    let len = u64::from_le_bytes(header_array(&header[8..16]));
    if len > MAX_PAYLOAD as u64 {
        return Err(WireError::Oversized(len));
    }
    let len = usize::try_from(len).map_err(|_| WireError::Oversized(len))?;
    Ok((kind, len))
}

/// Decodes one complete frame from a byte slice, returning the kind and the
/// payload slice after validating header and checksum.
fn decode_frame(bytes: &[u8]) -> Result<(u8, &[u8]), WireError> {
    let (kind, len) = check_header(bytes.get(..HEADER_LEN).unwrap_or(bytes))?;
    let total = HEADER_LEN + len + CHECKSUM_LEN;
    if bytes.len() < total {
        return Err(WireError::Truncated {
            needed: total,
            got: bytes.len(),
        });
    }
    if bytes.len() > total {
        return Err(WireError::Invalid(format!(
            "{} trailing bytes after frame",
            bytes.len() - total
        )));
    }
    let body = &bytes[..HEADER_LEN + len];
    let expected = u64::from_le_bytes(header_array(&bytes[HEADER_LEN + len..total]));
    if crc64(body) != expected {
        return Err(WireError::BadChecksum);
    }
    Ok((kind, &bytes[HEADER_LEN..HEADER_LEN + len]))
}

/// Reads one frame from a socket-like reader, returning `(kind, payload)`.
///
/// Hostile or damaged input surfaces as a [`WireError`]; a cleanly closed
/// connection *before any header byte* surfaces as [`WireError::Io`] with
/// [`std::io::ErrorKind::UnexpectedEof`].
///
/// # Errors
///
/// Every header violation from [`check_header`], [`WireError::BadChecksum`]
/// on a corrupted body, and [`WireError::Io`] on transport failures.
pub fn read_frame<R: Read>(reader: &mut R) -> Result<(u8, Vec<u8>), WireError> {
    let mut header = [0u8; HEADER_LEN];
    reader.read_exact(&mut header)?;
    let (kind, len) = check_header(&header)?;
    let mut rest = vec![0u8; len + CHECKSUM_LEN];
    reader.read_exact(&mut rest)?;
    let mut body = Vec::with_capacity(HEADER_LEN + len);
    body.extend_from_slice(&header);
    body.extend_from_slice(&rest[..len]);
    let expected = u64::from_le_bytes(header_array(&rest[len..]));
    if crc64(&body) != expected {
        return Err(WireError::BadChecksum);
    }
    body.drain(..HEADER_LEN);
    Ok((kind, body))
}

/// Writes one already-encoded frame to a socket-like writer.
///
/// # Errors
///
/// [`WireError::Io`] on transport failures.
pub fn write_frame<W: Write>(writer: &mut W, frame: &[u8]) -> Result<(), WireError> {
    writer.write_all(frame)?;
    writer.flush()?;
    Ok(())
}

// ----- payload helpers -----

fn write_name(w: &mut PayloadWriter, name: &str) {
    w.u32(name.len() as u32);
    w.bytes(name.as_bytes());
}

fn read_name(r: &mut PayloadReader<'_>) -> Result<String, WireError> {
    let len = r.len_u32()?;
    if len > MAX_NAME_LEN {
        return Err(WireError::Invalid(format!(
            "name length {len} exceeds the {MAX_NAME_LEN}-byte ceiling"
        )));
    }
    let bytes = r.take(len)?;
    let name = std::str::from_utf8(bytes)
        .map_err(|_| WireError::Invalid("name is not valid utf-8".into()))?;
    validate_name(name)?;
    Ok(name.to_string())
}

/// Checks that a stream name is non-empty, at most [`MAX_NAME_LEN`] bytes, and
/// uses only `[A-Za-z0-9_.-]` — names double as checkpoint directory names, so
/// they must be filesystem-safe on every platform.
///
/// # Errors
///
/// [`WireError::Invalid`] describing the violation.
pub fn validate_name(name: &str) -> Result<(), WireError> {
    if name.is_empty() {
        return Err(WireError::Invalid("stream name is empty".into()));
    }
    if name.len() > MAX_NAME_LEN {
        return Err(WireError::Invalid(format!(
            "name length {} exceeds the {MAX_NAME_LEN}-byte ceiling",
            name.len()
        )));
    }
    if name == "." || name == ".." {
        return Err(WireError::Invalid("stream name cannot be \".\" or \"..\"".into()));
    }
    if !name
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b'-'))
    {
        return Err(WireError::Invalid(format!(
            "stream name {name:?} contains characters outside [A-Za-z0-9_.-]"
        )));
    }
    Ok(())
}

fn write_spec(w: &mut PayloadWriter, spec: &TemporalMeta) {
    w.u64(spec.shards);
    w.u64(spec.capacity);
    w.u64(spec.seed);
    w.u64(spec.bucket_width);
    w.u64(spec.fine_buckets);
    w.u64(spec.tier_factor);
    w.u64(spec.tiers);
}

fn read_spec(r: &mut PayloadReader<'_>) -> Result<TemporalMeta, WireError> {
    let spec = TemporalMeta {
        shards: r.u64()?,
        capacity: r.u64()?,
        seed: r.u64()?,
        bucket_width: r.u64()?,
        fine_buckets: r.u64()?,
        tier_factor: r.u64()?,
        tiers: r.u64()?,
    };
    validate_spec(&spec)?;
    Ok(spec)
}

/// Checks a client-supplied stream geometry against the decode-time [`limits`].
///
/// Semantic validation (zero dimensions, tier factor below 2) is left to the
/// engine's typed config errors; this gate only stops a hostile spec from
/// driving huge eager allocations.
///
/// # Errors
///
/// [`WireError::Invalid`] naming the field over its ceiling.
pub fn validate_spec(spec: &TemporalMeta) -> Result<(), WireError> {
    let checks = [
        (spec.shards, limits::MAX_SHARDS, "shards"),
        (spec.capacity, limits::MAX_CAPACITY, "capacity"),
        (spec.fine_buckets, limits::MAX_FINE_BUCKETS, "fine_buckets"),
        (spec.tier_factor, limits::MAX_TIER_FACTOR, "tier_factor"),
        (spec.tiers, limits::MAX_TIERS, "tiers"),
    ];
    for (value, ceiling, what) in checks {
        if value > ceiling {
            return Err(WireError::Invalid(format!(
                "{what} {value} exceeds the wire ceiling {ceiling}"
            )));
        }
    }
    Ok(())
}

fn write_range(w: &mut PayloadWriter, range: &TimeRange) {
    match range {
        TimeRange::All => w.bytes(&[0]),
        TimeRange::LastBuckets(n) => {
            w.bytes(&[1]);
            w.u64(*n);
        }
        TimeRange::Between { start, end } => {
            w.bytes(&[2]);
            w.u64(*start);
            w.u64(*end);
        }
    }
}

fn read_range(r: &mut PayloadReader<'_>) -> Result<TimeRange, WireError> {
    Ok(match r.take(1)?[0] {
        0 => TimeRange::All,
        1 => TimeRange::LastBuckets(r.u64()?),
        2 => TimeRange::Between {
            start: r.u64()?,
            end: r.u64()?,
        },
        other => return Err(WireError::Invalid(format!("unknown time-range tag {other}"))),
    })
}

fn read_confidence(r: &mut PayloadReader<'_>) -> Result<f64, WireError> {
    let confidence = r.f64()?;
    if !(confidence.is_finite() && confidence > 0.0 && confidence < 1.0) {
        return Err(WireError::Invalid(format!(
            "confidence {confidence} is not strictly between 0 and 1"
        )));
    }
    Ok(confidence)
}

fn write_items(w: &mut PayloadWriter, items: &[u64]) {
    w.u64(items.len() as u64);
    for &item in items {
        w.u64(item);
    }
}

fn read_items(r: &mut PayloadReader<'_>) -> Result<Vec<u64>, WireError> {
    let n = r.count(8)?;
    let mut items = Vec::with_capacity(n);
    for _ in 0..n {
        items.push(r.u64()?);
    }
    if !items.windows(2).all(|w| w[0] < w[1]) {
        return Err(WireError::Invalid(
            "subset items must be sorted ascending with no duplicates".into(),
        ));
    }
    Ok(items)
}

fn write_query(w: &mut PayloadWriter, query: &Query) {
    match query {
        Query::SubsetSum { items } => {
            w.bytes(&[0]);
            write_items(w, items);
        }
        Query::Proportion { items } => {
            w.bytes(&[1]);
            write_items(w, items);
        }
        Query::TopK { k } => {
            w.bytes(&[2]);
            w.u64(*k as u64);
        }
        Query::FrequentItems { phi } => {
            w.bytes(&[3]);
            w.f64(*phi);
        }
        Query::RankQuantile { q } => {
            w.bytes(&[4]);
            w.f64(*q);
        }
    }
}

fn read_query(r: &mut PayloadReader<'_>) -> Result<Query, WireError> {
    Ok(match r.take(1)?[0] {
        0 => Query::SubsetSum { items: read_items(r)? },
        1 => Query::Proportion { items: read_items(r)? },
        2 => {
            let k = r.u64()?;
            let k: usize = k
                .try_into()
                .map_err(|_| WireError::Invalid(format!("top-k count {k} overflows usize")))?;
            Query::TopK { k }
        }
        3 => {
            let phi = r.f64()?;
            // `frequent_items` asserts phi ∈ (0, 1); gate hostile floats here.
            if !(phi.is_finite() && phi > 0.0 && phi < 1.0) {
                return Err(WireError::Invalid(format!(
                    "frequent-items threshold {phi} is not strictly between 0 and 1"
                )));
            }
            Query::FrequentItems { phi }
        }
        4 => Query::RankQuantile { q: r.f64()? },
        other => return Err(WireError::Invalid(format!("unknown query tag {other}"))),
    })
}

fn write_answer(w: &mut PayloadWriter, answer: &QueryAnswer) {
    match answer {
        QueryAnswer::Estimate { estimate, ci } => {
            w.bytes(&[0]);
            w.f64(estimate.sum);
            w.f64(estimate.variance);
            w.u64(estimate.items_in_sketch as u64);
            w.f64(ci.lower);
            w.f64(ci.upper);
            w.f64(ci.confidence);
        }
        QueryAnswer::Items(items) => {
            w.bytes(&[1]);
            w.u64(items.len() as u64);
            for &(item, count) in items {
                w.u64(item);
                w.f64(count);
            }
        }
        QueryAnswer::Rank(entry) => {
            w.bytes(&[2]);
            match entry {
                Some((item, count)) => {
                    w.bytes(&[1]);
                    w.u64(*item);
                    w.f64(*count);
                }
                None => w.bytes(&[0]),
            }
        }
    }
}

fn read_answer(r: &mut PayloadReader<'_>) -> Result<QueryAnswer, WireError> {
    Ok(match r.take(1)?[0] {
        0 => QueryAnswer::Estimate {
            estimate: SubsetEstimate {
                sum: r.f64()?,
                variance: r.f64()?,
                items_in_sketch: usize::try_from(r.u64()?)
                    .map_err(|_| WireError::Invalid("entry count overflows usize".into()))?,
            },
            ci: ConfidenceInterval {
                lower: r.f64()?,
                upper: r.f64()?,
                confidence: r.f64()?,
            },
        },
        1 => {
            let n = r.count(16)?;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push((r.u64()?, r.f64()?));
            }
            QueryAnswer::Items(items)
        }
        2 => QueryAnswer::Rank(match r.take(1)?[0] {
            0 => None,
            1 => Some((r.u64()?, r.f64()?)),
            other => {
                return Err(WireError::Invalid(format!("unknown rank-presence tag {other}")))
            }
        }),
        other => return Err(WireError::Invalid(format!("unknown answer tag {other}"))),
    })
}

/// Maps a request kind byte to its stats-array index, or `None` for
/// non-request kinds. The server uses this to bucket per-kind counters and
/// latency histograms.
#[must_use]
pub fn request_kind_index(kind: u8) -> Option<usize> {
    match kind {
        KIND_PING..=KIND_STATS => Some(usize::from(kind) - 1),
        _ => None,
    }
}

fn write_histogram(w: &mut PayloadWriter, h: &HistogramSnapshot) {
    w.u64(h.buckets.len() as u64);
    for &(bucket, count) in &h.buckets {
        w.bytes(&[bucket]);
        w.u64(count);
    }
    w.u64(h.count);
    w.u64(h.sum);
}

fn read_histogram(r: &mut PayloadReader<'_>) -> Result<HistogramSnapshot, WireError> {
    let n = r.count(9)?;
    let mut buckets = Vec::with_capacity(n);
    let mut prev: Option<u8> = None;
    for _ in 0..n {
        let bucket = r.take(1)?[0];
        if bucket >= 64 {
            return Err(WireError::Invalid(format!(
                "histogram bucket index {bucket} exceeds 63"
            )));
        }
        if prev.is_some_and(|p| p >= bucket) {
            return Err(WireError::Invalid(
                "histogram bucket indices must be strictly increasing".into(),
            ));
        }
        prev = Some(bucket);
        buckets.push((bucket, r.u64()?));
    }
    Ok(HistogramSnapshot {
        buckets,
        count: r.u64()?,
        sum: r.u64()?,
    })
}

fn write_server_stats(w: &mut PayloadWriter, stats: &ServerStats) {
    w.u64(stats.connections_accepted);
    w.u64(stats.connections_closed);
    for &count in &stats.requests {
        w.u64(count);
    }
    for &count in &stats.error_frames {
        w.u64(count);
    }
    // The codec always carries exactly one histogram per request kind; pad a
    // hand-built short vector with empties rather than emit a malformed frame.
    let empty = HistogramSnapshot::default();
    for i in 0..REQUEST_KIND_COUNT {
        write_histogram(w, stats.latency.get(i).unwrap_or(&empty));
    }
    w.u64(stats.streams.len() as u64);
    for stream in &stats.streams {
        write_name(w, &stream.name);
        w.u64(stream.rows_ingested);
        for &count in &stream.requests {
            w.u64(count);
        }
        w.u64(stream.samples.len() as u64);
        for (text, value) in &stream.samples {
            write_name_unchecked(w, text);
            w.u64(*value);
        }
    }
}

fn read_server_stats(r: &mut PayloadReader<'_>) -> Result<ServerStats, WireError> {
    let connections_accepted = r.u64()?;
    let connections_closed = r.u64()?;
    let mut requests = [0u64; REQUEST_KIND_COUNT];
    for slot in &mut requests {
        *slot = r.u64()?;
    }
    let mut error_frames = [0u64; ERROR_CODE_COUNT];
    for slot in &mut error_frames {
        *slot = r.u64()?;
    }
    let mut latency = Vec::with_capacity(REQUEST_KIND_COUNT);
    for _ in 0..REQUEST_KIND_COUNT {
        latency.push(read_histogram(r)?);
    }
    let n = r.count(4 + 8 + 8 * REQUEST_KIND_COUNT + 8)?;
    let mut streams = Vec::with_capacity(n);
    for _ in 0..n {
        let name = read_name(r)?;
        let rows_ingested = r.u64()?;
        let mut stream_requests = [0u64; REQUEST_KIND_COUNT];
        for slot in &mut stream_requests {
            *slot = r.u64()?;
        }
        let s = r.count(4 + 8)?;
        let mut samples = Vec::with_capacity(s);
        for _ in 0..s {
            samples.push((read_message(r)?, r.u64()?));
        }
        streams.push(StreamStats {
            name,
            rows_ingested,
            requests: stream_requests,
            samples,
        });
    }
    Ok(ServerStats {
        connections_accepted,
        connections_closed,
        requests,
        error_frames,
        latency,
        streams,
    })
}

// ----- request codec -----

impl Request {
    /// Encodes this request as one complete frame, ready to write to a socket.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = PayloadWriter::new();
        let kind = match self {
            Self::Ping => KIND_PING,
            Self::CreateStream { name, spec } => {
                write_name(&mut w, name);
                write_spec(&mut w, spec);
                KIND_CREATE_STREAM
            }
            Self::ListStreams => KIND_LIST_STREAMS,
            Self::Ingest { name, rows } => {
                write_name(&mut w, name);
                w.u64(rows.len() as u64);
                for &(item, ts) in rows {
                    w.u64(item);
                    w.u64(ts);
                }
                KIND_INGEST
            }
            Self::Query {
                name,
                range,
                confidence,
                query,
            } => {
                write_name(&mut w, name);
                write_range(&mut w, range);
                w.f64(*confidence);
                write_query(&mut w, query);
                KIND_QUERY
            }
            Self::Marginals {
                name,
                range,
                confidence,
                shift,
                mask,
            } => {
                write_name(&mut w, name);
                write_range(&mut w, range);
                w.f64(*confidence);
                w.bytes(&[*shift]);
                w.u64(*mask);
                KIND_MARGINALS
            }
            Self::Shutdown => KIND_SHUTDOWN,
            Self::Stats => KIND_STATS,
        };
        encode_frame(kind, w.into_bytes())
    }

    /// Decodes a request from a frame's kind byte and payload, totally: any
    /// violation is a [`WireError`], never a panic.
    ///
    /// # Errors
    ///
    /// [`WireError::UnknownKind`] for response kinds, and the payload errors
    /// documented on the field readers.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<Self, WireError> {
        let mut r = PayloadReader::new(payload);
        let request = match kind {
            KIND_PING => Self::Ping,
            KIND_CREATE_STREAM => Self::CreateStream {
                name: read_name(&mut r)?,
                spec: read_spec(&mut r)?,
            },
            KIND_LIST_STREAMS => Self::ListStreams,
            KIND_INGEST => {
                let name = read_name(&mut r)?;
                let n = r.count(16)?;
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    rows.push((r.u64()?, r.u64()?));
                }
                Self::Ingest { name, rows }
            }
            KIND_QUERY => Self::Query {
                name: read_name(&mut r)?,
                range: read_range(&mut r)?,
                confidence: read_confidence(&mut r)?,
                query: read_query(&mut r)?,
            },
            KIND_MARGINALS => {
                let name = read_name(&mut r)?;
                let range = read_range(&mut r)?;
                let confidence = read_confidence(&mut r)?;
                let shift = r.take(1)?[0];
                if shift > 63 {
                    return Err(WireError::Invalid(format!(
                        "marginal shift {shift} exceeds 63"
                    )));
                }
                Self::Marginals {
                    name,
                    range,
                    confidence,
                    shift,
                    mask: r.u64()?,
                }
            }
            KIND_SHUTDOWN => Self::Shutdown,
            KIND_STATS => Self::Stats,
            other => return Err(WireError::UnknownKind(other)),
        };
        r.finish().map_err(WireError::from)?;
        Ok(request)
    }
}

// ----- response codec -----

impl Response {
    /// Encodes this response as one complete frame, ready to write to a socket.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = PayloadWriter::new();
        let kind = match self {
            Self::Pong { protocol } => {
                w.bytes(&protocol.to_le_bytes());
                KIND_PONG
            }
            Self::StreamCreated { created } => {
                w.bytes(&[u8::from(*created)]);
                KIND_STREAM_CREATED
            }
            Self::Streams(streams) => {
                w.u64(streams.len() as u64);
                for stream in streams {
                    write_name(&mut w, &stream.name);
                    write_spec(&mut w, &stream.spec);
                    w.u64(stream.rows);
                }
                KIND_STREAMS
            }
            Self::Ingested { rows } => {
                w.u64(*rows);
                KIND_INGESTED
            }
            Self::Answer { rows, answer } => {
                w.u64(*rows);
                write_answer(&mut w, answer);
                KIND_ANSWER
            }
            Self::MarginalsAnswer { rows, entries } => {
                w.u64(*rows);
                w.u64(entries.len() as u64);
                for entry in entries {
                    w.u64(entry.key);
                    w.f64(entry.estimate.sum);
                    w.f64(entry.estimate.variance);
                    w.u64(entry.estimate.items_in_sketch as u64);
                    w.f64(entry.ci.lower);
                    w.f64(entry.ci.upper);
                    w.f64(entry.ci.confidence);
                }
                KIND_MARGINALS_ANSWER
            }
            Self::ShuttingDown => KIND_SHUTTING_DOWN,
            Self::Stats(stats) => {
                write_server_stats(&mut w, stats);
                KIND_STATS_REPLY
            }
            Self::Error { code, message } => {
                w.bytes(&[*code as u8]);
                write_name_unchecked(&mut w, message);
                KIND_ERROR
            }
        };
        encode_frame(kind, w.into_bytes())
    }

    /// Decodes a response from a frame's kind byte and payload, totally.
    ///
    /// # Errors
    ///
    /// [`WireError::UnknownKind`] for request kinds, and the payload errors
    /// documented on the field readers.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<Self, WireError> {
        let mut r = PayloadReader::new(payload);
        let response = match kind {
            KIND_PONG => Self::Pong {
                protocol: u16::from_le_bytes(r.array()?),
            },
            KIND_STREAM_CREATED => Self::StreamCreated {
                created: match r.take(1)?[0] {
                    0 => false,
                    1 => true,
                    other => {
                        return Err(WireError::Invalid(format!("unknown created flag {other}")))
                    }
                },
            },
            KIND_STREAMS => {
                let n = r.count(4 + 7 * 8 + 8)?;
                let mut streams = Vec::with_capacity(n);
                for _ in 0..n {
                    streams.push(StreamInfo {
                        name: read_name(&mut r)?,
                        spec: read_spec(&mut r)?,
                        rows: r.u64()?,
                    });
                }
                Self::Streams(streams)
            }
            KIND_INGESTED => Self::Ingested { rows: r.u64()? },
            KIND_ANSWER => Self::Answer {
                rows: r.u64()?,
                answer: read_answer(&mut r)?,
            },
            KIND_MARGINALS_ANSWER => {
                let rows = r.u64()?;
                let n = r.count(8 * 7)?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    entries.push(MarginalEntry {
                        key: r.u64()?,
                        estimate: SubsetEstimate {
                            sum: r.f64()?,
                            variance: r.f64()?,
                            items_in_sketch: usize::try_from(r.u64()?).map_err(|_| {
                                WireError::Invalid("entry count overflows usize".into())
                            })?,
                        },
                        ci: ConfidenceInterval {
                            lower: r.f64()?,
                            upper: r.f64()?,
                            confidence: r.f64()?,
                        },
                    });
                }
                Self::MarginalsAnswer { rows, entries }
            }
            KIND_SHUTTING_DOWN => Self::ShuttingDown,
            KIND_STATS_REPLY => Self::Stats(read_server_stats(&mut r)?),
            KIND_ERROR => Self::Error {
                code: ErrorCode::from_u8(r.take(1)?[0])?,
                message: read_message(&mut r)?,
            },
            other => return Err(WireError::UnknownKind(other)),
        };
        r.finish().map_err(WireError::from)?;
        Ok(response)
    }
}

/// Error messages are free-form utf-8 (not filesystem-constrained names), but
/// still length-capped so a hostile server cannot balloon a client.
fn write_name_unchecked(w: &mut PayloadWriter, message: &str) {
    let bytes = message.as_bytes();
    let len = bytes.len().min(4096);
    w.u32(len as u32);
    w.bytes(&bytes[..len]);
}

fn read_message(r: &mut PayloadReader<'_>) -> Result<String, WireError> {
    let len = r.len_u32()?;
    if len > 4096 {
        return Err(WireError::Invalid(format!(
            "error message length {len} exceeds the 4096-byte ceiling"
        )));
    }
    let bytes = r.take(len)?;
    Ok(String::from_utf8_lossy(bytes).into_owned())
}

/// Encodes a one-shot byte-level round trip for tests and tools: decodes a full
/// frame (header + payload + checksum) into a [`Request`].
///
/// # Errors
///
/// Every frame and payload error the layered decoders produce.
pub fn decode_request_frame(bytes: &[u8]) -> Result<Request, WireError> {
    let (kind, payload) = decode_frame(bytes)?;
    Request::decode(kind, payload)
}

/// Decodes a full frame (header + payload + checksum) into a [`Response`].
///
/// # Errors
///
/// Every frame and payload error the layered decoders produce.
pub fn decode_response_frame(bytes: &[u8]) -> Result<Response, WireError> {
    let (kind, payload) = decode_frame(bytes)?;
    Response::decode(kind, payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> TemporalMeta {
        TemporalMeta {
            shards: 2,
            capacity: 64,
            seed: 7,
            bucket_width: 100,
            fine_buckets: 8,
            tier_factor: 4,
            tiers: 2,
        }
    }

    #[test]
    fn request_round_trips() {
        let requests = vec![
            Request::Ping,
            Request::CreateStream {
                name: "clicks".into(),
                spec: spec(),
            },
            Request::ListStreams,
            Request::Ingest {
                name: "clicks".into(),
                rows: vec![(1, 10), (2, 20), (1, 30)],
            },
            Request::Query {
                name: "clicks".into(),
                range: TimeRange::Between { start: 5, end: 50 },
                confidence: 0.95,
                query: Query::SubsetSum { items: vec![1, 2, 9] },
            },
            Request::Marginals {
                name: "clicks".into(),
                range: TimeRange::LastBuckets(4),
                confidence: 0.9,
                shift: 8,
                mask: 0xFF,
            },
            Request::Shutdown,
            Request::Stats,
        ];
        for request in requests {
            let frame = request.encode();
            assert_eq!(decode_request_frame(&frame).unwrap(), request);
        }
    }

    #[test]
    fn response_round_trips() {
        let responses = vec![
            Response::Pong {
                protocol: PROTOCOL_VERSION,
            },
            Response::StreamCreated { created: true },
            Response::Streams(vec![StreamInfo {
                name: "clicks".into(),
                spec: spec(),
                rows: 123,
            }]),
            Response::Ingested { rows: 3 },
            Response::Answer {
                rows: 10,
                answer: QueryAnswer::Items(vec![(1, 5.0), (2, 3.0)]),
            },
            Response::Answer {
                rows: 10,
                answer: QueryAnswer::Rank(None),
            },
            Response::MarginalsAnswer {
                rows: 10,
                entries: vec![MarginalEntry {
                    key: 3,
                    estimate: SubsetEstimate {
                        sum: 5.0,
                        variance: 0.5,
                        items_in_sketch: 2,
                    },
                    ci: ConfidenceInterval {
                        lower: 4.0,
                        upper: 6.0,
                        confidence: 0.95,
                    },
                }],
            },
            Response::ShuttingDown,
            Response::Stats(sample_stats()),
            Response::Error {
                code: ErrorCode::UnknownStream,
                message: "no such stream".into(),
            },
        ];
        for response in responses {
            let frame = response.encode();
            assert_eq!(decode_response_frame(&frame).unwrap(), response);
        }
    }

    fn sample_stats() -> ServerStats {
        let mut latency: Vec<HistogramSnapshot> =
            (0..REQUEST_KIND_COUNT).map(|_| HistogramSnapshot::default()).collect();
        latency[4] = HistogramSnapshot {
            buckets: vec![(10, 3), (12, 1)],
            count: 4,
            sum: 9000,
        };
        ServerStats {
            connections_accepted: 5,
            connections_closed: 4,
            requests: [1, 2, 3, 4, 5, 6, 7, 8],
            error_frames: [0, 1, 0, 0, 2, 0, 0],
            latency,
            streams: vec![StreamStats {
                name: "clicks".into(),
                rows_ingested: 1000,
                requests: [0, 0, 0, 9, 2, 0, 0, 0],
                samples: vec![
                    ("uss_ingest_rows_total{stream=\"clicks\"}".into(), 1000),
                    ("uss_temporal_rotations_total{stream=\"clicks\"}".into(), 3),
                ],
            }],
        }
    }

    #[test]
    fn stats_round_trip_is_exact_and_hostile_stats_are_gated() {
        let stats = sample_stats();
        let frame = Response::Stats(stats.clone()).encode();
        assert_eq!(decode_response_frame(&frame).unwrap(), Response::Stats(stats));

        // A short hand-built latency vector is padded to the full kind count
        // on the wire, so it decodes to 8 (empty) histograms, not a panic.
        let short = ServerStats::default();
        match decode_response_frame(&Response::Stats(short).encode()).unwrap() {
            Response::Stats(decoded) => {
                assert_eq!(decoded.latency.len(), REQUEST_KIND_COUNT);
                assert!(decoded.latency.iter().all(|h| h.count == 0));
            }
            other => panic!("expected stats, got {other:?}"),
        }

        // Out-of-range and out-of-order bucket indices are rejected at decode.
        for buckets in [vec![(64u8, 1u64)], vec![(5, 1), (5, 2)], vec![(6, 1), (3, 2)]] {
            let mut bad = sample_stats();
            bad.latency[0] = HistogramSnapshot {
                buckets,
                count: 1,
                sum: 1,
            };
            assert!(matches!(
                decode_response_frame(&Response::Stats(bad).encode()),
                Err(WireError::Invalid(_))
            ));
        }
    }

    #[test]
    fn request_kind_indices_cover_every_request() {
        for kind in 1u8..=REQUEST_KIND_COUNT as u8 {
            assert_eq!(request_kind_index(kind), Some(usize::from(kind) - 1));
        }
        assert_eq!(request_kind_index(0), None);
        assert_eq!(request_kind_index(REQUEST_KIND_COUNT as u8 + 1), None);
        assert_eq!(request_kind_index(KIND_PONG), None);
    }

    #[test]
    fn hostile_frames_decode_to_errors() {
        let frame = Request::Ping.encode();
        // Truncation at every prefix length.
        for cut in 0..frame.len() {
            assert!(decode_request_frame(&frame[..cut]).is_err());
        }
        // A single flipped bit anywhere breaks magic, version, kind, length,
        // payload or checksum — never panics, never passes silently.
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut bad = frame.clone();
                bad[byte] ^= 1 << bit;
                assert!(decode_request_frame(&bad).is_err());
            }
        }
    }

    #[test]
    fn header_gates_reject_before_allocation() {
        let mut oversized = Request::Ping.encode();
        oversized[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            check_header(&oversized[..HEADER_LEN]),
            Err(WireError::Oversized(_))
        ));

        let mut wrong_version = Request::Ping.encode();
        wrong_version[4..6].copy_from_slice(&9u16.to_le_bytes());
        assert!(matches!(
            check_header(&wrong_version[..HEADER_LEN]),
            Err(WireError::UnsupportedVersion(9))
        ));

        let mut bad_magic = Request::Ping.encode();
        bad_magic[0] = b'X';
        assert!(matches!(
            check_header(&bad_magic[..HEADER_LEN]),
            Err(WireError::BadMagic)
        ));
    }

    #[test]
    fn hostile_floats_and_names_are_gated() {
        let q = Request::Query {
            name: "s".into(),
            range: TimeRange::All,
            confidence: f64::NAN,
            query: Query::TopK { k: 1 },
        };
        assert!(matches!(
            decode_request_frame(&q.encode()),
            Err(WireError::Invalid(_))
        ));

        let q = Request::Query {
            name: "s".into(),
            range: TimeRange::All,
            confidence: 0.95,
            query: Query::FrequentItems { phi: 2.0 },
        };
        assert!(matches!(
            decode_request_frame(&q.encode()),
            Err(WireError::Invalid(_))
        ));

        for bad in ["", "..", "a/b", "x y", "ü"] {
            assert!(validate_name(bad).is_err(), "{bad:?} should be rejected");
        }
        assert!(validate_name("ad-clicks_v2.hourly").is_ok());

        let mut spec_over = spec();
        spec_over.shards = limits::MAX_SHARDS + 1;
        assert!(validate_spec(&spec_over).is_err());
    }
}
