//! The sketch daemon binary.
//!
//! ```text
//! uss_serverd [--addr HOST:PORT] [--data-dir DIR]
//!             [--metrics-addr HOST:PORT] [--log-level LEVEL]
//! ```
//!
//! Binds `--addr` (default `127.0.0.1:7071`), restores any streams
//! checkpointed under `--data-dir`, and serves until a client sends the wire
//! `Shutdown` request — at which point every stream is checkpointed back into
//! the data dir and the process exits.
//!
//! `--metrics-addr` additionally binds a plaintext Prometheus exposition
//! endpoint (text format 0.0.4; `GET` anything). `--log-level` gates the
//! daemon's stderr log: `off`, `error`, `warn`, `info` (default) or `debug`.

use std::path::PathBuf;
use std::process::ExitCode;

use uss_server::logger;
use uss_server::{LogLevel, ServerConfig, SketchServer};

const USAGE: &str = "usage: uss_serverd [--addr HOST:PORT] [--data-dir DIR] \
[--metrics-addr HOST:PORT] [--log-level off|error|warn|info|debug]";

fn main() -> ExitCode {
    let mut addr = String::from("127.0.0.1:7071");
    let mut data_dir: Option<PathBuf> = None;
    let mut metrics_addr: Option<String> = None;
    let mut log_level = LogLevel::Info;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(value) => addr = value,
                None => return usage("--addr needs a HOST:PORT value"),
            },
            "--data-dir" => match args.next() {
                Some(value) => data_dir = Some(PathBuf::from(value)),
                None => return usage("--data-dir needs a directory"),
            },
            "--metrics-addr" => match args.next() {
                Some(value) => metrics_addr = Some(value),
                None => return usage("--metrics-addr needs a HOST:PORT value"),
            },
            "--log-level" => match args.next().as_deref().map(LogLevel::parse) {
                Some(Ok(level)) => log_level = level,
                Some(Err(bad)) => return usage(&format!("unknown log level {bad:?}")),
                None => return usage("--log-level needs a level name"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    logger::set_level(log_level);

    let config = ServerConfig {
        data_dir,
        metrics_addr,
    };
    let server = match SketchServer::start(&addr, config) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("uss_serverd: {err}");
            return ExitCode::FAILURE;
        }
    };
    println!("uss_serverd listening on {}", server.addr());
    if let Some(metrics) = server.metrics_addr() {
        println!("uss_serverd metrics on http://{metrics}/metrics");
    }
    server.join();
    ExitCode::SUCCESS
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("uss_serverd: {problem}");
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}
