//! The sketch daemon binary.
//!
//! ```text
//! uss_serverd [--addr HOST:PORT] [--data-dir DIR]
//! ```
//!
//! Binds `--addr` (default `127.0.0.1:7071`), restores any streams
//! checkpointed under `--data-dir`, and serves until a client sends the wire
//! `Shutdown` request — at which point every stream is checkpointed back into
//! the data dir and the process exits.

use std::path::PathBuf;
use std::process::ExitCode;

use uss_server::{ServerConfig, SketchServer};

fn main() -> ExitCode {
    let mut addr = String::from("127.0.0.1:7071");
    let mut data_dir: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(value) => addr = value,
                None => return usage("--addr needs a HOST:PORT value"),
            },
            "--data-dir" => match args.next() {
                Some(value) => data_dir = Some(PathBuf::from(value)),
                None => return usage("--data-dir needs a directory"),
            },
            "--help" | "-h" => {
                println!("usage: uss_serverd [--addr HOST:PORT] [--data-dir DIR]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    let server = match SketchServer::start(&addr, ServerConfig { data_dir }) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("uss_serverd: {err}");
            return ExitCode::FAILURE;
        }
    };
    println!("uss_serverd listening on {}", server.addr());
    server.join();
    ExitCode::SUCCESS
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("uss_serverd: {problem}");
    eprintln!("usage: uss_serverd [--addr HOST:PORT] [--data-dir DIR]");
    ExitCode::FAILURE
}
