//! # The network service tier
//!
//! A TCP daemon hosting many named sketch streams — the serving surface that
//! turns this workspace's in-process engines into a benchmarkable,
//! multi-tenant service. Each stream owns one
//! [`TemporalIngestEngine`](uss_core::TemporalIngestEngine); concurrent
//! clients ingest timestamped rows and run every
//! [`Query`](uss_core::Query) variant, keyed marginals and
//! [`TimeRange`](uss_core::TimeRange) queries over a small binary protocol
//! with the persist codec's frame discipline: length-prefixed, versioned,
//! CRC-64-checksummed, and decoded *totally* — hostile bytes produce typed
//! error frames, never a panic.
//!
//! | module | contents |
//! |--------|----------|
//! | [`wire`] | the frame codec: byte layout, request/response types, total decoders |
//! | [`server`] | [`SketchServer`]: the daemon, registry, checkpoint-on-shutdown / restore-on-boot, metrics + Prometheus exposition |
//! | [`client`] | [`SketchClient`]: a typed synchronous client |
//! | [`logger`] | the daemon's minimal leveled stderr logger (`--log-level`) |
//!
//! ## Quick start
//!
//! ```
//! use uss_server::{SketchClient, SketchServer, ServerConfig};
//! use uss_core::persist::TemporalMeta;
//! use uss_core::{Query, QueryAnswer, TimeRange};
//!
//! // Ephemeral port, in-memory (no checkpoint directory).
//! let server = SketchServer::start("127.0.0.1:0", ServerConfig::default()).unwrap();
//!
//! let mut client = SketchClient::connect(server.addr()).unwrap();
//! client.create_stream("clicks", TemporalMeta {
//!     shards: 2, capacity: 256, seed: 42,
//!     bucket_width: 60, fine_buckets: 32, tier_factor: 4, tiers: 2,
//! }).unwrap();
//!
//! let rows: Vec<(u64, u64)> = (0..10_000).map(|i| (i % 97, i / 100)).collect();
//! client.ingest("clicks", &rows).unwrap();
//!
//! let (rows_seen, answer) =
//!     client.query("clicks", &TimeRange::All, &Query::TopK { k: 5 }).unwrap();
//! assert_eq!(rows_seen, 10_000);
//! if let QueryAnswer::Items(top) = answer {
//!     assert_eq!(top.len(), 5);
//! }
//!
//! server.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod logger;
pub mod server;
pub mod wire;

pub use client::{ClientError, SketchClient};
pub use logger::LogLevel;
pub use server::{ServerConfig, ServerError, SketchServer};
pub use wire::{
    ErrorCode, MarginalEntry, Request, Response, ServerStats, StreamInfo, StreamStats, WireError,
    MAX_PAYLOAD, PROTOCOL_VERSION,
};
