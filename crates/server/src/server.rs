//! The sketch daemon: a TCP server hosting a multi-stream registry.
//!
//! Each named stream owns one [`TemporalIngestEngine`]; concurrent clients
//! ingest timestamped rows and run every [`Query`] variant, keyed marginals and
//! [`TimeRange`] queries against it over the [`crate::wire`] protocol. The
//! daemon is built to *degrade* rather than die: hostile frames come back as
//! error responses (the decode paths are total), a dead worker shard turns into
//! an [`ErrorCode::ShardDown`] response (the engine control paths are typed
//! since the panic-path sweep), and an unexpected panic in a request handler is
//! caught at the connection boundary and surfaced as [`ErrorCode::Internal`].
//!
//! Durability: with a data directory configured, shutdown checkpoints every
//! stream into `data_dir/<name>/` via the engine checkpoint API — reporting
//! per-shard failures without aborting the remaining streams' writes — and boot
//! restores every stream the directory holds, reconstructing each engine's
//! config from its checkpoint manifest alone.
//!
//! Observability: every connection, request, error frame and request latency
//! feeds a server-level metrics registry (plus the per-stream engine
//! registries the core maintains). The same snapshot builder answers the wire
//! [`Request::Stats`] frame and renders the optional plaintext Prometheus
//! exposition listener ([`ServerConfig::metrics_addr`]), so the two views
//! cannot drift apart. Request counters and latency histograms are bumped
//! *after* the response is written, so any quiescent snapshot satisfies
//! `requests[k] == latency[k].count` for every kind — the conservation suite
//! depends on this.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::RwLock;

use uss_core::metrics::{FamilyDesc, MetricKind, Sample, CORE_FAMILIES};
use uss_core::persist::{self, PersistError, TemporalMeta};
use uss_core::{
    answer_query, Counter, EngineError, Histogram, TemporalIngestEngine, TemporalIngestHandle,
};

use crate::wire::{
    self, read_frame, request_kind_index, write_frame, ErrorCode, MarginalEntry, Request,
    Response, ServerStats, StreamInfo, StreamStats, WireError, ERROR_CODE_COUNT,
    REQUEST_KIND_COUNT,
};
use crate::{log_debug, log_error, log_info, log_warn};

/// How long a connection thread blocks in one socket read before re-checking
/// the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(50);
/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(1);

/// Why the daemon could not start.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServerError {
    /// Binding or configuring the listening socket failed.
    Io(std::io::Error),
    /// A checkpoint directory under the data dir failed to restore.
    Restore {
        /// The stream (directory) name that failed.
        stream: String,
        /// What went wrong decoding or rebuilding it.
        error: PersistError,
    },
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(err) => write!(f, "server i/o failure: {err}"),
            Self::Restore { stream, error } => {
                write!(f, "restoring stream {stream:?} failed: {error}")
            }
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(err) => Some(err),
            Self::Restore { error, .. } => Some(error),
        }
    }
}

impl From<std::io::Error> for ServerError {
    fn from(err: std::io::Error) -> Self {
        Self::Io(err)
    }
}

/// Daemon configuration.
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Checkpoint root. `Some(dir)` enables checkpoint-on-shutdown into
    /// `dir/<stream>/` and restore-on-boot from the same layout; `None` runs
    /// the daemon purely in memory.
    pub data_dir: Option<PathBuf>,
    /// When set, a second listener is bound here serving the metrics registry
    /// as plaintext Prometheus exposition (text format 0.0.4) over GET-line
    /// HTTP. Use port 0 for an ephemeral port (see
    /// [`SketchServer::metrics_addr`]).
    pub metrics_addr: Option<String>,
}

/// Human-readable `kind` label values for per-request-kind server metrics,
/// indexed by request kind − 1 (the [`request_kind_index`] convention).
const KIND_NAMES: [&str; REQUEST_KIND_COUNT] = [
    "ping",
    "create_stream",
    "list_streams",
    "ingest",
    "query",
    "marginals",
    "shutdown",
    "stats",
];

/// Human-readable `code` label values for the error-frame counter, indexed by
/// [`ErrorCode`] − 1.
const CODE_NAMES: [&str; ERROR_CODE_COUNT] = [
    "bad_frame",
    "bad_request",
    "unknown_stream",
    "stream_exists",
    "invalid_config",
    "shard_down",
    "internal",
];

/// Stats-array indices for the request kinds that name a stream, so handlers
/// can bump per-stream counters without threading the kind byte through.
const IDX_CREATE_STREAM: usize = 1;
const IDX_INGEST: usize = 3;
const IDX_QUERY: usize = 4;
const IDX_MARGINALS: usize = 5;

/// The server-level metric families, described for the exposition endpoint's
/// `# HELP` / `# TYPE` headers (the core families come from
/// [`CORE_FAMILIES`]).
const SERVER_FAMILIES: &[FamilyDesc] = &[
    FamilyDesc {
        name: "uss_server_connections_accepted_total",
        help: "Client connections accepted since boot.",
        kind: MetricKind::Counter,
        labels: &[],
    },
    FamilyDesc {
        name: "uss_server_connections_closed_total",
        help: "Client connections closed (cleanly or not) since boot.",
        kind: MetricKind::Counter,
        labels: &[],
    },
    FamilyDesc {
        name: "uss_server_requests_total",
        help: "Requests served, counted once the response is written.",
        kind: MetricKind::Counter,
        labels: &["kind"],
    },
    FamilyDesc {
        name: "uss_server_error_frames_total",
        help: "Error responses sent, by error code.",
        kind: MetricKind::Counter,
        labels: &["code"],
    },
    FamilyDesc {
        name: "uss_server_request_latency_nanos",
        help: "Request handling latency in nanoseconds, log2-bucketed.",
        kind: MetricKind::Histogram,
        labels: &["kind"],
    },
];

/// The daemon's own registry: connection lifecycle, per-kind request counts
/// and latency, and error frames by code. Stream-scoped metrics live on each
/// stream's engine registries instead.
struct ServerMetrics {
    connections_accepted: Counter,
    connections_closed: Counter,
    requests: [Counter; REQUEST_KIND_COUNT],
    error_frames: [Counter; ERROR_CODE_COUNT],
    latency: [Histogram; REQUEST_KIND_COUNT],
}

impl ServerMetrics {
    const fn new() -> Self {
        Self {
            connections_accepted: Counter::new(),
            connections_closed: Counter::new(),
            requests: [const { Counter::new() }; REQUEST_KIND_COUNT],
            error_frames: [const { Counter::new() }; ERROR_CODE_COUNT],
            latency: [const { Histogram::new() }; REQUEST_KIND_COUNT],
        }
    }

    fn count_error_frame(&self, code: ErrorCode) {
        self.error_frames[code as usize - 1].inc();
    }
}

/// One registered stream: its wire-visible identity, the live engine, and the
/// per-stream request counters (indexed by request kind − 1).
struct StreamEntry {
    spec: TemporalMeta,
    engine: TemporalIngestEngine,
    requests: [Counter; REQUEST_KIND_COUNT],
}

impl StreamEntry {
    fn new(spec: TemporalMeta, engine: TemporalIngestEngine) -> Self {
        Self {
            spec,
            engine,
            requests: [const { Counter::new() }; REQUEST_KIND_COUNT],
        }
    }
}

/// State shared by the accept loop and every connection thread.
struct Shared {
    registry: RwLock<HashMap<String, Arc<StreamEntry>>>,
    data_dir: Option<PathBuf>,
    shutdown: AtomicBool,
    metrics: ServerMetrics,
}

impl Shared {
    fn streams(&self) -> parking_lot::RwLockReadGuard<'_, HashMap<String, Arc<StreamEntry>>> {
        self.registry.read()
    }

    fn streams_mut(&self) -> parking_lot::RwLockWriteGuard<'_, HashMap<String, Arc<StreamEntry>>> {
        self.registry.write()
    }
}

/// A running daemon. Dropping the handle shuts the daemon down (checkpointing
/// every stream when a data dir is configured).
pub struct SketchServer {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    shared: Arc<Shared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    metrics_thread: Option<std::thread::JoinHandle<()>>,
}

impl SketchServer {
    /// Binds `addr` (use port 0 for an ephemeral port), restores any streams
    /// checkpointed under the configured data dir, and starts serving.
    ///
    /// # Errors
    ///
    /// [`ServerError::Io`] when the socket cannot be bound and
    /// [`ServerError::Restore`] when a checkpoint directory is damaged.
    pub fn start<A: ToSocketAddrs>(addr: A, config: ServerConfig) -> Result<Self, ServerError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let mut registry = HashMap::new();
        if let Some(dir) = &config.data_dir {
            restore_streams(dir, &mut registry)?;
        }
        let shared = Arc::new(Shared {
            registry: RwLock::new(registry),
            data_dir: config.data_dir,
            shutdown: AtomicBool::new(false),
            metrics: ServerMetrics::new(),
        });

        let (metrics_addr, metrics_thread) = match &config.metrics_addr {
            Some(spec) => {
                let metrics_listener = TcpListener::bind(spec.as_str())?;
                metrics_listener.set_nonblocking(true)?;
                let bound = metrics_listener.local_addr()?;
                let exposition_shared = Arc::clone(&shared);
                let thread = std::thread::spawn(move || {
                    exposition_loop(&metrics_listener, &exposition_shared);
                });
                log_info!("metrics exposition listening on {bound}");
                (Some(bound), Some(thread))
            }
            None => (None, None),
        };

        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || accept_loop(&listener, &accept_shared));
        log_info!("listening on {addr}");
        Ok(Self {
            addr,
            metrics_addr,
            shared,
            accept_thread: Some(accept_thread),
            metrics_thread,
        })
    }

    /// The daemon's bound address (resolves ephemeral ports).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The metrics exposition listener's bound address, when one was
    /// configured via [`ServerConfig::metrics_addr`].
    #[must_use]
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Test-only fault injection: panics one worker shard of a named stream so
    /// regression tests can prove the daemon degrades to typed error frames
    /// instead of dying. Returns `false` when the stream does not exist.
    #[doc(hidden)]
    pub fn debug_kill_shard(&self, stream: &str, shard: usize) -> bool {
        let Some(entry) = self.shared.streams().get(stream).cloned() else {
            return false;
        };
        entry.engine.debug_kill_shard(shard);
        true
    }

    /// Signals shutdown and blocks until the daemon has stopped accepting,
    /// drained, and (with a data dir) checkpointed every stream.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Blocks until the daemon shuts down some other way — a client sending a
    /// wire `Shutdown` request. This is the daemon binary's main loop.
    pub fn join(mut self) {
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
        if let Some(thread) = self.metrics_thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for SketchServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Restores every checkpointed stream under `dir` into the registry. A
/// subdirectory without a temporal manifest is ignored (it is not a stream
/// checkpoint); a subdirectory *with* one that fails to decode is a loud error.
fn restore_streams(
    dir: &std::path::Path,
    registry: &mut HashMap<String, Arc<StreamEntry>>,
) -> Result<(), ServerError> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Ok(()); // no data dir yet: first boot
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let manifest_path = path.join(TemporalIngestEngine::MANIFEST_FILE);
        if !path.is_dir() || !manifest_path.exists() {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        if wire::validate_name(&name).is_err() {
            continue;
        }
        let restore = || -> Result<StreamEntry, PersistError> {
            let manifest = persist::decode_temporal_manifest(&std::fs::read(&manifest_path)?)?;
            let config = manifest.meta.to_config()?;
            let engine = TemporalIngestEngine::restore(&path, config)?;
            Ok(StreamEntry::new(manifest.meta, engine))
        };
        match restore() {
            Ok(stream) => {
                log_info!("restored stream {name:?} from checkpoint");
                registry.insert(name, Arc::new(stream));
            }
            Err(error) => {
                log_error!("restoring stream {name:?} failed: {error}");
                return Err(ServerError::Restore { stream: name, error });
            }
        }
    }
    Ok(())
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, peer)) => {
                log_debug!("accepted connection from {peer}");
                shared.metrics.connections_accepted.inc();
                let conn_shared = Arc::clone(shared);
                connections.push(std::thread::spawn(move || {
                    serve_connection(stream, &conn_shared);
                    conn_shared.metrics.connections_closed.inc();
                }));
            }
            Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(err) => {
                log_warn!("rejected connection: accept failed: {err}");
                std::thread::sleep(ACCEPT_POLL);
            }
        }
        connections.retain(|conn| !conn.is_finished());
    }
    // Let in-flight requests finish before checkpointing, so a final ingest
    // that was acknowledged is in the checkpoint.
    for conn in connections {
        let _ = conn.join();
    }
    checkpoint_streams(shared);
}

/// Checkpoint-on-shutdown: every stream is attempted, every failure is
/// reported, and no failure aborts the remaining streams' writes.
fn checkpoint_streams(shared: &Shared) {
    let Some(dir) = &shared.data_dir else { return };
    let streams: Vec<(String, Arc<StreamEntry>)> = shared
        .streams()
        .iter()
        .map(|(name, entry)| (name.clone(), Arc::clone(entry)))
        .collect();
    for (name, entry) in streams {
        match entry.engine.checkpoint(dir.join(&name)) {
            Ok(()) => log_info!("checkpointed stream {name:?}"),
            Err(err) => log_error!("checkpointing stream {name:?} failed: {err}"),
        }
    }
}

/// A socket read outcome that distinguishes "orderly close" and "server is
/// shutting down" from real errors.
enum ReadOutcome {
    Frame(u8, Vec<u8>),
    Closed,
    ShuttingDown,
    Bad(WireError),
}

/// Wraps a [`TcpStream`] so `read` retries timeout errors while polling the
/// shutdown flag — turning the 50 ms socket timeout into cancellable blocking.
struct PollingReader<'a> {
    stream: &'a TcpStream,
    shared: &'a Shared,
    interrupted: bool,
}

impl Read for PollingReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                self.interrupted = true;
                // NOT ErrorKind::Interrupted: `read_exact` silently retries
                // that kind, which would spin forever once the flag is up.
                return Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionAborted,
                    "server shutting down",
                ));
            }
            match self.stream.read(buf) {
                Err(err)
                    if matches!(
                        err.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) => {}
                other => return other,
            }
        }
    }
}

fn read_request(stream: &TcpStream, shared: &Shared) -> ReadOutcome {
    let mut reader = PollingReader {
        stream,
        shared,
        interrupted: false,
    };
    match read_frame(&mut reader) {
        Ok((kind, payload)) => ReadOutcome::Frame(kind, payload),
        Err(WireError::Io(err)) => {
            if reader.interrupted {
                ReadOutcome::ShuttingDown
            } else if err.kind() == std::io::ErrorKind::UnexpectedEof {
                ReadOutcome::Closed
            } else {
                ReadOutcome::Bad(WireError::Io(err))
            }
        }
        Err(other) => ReadOutcome::Bad(other),
    }
}

fn serve_connection(stream: TcpStream, shared: &Arc<Shared>) {
    // Accepted sockets can inherit the listener's nonblocking flag; clear it so
    // the read timeout below is a 50 ms block, not a busy poll.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_nodelay(true);
    let mut stream = stream;
    // Per-connection ingest handles (with their stream entry, for per-stream
    // request counting), one per stream touched, so repeated `Ingest` requests
    // reuse their SPSC rings instead of re-registering.
    let mut handles: HashMap<String, (TemporalIngestHandle, Arc<StreamEntry>)> = HashMap::new();

    loop {
        let (kind, payload) = match read_request(&stream, shared) {
            ReadOutcome::Frame(kind, payload) => (kind, payload),
            ReadOutcome::Closed | ReadOutcome::ShuttingDown => return,
            ReadOutcome::Bad(err) => {
                // The byte stream can no longer be trusted to be frame-aligned:
                // answer with a typed error, then close.
                log_warn!("closing connection on unframeable bytes: {err}");
                shared.metrics.count_error_frame(ErrorCode::BadFrame);
                let response = Response::Error {
                    code: ErrorCode::BadFrame,
                    message: err.to_string(),
                };
                let _ = write_frame(&mut stream, &response.encode());
                lingering_close(&stream);
                return;
            }
        };

        let request = match Request::decode(kind, &payload) {
            Ok(request) => request,
            Err(err) => {
                // The frame itself was sound (checksum passed), so the stream
                // is still aligned: report and keep serving.
                let code = match err {
                    WireError::UnknownKind(_) => ErrorCode::BadFrame,
                    _ => ErrorCode::BadRequest,
                };
                shared.metrics.count_error_frame(code);
                let response = Response::Error {
                    code,
                    message: err.to_string(),
                };
                if write_frame(&mut stream, &response.encode()).is_err() {
                    return;
                }
                continue;
            }
        };

        let shutting_down = matches!(request, Request::Shutdown);
        let started = Instant::now();
        // A panicking request handler must not take the daemon down with it:
        // catch at the connection boundary and degrade to a typed error.
        let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handle_request(shared, &mut handles, request)
        }))
        .unwrap_or_else(|panic| Response::Error {
            code: ErrorCode::Internal,
            message: panic_message(&panic),
        });
        if let Response::Error { code, message } = &response {
            log_warn!("request failed ({:?}): {message}", code);
            shared.metrics.count_error_frame(*code);
        }
        if write_frame(&mut stream, &response.encode()).is_err() {
            return;
        }
        // Counted after the write: a quiescent snapshot (all responses
        // received) satisfies requests[k] == latency[k].count exactly, and a
        // Stats snapshot never half-counts the request that produced it.
        if let Some(idx) = request_kind_index(kind) {
            shared.metrics.requests[idx].inc();
            shared.metrics.latency[idx].record(elapsed_nanos(started));
        }
        if shutting_down {
            shared.shutdown.store(true, Ordering::SeqCst);
            return;
        }
    }
}

/// Nanoseconds since `started`, saturated into a `u64` (580 years of range —
/// the cast cannot truncate a real latency).
fn elapsed_nanos(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// How long [`lingering_close`] keeps draining a rejected connection.
const LINGER: Duration = Duration::from_millis(250);

/// Closes a connection whose remaining inbound bytes we are abandoning without
/// provoking a TCP RST: half-close the write side, then briefly drain the
/// receive queue. Closing with unread bytes pending turns our FIN into a
/// reset, which can destroy the error frame still in flight to the client.
/// The deadline bounds how long a hostile firehose can hold the drain open.
fn lingering_close(stream: &TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let deadline = Instant::now() + LINGER;
    let mut sink = [0u8; 1024];
    let mut reader = stream;
    while Instant::now() < deadline {
        match reader.read(&mut sink) {
            Ok(0) => return,
            Ok(_) => {}
            Err(err)
                if matches!(
                    err.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => return,
        }
    }
}

fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "request handler panicked".to_string()
    }
}

fn engine_error_response(err: &EngineError) -> Response {
    let code = match err {
        EngineError::ShardDown { .. } => {
            log_error!("worker shard fault: {err}");
            ErrorCode::ShardDown
        }
        _ => ErrorCode::Internal,
    };
    Response::Error {
        code,
        message: err.to_string(),
    }
}

fn handle_request(
    shared: &Shared,
    handles: &mut HashMap<String, (TemporalIngestHandle, Arc<StreamEntry>)>,
    request: Request,
) -> Response {
    match request {
        Request::Ping => Response::Pong {
            protocol: wire::PROTOCOL_VERSION,
        },
        Request::CreateStream { name, spec } => create_stream(shared, name, spec),
        Request::ListStreams => {
            let mut streams: Vec<StreamInfo> = shared
                .streams()
                .iter()
                .map(|(name, entry)| StreamInfo {
                    name: name.clone(),
                    spec: entry.spec,
                    rows: entry.engine.rows_enqueued(),
                })
                .collect();
            streams.sort_by(|a, b| a.name.cmp(&b.name));
            Response::Streams(streams)
        }
        Request::Ingest { name, rows } => ingest(shared, handles, &name, &rows),
        Request::Query {
            name,
            range,
            confidence,
            query,
        } => {
            let Some(entry) = shared.streams().get(&name).cloned() else {
                return unknown_stream(&name);
            };
            entry.requests[IDX_QUERY].inc();
            match entry.engine.try_range_capture(&range) {
                Ok(snap) => Response::Answer {
                    rows: snap.rows_processed(),
                    answer: answer_query(&snap, &query, confidence),
                },
                Err(err) => engine_error_response(&err),
            }
        }
        Request::Marginals {
            name,
            range,
            confidence,
            shift,
            mask,
        } => {
            let Some(entry) = shared.streams().get(&name).cloned() else {
                return unknown_stream(&name);
            };
            entry.requests[IDX_MARGINALS].inc();
            match entry.engine.try_range_capture(&range) {
                Ok(snap) => {
                    let entries = snap
                        .marginals(|item| Some((item >> shift) & mask))
                        .into_iter()
                        .map(|(key, estimate)| MarginalEntry {
                            key,
                            ci: estimate.confidence_interval(confidence),
                            estimate,
                        })
                        .collect();
                    Response::MarginalsAnswer {
                        rows: snap.rows_processed(),
                        entries,
                    }
                }
                Err(err) => engine_error_response(&err),
            }
        }
        Request::Shutdown => Response::ShuttingDown,
        Request::Stats => Response::Stats(build_server_stats(shared)),
    }
}

/// Builds the wire [`ServerStats`] snapshot. This is the *only* reader of the
/// metrics registries: the Prometheus exposition body is rendered from the
/// same snapshot (see [`render_exposition`]), so the two views agree by
/// construction.
fn build_server_stats(shared: &Shared) -> ServerStats {
    let m = &shared.metrics;
    let mut requests = [0u64; REQUEST_KIND_COUNT];
    let mut latency = Vec::with_capacity(REQUEST_KIND_COUNT);
    for (slot, counter) in requests.iter_mut().zip(&m.requests) {
        *slot = counter.get();
    }
    for hist in &m.latency {
        latency.push(hist.snapshot());
    }
    let mut error_frames = [0u64; ERROR_CODE_COUNT];
    for (slot, counter) in error_frames.iter_mut().zip(&m.error_frames) {
        *slot = counter.get();
    }

    let mut streams: Vec<StreamStats> = shared
        .streams()
        .iter()
        .map(|(name, entry)| {
            let labels = format!("stream=\"{name}\"");
            let mut samples: Vec<Sample> = Vec::new();
            entry.engine.metrics().collect(&labels, &mut samples);
            entry.engine.temporal_metrics().collect(&labels, &mut samples);
            let mut stream_requests = [0u64; REQUEST_KIND_COUNT];
            for (slot, counter) in stream_requests.iter_mut().zip(&entry.requests) {
                *slot = counter.get();
            }
            StreamStats {
                name: name.clone(),
                rows_ingested: entry.engine.rows_enqueued(),
                requests: stream_requests,
                samples,
            }
        })
        .collect();
    streams.sort_by(|a, b| a.name.cmp(&b.name));

    ServerStats {
        connections_accepted: m.connections_accepted.get(),
        connections_closed: m.connections_closed.get(),
        requests,
        error_frames,
        latency,
        streams,
    }
}

fn unknown_stream(name: &str) -> Response {
    Response::Error {
        code: ErrorCode::UnknownStream,
        message: format!("no stream named {name:?}"),
    }
}

fn create_stream(shared: &Shared, name: String, spec: TemporalMeta) -> Response {
    let mut registry = shared.streams_mut();
    if let Some(existing) = registry.get(&name) {
        return if existing.spec == spec {
            existing.requests[IDX_CREATE_STREAM].inc();
            Response::StreamCreated { created: false }
        } else {
            Response::Error {
                code: ErrorCode::StreamExists,
                message: format!(
                    "stream {name:?} already exists with a different spec ({:?})",
                    existing.spec
                ),
            }
        };
    }
    let invalid = |message: String| Response::Error {
        code: ErrorCode::InvalidConfig,
        message,
    };
    let config = match spec.to_config() {
        Ok(config) => config,
        Err(err) => return invalid(err.to_string()),
    };
    if let Err(err) = config.validate() {
        return invalid(err.to_string());
    }
    match TemporalIngestEngine::try_new(config) {
        Ok(engine) => {
            let entry = Arc::new(StreamEntry::new(spec, engine));
            entry.requests[IDX_CREATE_STREAM].inc();
            log_info!("created stream {name:?}");
            registry.insert(name, entry);
            Response::StreamCreated { created: true }
        }
        Err(err) => invalid(err.to_string()),
    }
}

fn ingest(
    shared: &Shared,
    handles: &mut HashMap<String, (TemporalIngestHandle, Arc<StreamEntry>)>,
    name: &str,
    rows: &[(u64, u64)],
) -> Response {
    let (handle, entry) = match handles.entry(name.to_string()) {
        std::collections::hash_map::Entry::Occupied(slot) => slot.into_mut(),
        std::collections::hash_map::Entry::Vacant(slot) => {
            let Some(entry) = shared.streams().get(name).cloned() else {
                return unknown_stream(name);
            };
            match entry.engine.try_handle() {
                Ok(handle) => slot.insert((handle, entry)),
                Err(err) => return engine_error_response(&err),
            }
        }
    };
    entry.requests[IDX_INGEST].inc();
    // Flush after every batch so the acknowledged rows are query-visible and
    // survive a checkpoint the moment the response is on the wire.
    let result = handle
        .try_offer_batch_at(rows)
        .and_then(|()| handle.try_flush());
    match result {
        Ok(()) => Response::Ingested {
            rows: rows.len() as u64,
        },
        Err(err) => {
            // Drop the cached handle: its rings point at a dead worker.
            handles.remove(name);
            engine_error_response(&err)
        }
    }
}

// ----- Prometheus exposition -----

/// How long the exposition listener waits for a scrape's request head.
const SCRAPE_READ_TIMEOUT: Duration = Duration::from_millis(250);

fn metric_type_name(kind: MetricKind) -> &'static str {
    match kind {
        MetricKind::Counter => "counter",
        MetricKind::Gauge => "gauge",
        MetricKind::Histogram => "histogram",
    }
}

fn push_header(out: &mut String, desc: &FamilyDesc) {
    out.push_str("# HELP ");
    out.push_str(desc.name);
    out.push(' ');
    out.push_str(desc.help);
    out.push_str("\n# TYPE ");
    out.push_str(desc.name);
    out.push(' ');
    out.push_str(metric_type_name(desc.kind));
    out.push('\n');
}

/// Renders the whole registry as Prometheus text format 0.0.4. The body is
/// built from the same [`build_server_stats`] snapshot that answers the wire
/// `Stats` request, so the two exposures agree by construction: every
/// per-stream sample line here is byte-for-byte a `(name, value)` pair from
/// [`StreamStats::samples`].
fn render_exposition(shared: &Shared) -> String {
    use std::fmt::Write as _;

    let stats = build_server_stats(shared);
    let mut out = String::new();

    for desc in SERVER_FAMILIES {
        push_header(&mut out, desc);
        match desc.name {
            "uss_server_connections_accepted_total" => {
                let _ = writeln!(out, "{} {}", desc.name, stats.connections_accepted);
            }
            "uss_server_connections_closed_total" => {
                let _ = writeln!(out, "{} {}", desc.name, stats.connections_closed);
            }
            "uss_server_requests_total" => {
                for (i, count) in stats.requests.iter().enumerate() {
                    let _ = writeln!(out, "{}{{kind=\"{}\"}} {count}", desc.name, KIND_NAMES[i]);
                }
            }
            "uss_server_error_frames_total" => {
                for (i, count) in stats.error_frames.iter().enumerate() {
                    let _ = writeln!(out, "{}{{code=\"{}\"}} {count}", desc.name, CODE_NAMES[i]);
                }
            }
            "uss_server_request_latency_nanos" => {
                for (i, hist) in stats.latency.iter().enumerate() {
                    let kind = KIND_NAMES[i];
                    let mut cumulative = 0u64;
                    for &(bucket, count) in &hist.buckets {
                        cumulative += count;
                        let _ = writeln!(
                            out,
                            "{}_bucket{{kind=\"{kind}\",le=\"{}\"}} {cumulative}",
                            desc.name,
                            uss_core::Histogram::bucket_upper_bound(usize::from(bucket)),
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_bucket{{kind=\"{kind}\",le=\"+Inf\"}} {}",
                        desc.name, hist.count
                    );
                    let _ = writeln!(out, "{}_sum{{kind=\"{kind}\"}} {}", desc.name, hist.sum);
                    let _ =
                        writeln!(out, "{}_count{{kind=\"{kind}\"}} {}", desc.name, hist.count);
                }
            }
            _ => {}
        }
    }

    for desc in CORE_FAMILIES {
        push_header(&mut out, desc);
        let prefix = format!("{}{{", desc.name);
        for stream in &stats.streams {
            for (sample, value) in &stream.samples {
                if sample.starts_with(&prefix) {
                    let _ = writeln!(out, "{sample} {value}");
                }
            }
        }
    }

    out
}

fn exposition_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => serve_scrape(stream, shared),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Serves one scrape: a GET-line HTTP exchange, deliberately minimal — read
/// the request head, answer one plaintext body, close. Anything that is not a
/// GET gets a 400 so a misdirected wire client fails loudly.
fn serve_scrape(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(SCRAPE_READ_TIMEOUT));
    let mut head = Vec::new();
    let mut buf = [0u8; 512];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let (status, body) = if head.starts_with(b"GET ") {
        ("200 OK", render_exposition(shared))
    } else {
        ("400 Bad Request", String::from("metrics endpoint speaks GET only\n"))
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}
