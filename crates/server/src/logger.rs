//! A minimal leveled stderr logger for the daemon.
//!
//! The daemon's operational events — stream created/restored, checkpoint
//! written/failed, connection accepted/rejected, shard faults — go through
//! this module so `uss_serverd --log-level` can turn them up or down without
//! pulling in a logging framework (the workspace is dependency-free by
//! policy). One process-global level, stored in an atomic, gates everything;
//! the [`log`] entry point is a plain function taking pre-formatted
//! [`std::fmt::Arguments`], so a suppressed record costs one relaxed load and
//! no formatting.
//!
//! Library embedders (tests, benches) get the quiet default: only `error`
//! records print unless [`set_level`] is called. The daemon binary defaults
//! to `info`.

use std::sync::atomic::{AtomicU8, Ordering};

/// Record severities, ordered so that a level admits itself and everything
/// more severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum LogLevel {
    /// Print nothing at all.
    Off = 0,
    /// Faults: checkpoint failures, dead shards, rejected connections.
    Error = 1,
    /// Surprises that the daemon absorbed (bad frames, lingering closes).
    Warn = 2,
    /// Lifecycle: streams created/restored, checkpoints written, bind/serve.
    Info = 3,
    /// Per-connection chatter: accepts and orderly closes.
    Debug = 4,
}

impl LogLevel {
    /// Parses a `--log-level` value. Accepts the five level names,
    /// case-insensitively.
    ///
    /// # Errors
    ///
    /// Returns the unrecognised input back, for the caller's usage message.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "off" => Ok(Self::Off),
            "error" => Ok(Self::Error),
            "warn" => Ok(Self::Warn),
            "info" => Ok(Self::Info),
            "debug" => Ok(Self::Debug),
            other => Err(other.to_string()),
        }
    }

    fn tag(self) -> &'static str {
        match self {
            Self::Off => "off",
            Self::Error => "error",
            Self::Warn => "warn",
            Self::Info => "info",
            Self::Debug => "debug",
        }
    }
}

/// The process-global log level. Quiet-by-default for library embedders.
static LEVEL: AtomicU8 = AtomicU8::new(LogLevel::Error as u8);

/// Sets the process-global log level.
pub fn set_level(level: LogLevel) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// True when a record at `level` would print.
#[must_use]
pub fn enabled(level: LogLevel) -> bool {
    level as u8 <= LEVEL.load(Ordering::Relaxed) && level != LogLevel::Off
}

/// Writes one record to stderr if `level` passes the global gate.
///
/// Call through the [`log_error!`](crate::log_error),
/// [`log_warn!`](crate::log_warn), [`log_info!`](crate::log_info) and
/// [`log_debug!`](crate::log_debug) macros, which defer formatting until the
/// gate has passed.
pub fn log(level: LogLevel, args: std::fmt::Arguments<'_>) {
    if enabled(level) {
        eprintln!("uss-server [{}] {args}", level.tag());
    }
}

/// Logs at [`LogLevel::Error`].
#[macro_export]
macro_rules! log_error {
    ($($arg:tt)*) => {
        $crate::logger::log($crate::logger::LogLevel::Error, format_args!($($arg)*))
    };
}

/// Logs at [`LogLevel::Warn`].
#[macro_export]
macro_rules! log_warn {
    ($($arg:tt)*) => {
        $crate::logger::log($crate::logger::LogLevel::Warn, format_args!($($arg)*))
    };
}

/// Logs at [`LogLevel::Info`].
#[macro_export]
macro_rules! log_info {
    ($($arg:tt)*) => {
        $crate::logger::log($crate::logger::LogLevel::Info, format_args!($($arg)*))
    };
}

/// Logs at [`LogLevel::Debug`].
#[macro_export]
macro_rules! log_debug {
    ($($arg:tt)*) => {
        $crate::logger::log($crate::logger::LogLevel::Debug, format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_and_order() {
        assert_eq!(LogLevel::parse("INFO"), Ok(LogLevel::Info));
        assert_eq!(LogLevel::parse("off"), Ok(LogLevel::Off));
        assert!(LogLevel::parse("verbose").is_err());
        assert!(LogLevel::Error < LogLevel::Debug);
    }

    #[test]
    fn off_admits_nothing() {
        // `enabled` never admits Off-level records, whatever the gate.
        assert!(!enabled(LogLevel::Off));
    }
}
