//! Diagnostics, allowances, and the lint report.

use std::fmt;

/// One rule violation, anchored to a file and line.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The rule that fired: `"R1"` … `"R5"`.
    pub rule: &'static str,
    /// Repo-relative path (forward slashes) of the offending file.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: usize,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub hint: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    fix: {}",
            self.file, self.line, self.rule, self.message, self.hint
        )
    }
}

/// One use of the `// lint: allow(panic) <reason>` escape hatch. Allowed code
/// is not a violation, but every hatch is surfaced in the run summary so the
/// waivers stay visible instead of rotting silently.
#[derive(Debug, Clone)]
pub struct Allowance {
    /// Repo-relative path of the waived line.
    pub file: String,
    /// 1-based line of the waived token.
    pub line: usize,
    /// The construct that was waived (e.g. `unwrap`).
    pub what: String,
    /// The justification written after `allow(panic)`.
    pub reason: String,
}

impl fmt::Display for Allowance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: allowed `{}` — {}", self.file, self.line, self.what, self.reason)
    }
}

/// The outcome of a full lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Every violation found, sorted by file then line.
    pub diagnostics: Vec<Diagnostic>,
    /// Every escape hatch honoured.
    pub allowances: Vec<Allowance>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Whether the run found no violations.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Diagnostics for one rule, for targeted assertions in the fixture suite.
    #[must_use]
    pub fn for_rule(&self, rule: &str) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.rule == rule).collect()
    }
}
