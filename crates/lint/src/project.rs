//! Discovering and loading the source files a lint run covers.
//!
//! The scan set is `crates/*/src/**/*.rs` (recursive — bin targets and module
//! directories included) plus `crates/*/tests/*.rs` (non-recursive — the
//! integration tests that anchor registry checks, but *not* their fixture
//! subdirectories, which hold intentionally-failing mini-trees).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{tokenize, Token};

/// One loaded source file, pre-lexed.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the project root, with forward slashes
    /// (`crates/core/src/persist.rs`).
    pub rel: String,
    /// The lexed token stream.
    pub tokens: Vec<Token>,
}

impl SourceFile {
    /// Whether this file's relative path ends with `suffix` (forward-slash
    /// form), e.g. `crates/core/src/persist.rs`.
    #[must_use]
    pub fn path_ends_with(&self, suffix: &str) -> bool {
        self.rel == suffix || self.rel.ends_with(&format!("/{suffix}"))
    }
}

/// A loaded project: every file the rules look at.
#[derive(Debug)]
pub struct Project {
    /// The root the relative paths hang off.
    pub root: PathBuf,
    /// All scanned files, sorted by relative path for deterministic output.
    pub files: Vec<SourceFile>,
}

impl Project {
    /// The first scanned file whose path ends with `suffix`, if any.
    #[must_use]
    pub fn file(&self, suffix: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.path_ends_with(suffix))
    }
}

fn push_file(files: &mut Vec<SourceFile>, root: &Path, path: &Path) -> io::Result<()> {
    let text = fs::read_to_string(path)?;
    let rel = path
        .strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/");
    files.push(SourceFile {
        rel,
        tokens: tokenize(&text),
    });
    Ok(())
}

fn walk_rs(files: &mut Vec<SourceFile>, root: &Path, dir: &Path, recursive: bool) -> io::Result<()> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Ok(());
    };
    for entry in entries {
        let path = entry?.path();
        if path.is_dir() {
            if recursive {
                walk_rs(files, root, &path, true)?;
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            push_file(files, root, &path)?;
        }
    }
    Ok(())
}

/// Loads every file in the scan set under `root`.
///
/// # Errors
///
/// Propagates filesystem errors from reading a discovered file; a missing
/// `crates/` directory yields an empty project, not an error.
pub fn load(root: &Path) -> io::Result<Project> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates_dir) {
        for entry in entries {
            let krate = entry?.path();
            if !krate.is_dir() {
                continue;
            }
            walk_rs(&mut files, root, &krate.join("src"), true)?;
            walk_rs(&mut files, root, &krate.join("tests"), false)?;
        }
    }
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(Project {
        root: root.to_path_buf(),
        files,
    })
}
