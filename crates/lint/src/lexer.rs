//! A hand-rolled lexical scanner for Rust source, sufficient for lint rules.
//!
//! The scanner's one job is to classify every byte of a source file so that
//! rule matching never fires inside the wrong context: an `unwrap` in a string
//! literal, a `SAFETY:` inside a doc example, or a kind byte in a comment must
//! all be invisible to token-sequence matchers. It therefore distinguishes,
//! with full fidelity:
//!
//! * line comments (`//`, `///`, `//!`) and nested block comments (`/* /* */ */`),
//! * string literals with escapes, byte strings, and raw strings with any
//!   number of `#` guards (`r"…"`, `r#"…"#`, `br##"…"##`),
//! * character literals versus lifetimes (`'a'` versus `'a`),
//! * raw identifiers (`r#fn`) versus raw strings (`r#"…"#`),
//! * identifiers, numeric literals, and single-character punctuation.
//!
//! It deliberately does **not** build a syntax tree: rules work on flat token
//! sequences plus a brace-matching cursor, which is robust to code it has
//! never seen and keeps the scanner small enough to audit by eye.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `unwrap`, `as`, …).
    Ident,
    /// A lifetime (`'a`, `'static`) — *not* a char literal.
    Lifetime,
    /// A numeric literal, suffix included (`9`, `0x3F`, `0u8`, `1_000`).
    Number,
    /// A string literal of any flavour (escaped, byte, raw). Content is opaque.
    Str,
    /// A character or byte-character literal (`'x'`, `b'\n'`).
    Char,
    /// A `//` comment, text included (rules look for markers in these).
    LineComment,
    /// A `/* … */` comment (nesting handled), text included.
    BlockComment,
    /// Any other single character (`{`, `::` arrives as two `:` tokens, …).
    Punct,
}

/// One lexed token: its kind, its raw text, and the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    /// The classification.
    pub kind: TokenKind,
    /// The raw source text of the token (for comments and literals this is the
    /// complete lexeme including delimiters).
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: usize,
}

impl Token {
    /// Whether this token is a comment of either flavour.
    #[must_use]
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// Whether this token is the identifier `name`.
    #[must_use]
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }

    /// Whether this token is the punctuation character `ch`.
    #[must_use]
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == ch.len_utf8() && self.text.starts_with(ch)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Scanner {
    chars: Vec<char>,
    pos: usize,
    line: usize,
}

impl Scanner {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    /// Consumes an identifier body starting at the current position.
    fn ident_body(&mut self, first: char) -> String {
        let mut text = String::new();
        text.push(first);
        while self.peek(0).is_some_and(is_ident_continue) {
            text.push(self.bump().unwrap_or_default());
        }
        text
    }

    /// Consumes to end of line (exclusive), returning the text consumed.
    fn take_line(&mut self) -> String {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        text
    }

    /// Consumes a nested block comment; the leading `/*` is already consumed.
    fn block_comment(&mut self) -> String {
        let mut text = String::from("/*");
        let mut depth = 1usize;
        while depth > 0 {
            match self.bump() {
                None => break,
                Some('*') if self.peek(0) == Some('/') => {
                    self.bump();
                    text.push_str("*/");
                    depth -= 1;
                }
                Some('/') if self.peek(0) == Some('*') => {
                    self.bump();
                    text.push_str("/*");
                    depth += 1;
                }
                Some(c) => text.push(c),
            }
        }
        text
    }

    /// Consumes an escaped (non-raw) string body; the opening `"` is consumed.
    fn string_body(&mut self) -> String {
        let mut text = String::from("\"");
        loop {
            match self.bump() {
                None => break,
                Some('\\') => {
                    text.push('\\');
                    if let Some(c) = self.bump() {
                        text.push(c);
                    }
                }
                Some('"') => {
                    text.push('"');
                    break;
                }
                Some(c) => text.push(c),
            }
        }
        text
    }

    /// Consumes a raw string with `guards` `#` characters; positioned after
    /// the opening quote.
    fn raw_string_body(&mut self, guards: usize) -> String {
        let mut text = String::from("\"");
        loop {
            match self.bump() {
                None => break,
                Some('"') => {
                    text.push('"');
                    let mut seen = 0usize;
                    while seen < guards && self.peek(0) == Some('#') {
                        self.bump();
                        text.push('#');
                        seen += 1;
                    }
                    if seen == guards {
                        break;
                    }
                }
                Some(c) => text.push(c),
            }
        }
        text
    }

    /// Consumes a char literal body; the opening `'` is consumed. Handles
    /// escapes (`'\''`, `'\u{1F600}'`) and plain chars (`'x'`, `'('`).
    fn char_body(&mut self) -> String {
        let mut text = String::from("'");
        loop {
            match self.bump() {
                None => break,
                Some('\\') => {
                    text.push('\\');
                    if let Some(c) = self.bump() {
                        text.push(c);
                    }
                }
                Some('\'') => {
                    text.push('\'');
                    break;
                }
                Some(c) => text.push(c),
            }
        }
        text
    }

    /// Consumes a numeric literal starting with `first`.
    fn number_body(&mut self, first: char) -> String {
        let mut text = String::new();
        text.push(first);
        loop {
            match self.peek(0) {
                Some(c) if c.is_alphanumeric() || c == '_' => {
                    text.push(c);
                    self.bump();
                }
                // A decimal point, but only when a digit follows: `0.5` is one
                // number, `0..9` is a number and a range operator.
                Some('.') if self.peek(1).is_some_and(|c| c.is_ascii_digit()) => {
                    text.push('.');
                    self.bump();
                }
                _ => break,
            }
        }
        text
    }
}

/// Lexes `src` into a flat token stream. Never fails: unrecognised bytes come
/// out as [`TokenKind::Punct`], and unterminated literals or comments extend to
/// end of input — a lint scanner must make progress on any file it is pointed
/// at.
#[must_use]
pub fn tokenize(src: &str) -> Vec<Token> {
    let mut s = Scanner {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
    };
    let mut tokens = Vec::new();
    loop {
        let line = s.line;
        let Some(c) = s.bump() else { break };
        let (kind, text) = match c {
            c if c.is_whitespace() => continue,
            '/' if s.peek(0) == Some('/') => {
                s.bump();
                let rest = s.take_line();
                (TokenKind::LineComment, format!("//{rest}"))
            }
            '/' if s.peek(0) == Some('*') => {
                s.bump();
                (TokenKind::BlockComment, s.block_comment())
            }
            '"' => (TokenKind::Str, s.string_body()),
            '\'' => match s.peek(0) {
                // `'\…'` is always a char literal.
                Some('\\') => (TokenKind::Char, s.char_body()),
                // `'a'` is a char, `'a`/`'static` a lifetime: look past the
                // identifier run for a closing quote.
                Some(c2) if is_ident_start(c2) => {
                    let mut end = 1;
                    while s.peek(end).is_some_and(is_ident_continue) {
                        end += 1;
                    }
                    if s.peek(end) == Some('\'') {
                        (TokenKind::Char, s.char_body())
                    } else {
                        let first = s.bump().unwrap_or_default();
                        let name = s.ident_body(first);
                        (TokenKind::Lifetime, format!("'{name}"))
                    }
                }
                // `'('`, `'0'`, etc.
                Some(_) => (TokenKind::Char, s.char_body()),
                None => (TokenKind::Punct, "'".to_string()),
            },
            // `b"…"`, `b'…'`, `br#"…"#` — byte literal prefixes.
            'b' if matches!(s.peek(0), Some('"' | '\'')) || (s.peek(0) == Some('r') && matches!(s.peek(1), Some('"' | '#'))) => {
                match s.bump() {
                    Some('"') => (TokenKind::Str, s.string_body()),
                    Some('\'') => (TokenKind::Char, s.char_body()),
                    _ => {
                        // `br` raw byte string.
                        let mut guards = 0usize;
                        while s.peek(0) == Some('#') {
                            s.bump();
                            guards += 1;
                        }
                        if s.peek(0) == Some('"') {
                            s.bump();
                            (TokenKind::Str, s.raw_string_body(guards))
                        } else {
                            // `br#ident` is not valid Rust; lex as ident.
                            (TokenKind::Ident, s.ident_body('b'))
                        }
                    }
                }
            }
            // `r"…"`, `r#"…"#` raw strings, or `r#ident` raw identifiers.
            'r' if matches!(s.peek(0), Some('"' | '#')) => {
                let mut guards = 0usize;
                while s.peek(0) == Some('#') {
                    s.bump();
                    guards += 1;
                }
                if s.peek(0) == Some('"') {
                    s.bump();
                    (TokenKind::Str, s.raw_string_body(guards))
                } else if guards == 1 && s.peek(0).is_some_and(is_ident_start) {
                    let first = s.bump().unwrap_or_default();
                    let name = s.ident_body(first);
                    (TokenKind::Ident, format!("r#{name}"))
                } else {
                    (TokenKind::Ident, "r".to_string())
                }
            }
            c if is_ident_start(c) => (TokenKind::Ident, s.ident_body(c)),
            c if c.is_ascii_digit() => (TokenKind::Number, s.number_body(c)),
            c => (TokenKind::Punct, c.to_string()),
        };
        tokens.push(Token { kind, text, line });
    }
    tokens
}

/// Parses a numeric literal's value: handles `0x`/`0o`/`0b` prefixes, `_`
/// separators, and type suffixes (`0u8`, `0x3Fu8`). Returns `None` for floats
/// or malformed input.
#[must_use]
pub fn number_value(text: &str) -> Option<u64> {
    let text: String = text.chars().filter(|&c| c != '_').collect();
    let (radix, digits) = match text.as_bytes() {
        [b'0', b'x' | b'X', ..] => (16, &text[2..]),
        [b'0', b'o' | b'O', ..] => (8, &text[2..]),
        [b'0', b'b' | b'B', ..] => (2, &text[2..]),
        _ => (10, text.as_str()),
    };
    // Strip an integer type suffix, longest first (`u128` before `u8`). A `u`
    // or `i` is not a digit in any radix, so the suffix boundary is
    // unambiguous even for hex literals.
    const SUFFIXES: [&str; 12] = [
        "usize", "isize", "u128", "i128", "u64", "i64", "u32", "i32", "u16", "i16", "u8", "i8",
    ];
    let body = SUFFIXES
        .iter()
        .find_map(|s| digits.strip_suffix(s).filter(|b| !b.is_empty()))
        .unwrap_or(digits);
    u64::from_str_radix(body, radix).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("fn foo(x: u8) {}");
        assert_eq!(toks[0], (TokenKind::Ident, "fn".into()));
        assert_eq!(toks[1], (TokenKind::Ident, "foo".into()));
        assert!(toks.iter().any(|t| t.0 == TokenKind::Punct && t.1 == "{"));
    }

    #[test]
    fn strings_are_opaque() {
        let toks = kinds(r#"let x = "unwrap() // SAFETY: nope";"#);
        assert!(!toks.iter().any(|t| t.0 == TokenKind::Ident && t.1 == "unwrap"));
        assert!(!toks.iter().any(|t| t.0 == TokenKind::LineComment));
        assert_eq!(toks.iter().filter(|t| t.0 == TokenKind::Str).count(), 1);
    }

    #[test]
    fn raw_strings_with_guards() {
        let toks = kinds(r##"let x = r#"quote " inside"#; let y = 1;"##);
        assert_eq!(toks.iter().filter(|t| t.0 == TokenKind::Str).count(), 1);
        assert!(toks.iter().any(|t| t.0 == TokenKind::Ident && t.1 == "y"));
    }

    #[test]
    fn raw_ident_is_not_a_raw_string() {
        let toks = kinds("let r#fn = 1;");
        assert!(toks.iter().any(|t| t.0 == TokenKind::Ident && t.1 == "r#fn"));
    }

    #[test]
    fn char_versus_lifetime() {
        let toks = kinds("impl<'a> Foo<'a> { const C: char = 'a'; const Q: char = '\\''; }");
        assert_eq!(toks.iter().filter(|t| t.0 == TokenKind::Lifetime).count(), 2);
        assert_eq!(toks.iter().filter(|t| t.0 == TokenKind::Char).count(), 2);
    }

    #[test]
    fn comments_capture_text_and_lines() {
        let toks = tokenize("let a = 1; // lint: total-decode\n/* block\nspans */ let b = 2;");
        let line_comment = toks.iter().find(|t| t.kind == TokenKind::LineComment);
        assert!(line_comment.is_some_and(|t| t.text.contains("lint: total-decode") && t.line == 1));
        let b = toks.iter().find(|t| t.is_ident("b"));
        assert!(b.is_some_and(|t| t.line == 3));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still comment */ fn f() {}");
        assert_eq!(toks.iter().filter(|t| t.0 == TokenKind::BlockComment).count(), 1);
        assert!(toks.iter().any(|t| t.0 == TokenKind::Ident && t.1 == "fn"));
    }

    #[test]
    fn number_ranges_do_not_swallow_dots() {
        let toks = kinds("for k in 0u8..9 {}");
        let nums: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::Number).collect();
        assert_eq!(nums.len(), 2);
        assert_eq!(nums[0].1, "0u8");
        assert_eq!(nums[1].1, "9");
    }

    #[test]
    fn number_values() {
        assert_eq!(number_value("0u8"), Some(0));
        assert_eq!(number_value("9"), Some(9));
        assert_eq!(number_value("0x3F"), Some(0x3F));
        assert_eq!(number_value("0xD1AD_1C00"), Some(0xD1AD_1C00));
        assert_eq!(number_value("1_000u64"), Some(1000));
        assert_eq!(number_value("0.5"), None);
    }
}
