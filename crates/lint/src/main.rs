//! The `uss-lint` binary: run the project-invariant lint pass and exit
//! nonzero on any violation. See the library docs for the rule table.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("uss-lint: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "uss-lint: project-invariant static analysis for this workspace\n\n\
                     usage: uss-lint [--root <dir>]\n\n\
                     Checks R1 (total decode paths), R2 (kind-registry exhaustiveness),\n\
                     R3 (distinct salts), R4 (SAFETY comments on unsafe), R5 (banned APIs).\n\
                     Exits 0 when clean, 1 on any violation."
                );
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("uss-lint: unknown flag `{other}` (try --help)");
                return ExitCode::from(2);
            }
            other => {
                // A bare path argument is treated as the root.
                root = PathBuf::from(other);
            }
        }
    }
    if !root.is_dir() {
        eprintln!("uss-lint: root `{}` is not a directory", root.display());
        return ExitCode::from(2);
    }
    let report = match uss_lint::run(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("uss-lint: failed to read project under {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };
    for diag in &report.diagnostics {
        eprintln!("{diag}");
    }
    if !report.allowances.is_empty() {
        println!("uss-lint: {} panic allowance(s) in force:", report.allowances.len());
        for allowance in &report.allowances {
            println!("    {allowance}");
        }
    }
    println!(
        "uss-lint: {} files scanned, {} violation(s), {} allowance(s)",
        report.files_scanned,
        report.diagnostics.len(),
        report.allowances.len()
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
