//! # uss-lint
//!
//! A project-invariant static analysis pass for this workspace, enforced in
//! CI. Generic lints (clippy, rustc) cannot see the invariants that keep this
//! codebase correct — that decode paths must be *total*, that RNG salts must
//! be *distinct*, that the kind-byte registry must stay *exhaustive* across
//! four dispatch sites in three files. `uss-lint` encodes exactly those rules
//! over a hand-rolled lexer, with no dependencies, so the checks run anywhere
//! the toolchain does.
//!
//! ## Rules
//!
//! | rule | invariant | why |
//! |------|-----------|-----|
//! | R1 | No `unwrap`/`expect`, panicking macro, or narrowing `as` cast in the total-decode regions of `persist.rs` and `wire.rs` | both codecs promise hostile bytes yield typed errors, never a panic; one stray `unwrap` silently breaks the contract |
//! | R2 | Every `SketchKind` appears in `from_byte` (name *and* byte), `ColdSnapshot::open` and `merge_files`; the garbage-kind fuzz ranges track the registry; wire kind bytes stay unique | adding kind 9 and forgetting one dispatch site produces files that decode on one path and fail on another |
//! | R3 | All `*_SALT: u64` constants are pairwise distinct | two folds sharing a salt draw identical RNG streams for the same base seed, correlating draws the estimator assumes independent |
//! | R4 | Every `unsafe` sits under a `// SAFETY:` comment | the SPSC ring is the one unsafe island in the workspace; each site must carry its proof obligation |
//! | R5 | No `sync_channel`, no `std::sync` locks (workspace standard is `parking_lot`), no `Instant::now`/`SystemTime::now` in deterministic sketch crates | channels were replaced by the SPSC rings; poisoning locks turn a panic into deadlock-adjacent failure; wall-clock reads break replayability |
//!
//! ## Region marking and the escape hatch
//!
//! R1's decode regions are found two ways: any `fn` in a designated file whose
//! name starts with `decode`/`read`/`peek`/`check`/`validate`/`from`, and any
//! `fn` or `impl` annotated with a preceding `// lint: total-decode` comment
//! (used for `impl PayloadReader` and `ColdSnapshot::open`, whose names carry
//! no prefix). A genuinely-unreachable panic can be waived with
//! `// lint: allow(panic) <reason>` on the same or preceding line; every
//! waiver is printed in the run summary so the debt stays visible.
//!
//! ## Running
//!
//! ```text
//! cargo run -p uss-lint            # lints the workspace rooted at cwd
//! cargo run -p uss-lint -- --root <dir>
//! ```
//!
//! Exit code 0 when clean, 1 when any rule fires. The scan set is
//! `crates/*/src/**/*.rs` plus `crates/*/tests/*.rs` (fixture subdirectories
//! excluded — they hold intentionally-failing mini-trees for the self-tests).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod diag;
pub mod lexer;
pub mod project;
pub mod rules;

use std::io;
use std::path::Path;

pub use diag::{Allowance, Diagnostic, LintReport};

/// Runs every rule over the project rooted at `root` and returns the report.
///
/// # Errors
///
/// Propagates filesystem errors from reading discovered source files.
pub fn run(root: &Path) -> io::Result<LintReport> {
    let project = project::load(root)?;
    let mut report = LintReport {
        files_scanned: project.files.len(),
        ..LintReport::default()
    };
    report.diagnostics.extend(rules::check_r1(&project, &mut report.allowances));
    report.diagnostics.extend(rules::check_r2(&project));
    report.diagnostics.extend(rules::check_r3(&project));
    report.diagnostics.extend(rules::check_r4(&project));
    report.diagnostics.extend(rules::check_r5(&project));
    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}
