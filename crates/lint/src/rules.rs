//! The five project-invariant rules.
//!
//! Every rule works on the flat token streams produced by [`crate::lexer`],
//! plus a small item scanner that finds `fn`/`impl` bodies by brace matching.
//! Rules are deliberately syntactic: they enforce *lexical* invariants (no
//! `unwrap` token in a decode region, every `unsafe` token under a `SAFETY:`
//! comment) that survive any refactor the type system would accept.

use std::collections::{HashMap, HashSet};
use std::ops::Range;

use crate::diag::{Allowance, Diagnostic};
use crate::lexer::{number_value, Token, TokenKind};
use crate::project::{Project, SourceFile};

/// The files whose decode paths must be total (rule R1).
const R1_FILES: [&str; 2] = ["crates/core/src/persist.rs", "crates/server/src/wire.rs"];

/// Function-name prefixes that mark a fn as a decode region automatically.
const R1_PREFIXES: [&str; 6] = ["decode", "read", "peek", "check", "validate", "from"];

/// Idents that panic when called as methods.
const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];

/// Macros that panic (matched as `ident` followed by `!`).
const PANIC_MACROS: [&str; 10] = [
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
    "unreachable",
    "todo",
    "unimplemented",
];

/// `as` cast targets that can silently truncate a wider integer.
const NARROWING_TARGETS: [&str; 9] = ["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize", "char"];

/// `std::sync` names banned workspace-wide (rule R5): the project standardises
/// on `parking_lot`'s non-poisoning locks.
const BANNED_SYNC: [&str; 6] = [
    "Mutex",
    "RwLock",
    "MutexGuard",
    "RwLockReadGuard",
    "RwLockWriteGuard",
    "PoisonError",
];

/// Path prefixes whose code must be deterministic: no wall-clock reads.
const DETERMINISTIC_PREFIXES: [&str; 3] =
    ["crates/core/src/", "crates/sampling/src/", "crates/baselines/src/"];

/// The escape-hatch marker honoured by R1.
const ALLOW_MARKER: &str = "lint: allow(panic)";

/// The marker that turns the next `fn` or `impl` into a decode region.
const REGION_MARKER: &str = "lint: total-decode";

// ----- item scanning -----

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ItemKind {
    Fn,
    Impl,
}

#[derive(Debug)]
struct Item {
    kind: ItemKind,
    name: String,
    marked: bool,
    /// Token-index range of the body, braces inclusive.
    body: Range<usize>,
    line: usize,
}

/// Index of the next non-comment token at or after `i`.
fn next_code(toks: &[Token], mut i: usize) -> Option<usize> {
    while i < toks.len() {
        if !toks[i].is_comment() {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Finds the item body starting at or after `from`: the first `{` outside any
/// parens/brackets, matched to its closing `}`. Returns `None` when a `;`
/// terminates the item first (a bodyless declaration).
fn find_body(toks: &[Token], from: usize) -> Option<Range<usize>> {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut i = from;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_comment() {
            i += 1;
            continue;
        }
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('[') {
            bracket += 1;
        } else if t.is_punct(']') {
            bracket -= 1;
        } else if paren == 0 && bracket == 0 {
            if t.is_punct(';') {
                return None;
            }
            if t.is_punct('{') {
                let open = i;
                let mut depth = 1i32;
                let mut j = i + 1;
                while j < toks.len() && depth > 0 {
                    if toks[j].is_punct('{') {
                        depth += 1;
                    } else if toks[j].is_punct('}') {
                        depth -= 1;
                    }
                    j += 1;
                }
                return Some(open..j);
            }
        }
        i += 1;
    }
    None
}

/// Skips one item starting at `from`: everything to the first top-level `;`,
/// or past the matched body braces. Returns the index after the item.
fn skip_item(toks: &[Token], from: usize) -> usize {
    match find_body(toks, from) {
        Some(body) => body.end,
        None => {
            let mut i = from;
            while i < toks.len() && !toks[i].is_punct(';') {
                i += 1;
            }
            i + 1
        }
    }
}

/// Whether the attribute tokens (between `[` and `]`) are exactly `cfg(test)`.
fn attr_is_cfg_test(toks: &[Token], range: Range<usize>) -> bool {
    let code: Vec<&Token> = toks[range].iter().filter(|t| !t.is_comment()).collect();
    code.windows(4).any(|w| {
        w[0].is_ident("cfg") && w[1].is_punct('(') && w[2].is_ident("test") && w[3].is_punct(')')
    })
}

/// Scans a file for `fn` and `impl` items, tracking `// lint: total-decode`
/// markers and skipping items under `#[cfg(test)]`.
fn scan_items(toks: &[Token]) -> Vec<Item> {
    let mut items = Vec::new();
    let mut marker = false;
    let mut skip_test = false;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_comment() {
            if t.text.contains(REGION_MARKER) {
                marker = true;
            }
            i += 1;
            continue;
        }
        // Attributes: parse `#[…]`, remember `#[cfg(test)]`, keep any pending
        // marker alive across them.
        if t.is_punct('#') {
            if let Some(open) = next_code(toks, i + 1).filter(|&j| toks[j].is_punct('[') || toks[j].is_punct('!')) {
                // `#![…]` inner attribute: step to the `[`.
                let open = if toks[open].is_punct('!') {
                    match next_code(toks, open + 1) {
                        Some(j) if toks[j].is_punct('[') => j,
                        _ => {
                            i += 1;
                            continue;
                        }
                    }
                } else {
                    open
                };
                let mut depth = 1i32;
                let mut j = open + 1;
                while j < toks.len() && depth > 0 {
                    if toks[j].is_punct('[') {
                        depth += 1;
                    } else if toks[j].is_punct(']') {
                        depth -= 1;
                    }
                    j += 1;
                }
                if attr_is_cfg_test(toks, open + 1..j.saturating_sub(1)) {
                    skip_test = true;
                }
                i = j;
                continue;
            }
        }
        if skip_test {
            i = skip_item(toks, i);
            skip_test = false;
            marker = false;
            continue;
        }
        if t.is_ident("fn") {
            if let Some(name_idx) = next_code(toks, i + 1).filter(|&j| toks[j].kind == TokenKind::Ident) {
                if let Some(body) = find_body(toks, name_idx + 1) {
                    items.push(Item {
                        kind: ItemKind::Fn,
                        name: toks[name_idx].text.clone(),
                        marked: marker,
                        body,
                        line: t.line,
                    });
                }
                marker = false;
                // Continue from just past the name so nested items are seen.
                i = name_idx + 1;
                continue;
            }
        }
        if t.is_ident("impl") {
            if marker {
                if let Some(body) = find_body(toks, i + 1) {
                    items.push(Item {
                        kind: ItemKind::Impl,
                        name: "impl".to_string(),
                        marked: true,
                        body,
                        line: t.line,
                    });
                }
            }
            marker = false;
            i += 1;
            continue;
        }
        // Item qualifiers sit between a marker comment and the `fn`/`impl`
        // keyword; they must not clear a pending marker.
        if t.is_ident("pub") {
            if let Some(open) = next_code(toks, i + 1).filter(|&j| toks[j].is_punct('(')) {
                let mut depth = 1i32;
                let mut j = open + 1;
                while j < toks.len() && depth > 0 {
                    if toks[j].is_punct('(') {
                        depth += 1;
                    } else if toks[j].is_punct(')') {
                        depth -= 1;
                    }
                    j += 1;
                }
                i = j;
            } else {
                i += 1;
            }
            continue;
        }
        if t.is_ident("const") || t.is_ident("unsafe") || t.is_ident("async") || t.is_ident("extern") {
            i += 1;
            continue;
        }
        marker = false;
        i += 1;
    }
    items
}

/// Map from line number to the comment texts that start on it.
fn comments_by_line(toks: &[Token]) -> HashMap<usize, Vec<&str>> {
    let mut map: HashMap<usize, Vec<&str>> = HashMap::new();
    for t in toks {
        if t.is_comment() {
            map.entry(t.line).or_default().push(&t.text);
        }
    }
    map
}

// ----- R1: panic-freedom in total-decode modules -----

/// R1 — decode paths must be total. In the designated codec files, any
/// function whose name starts with a decode-ish prefix (`decode`, `read`,
/// `peek`, `check`, `validate`, `from`) — plus any `fn` or `impl` explicitly
/// marked `// lint: total-decode` — must contain no `unwrap`/`expect`, no
/// panicking macro, and no narrowing `as` cast. `// lint: allow(panic)
/// <reason>` on the same or preceding line waives one site and is reported in
/// the run summary.
pub fn check_r1(project: &Project, allowances: &mut Vec<Allowance>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for suffix in R1_FILES {
        let Some(file) = project.file(suffix) else { continue };
        let toks = &file.tokens;
        let comments = comments_by_line(toks);
        let items = scan_items(toks);
        let mut seen: HashSet<usize> = HashSet::new();
        for item in items.iter().filter(|it| {
            it.marked
                || (it.kind == ItemKind::Fn && R1_PREFIXES.iter().any(|p| it.name.starts_with(p)))
        }) {
            let mut i = item.body.start;
            while i < item.body.end {
                let t = &toks[i];
                if t.is_comment() || !seen.insert(i) {
                    i += 1;
                    continue;
                }
                let found: Option<String> = if t.kind == TokenKind::Ident
                    && PANIC_METHODS.contains(&t.text.as_str())
                {
                    Some(format!("`{}`", t.text))
                } else if t.kind == TokenKind::Ident
                    && PANIC_MACROS.contains(&t.text.as_str())
                    && next_code(toks, i + 1).is_some_and(|j| toks[j].is_punct('!'))
                {
                    Some(format!("`{}!`", t.text))
                } else if t.is_ident("as") {
                    next_code(toks, i + 1)
                        .filter(|&j| {
                            toks[j].kind == TokenKind::Ident
                                && NARROWING_TARGETS.contains(&toks[j].text.as_str())
                        })
                        .map(|j| format!("narrowing cast `as {}`", toks[j].text))
                } else {
                    None
                };
                if let Some(what) = found {
                    let hatch = [t.line, t.line.saturating_sub(1)]
                        .iter()
                        .filter_map(|l| comments.get(l))
                        .flatten()
                        .find_map(|c| {
                            c.find(ALLOW_MARKER)
                                .map(|at| c[at + ALLOW_MARKER.len()..].trim().to_string())
                        });
                    match hatch {
                        Some(reason) if !reason.is_empty() => allowances.push(Allowance {
                            file: file.rel.clone(),
                            line: t.line,
                            what: what.clone(),
                            reason,
                        }),
                        Some(_) => diags.push(Diagnostic {
                            rule: "R1",
                            file: file.rel.clone(),
                            line: t.line,
                            message: format!(
                                "{what} in total-decode region `{}` has an empty allow reason",
                                item.name
                            ),
                            hint: format!("write `// {ALLOW_MARKER} <why this cannot fire>`"),
                        }),
                        None => diags.push(Diagnostic {
                            rule: "R1",
                            file: file.rel.clone(),
                            line: t.line,
                            message: format!(
                                "{what} in total-decode region `{}` — decode paths must return errors, never panic",
                                item.name
                            ),
                            hint: "return a typed error (try_from/checked helpers); or waive with \
                                   `// lint: allow(panic) <reason>`"
                                .to_string(),
                        }),
                    }
                }
                i += 1;
            }
        }
    }
    diags
}

// ----- R2: kind-tag registry exhaustiveness -----

#[derive(Debug)]
struct Variant {
    name: String,
    disc: u64,
}

/// Parses `enum SketchKind { … }` variant names and discriminants.
fn parse_sketch_kinds(toks: &[Token]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    for w in code.windows(2) {
        if toks[w[0]].is_ident("enum") && toks[w[1]].is_ident("SketchKind") {
            let Some(body) = find_body(toks, w[1] + 1) else { break };
            let mut next_disc = 0u64;
            let mut i = body.start + 1;
            while i < body.end - 1 {
                let Some(ni) = next_code(toks, i).filter(|&j| j < body.end - 1) else { break };
                let t = &toks[ni];
                if t.kind == TokenKind::Ident {
                    let mut disc = next_disc;
                    let mut j = ni + 1;
                    if let Some(eq) = next_code(toks, j).filter(|&k| toks[k].is_punct('=')) {
                        if let Some(nv) = next_code(toks, eq + 1)
                            .filter(|&k| toks[k].kind == TokenKind::Number)
                        {
                            if let Some(v) = number_value(&toks[nv].text) {
                                disc = v;
                            }
                            j = nv + 1;
                        }
                    }
                    variants.push(Variant {
                        name: t.text.clone(),
                        disc,
                    });
                    next_disc = disc + 1;
                    // Skip to the variant separator.
                    while j < body.end - 1 && !toks[j].is_punct(',') {
                        j += 1;
                    }
                    i = j + 1;
                } else {
                    i = ni + 1;
                }
            }
            break;
        }
    }
    variants
}

/// Whether `item`'s body mentions ident `name`.
fn body_has_ident(toks: &[Token], item: &Item, name: &str) -> bool {
    toks[item.body.clone()].iter().any(|t| t.is_ident(name))
}

/// Whether `item`'s body contains a number literal of value `v`.
fn body_has_number(toks: &[Token], item: &Item, v: u64) -> bool {
    toks[item.body.clone()]
        .iter()
        .any(|t| t.kind == TokenKind::Number && number_value(&t.text) == Some(v))
}

/// R2 — the persist kind-tag registry must stay exhaustive. Every
/// `SketchKind` variant must be dispatched in `from_byte` (name and
/// discriminant), handled in `ColdSnapshot::open`, and handled in
/// `DistributedSketcher::merge_files`; the property-test garbage-kind range
/// must be exactly one past the highest discriminant; and the wire-fuzz
/// injected unknown kind must not collide with a defined wire kind.
pub fn check_r2(project: &Project) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let Some(persist) = project.file("crates/core/src/persist.rs") else {
        return diags;
    };
    let variants = parse_sketch_kinds(&persist.tokens);
    if variants.is_empty() {
        return diags;
    }
    let max_disc = variants.iter().map(|v| v.disc).max().unwrap_or(0);
    let items = scan_items(&persist.tokens);

    let require_all = |file: &SourceFile, items: &[Item], fn_name: &str, site: &str, diags: &mut Vec<Diagnostic>| {
        let Some(item) = items.iter().find(|it| it.kind == ItemKind::Fn && it.name == fn_name)
        else {
            diags.push(Diagnostic {
                rule: "R2",
                file: file.rel.clone(),
                line: 1,
                message: format!("kind dispatch site `{site}` (fn {fn_name}) not found"),
                hint: format!("every SketchKind must be dispatched in {site}"),
            });
            return;
        };
        for v in &variants {
            if !body_has_ident(&file.tokens, item, &v.name) {
                diags.push(Diagnostic {
                    rule: "R2",
                    file: file.rel.clone(),
                    line: item.line,
                    message: format!("SketchKind::{} (= {}) is not handled in `{site}`", v.name, v.disc),
                    hint: format!("add a `SketchKind::{}` arm to {site}", v.name),
                });
            }
        }
    };
    require_all(persist, &items, "from_byte", "SketchKind::from_byte", &mut diags);
    require_all(persist, &items, "open", "ColdSnapshot::open", &mut diags);
    // from_byte must also dispatch every discriminant *byte*, not just name it.
    if let Some(item) = items.iter().find(|it| it.kind == ItemKind::Fn && it.name == "from_byte") {
        for v in &variants {
            if !body_has_number(&persist.tokens, item, v.disc) {
                diags.push(Diagnostic {
                    rule: "R2",
                    file: persist.rel.clone(),
                    line: item.line,
                    message: format!(
                        "discriminant {} (SketchKind::{}) is not matched in `SketchKind::from_byte`",
                        v.disc, v.name
                    ),
                    hint: format!("add `{} => Some(Self::{})`", v.disc, v.name),
                });
            }
        }
    }
    if let Some(dist) = project.file("crates/core/src/distributed.rs") {
        let dist_items = scan_items(&dist.tokens);
        require_all(dist, &dist_items, "merge_files", "DistributedSketcher::merge_files", &mut diags);
    }
    // Garbage-kind fuzz range: `kind in 0u8..N` with N = max discriminant + 1.
    if let Some(pp) = project.file("crates/core/tests/persist_properties.rs") {
        let code: Vec<&Token> = pp.tokens.iter().filter(|t| !t.is_comment()).collect();
        let mut found = false;
        for w in code.windows(6) {
            if w[0].is_ident("kind")
                && w[1].is_ident("in")
                && w[2].kind == TokenKind::Number
                && number_value(&w[2].text) == Some(0)
                && w[3].is_punct('.')
                && w[4].is_punct('.')
                && w[5].kind == TokenKind::Number
            {
                found = true;
                let bound = number_value(&w[5].text);
                if bound != Some(max_disc + 1) {
                    diags.push(Diagnostic {
                        rule: "R2",
                        file: pp.rel.clone(),
                        line: w[5].line,
                        message: format!(
                            "garbage-kind fuzz range ends at {} but defined kinds are 0..={max_disc}",
                            w[5].text
                        ),
                        hint: format!("the strategy must be `kind in 0u8..{}` so every defined kind is fuzzed", max_disc + 1),
                    });
                }
            }
        }
        if !found {
            diags.push(Diagnostic {
                rule: "R2",
                file: pp.rel.clone(),
                line: 1,
                message: "no garbage-kind fuzz range (`kind in 0u8..N`) found".to_string(),
                hint: format!(
                    "add a strategy `kind in 0u8..{}` covering every defined kind",
                    max_disc + 1
                ),
            });
        }
    }
    // Wire registry: KIND_* constants must be pairwise distinct, and the fuzz
    // test's injected unknown kind must not collide with any of them.
    if let Some(wire) = project.file("crates/server/src/wire.rs") {
        let code: Vec<&Token> = wire.tokens.iter().filter(|t| !t.is_comment()).collect();
        let mut kind_consts: Vec<(String, u64, usize)> = Vec::new();
        for w in code.windows(7) {
            if w[0].is_ident("const")
                && w[1].kind == TokenKind::Ident
                && w[1].text.starts_with("KIND_")
                && w[2].is_punct(':')
                && w[3].is_ident("u8")
                && w[4].is_punct('=')
                && w[5].kind == TokenKind::Number
                && w[6].is_punct(';')
            {
                if let Some(v) = number_value(&w[5].text) {
                    kind_consts.push((w[1].text.clone(), v, w[1].line));
                }
            }
        }
        for (i, (name, v, line)) in kind_consts.iter().enumerate() {
            if let Some((prev, _, prev_line)) = kind_consts[..i].iter().find(|(_, pv, _)| pv == v) {
                diags.push(Diagnostic {
                    rule: "R2",
                    file: wire.rel.clone(),
                    line: *line,
                    message: format!("wire kind `{name}` reuses byte {v:#04X} of `{prev}` (line {prev_line})"),
                    hint: "every wire kind byte must be unique".to_string(),
                });
            }
        }
        if let Some(wf) = project.file("crates/server/tests/wire_fuzz.rs") {
            let wf_code: Vec<&Token> = wf.tokens.iter().filter(|t| !t.is_comment()).collect();
            for w in wf_code.windows(7) {
                if w[0].is_ident("frame")
                    && w[1].is_punct('[')
                    && w[2].kind == TokenKind::Number
                    && number_value(&w[2].text) == Some(6)
                    && w[3].is_punct(']')
                    && w[4].is_punct('=')
                    && w[5].kind == TokenKind::Number
                    && w[6].is_punct(';')
                {
                    let injected = number_value(&w[5].text);
                    if let Some(inj) = injected {
                        if kind_consts.iter().any(|(_, v, _)| *v == inj) {
                            diags.push(Diagnostic {
                                rule: "R2",
                                file: wf.rel.clone(),
                                line: w[5].line,
                                message: format!(
                                    "unknown-kind fuzz byte {inj:#04X} collides with a defined wire kind"
                                ),
                                hint: "pick a byte outside the defined request/response/error kinds".to_string(),
                            });
                        }
                    }
                }
            }
            // The fuzz suite's first-undefined-kind constants must sit exactly
            // one past the highest defined kind of their half of the byte
            // space, so adding a wire kind without extending the fuzz coverage
            // is a lint failure, not a silent gap. (Error kind 0x7F is its own
            // register, outside both ranges.)
            let request_max = kind_consts
                .iter()
                .filter(|(_, v, _)| *v < 0x40)
                .map(|(_, v, _)| *v)
                .max();
            let response_max = kind_consts
                .iter()
                .filter(|(_, v, _)| (0x40..0x7F).contains(v))
                .map(|(_, v, _)| *v)
                .max();
            let expectations = [
                ("FIRST_UNDEFINED_REQUEST_KIND", request_max),
                ("FIRST_UNDEFINED_RESPONSE_KIND", response_max),
            ];
            for (const_name, defined_max) in expectations {
                let Some(defined_max) = defined_max else { continue };
                let mut found = false;
                for w in wf_code.windows(7) {
                    if w[0].is_ident("const")
                        && w[1].is_ident(const_name)
                        && w[2].is_punct(':')
                        && w[3].is_ident("u8")
                        && w[4].is_punct('=')
                        && w[5].kind == TokenKind::Number
                        && w[6].is_punct(';')
                    {
                        found = true;
                        if number_value(&w[5].text) != Some(defined_max + 1) {
                            diags.push(Diagnostic {
                                rule: "R2",
                                file: wf.rel.clone(),
                                line: w[5].line,
                                message: format!(
                                    "`{const_name}` is {} but the highest defined kind in its range is {defined_max:#04X}",
                                    w[5].text
                                ),
                                hint: format!(
                                    "set `{const_name}` to {:#04X} so the fuzz suite probes the first gap",
                                    defined_max + 1
                                ),
                            });
                        }
                    }
                }
                if !found {
                    diags.push(Diagnostic {
                        rule: "R2",
                        file: wf.rel.clone(),
                        line: 1,
                        message: format!("`const {const_name}: u8 = …;` not found"),
                        hint: format!(
                            "declare `{const_name}` (= {:#04X}) and exercise it against the daemon",
                            defined_max + 1
                        ),
                    });
                }
            }
        }
    }
    diags
}

// ----- R3: salts pairwise distinct -----

/// R3 — every `*_SALT: u64` constant in the workspace must be pairwise
/// distinct: two folds seeded with the same salt would draw identical RNG
/// streams for the same base seed, silently correlating subsampling decisions
/// that the estimator treats as independent.
pub fn check_r3(project: &Project) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut seen: Vec<(String, u64, String, usize)> = Vec::new();
    for file in &project.files {
        if !file.rel.contains("/src/") {
            continue;
        }
        let code: Vec<&Token> = file.tokens.iter().filter(|t| !t.is_comment()).collect();
        for w in code.windows(7) {
            if w[0].is_ident("const")
                && w[1].kind == TokenKind::Ident
                && w[1].text.ends_with("_SALT")
                && w[2].is_punct(':')
                && w[3].is_ident("u64")
                && w[4].is_punct('=')
                && w[5].kind == TokenKind::Number
                && w[6].is_punct(';')
            {
                let Some(v) = number_value(&w[5].text) else { continue };
                if let Some((prev_name, _, prev_file, prev_line)) =
                    seen.iter().find(|(_, pv, _, _)| *pv == v)
                {
                    diags.push(Diagnostic {
                        rule: "R3",
                        file: file.rel.clone(),
                        line: w[1].line,
                        message: format!(
                            "salt `{}` = {v:#x} duplicates `{prev_name}` ({prev_file}:{prev_line})",
                            w[1].text
                        ),
                        hint: "every salt must XOR the base seed into a distinct RNG stream; pick an unused constant"
                            .to_string(),
                    });
                } else {
                    seen.push((w[1].text.clone(), v, file.rel.clone(), w[1].line));
                }
            }
        }
    }
    diags
}

// ----- R4: every `unsafe` carries a SAFETY comment -----

/// Whether the comment tokens directly above token `k` (attributes and other
/// comments may intervene, code may not) include a `SAFETY:` justification.
/// Works on *tokens*, so a `"// SAFETY:"` inside a string literal is code and
/// never satisfies the rule.
fn safety_comment_above(toks: &[Token], k: usize) -> bool {
    let line = toks[k].line;
    let mut j = k;
    // Code earlier on the same line (`let value = unsafe { … }`) is part of
    // the same statement the comment annotates — step over it.
    while j > 0 && toks[j - 1].line == line && !toks[j - 1].is_comment() {
        j -= 1;
    }
    while j > 0 {
        j -= 1;
        let p = &toks[j];
        if p.is_comment() {
            if p.text.contains("SAFETY:") {
                return true;
            }
            continue;
        }
        // Step backward over one attribute: `#[…]` or `#![…]`.
        if p.is_punct(']') {
            let mut depth = 1i32;
            while j > 0 && depth > 0 {
                j -= 1;
                if toks[j].is_punct(']') {
                    depth += 1;
                } else if toks[j].is_punct('[') {
                    depth -= 1;
                }
            }
            if j > 0 && toks[j - 1].is_punct('!') {
                j -= 1;
            }
            if j > 0 && toks[j - 1].is_punct('#') {
                j -= 1;
            }
            continue;
        }
        break;
    }
    false
}

/// R4 — every `unsafe` token must sit under a `// SAFETY:` justification: a
/// comment on the same line, or in the comment block directly above
/// (attributes may intervene, code may not). The check is token-based: a
/// `SAFETY:` inside a string literal or the code itself does not count.
pub fn check_r4(project: &Project) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for file in &project.files {
        if !file.rel.contains("/src/") {
            continue;
        }
        let comments = comments_by_line(&file.tokens);
        let mut flagged: HashSet<usize> = HashSet::new();
        for (k, t) in file.tokens.iter().enumerate() {
            if !t.is_ident("unsafe") || !flagged.insert(t.line) {
                continue;
            }
            let covered = comments
                .get(&t.line)
                .is_some_and(|cs| cs.iter().any(|c| c.contains("SAFETY:")))
                || safety_comment_above(&file.tokens, k);
            if !covered {
                diags.push(Diagnostic {
                    rule: "R4",
                    file: file.rel.clone(),
                    line: t.line,
                    message: "`unsafe` without a `// SAFETY:` comment".to_string(),
                    hint: "state the invariant that makes this sound in a `// SAFETY:` comment \
                           directly above the unsafe code"
                        .to_string(),
                });
            }
        }
    }
    diags
}

// ----- R5: banned APIs -----

/// R5 — banned APIs. `std::sync::mpsc::sync_channel` (replaced by the SPSC
/// rings), `std::sync::Mutex`/`RwLock` and their guards (the project standard
/// is `parking_lot`'s non-poisoning locks), and wall-clock reads
/// (`Instant::now`/`SystemTime::now`) inside the deterministic sketch/fold
/// crates, whose outputs must be a pure function of input and seed.
pub fn check_r5(project: &Project) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for file in &project.files {
        if !file.rel.contains("/src/") {
            continue;
        }
        let code: Vec<&Token> = file.tokens.iter().filter(|t| !t.is_comment()).collect();
        for (i, t) in code.iter().enumerate() {
            if t.is_ident("sync_channel") {
                diags.push(Diagnostic {
                    rule: "R5",
                    file: file.rel.clone(),
                    line: t.line,
                    message: "`sync_channel` is banned".to_string(),
                    hint: "use the lock-free SPSC block rings in `uss_core::spsc`".to_string(),
                });
            }
            // `std :: sync :: <name | { … }>`
            if t.is_ident("std")
                && code.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && code.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && code.get(i + 3).is_some_and(|t| t.is_ident("sync"))
                && code.get(i + 4).is_some_and(|t| t.is_punct(':'))
                && code.get(i + 5).is_some_and(|t| t.is_punct(':'))
            {
                let mut flag = |tok: &Token| {
                    if BANNED_SYNC.contains(&tok.text.as_str()) {
                        diags.push(Diagnostic {
                            rule: "R5",
                            file: file.rel.clone(),
                            line: tok.line,
                            message: format!("`std::sync::{}` is banned", tok.text),
                            hint: "use `parking_lot`'s non-poisoning locks (workspace standard)"
                                .to_string(),
                        });
                    }
                };
                match code.get(i + 6) {
                    Some(tok) if tok.kind == TokenKind::Ident => flag(tok),
                    Some(tok) if tok.is_punct('{') => {
                        let mut depth = 1i32;
                        let mut j = i + 7;
                        while let Some(tok) = code.get(j) {
                            if tok.is_punct('{') {
                                depth += 1;
                            } else if tok.is_punct('}') {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            } else if tok.kind == TokenKind::Ident {
                                flag(tok);
                            }
                            j += 1;
                        }
                    }
                    _ => {}
                }
            }
            // Wall-clock reads in deterministic code.
            if DETERMINISTIC_PREFIXES.iter().any(|p| file.rel.starts_with(p))
                && (t.is_ident("Instant") || t.is_ident("SystemTime"))
                && code.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && code.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && code.get(i + 3).is_some_and(|t| t.is_ident("now"))
            {
                diags.push(Diagnostic {
                    rule: "R5",
                    file: file.rel.clone(),
                    line: t.line,
                    message: format!("`{}::now()` in deterministic sketch code", t.text),
                    hint: "sketch and fold outputs must be a pure function of input and seed; \
                           take timestamps as parameters"
                        .to_string(),
                });
            }
        }
        if DETERMINISTIC_PREFIXES.iter().any(|p| file.rel.starts_with(p)) {
            check_clock_impls(file, &code, &mut diags);
        }
    }
    diags
}

/// Idents that smuggle a wall-clock read into a `Clock` impl without spelling
/// `Instant::now` — a stored `Instant`'s `elapsed()` reads the clock too.
const CLOCK_SMUGGLERS: [&str; 3] = ["Instant", "SystemTime", "elapsed"];

/// R5 (Clock) — durations in the deterministic crates must flow through the
/// `uss_core::metrics::Clock` trait, and an `impl Clock for …` *inside* those
/// crates must itself be deterministic: deriving `now_nanos` from a stored
/// `std::time::Instant` (or any `elapsed()` call) is a wall-clock read with
/// the serial numbers filed off. Real clocks belong in the server and bench
/// crates, outside the deterministic prefixes.
fn check_clock_impls(file: &SourceFile, code: &[&Token], diags: &mut Vec<Diagnostic>) {
    let mut i = 0usize;
    while i < code.len() {
        if !code[i].is_ident("impl") {
            i += 1;
            continue;
        }
        // Walk the impl header to its `{` (or `;`), noting whether it reads
        // `impl … Clock for …`.
        let mut saw_clock = false;
        let mut saw_for = false;
        let mut j = i + 1;
        while j < code.len() && !code[j].is_punct('{') && !code[j].is_punct(';') {
            if code[j].is_ident("Clock") {
                saw_clock = true;
            }
            if code[j].is_ident("for") {
                saw_for = true;
            }
            j += 1;
        }
        if j >= code.len() || code[j].is_punct(';') || !(saw_clock && saw_for) {
            i = j + 1;
            continue;
        }
        // Brace-match the impl body and flag clock smugglers inside it.
        let mut depth = 1i32;
        let mut k = j + 1;
        while k < code.len() && depth > 0 {
            if code[k].is_punct('{') {
                depth += 1;
            } else if code[k].is_punct('}') {
                depth -= 1;
            } else if CLOCK_SMUGGLERS.contains(&code[k].text.as_str()) {
                diags.push(Diagnostic {
                    rule: "R5",
                    file: file.rel.clone(),
                    line: code[k].line,
                    message: format!(
                        "`{}` inside a `Clock` impl in deterministic sketch code",
                        code[k].text
                    ),
                    hint: "Clock impls in the deterministic crates must be manual \
                           (ManualClock-style); real clocks live in uss-server/bench"
                        .to_string(),
                });
            }
            k += 1;
        }
        i = k;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    #[test]
    fn item_scanner_finds_fns_and_markers() {
        let toks = tokenize(
            "// lint: total-decode\nimpl Foo { fn get(&self) {} }\nfn decode_x() { body(); }\nfn write_y() {}\n",
        );
        let items = scan_items(&toks);
        let names: Vec<&str> = items.iter().map(|i| i.name.as_str()).collect();
        assert!(names.contains(&"impl"));
        assert!(names.contains(&"decode_x"));
        assert!(items.iter().find(|i| i.name == "impl").is_some_and(|i| i.marked));
        assert!(items.iter().find(|i| i.name == "write_y").is_some_and(|i| !i.marked));
    }

    #[test]
    fn cfg_test_items_are_skipped() {
        let toks = tokenize("#[cfg(test)]\nmod tests { fn decode_z() { x.unwrap(); } }\nfn decode_a() {}\n");
        let items = scan_items(&toks);
        assert!(items.iter().all(|i| i.name != "decode_z"));
        assert!(items.iter().any(|i| i.name == "decode_a"));
    }

    #[test]
    fn cfg_not_test_is_not_skipped() {
        let toks = tokenize("#[cfg(not(test))]\nfn decode_b() {}\n");
        let items = scan_items(&toks);
        assert!(items.iter().any(|i| i.name == "decode_b"));
    }

    fn proj(rel: &str, src: &str) -> Project {
        Project {
            root: std::path::PathBuf::from("."),
            files: vec![SourceFile {
                rel: rel.to_string(),
                tokens: tokenize(src),
            }],
        }
    }

    #[test]
    fn r4_safety_inside_string_does_not_count() {
        let p = proj(
            "crates/x/src/lib.rs",
            "fn f(p: *const u8) -> u8 {\n    let _s = \"// SAFETY: bogus\";\n    unsafe { *p }\n}\n",
        );
        assert_eq!(check_r4(&p).len(), 1);
    }

    #[test]
    fn r4_comment_above_statement_counts() {
        let p = proj(
            "crates/x/src/lib.rs",
            "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller promises `p` valid.\n    let v = unsafe { *p };\n    v\n}\n",
        );
        assert!(check_r4(&p).is_empty());
    }

    #[test]
    fn r4_trailing_same_line_comment_counts() {
        let p = proj(
            "crates/x/src/lib.rs",
            "fn f(p: *const u8) -> u8 {\n    unsafe { *p } // SAFETY: caller promises `p` valid.\n}\n",
        );
        assert!(check_r4(&p).is_empty());
    }

    #[test]
    fn sketch_kind_parse() {
        let toks = tokenize(
            "pub enum SketchKind { /// doc\n A = 0, B = 1, C = 4, }",
        );
        let vs = parse_sketch_kinds(&toks);
        assert_eq!(vs.len(), 3);
        assert_eq!(vs[2].name, "C");
        assert_eq!(vs[2].disc, 4);
    }
}
