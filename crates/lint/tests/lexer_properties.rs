//! Property tests for the lexer and the rules' blindness to non-code text:
//! banned names spelled inside string literals, raw strings, chars and
//! comments must be invisible to the token-level rules, and a `// SAFETY:`
//! spelled inside a *string* must never satisfy R4.
//!
//! The vendored proptest has no string strategy, so sources are composed from
//! fragment pools indexed by generated `usize` vectors.

use proptest::collection::vec;
use proptest::prelude::*;

use uss_lint::lexer::{tokenize, TokenKind};
use uss_lint::project::{Project, SourceFile};
use uss_lint::rules;

/// Names that would trip R1/R5 if they appeared as code tokens.
const BANNED: &[&str] = &[
    "unwrap",
    "expect",
    "panic",
    "sync_channel",
    "Mutex",
    "Instant",
    "SAFETY:",
];

/// Containers that must make a fragment invisible to the token rules.
fn contain(container: usize, frag: &str) -> String {
    match container % 4 {
        0 => format!("let _s = \"{frag}\";\n"),
        1 => format!("// {frag}\n"),
        2 => format!("/* {frag} */\n"),
        _ => format!("let _r = r#\"{frag}\"#;\n"),
    }
}

fn pick(pool: &'static [&'static str], idx: usize) -> &'static str {
    pool[idx % pool.len()]
}

fn project_of(rel: &str, src: &str) -> Project {
    Project {
        root: std::path::PathBuf::from("."),
        files: vec![SourceFile {
            rel: rel.to_string(),
            tokens: tokenize(src),
        }],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A banned name inside a string/comment/raw string never lexes as an
    /// identifier token.
    #[test]
    fn banned_names_in_containers_are_not_idents(picks in vec((0usize..64, 0usize..64), 1..12)) {
        let mut src = String::from("fn decode_probe() {\n");
        for (f, c) in &picks {
            src.push_str(&contain(*c, pick(BANNED, *f)));
        }
        src.push_str("}\n");
        for t in tokenize(&src) {
            if t.kind == TokenKind::Ident {
                prop_assert!(
                    !BANNED.contains(&t.text.as_str()),
                    "banned name `{}` leaked out of its container in:\n{src}",
                    t.text
                );
            }
        }
    }

    /// R1 stays silent when `unwrap`/`expect`/`panic!` appear only inside
    /// strings or comments of a decode fn in a designated codec file.
    #[test]
    fn r1_ignores_banned_names_in_containers(picks in vec((0usize..64, 0usize..64), 1..12)) {
        let mut src = String::from("fn decode_probe(bytes: &[u8]) -> u8 {\n");
        for (f, c) in &picks {
            src.push_str(&contain(*c, pick(BANNED, *f)));
        }
        src.push_str("    0\n}\n");
        let project = project_of("crates/core/src/persist.rs", &src);
        let mut allowances = Vec::new();
        let diags = rules::check_r1(&project, &mut allowances);
        prop_assert!(diags.is_empty(), "spurious R1 in:\n{src}\n{diags:#?}");
        prop_assert!(allowances.is_empty());
    }

    /// R5 stays silent for the same containers.
    #[test]
    fn r5_ignores_banned_names_in_containers(picks in vec((0usize..64, 0usize..64), 1..12)) {
        let mut src = String::from("fn probe() {\n");
        for (f, c) in &picks {
            src.push_str(&contain(*c, pick(BANNED, *f)));
        }
        src.push_str("}\n");
        let project = project_of("crates/core/src/lib.rs", &src);
        let diags = rules::check_r5(&project);
        prop_assert!(diags.is_empty(), "spurious R5 in:\n{src}\n{diags:#?}");
    }

    /// A `// SAFETY:` spelled inside a string literal never satisfies R4 —
    /// regardless of how many such decoy lines precede the `unsafe`.
    #[test]
    fn safety_inside_string_never_satisfies_r4(decoys in 1usize..8, raw in any::<bool>()) {
        let mut src = String::from("fn probe(p: *const u8) -> u8 {\n");
        for _ in 0..decoys {
            if raw {
                src.push_str("    let _d = r#\"// SAFETY: decoy\"#;\n");
            } else {
                src.push_str("    let _d = \"// SAFETY: decoy\";\n");
            }
        }
        src.push_str("    unsafe { *p }\n}\n");
        let project = project_of("crates/core/src/lib.rs", &src);
        let diags = rules::check_r4(&project);
        prop_assert_eq!(diags.len(), 1, "R4 must still fire through string decoys in:\n{}", src);
    }

    /// Control: a real `// SAFETY:` comment above the statement satisfies R4
    /// even with attribute lines between comment and `unsafe`.
    #[test]
    fn real_safety_comment_satisfies_r4(attrs in 0usize..3) {
        let mut src = String::from("fn probe(p: *const u8) -> u8 {\n    // SAFETY: proptest control case.\n");
        for _ in 0..attrs {
            src.push_str("    #[allow(unused_unsafe)]\n");
        }
        src.push_str("    unsafe { *p }\n}\n");
        let project = project_of("crates/core/src/lib.rs", &src);
        let diags = rules::check_r4(&project);
        prop_assert!(diags.is_empty(), "R4 fired despite a real SAFETY comment in:\n{src}\n{diags:#?}");
    }

    /// The lexer is total: arbitrary byte soup (lossily decoded) never panics
    /// and always yields tokens with sane line numbers.
    #[test]
    fn tokenize_is_total_on_arbitrary_input(bytes in vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes);
        let line_count = src.lines().count().max(1);
        for t in tokenize(&src) {
            prop_assert!(t.line >= 1 && t.line <= line_count);
        }
    }

    /// Char literals are opaque too: `'u'` followed by banned-looking text
    /// never fuses into identifiers.
    #[test]
    fn char_literals_do_not_leak(f in 0usize..64) {
        let frag = pick(BANNED, f);
        let src = format!("fn probe() {{ let _c = 'x'; let _s = \"{frag}\"; }}\n");
        for t in tokenize(&src) {
            if t.kind == TokenKind::Ident {
                prop_assert!(!BANNED.contains(&t.text.as_str()));
            }
        }
    }
}
