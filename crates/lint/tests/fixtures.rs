//! Fixture-driven self-tests: each `tests/fixtures/<case>/` directory is a
//! minimal mini-tree that must trip exactly one rule (or none), both through
//! the library API and through the compiled `uss-lint` binary's exit code.

use std::path::PathBuf;
use std::process::Command;

use uss_lint::LintReport;

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn lint(name: &str) -> LintReport {
    uss_lint::run(&fixture_root(name)).expect("fixture tree must load")
}

/// Asserts every diagnostic in `report` carries `rule`, and there are `n`.
fn assert_only_rule(report: &LintReport, rule: &str, n: usize) {
    for d in &report.diagnostics {
        assert_eq!(d.rule, rule, "unexpected rule in report: {d}");
    }
    assert_eq!(
        report.diagnostics.len(),
        n,
        "expected {n} {rule} diagnostic(s), got: {:#?}",
        report.diagnostics
    );
}

#[test]
fn r1_unwrap_in_decode_fn_fires() {
    let report = lint("r1");
    assert_only_rule(&report, "R1", 1);
    let d = &report.diagnostics[0];
    assert_eq!(d.file, "crates/core/src/persist.rs");
    assert_eq!(d.line, 5);
    assert!(d.message.contains("unwrap"), "message: {}", d.message);
    assert!(report.allowances.is_empty());
}

#[test]
fn r2_missing_from_byte_arm_fires() {
    let report = lint("r2");
    // One diagnostic for the missing `Self::B` arm, one for the missing
    // discriminant byte `1`.
    assert_only_rule(&report, "R2", 2);
    assert!(report.diagnostics.iter().any(|d| d.message.contains("SketchKind::B")));
    assert!(report.diagnostics.iter().any(|d| d.message.contains("discriminant 1")));
}

#[test]
fn r3_duplicate_salt_fires() {
    let report = lint("r3");
    assert_only_rule(&report, "R3", 1);
    let d = &report.diagnostics[0];
    assert!(d.message.contains("BETA_SALT"), "message: {}", d.message);
    assert!(d.message.contains("ALPHA_SALT"), "message: {}", d.message);
}

#[test]
fn r4_unsafe_without_safety_fires() {
    let report = lint("r4");
    assert_only_rule(&report, "R4", 1);
    assert_eq!(report.diagnostics[0].line, 5);
}

#[test]
fn r5_banned_lock_and_clock_fire() {
    let report = lint("r5");
    assert_only_rule(&report, "R5", 2);
    assert!(report.diagnostics.iter().any(|d| d.message.contains("std::sync::Mutex")));
    assert!(report.diagnostics.iter().any(|d| d.message.contains("Instant::now")));
}

#[test]
fn r5_clock_impl_smuggling_elapsed_fires() {
    let report = lint("r5-clock");
    // Exactly the `elapsed` call inside the `impl Clock for …` body — the
    // stored `Instant` field and the trait itself are not flagged.
    assert_only_rule(&report, "R5", 1);
    let d = &report.diagnostics[0];
    assert!(d.message.contains("elapsed"), "message: {}", d.message);
    assert!(d.message.contains("Clock"), "message: {}", d.message);
}

#[test]
fn clean_tree_is_clean() {
    let report = lint("clean");
    assert!(report.is_clean(), "diagnostics: {:#?}", report.diagnostics);
    assert!(report.allowances.is_empty());
    assert_eq!(report.files_scanned, 2);
}

#[test]
fn allow_hatch_waives_and_is_reported() {
    let report = lint("allowed");
    assert!(report.is_clean(), "diagnostics: {:#?}", report.diagnostics);
    assert_eq!(report.allowances.len(), 1);
    let a = &report.allowances[0];
    assert_eq!(a.what, "`unwrap`");
    assert!(a.reason.contains("statically non-empty"), "reason: {}", a.reason);
}

#[test]
fn for_rule_filters() {
    let report = lint("r3");
    assert_eq!(report.for_rule("R3").len(), 1);
    assert!(report.for_rule("R1").is_empty());
}

// ----- binary exit codes -----

fn run_binary(fixture: &str) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_uss-lint"))
        .arg("--root")
        .arg(fixture_root(fixture))
        .output()
        .expect("spawn uss-lint")
}

#[test]
fn binary_exits_nonzero_on_each_rule_fixture() {
    for (fixture, rule) in [
        ("r1", "[R1]"),
        ("r2", "[R2]"),
        ("r3", "[R3]"),
        ("r4", "[R4]"),
        ("r5", "[R5]"),
        ("r5-clock", "[R5]"),
    ] {
        let out = run_binary(fixture);
        assert_eq!(out.status.code(), Some(1), "fixture {fixture} should exit 1");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(rule), "fixture {fixture} stderr missing {rule}: {stderr}");
    }
}

#[test]
fn binary_exits_zero_on_clean_and_allowed() {
    for fixture in ["clean", "allowed"] {
        let out = run_binary(fixture);
        assert_eq!(out.status.code(), Some(0), "fixture {fixture} should exit 0");
    }
    // The allowance is surfaced in the summary even though the run is clean.
    let out = run_binary("allowed");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("1 allowance"), "stdout: {stdout}");
}

#[test]
fn binary_exits_two_on_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_uss-lint"))
        .arg("--no-such-flag")
        .output()
        .expect("spawn uss-lint");
    assert_eq!(out.status.code(), Some(2));
}

/// The real workspace must lint clean — this is the same gate CI runs, kept
/// here so `cargo test` alone catches a regression.
#[test]
fn workspace_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf();
    let out = Command::new(env!("CARGO_BIN_EXE_uss-lint"))
        .arg("--root")
        .arg(&root)
        .output()
        .expect("spawn uss-lint");
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace lint failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}
