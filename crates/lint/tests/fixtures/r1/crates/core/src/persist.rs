//! R1 fixture: an `unwrap` inside a decode-prefixed fn must fire.

/// Reads the first payload byte.
pub fn decode_first(bytes: &[u8]) -> u8 {
    bytes.first().copied().unwrap()
}
