//! R3 fixture: two salts sharing a value must fire.

/// Salt for the merge stream.
pub const ALPHA_SALT: u64 = 0xD0D0;

/// Salt for the output stream — collides with [`ALPHA_SALT`].
pub const BETA_SALT: u64 = 0xD0D0;
