//! Clean fixture: a complete kind registry and a total decode path.

/// Sketch kinds persisted to disk.
pub enum SketchKind {
    A = 0,
    B = 1,
}

impl SketchKind {
    /// Decodes a kind byte.
    pub fn from_byte(byte: u8) -> Option<Self> {
        match byte {
            0 => Some(Self::A),
            1 => Some(Self::B),
            _ => None,
        }
    }
}

/// A snapshot handle.
pub struct ColdSnapshot;

impl ColdSnapshot {
    /// Opens a snapshot of either kind.
    pub fn open(kind: SketchKind) -> u8 {
        match kind {
            SketchKind::A => 0,
            SketchKind::B => 1,
        }
    }
}
