//! Clean fixture: distinct salts and a justified `unsafe`.

/// Salt for merges.
pub const ALPHA_SALT: u64 = 0xA;

/// Salt for outputs.
pub const BETA_SALT: u64 = 0xB;

/// Reads through a raw pointer the caller promises is valid.
pub fn read_raw(p: *const u8) -> u8 {
    // SAFETY: the caller guarantees `p` points to a live, initialised byte.
    unsafe { *p }
}
