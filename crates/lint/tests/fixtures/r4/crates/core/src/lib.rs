//! R4 fixture: `unsafe` without a `// SAFETY:` comment must fire.

/// Reads through a raw pointer.
pub fn read_raw(p: *const u8) -> u8 {
    unsafe { *p }
}
