//! Allowance fixture: the escape hatch waives one R1 site with a reason,
//! so the run is clean but reports one allowance.

/// Reads the first byte of a frame known to be non-empty.
pub fn decode_first(bytes: &[u8]) -> u8 {
    // lint: allow(panic) fixture: input is statically non-empty here
    bytes.first().copied().unwrap()
}
