//! R2 fixture: `SketchKind::B` is missing from `from_byte` — both the
//! variant-name check and the discriminant-byte check must fire.

/// Sketch kinds persisted to disk.
pub enum SketchKind {
    A = 0,
    B = 1,
}

impl SketchKind {
    /// Decodes a kind byte — incomplete on purpose.
    pub fn from_byte(byte: u8) -> Option<Self> {
        match byte {
            0 => Some(Self::A),
            _ => None,
        }
    }
}

/// A snapshot handle.
pub struct ColdSnapshot;

impl ColdSnapshot {
    /// Opens a snapshot of either kind — complete, so only `from_byte` fires.
    pub fn open(kind: SketchKind) -> u8 {
        match kind {
            SketchKind::A => 0,
            SketchKind::B => 1,
        }
    }
}
