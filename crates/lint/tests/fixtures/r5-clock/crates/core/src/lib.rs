//! R5 (Clock) fixture: an `impl Clock for …` in deterministic sketch code
//! that derives its reading from a stored `std::time::Instant` via
//! `elapsed()` — a wall-clock read without ever spelling `Instant::now`.

/// The duration source the deterministic crates are allowed to depend on.
pub trait Clock {
    /// Monotonic nanoseconds since an arbitrary origin.
    fn now_nanos(&self) -> u64;
}

/// A clock that smuggles the wall clock in through a stored start instant.
pub struct WallClock {
    /// Captured by the caller; the impl below milks it for real time.
    pub started: std::time::Instant,
}

impl Clock for WallClock {
    fn now_nanos(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }
}
