//! R5 fixture: a banned `std::sync` lock and a wall-clock read in
//! deterministic sketch code must both fire.

use std::sync::Mutex;

/// A counter guarded by the banned lock.
pub static COUNT: Mutex<u64> = Mutex::new(0);

/// Returns a timestamp — banned in deterministic code.
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
