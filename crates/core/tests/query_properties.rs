//! Property tests for the concurrent query-serving layer.
//!
//! Three families of invariants:
//!
//! * **Epoch discipline** — epochs start at 1 and increase by exactly one per
//!   refresh, no matter how reads and refreshes interleave; old snapshot handles
//!   stay immutable.
//! * **Answer consistency** — every typed query answered through a [`QueryServer`]
//!   equals the same query against a directly captured [`SketchSnapshot`]: the
//!   serving layer adds caching and versioning, never different numbers.
//! * **Concurrent soundness** — readers racing producers and refreshers only ever
//!   observe *complete* epochs: per-snapshot mass conservation holds exactly and
//!   epochs are monotone per reader.

use proptest::collection::vec;
use proptest::prelude::*;

use uss_core::prelude::*;
use uss_core::traits::StreamSketch;

fn stream_strategy(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    vec(0u64..200, 1..max_len)
}

fn sketch_of(stream: &[u64], capacity: usize, seed: u64) -> UnbiasedSpaceSaving {
    let mut sketch = UnbiasedSpaceSaving::with_seed(capacity, seed);
    sketch.offer_batch(stream);
    sketch
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Epochs start at 1 and advance by exactly one per refresh, regardless of how
    /// reads interleave; a snapshot handle taken earlier is never mutated.
    #[test]
    fn epochs_are_strictly_monotone_across_refreshes(
        stream in stream_strategy(400),
        capacity in 1usize..32,
        seed in any::<u64>(),
        refreshes in 1usize..8,
    ) {
        let server = QueryServer::new(sketch_of(&stream, capacity, seed), QueryServerConfig::new());
        let first = server.current();
        prop_assert_eq!(first.epoch(), 1);
        let mut last = server.epoch();
        for _ in 0..refreshes {
            let epoch = server.refresh();
            prop_assert_eq!(epoch, last + 1);
            prop_assert_eq!(server.current().epoch(), epoch);
            last = epoch;
        }
        // The old handle still shows epoch 1 and the original contents.
        prop_assert_eq!(first.epoch(), 1);
        prop_assert_eq!(first.rows_processed(), stream.len() as u64);
    }

    /// Served `TopK` / `FrequentItems` / subset estimates are identical to direct
    /// `SketchSnapshot` queries.
    #[test]
    fn served_answers_match_direct_snapshot_queries(
        stream in stream_strategy(500),
        capacity in 1usize..40,
        seed in any::<u64>(),
        k in 0usize..12,
        phi_mil in 1u64..500,
    ) {
        let sketch = sketch_of(&stream, capacity, seed);
        let direct = sketch.snapshot();
        let server = QueryServer::new(sketch, QueryServerConfig::new());

        prop_assert_eq!(server.top_k(k), direct.top_k(k));
        let phi = phi_mil as f64 / 1000.0;
        prop_assert_eq!(server.frequent_items(phi), direct.frequent_items(phi));

        let items: Vec<u64> = (0..200u64).filter(|i| i % 3 == 0).collect();
        let (est, _) = server.subset_estimate(&items);
        let reference = direct.subset_estimate_items(&items);
        prop_assert_eq!(est.sum, reference.sum);
        prop_assert_eq!(est.variance, reference.variance);
        prop_assert_eq!(est.items_in_sketch, reference.items_in_sketch);

        // The typed forms agree with the convenience forms.
        match server.execute(&Query::TopK { k }).answer {
            QueryAnswer::Items(top) => prop_assert_eq!(top, direct.top_k(k)),
            other => prop_assert!(false, "unexpected answer {:?}", other),
        }
        match server.execute(&Query::SubsetSum { items }).answer {
            QueryAnswer::Estimate { estimate, ci } => {
                prop_assert_eq!(estimate.sum, reference.sum);
                prop_assert!(ci.contains(estimate.sum));
            }
            other => prop_assert!(false, "unexpected answer {:?}", other),
        }
        match server.execute(&Query::RankQuantile { q: 0.0 }).answer {
            QueryAnswer::Rank(rank) => prop_assert_eq!(rank, direct.rank_quantile(0.0)),
            other => prop_assert!(false, "unexpected answer {:?}", other),
        }
    }

    /// Marginal groups partition the retained mass: group sums add up to the
    /// snapshot total, and each group equals the brute-force regrouping of entries.
    #[test]
    fn marginals_partition_the_retained_mass(
        stream in stream_strategy(500),
        capacity in 1usize..40,
        seed in any::<u64>(),
        modulus in 1u64..16,
    ) {
        let sketch = sketch_of(&stream, capacity, seed);
        let direct = sketch.snapshot();
        let server = QueryServer::new(sketch, QueryServerConfig::new());
        let groups = server.marginals(|item| Some(item % modulus));

        let group_total: f64 = groups.iter().map(|(_, est)| est.sum).sum();
        prop_assert!((group_total - direct.total()).abs() < 1e-9 * direct.total().max(1.0));

        for (key, est) in &groups {
            let brute: f64 = direct
                .entries()
                .iter()
                .filter(|(item, _)| item % modulus == *key)
                .map(|(_, c)| c)
                .sum();
            prop_assert_eq!(est.sum, brute);
            prop_assert!(est.variance >= 0.0);
        }
        // No duplicate keys.
        let mut keys: Vec<u64> = groups.iter().map(|(k, _)| *k).collect();
        keys.sort_unstable();
        keys.dedup();
        prop_assert_eq!(keys.len(), groups.len());
    }

    /// The rank-quantile walk is monotone non-increasing in `q` and pinned to the
    /// top item at `q = 0`.
    #[test]
    fn rank_quantile_is_monotone(
        stream in stream_strategy(400),
        capacity in 1usize..32,
        seed in any::<u64>(),
    ) {
        let sketch = sketch_of(&stream, capacity, seed);
        let server = QueryServer::new(sketch, QueryServerConfig::new());
        let top = server.top_k(1);
        let mut last = f64::INFINITY;
        for step in 0..=10 {
            let q = step as f64 / 10.0;
            let (item, count) = server
                .execute(&Query::RankQuantile { q })
                .answer_rank()
                .expect("non-empty sketch");
            if step == 0 {
                prop_assert_eq!((item, count), top[0]);
            }
            prop_assert!(count <= last);
            last = count;
        }
    }
}

/// Small helper so property tests can unwrap rank answers tersely.
trait RankAnswer {
    fn answer_rank(self) -> Option<(u64, f64)>;
}

impl RankAnswer for QueryResponse {
    fn answer_rank(self) -> Option<(u64, f64)> {
        match self.answer {
            QueryAnswer::Rank(rank) => rank,
            _ => None,
        }
    }
}

/// Concurrent-reader soundness: 4 readers hammer a server (auto-refresh every 2 000
/// rows) while 2 producers feed the engine. Every observed snapshot must be complete
/// — mass conservation exact, epochs monotone per reader — and the final fold must
/// account for every row.
#[test]
fn concurrent_readers_only_see_complete_epochs() {
    let engine = ShardedIngestEngine::new(
        EngineConfig::new(2, 128, 77).with_batch_rows(256),
    );
    let server = QueryServer::new(
        &engine,
        QueryServerConfig::new().refresh_every_rows(2_000),
    );
    let total_rows = 60_000u64;

    std::thread::scope(|scope| {
        for producer in 0..2u64 {
            let mut handle = engine.handle();
            scope.spawn(move || {
                for i in 0..total_rows / 2 {
                    handle.offer((producer * 17 + i) % 900);
                }
            });
        }
        for reader in 0..4 {
            let server = &server;
            scope.spawn(move || {
                let mut last_epoch = 0u64;
                for _ in 0..100 {
                    let snap = server.current();
                    assert!(
                        snap.epoch() >= last_epoch,
                        "reader {reader}: epoch went backwards"
                    );
                    last_epoch = snap.epoch();
                    let mass: f64 = snap.entries().iter().map(|(_, c)| c).sum();
                    assert!(
                        (mass - snap.rows_processed() as f64).abs()
                            <= 1e-6 * (snap.rows_processed() as f64).max(1.0),
                        "reader {reader}: torn snapshot (mass {mass} vs {} rows)",
                        snap.rows_processed()
                    );
                    assert!(snap.rows_processed() <= total_rows);
                }
            });
        }
    });

    drop(server);
    let merged = engine.finish();
    assert_eq!(merged.rows_processed(), total_rows);
}
