//! Property tests for the lock-free SPSC transport (`uss_core::spsc`).
//!
//! The unit tests in the module cover the protocol basics; these properties drive the
//! ring and the block channel through arbitrary interleavings and real threads:
//!
//! * the ring against a `VecDeque` reference model — FIFO order, full/empty
//!   transitions, and rejected pushes returning the value to the caller, across many
//!   wraparounds of the (tiny) power-of-two buffer;
//! * the block channel as a row pipe — every row sent arrives exactly once, in order,
//!   regardless of how rows group into blocks, and recycled blocks come back cleared;
//! * a cross-thread run with a parking consumer — mass conservation under real
//!   concurrency, including a producer that drops mid-stream without flushing.

use std::collections::VecDeque;
use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;

use uss_core::spsc::{block_channel, ring, BlockReceiver, RowBlock, Waker, BLOCK_CAP};

/// One scripted step against the ring: `Push(v)` or `Pop`.
#[derive(Debug, Clone, Copy)]
enum Op {
    Push(u64),
    Pop,
}

/// Decodes arbitrary words into a roughly even push/pop mix (the low bit picks the
/// op, so pushes carry even payloads — irrelevant to the invariants under test).
fn ops_strategy(max_len: usize) -> impl Strategy<Value = Vec<Op>> {
    vec(any::<u64>(), 1..max_len).prop_map(|words| {
        words
            .into_iter()
            .map(|w| if w & 1 == 1 { Op::Pop } else { Op::Push(w) })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The ring agrees with a `VecDeque` model under any single-threaded interleaving
    /// of pushes and pops. Tiny capacities force constant wraparound and exercise
    /// every full/empty transition.
    #[test]
    fn ring_matches_queue_model(ops in ops_strategy(600), capacity in 1usize..9) {
        let (mut tx, mut rx) = ring::<u64>(capacity, None);
        // `ring` rounds the capacity up to a power of two (minimum 2).
        let real_capacity = capacity.next_power_of_two().max(2);
        let mut model: VecDeque<u64> = VecDeque::new();
        for op in ops {
            match op {
                Op::Push(v) => {
                    let rejected = tx.try_push(v).expect("consumer alive");
                    if model.len() < real_capacity {
                        prop_assert!(rejected.is_none(), "push into non-full ring rejected");
                        model.push_back(v);
                    } else {
                        // A full ring hands the value back instead of dropping it.
                        prop_assert_eq!(rejected, Some(v));
                    }
                }
                Op::Pop => {
                    prop_assert_eq!(rx.pop(), model.pop_front());
                }
            }
            prop_assert_eq!(rx.is_empty(), model.is_empty());
            prop_assert_eq!(rx.len(), model.len());
        }
        // Drain: everything still queued comes out in order, then the dropped
        // producer is observed as end-of-stream.
        drop(tx);
        while let Some(expected) = model.pop_front() {
            prop_assert_eq!(rx.pop(), Some(expected));
        }
        prop_assert_eq!(rx.pop(), None);
        prop_assert!(rx.is_finished());
    }

    /// Rows pushed through the block channel arrive exactly once and in order, for
    /// any row stream and any (arbitrary) block grouping; acquired blocks always come
    /// back cleared even once the pool is recycling.
    #[test]
    fn block_channel_preserves_row_stream(
        rows in vec(any::<u64>(), 0..4000),
        cuts in vec(1usize..BLOCK_CAP, 0..24),
    ) {
        const DEPTH: usize = 4;
        let waker = Arc::new(Waker::new());
        let (mut tx, mut rx) = block_channel::<u64>(DEPTH, waker);
        let mut received: Vec<u64> = Vec::new();
        fn drain(rx: &mut BlockReceiver<u64>, received: &mut Vec<u64>) {
            while let Some(block) = rx.recv() {
                received.extend_from_slice(block.as_slice());
                rx.recycle(block);
            }
        }

        // Group the rows into blocks at the scripted cut sizes (cycled), capping at
        // BLOCK_CAP. `send` would park the (only) thread when the data ring is full,
        // so drain whenever the queue is about to reach the ring's depth — exactly
        // what the engine's worker guarantees from the other side.
        let mut it = rows.iter().copied().peekable();
        let mut cut_idx = 0usize;
        while it.peek().is_some() {
            let take = if cuts.is_empty() { BLOCK_CAP } else { cuts[cut_idx % cuts.len()] };
            cut_idx += 1;
            let mut block = tx.acquire();
            prop_assert!(block.is_empty(), "acquired block must be cleared");
            for _ in 0..take {
                match it.next() {
                    // `push` reports "now full"; `take <= BLOCK_CAP` keeps it legal.
                    Some(row) => {
                        let full = block.push(row);
                        prop_assert_eq!(full, block.len() == BLOCK_CAP);
                    }
                    None => break,
                }
            }
            if rx.queued() + 1 >= DEPTH {
                drain(&mut rx, &mut received);
            }
            tx.send(block).expect("receiver alive");
        }
        drop(tx);
        drain(&mut rx, &mut received);
        prop_assert_eq!(received, rows);
        prop_assert!(rx.is_finished());
    }
}

/// A real producer thread races a parking consumer through a tiny (depth-2) block
/// channel: every row arrives exactly once and in order despite constant ring-full
/// backpressure and wraparound.
#[test]
fn threaded_block_channel_delivers_all_rows_in_order() {
    const ROWS: u64 = 200_000;
    let waker = Arc::new(Waker::new());
    let (mut tx, mut rx) = block_channel::<u64>(2, Arc::clone(&waker));
    let producer = std::thread::spawn(move || {
        let mut block: Box<RowBlock<u64>> = tx.acquire();
        for row in 0..ROWS {
            // `push` returns true when the block is now full: ship it and start the
            // next one (the same pattern the engine's ingest handles use).
            if block.push(row) {
                tx.send(block).expect("consumer alive");
                block = tx.acquire();
            }
        }
        if !block.is_empty() {
            tx.send(block).expect("consumer alive");
        }
    });
    let mut expected = 0u64;
    loop {
        match rx.recv() {
            Some(block) => {
                for &row in block.as_slice() {
                    assert_eq!(row, expected, "rows reordered or duplicated");
                    expected += 1;
                }
                rx.recycle(block);
            }
            None => {
                if rx.is_finished() {
                    break;
                }
                // The worker's park protocol: raise the flag, re-check, then park.
                waker.prepare();
                if !rx.is_empty() || rx.is_finished() {
                    waker.cancel();
                } else {
                    waker.park();
                }
            }
        }
    }
    producer.join().expect("producer panicked");
    assert_eq!(expected, ROWS, "rows lost in transit");
}

/// A producer that drops mid-stream (no flush, no shutdown message) must not lose the
/// blocks it already sent: the consumer drains exactly what was shipped, then sees
/// end-of-stream.
#[test]
fn producer_drop_mid_stream_conserves_sent_rows() {
    let waker = Arc::new(Waker::new());
    let (mut tx, mut rx) = block_channel::<u64>(8, waker);
    let mut sent = 0u64;
    for chunk in 0..5u64 {
        let mut block = tx.acquire();
        for i in 0..40 {
            assert!(!block.push(chunk * 1000 + i), "40 rows cannot fill a block");
            sent += 1;
        }
        tx.send(block).expect("ring of depth 8 holds 5 blocks");
    }
    // An acquired-but-unsent block dies with the producer: those rows were never
    // handed to the channel, so they are not part of the conservation ledger.
    let mut stranded = tx.acquire();
    stranded.push(u64::MAX);
    drop(stranded);
    drop(tx);

    let mut received = 0u64;
    while let Some(block) = rx.recv() {
        received += block.len() as u64;
        rx.recycle(block);
    }
    assert!(rx.is_finished());
    assert_eq!(received, sent);
}

/// When the consumer goes away first, the producer's send fails with the block handed
/// back (nothing vanishes into a dead ring) and the sender reports finished.
#[test]
fn consumer_drop_hands_blocks_back() {
    let waker = Arc::new(Waker::new());
    let (mut tx, rx) = block_channel::<u64>(4, waker);
    drop(rx);
    let mut block = tx.acquire();
    block.push(7);
    let rejected = tx.send(block).expect_err("consumer is gone");
    assert_eq!(rejected.0.as_slice(), &[7]);
    // The handed-back block is reusable; the channel stays dead.
    assert!(tx.send(rejected.0).is_err());
}
