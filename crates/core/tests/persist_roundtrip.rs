//! End-to-end durability guarantees for `uss_core::persist`:
//!
//! * serving a snapshot from a cold file is **bit-identical** to serving the
//!   in-memory snapshot, for every typed query;
//! * checkpoint → restore → continue matches an uninterrupted engine run's final
//!   entries **exactly** under fixed seeds (combiner disabled, same batch
//!   boundaries);
//! * shard files checkpointed on "different nodes" fold into the same result as a
//!   live reduce of the same sketches;
//! * corrupted files come back as errors, never panics.

use std::path::PathBuf;

use uss_core::persist::{self, ColdSnapshot};
use uss_core::prelude::*;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("uss-roundtrip-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn skewed_rows(n: u64, salt: u64) -> Vec<u64> {
    // A deterministic skewed stream: a few heavy items over a long tail.
    (0..n)
        .map(|i| {
            let x = (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt) >> 33;
            if x.is_multiple_of(4) {
                x % 8
            } else {
                100 + x % 5_000
            }
        })
        .collect()
}

#[test]
fn cold_file_serving_is_bit_identical_to_in_memory_serving() {
    let dir = scratch_dir("cold");
    let mut sketch = UnbiasedSpaceSaving::with_seed(128, 21);
    sketch.offer_batch(&skewed_rows(50_000, 1));
    let live = sketch.snapshot();

    let path = dir.join("day-0.uss");
    persist::save_snapshot(&path, &live).unwrap();
    let cold = ColdSnapshot::open(&path).unwrap();

    let hot_server = QueryServer::new(&live, QueryServerConfig::new());
    let cold_server = QueryServer::new(cold, QueryServerConfig::new());

    let items: Vec<u64> = (0..8).chain(100..200).collect();
    let queries = [
        Query::SubsetSum { items: items.clone() },
        Query::Proportion { items },
        Query::TopK { k: 20 },
        Query::FrequentItems { phi: 0.01 },
        Query::RankQuantile { q: 0.25 },
    ];
    for query in &queries {
        let hot = hot_server.execute(query);
        let cold = cold_server.execute(query);
        // Bit-identical answers: the codec writes exact f64 bits and preserves
        // entry order, so every estimate, variance and CI endpoint matches.
        assert_eq!(hot.answer, cold.answer, "{query:?}");
        assert_eq!(hot.rows, cold.rows);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_restore_continue_matches_uninterrupted_run_exactly() {
    let dir = scratch_dir("resume");
    // Combiner disabled: worker ingestion is then row-for-row deterministic per
    // shard, which is the regime where resume promises bit-compatibility.
    let config = EngineConfig::new(4, 64, 77)
        .with_combiner_items(0)
        .with_batch_rows(256);
    let first_half = skewed_rows(40_000, 3);
    let second_half = skewed_rows(40_000, 4);

    // Uninterrupted reference run.
    let reference = {
        let engine = ShardedIngestEngine::new(config);
        let mut handle = engine.handle();
        handle.offer_batch(&first_half);
        // The flush empties the handle's buffers, so the second half hits the same
        // batch boundaries here as it does through the fresh post-restore handle.
        handle.flush();
        handle.offer_batch(&second_half);
        handle.flush();
        engine.finish()
    };

    // Interrupted run: ingest half, checkpoint, tear down, restore, ingest rest.
    let resumed = {
        let engine = ShardedIngestEngine::new(config);
        let mut handle = engine.handle();
        handle.offer_batch(&first_half);
        handle.flush();
        engine.checkpoint(&dir).unwrap();
        drop(handle);
        drop(engine.finish()); // tear the first process down

        let engine = ShardedIngestEngine::restore(&dir, config).unwrap();
        let mut handle = engine.handle();
        handle.offer_batch(&second_half);
        handle.flush();
        engine.finish()
    };

    // Exact equality of the final merged sketch: entries, order, and counts.
    assert_eq!(resumed.entries(), reference.entries());
    assert_eq!(resumed.rows_processed(), reference.rows_processed());
    assert_eq!(resumed.min_count(), reference.min_count());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn restored_engine_serves_queries_and_keeps_ingesting() {
    let dir = scratch_dir("serve");
    let config = EngineConfig::new(2, 48, 5).with_batch_rows(128);
    let engine = ShardedIngestEngine::new(config);
    let mut handle = engine.handle();
    handle.offer_batch(&skewed_rows(10_000, 9));
    handle.flush();
    engine.checkpoint(&dir).unwrap();
    drop(handle);
    drop(engine.finish());

    let engine = ShardedIngestEngine::restore(&dir, config).unwrap();
    let server = QueryServer::new(&engine, QueryServerConfig::new().refresh_every_rows(1_000));
    assert_eq!(server.current().rows_processed(), 10_000);

    let mut handle = engine.handle();
    handle.offer_batch(&skewed_rows(5_000, 10));
    handle.flush();
    let snap = server.current();
    assert!(snap.epoch() >= 2, "auto refresh after restored ingest");
    assert_eq!(snap.rows_processed(), 15_000);
    let mass: f64 = snap.entries().iter().map(|(_, c)| c).sum();
    assert!((mass - 15_000.0).abs() < 1e-6, "mass conservation: {mass}");

    drop(server);
    drop(engine.finish());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn shard_shipping_merge_files_equals_live_reduce() {
    let dir = scratch_dir("ship");
    // Three "nodes" sketch disjoint partitions and persist their sketches.
    let partitions: Vec<Vec<u64>> = (0..3u64).map(|p| skewed_rows(20_000, 50 + p)).collect();
    let sketches: Vec<UnbiasedSpaceSaving> = partitions
        .iter()
        .enumerate()
        .map(|(i, part)| {
            let mut s = UnbiasedSpaceSaving::with_seed(96, 500 + i as u64);
            s.offer_batch(part);
            s
        })
        .collect();
    let paths: Vec<PathBuf> = sketches
        .iter()
        .enumerate()
        .map(|(i, sketch)| {
            let path = dir.join(format!("node-{i}.uss"));
            persist::save_unbiased(&path, sketch).unwrap();
            path
        })
        .collect();

    let sketcher = DistributedSketcher::new(96, 123);
    let live = sketcher.reduce(sketches);
    let folded = sketcher.merge_files(&paths).unwrap();
    assert_eq!(folded.entries(), live.entries());
    assert_eq!(folded.rows_processed(), 3 * 20_000);

    // The folded file-set serves through the standard query layer.
    let server = QueryServer::new(folded, QueryServerConfig::new());
    let (est, ci) = server.subset_estimate_where(|i| i < 8);
    assert!(est.sum > 0.0);
    assert!(ci.contains(est.sum));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupted_checkpoint_files_error_cleanly() {
    let dir = scratch_dir("corrupt");
    let config = EngineConfig::new(2, 32, 13);
    let engine = ShardedIngestEngine::new(config);
    let mut handle = engine.handle();
    handle.offer_batch(&skewed_rows(5_000, 2));
    handle.flush();
    engine.checkpoint(&dir).unwrap();
    drop(handle);
    drop(engine.finish());

    // Flip one payload byte in a shard file: restore must fail, not panic.
    let shard_path = dir.join(ShardedIngestEngine::shard_file_name(0));
    let mut bytes = std::fs::read(&shard_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&shard_path, &bytes).unwrap();
    assert!(ShardedIngestEngine::restore(&dir, config).is_err());

    // Truncate the manifest: same story.
    let manifest_path = dir.join(ShardedIngestEngine::MANIFEST_FILE);
    let manifest_bytes = std::fs::read(&manifest_path).unwrap();
    std::fs::write(&manifest_path, &manifest_bytes[..manifest_bytes.len() / 2]).unwrap();
    assert!(ShardedIngestEngine::restore(&dir, config).is_err());

    // A missing shard file: restore errors with Io, still no panic.
    std::fs::write(&manifest_path, &manifest_bytes).unwrap();
    std::fs::remove_file(&shard_path).unwrap();
    assert!(matches!(
        ShardedIngestEngine::restore(&dir, config),
        Err(PersistError::Io(_))
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn snapshot_file_round_trip_preserves_query_layer_marginals() {
    // The fig6-style marginal roll-up must survive persistence byte-for-byte,
    // because it is entry-order sensitive and the codec keeps entry order.
    let dir = scratch_dir("marginals");
    let mut sketch = UnbiasedSpaceSaving::with_seed(64, 8);
    sketch.offer_batch(&skewed_rows(30_000, 6));
    let live = sketch.snapshot();
    let path = dir.join("marginals.uss");
    persist::save_snapshot(&path, &live).unwrap();
    let cold = persist::load_snapshot(&path).unwrap();

    let live_groups = live.marginals(|item| Some(item % 16));
    let cold_groups = cold.marginals(|item| Some(item % 16));
    assert_eq!(live_groups.len(), cold_groups.len());
    for ((k1, e1), (k2, e2)) in live_groups.iter().zip(&cold_groups) {
        assert_eq!(k1, k2);
        assert_eq!(e1.sum.to_bits(), e2.sum.to_bits());
        assert_eq!(e1.variance.to_bits(), e2.variance.to_bits());
        assert_eq!(e1.items_in_sketch, e2.items_in_sketch);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
