//! Property-based tests for the `uss_core::persist` codec: round-trip equality on
//! random sketches, and totality of decoding — truncated, bit-flipped and
//! wrong-version frames must return `Err`, never panic, for *any* input.

use proptest::collection::vec;
use proptest::prelude::*;

use uss_core::persist::{self, PersistError};
use uss_core::prelude::*;
use uss_core::temporal::{TemporalConfig, WindowConfig, WindowedSketchStore};

fn stream_strategy(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    vec(0u64..200, 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Snapshot frames round-trip to an equal snapshot for any sketch state.
    #[test]
    fn snapshot_round_trip(stream in stream_strategy(600), capacity in 1usize..40, seed in any::<u64>()) {
        let mut sketch = UnbiasedSpaceSaving::with_seed(capacity, seed);
        sketch.offer_batch(&stream);
        let snap = sketch.snapshot();
        let decoded = persist::decode_snapshot(&persist::encode_snapshot(&snap)).unwrap();
        prop_assert_eq!(decoded, snap);
    }

    /// Unbiased frames round-trip to a sketch that not only looks equal but keeps
    /// *behaving* identically: offering the same suffix to both yields the same
    /// entries (structure + RNG state survived).
    #[test]
    fn unbiased_round_trip_preserves_behaviour(
        stream in stream_strategy(500),
        suffix in stream_strategy(200),
        capacity in 1usize..24,
        seed in any::<u64>(),
    ) {
        let mut sketch = UnbiasedSpaceSaving::with_seed(capacity, seed);
        sketch.offer_batch(&stream);
        let mut decoded = persist::decode_unbiased(&persist::encode_unbiased(&sketch)).unwrap();
        prop_assert_eq!(decoded.entries(), sketch.entries());
        prop_assert_eq!(decoded.rows_processed(), sketch.rows_processed());
        let mut original = sketch;
        original.offer_batch(&suffix);
        decoded.offer_batch(&suffix);
        prop_assert_eq!(decoded.entries(), original.entries());
    }

    /// Weighted frames round-trip bit-compatibly as well.
    #[test]
    fn weighted_round_trip_preserves_behaviour(
        rows in vec((0u64..100, 0u32..40), 1..300),
        suffix in vec((0u64..100, 1u32..40), 0..100),
        capacity in 1usize..16,
        seed in any::<u64>(),
    ) {
        let mut sketch = WeightedSpaceSaving::with_seed(capacity, seed);
        let weighted: Vec<(u64, f64)> = rows.iter().map(|&(i, w)| (i, f64::from(w) * 0.25)).collect();
        sketch.offer_weighted_batch(&weighted);
        let mut decoded = persist::decode_weighted(&persist::encode_weighted(&sketch)).unwrap();
        prop_assert_eq!(decoded.entries(), sketch.entries());
        prop_assert_eq!(decoded.total_weight().to_bits(), sketch.total_weight().to_bits());
        for &(item, w) in &suffix {
            sketch.offer_weighted(item, f64::from(w) * 0.5);
            decoded.offer_weighted(item, f64::from(w) * 0.5);
        }
        prop_assert_eq!(decoded.entries(), sketch.entries());
        prop_assert_eq!(decoded.min_count().to_bits(), sketch.min_count().to_bits());
    }

    /// Truncating a valid frame at any point yields an error, never a panic.
    #[test]
    fn truncation_always_errors(stream in stream_strategy(300), capacity in 1usize..16, seed in any::<u64>(), cut in 0.0f64..1.0) {
        let mut sketch = UnbiasedSpaceSaving::with_seed(capacity, seed);
        sketch.offer_batch(&stream);
        let bytes = persist::encode_unbiased(&sketch);
        let len = ((bytes.len() - 1) as f64 * cut) as usize;
        prop_assert!(persist::decode_unbiased(&bytes[..len]).is_err());
    }

    /// Flipping any single bit of a valid frame yields an error: the header checks
    /// catch structural damage and the CRC-64 catches everything else.
    #[test]
    fn single_bit_flips_always_error(stream in stream_strategy(300), capacity in 1usize..16, seed in any::<u64>(), byte_frac in 0.0f64..1.0, bit in 0u8..8) {
        let mut sketch = UnbiasedSpaceSaving::with_seed(capacity, seed);
        sketch.offer_batch(&stream);
        let mut bytes = persist::encode_unbiased(&sketch);
        let idx = ((bytes.len() - 1) as f64 * byte_frac) as usize;
        bytes[idx] ^= 1 << bit;
        prop_assert!(persist::decode_unbiased(&bytes).is_err());
    }

    /// Any version other than the current one is rejected as unsupported (the
    /// checksum is deliberately bypassed here by re-encoding it, proving the
    /// version gate itself works).
    #[test]
    fn foreign_versions_are_rejected(stream in stream_strategy(100), version in 0u16..1000, seed in any::<u64>()) {
        prop_assume!(version != persist::FORMAT_VERSION);
        let mut sketch = UnbiasedSpaceSaving::with_seed(8, seed);
        sketch.offer_batch(&stream);
        let mut bytes = persist::encode_unbiased(&sketch);
        bytes[4..6].copy_from_slice(&version.to_le_bytes());
        // Recompute the checksum so only the version differs.
        let crc_at = bytes.len() - 8;
        let crc = persist::crc64(&bytes[..crc_at]);
        bytes[crc_at..].copy_from_slice(&crc.to_le_bytes());
        prop_assert!(matches!(
            persist::decode_unbiased(&bytes),
            Err(PersistError::UnsupportedVersion(v)) if v == version
        ));
    }

    /// Decayed frames round-trip to a sketch that keeps *behaving* identically:
    /// continuing both with the same later-arriving suffix yields bit-equal
    /// decayed entries (decay parameters, landmark, RNG and heap state all
    /// survived).
    #[test]
    fn decayed_round_trip_preserves_behaviour(
        stream in vec((0u64..80, 0u32..50), 1..300),
        suffix in vec((0u64..80, 0u32..50), 0..120),
        capacity in 1usize..16,
        seed in any::<u64>(),
        lambda_m in 1u32..200,
    ) {
        let lambda = f64::from(lambda_m) * 1e-3;
        let mut sketch = DecayedSpaceSaving::with_seed(capacity, lambda, seed);
        let mut t = 0.0f64;
        for &(item, dt) in &stream {
            t += f64::from(dt) * 0.25;
            sketch.offer_at(item, t);
        }
        let mut decoded = persist::decode_decayed(&persist::encode_decayed(&sketch)).unwrap();
        prop_assert_eq!(decoded.rows_processed(), sketch.rows_processed());
        prop_assert_eq!(decoded.last_time().to_bits(), sketch.last_time().to_bits());
        for &(item, dt) in &suffix {
            t += f64::from(dt) * 0.25;
            sketch.offer_at(item, t);
            decoded.offer_at(item, t);
        }
        let a = sketch.decayed_entries(t + 1.0);
        let b = decoded.decayed_entries(t + 1.0);
        prop_assert_eq!(a.len(), b.len());
        for ((i1, c1), (i2, c2)) in a.iter().zip(&b) {
            prop_assert_eq!(i1, i2);
            prop_assert_eq!(c1.to_bits(), c2.to_bits());
        }
    }

    /// Temporal bucket-ring frames round-trip to a store that keeps behaving
    /// identically: fine buckets (RNG + structure), compacted tiers and the
    /// terminal bucket all survive, so continuing both stores with the same
    /// suffix yields bit-equal rings.
    #[test]
    fn temporal_shard_round_trip_preserves_behaviour(
        stream in vec((0u64..120, 0u64..40), 1..400),
        suffix in vec((0u64..120, 30u64..60), 0..150),
        capacity in 1usize..16,
        seed in any::<u64>(),
    ) {
        let config = TemporalConfig::new(1, capacity, seed, 4, 3).with_retention(2, 2);
        let mut store = WindowedSketchStore::new(WindowConfig {
            seed, // shard 0 of the engine-level config
            ..config.window
        });
        for &(item, ts) in &stream {
            store.offer_at(item, ts);
        }
        let meta = persist::TemporalMeta::from_config(&config);
        let bytes = persist::encode_temporal_shard(0, meta, &store);
        prop_assert_eq!(persist::peek_kind(&bytes).unwrap(), persist::SketchKind::TemporalShard);
        let (shard, back_meta, mut decoded) = persist::decode_temporal_shard(&bytes).unwrap();
        prop_assert_eq!(shard, 0);
        prop_assert_eq!(back_meta, meta);
        prop_assert_eq!(decoded.rows_processed(), store.rows_processed());
        for &(item, ts) in &suffix {
            store.offer_at(item, ts);
            decoded.offer_at(item, ts);
        }
        let fa: Vec<_> = store.fine_sketches().map(|(i, sk)| (i, sk.entries())).collect();
        let fb: Vec<_> = decoded.fine_sketches().map(|(i, sk)| (i, sk.entries())).collect();
        prop_assert_eq!(fa, fb);
        for t in 0..2 {
            prop_assert_eq!(store.tier_buckets(t), decoded.tier_buckets(t));
        }
        prop_assert_eq!(store.terminal_bucket(), decoded.terminal_bucket());
        prop_assert_eq!(store.late_rows(), decoded.late_rows());
        prop_assert_eq!(store.last_time(), decoded.last_time());
    }

    /// Ladder-bearing temporal frames (kind 8) round-trip to a store with the
    /// identical dyadic ladder and keep behaving identically — and the codec
    /// is canonical: re-encoding the decoded store yields the same bytes.
    #[test]
    fn temporal_ladder_shard_round_trip_is_byte_canonical(
        stream in vec((0u64..120, 0u64..64), 1..400),
        suffix in vec((0u64..120, 40u64..80), 0..150),
        capacity in 1usize..16,
        seed in any::<u64>(),
    ) {
        let config = TemporalConfig::new(1, capacity, seed, 4, 8).with_retention(2, 2);
        let mut store = WindowedSketchStore::new(WindowConfig {
            seed,
            ..config.window
        });
        for &(item, ts) in &stream {
            store.offer_at(item, ts);
        }
        // Build the ladder the way a queried shard would.
        let _ = store.indexed_range_reports(0, u64::MAX);
        let meta = persist::TemporalMeta::from_config(&config);
        let bytes = persist::encode_temporal_shard_indexed(0, meta, &store);
        prop_assert_eq!(
            persist::peek_kind(&bytes).unwrap(),
            persist::SketchKind::TemporalLadderShard
        );
        let (shard, back_meta, mut decoded) = persist::decode_temporal_shard(&bytes).unwrap();
        prop_assert_eq!(shard, 0);
        prop_assert_eq!(back_meta, meta);
        prop_assert_eq!(decoded.ladder_node_count(), store.ladder_node_count());
        prop_assert_eq!(persist::encode_temporal_shard_indexed(0, meta, &decoded), bytes);
        for &(item, ts) in &suffix {
            store.offer_at(item, ts);
            decoded.offer_at(item, ts);
        }
        let fa: Vec<_> = store.fine_sketches().map(|(i, sk)| (i, sk.entries())).collect();
        let fb: Vec<_> = decoded.fine_sketches().map(|(i, sk)| (i, sk.entries())).collect();
        prop_assert_eq!(fa, fb);
        prop_assert_eq!(store.late_rows(), decoded.late_rows());
        prop_assert_eq!(store.last_time(), decoded.last_time());
    }

    /// Truncating a valid decayed or temporal frame at any point yields an
    /// error, never a panic — the totality guarantee extends to the new kinds.
    #[test]
    fn new_kind_truncation_always_errors(
        stream in vec((0u64..60, 0u64..30), 1..200),
        capacity in 1usize..12,
        seed in any::<u64>(),
        cut in 0.0f64..1.0,
    ) {
        let mut decayed = DecayedSpaceSaving::with_seed(capacity, 0.05, seed);
        let config = TemporalConfig::new(1, capacity, seed, 4, 3).with_retention(1, 2);
        let mut store = WindowedSketchStore::new(config.window);
        let mut t = 0.0f64;
        for &(item, ts) in &stream {
            t += ts as f64 * 0.1;
            decayed.offer_at(item, t);
            store.offer_at(item, ts);
        }
        let _ = store.indexed_range_reports(0, u64::MAX);
        let meta = persist::TemporalMeta::from_config(&config);
        for bytes in [
            persist::encode_decayed(&decayed),
            persist::encode_temporal_shard(0, meta, &store),
            persist::encode_temporal_shard_indexed(0, meta, &store),
        ] {
            let len = ((bytes.len() - 1) as f64 * cut) as usize;
            prop_assert!(persist::decode_decayed(&bytes[..len]).is_err());
            prop_assert!(persist::decode_temporal_shard(&bytes[..len]).is_err());
        }
    }

    /// Flipping any single bit of a valid decayed or temporal frame yields an
    /// error (header gates catch structural damage, CRC-64 everything else).
    #[test]
    fn new_kind_single_bit_flips_always_error(
        stream in vec((0u64..60, 0u64..30), 1..200),
        capacity in 1usize..12,
        seed in any::<u64>(),
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut decayed = DecayedSpaceSaving::with_seed(capacity, 0.05, seed);
        let config = TemporalConfig::new(1, capacity, seed, 4, 3).with_retention(1, 2);
        let mut store = WindowedSketchStore::new(config.window);
        let mut t = 0.0f64;
        for &(item, ts) in &stream {
            t += ts as f64 * 0.1;
            decayed.offer_at(item, t);
            store.offer_at(item, ts);
        }
        let _ = store.indexed_range_reports(0, u64::MAX);
        let meta = persist::TemporalMeta::from_config(&config);
        for mut bytes in [
            persist::encode_decayed(&decayed),
            persist::encode_temporal_shard(0, meta, &store),
            persist::encode_temporal_shard_indexed(0, meta, &store),
        ] {
            let idx = ((bytes.len() - 1) as f64 * byte_frac) as usize;
            bytes[idx] ^= 1 << bit;
            prop_assert!(persist::decode_decayed(&bytes).is_err());
            prop_assert!(persist::decode_temporal_shard(&bytes).is_err());
        }
    }

    /// Decoding arbitrary garbage bytes is total: always an `Err`, never a panic.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in vec(any::<u8>(), 0..600)) {
        let _ = persist::decode_snapshot(&bytes);
        let _ = persist::decode_unbiased(&bytes);
        let _ = persist::decode_weighted(&bytes);
        let _ = persist::decode_shard(&bytes);
        let _ = persist::decode_manifest(&bytes);
        let _ = persist::decode_decayed(&bytes);
        let _ = persist::decode_temporal_shard(&bytes);
        let _ = persist::decode_temporal_manifest(&bytes);
        let _ = persist::peek_kind(&bytes);
    }

    /// Garbage prefixed with a valid header shell still never panics, exercising
    /// the payload readers rather than the frame gate.
    #[test]
    fn framed_garbage_never_panics(payload in vec(any::<u8>(), 0..400), kind in 0u8..9) {
        // Hand-build a frame with a correct magic/version/len/CRC around a random
        // payload, so decoding reaches the kind-specific parsing and validation.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&persist::MAGIC);
        bytes.extend_from_slice(&persist::FORMAT_VERSION.to_le_bytes());
        bytes.push(kind);
        bytes.push(0);
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let crc = persist::crc64(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        let _ = persist::decode_snapshot(&bytes);
        let _ = persist::decode_unbiased(&bytes);
        let _ = persist::decode_weighted(&bytes);
        let _ = persist::decode_shard(&bytes);
        let _ = persist::decode_manifest(&bytes);
        let _ = persist::decode_decayed(&bytes);
        let _ = persist::decode_temporal_shard(&bytes);
        let _ = persist::decode_temporal_manifest(&bytes);
    }
}
