//! Metrics-vs-ground-truth conservation: the observability counters must
//! *reconcile exactly* with what the engines actually did. Rows applied
//! across N concurrent producers equal rows sent (quiesce exactness), the
//! temporal counters match a hand-computed model of a designed stream,
//! checkpoint byte/frame counters match the files on disk, histogram bucket
//! sums equal record counts under concurrency, and the dyadic-ladder
//! built/invalidated counters balance against the live node count.

use std::path::PathBuf;
use std::sync::Arc;

use uss_core::engine::{EngineConfig, ShardedIngestEngine};
use uss_core::metrics::Histogram;
use uss_core::temporal::{TemporalConfig, TemporalIngestEngine, TimeRange};
use uss_core::traits::StreamSketch;

/// Scratch directory for checkpoint tests, unique per process.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("uss-metrics-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn concurrent_producer_rows_are_conserved_exactly() {
    // 4 producer threads, each its own handle, small rings so the slow paths
    // (full, park, wake) actually run. At the snapshot quiesce point the
    // worker-side row counter must equal rows sent *exactly* — not modulo a
    // block, not approximately.
    const PRODUCERS: u64 = 4;
    const ROWS_EACH: u64 = 50_000;
    let engine = Arc::new(ShardedIngestEngine::new(
        EngineConfig::new(3, 128, 42)
            .with_batch_rows(512)
            .with_queue_depth(2),
    ));
    let threads: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                let mut handle = engine.handle();
                for i in 0..ROWS_EACH {
                    handle.offer(p * ROWS_EACH + i);
                }
                handle.flush();
            })
        })
        .collect();
    for t in threads {
        t.join().expect("producer");
    }
    // Snapshot drains a cut of every ring: all previously flushed rows are
    // applied before the counters are read.
    let snapshot = engine.snapshot();
    let sent = PRODUCERS * ROWS_EACH;
    assert_eq!(snapshot.rows_processed(), sent);
    assert_eq!(engine.rows_enqueued(), sent, "enqueue hint");
    let metrics = engine.metrics();
    assert_eq!(metrics.rows_total(), sent, "worker row counters at quiesce");
    // Block accounting: every applied block is non-empty and holds at most
    // BLOCK_CAP (254) rows.
    let blocks = metrics.blocks_total();
    assert!(blocks >= sent.div_ceil(254), "blocks {blocks} too few");
    assert!(blocks <= sent, "blocks {blocks} exceed rows");
    for (id, shard) in metrics.shards.iter().enumerate() {
        // A park is only ever entered after observing the ring full, so the
        // park count can never exceed the full count.
        assert!(
            shard.ring.producer_parks.get() <= shard.ring.try_push_full.get(),
            "shard {id}: parks {} > full events {}",
            shard.ring.producer_parks.get(),
            shard.ring.try_push_full.get()
        );
        // The snapshot quiesce records the sketch's resident size.
        assert!(
            shard.sketch_memory.get() > 0,
            "shard {id}: sketch memory gauge unset after quiesce"
        );
    }
}

#[test]
fn histogram_bucket_sums_equal_record_counts_under_concurrency() {
    static HIST: Histogram = Histogram::new();
    const THREADS: u64 = 8;
    const RECORDS: u64 = 25_000;
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                let mut local_sum = 0u64;
                for i in 0..RECORDS {
                    // A deterministic spread over many buckets.
                    let v = (i.wrapping_mul(2_654_435_761) ^ (t << 56)) >> (i % 48);
                    HIST.record(v);
                    local_sum = local_sum.wrapping_add(v);
                }
                local_sum
            })
        })
        .collect();
    let mut expected_sum = 0u64;
    for w in workers {
        expected_sum = expected_sum.wrapping_add(w.join().expect("recorder"));
    }
    let snap = HIST.snapshot();
    assert_eq!(snap.count, THREADS * RECORDS);
    let bucket_total: u64 = snap.buckets.iter().map(|&(_, n)| n).sum();
    assert_eq!(bucket_total, snap.count, "bucket sum == record count");
    assert_eq!(snap.sum, expected_sum, "value sum matches the arithmetic total");
    // Quantiles stay inside the recorded range's bucket bounds.
    assert!(snap.quantile(0.5) <= snap.quantile(0.99));
}

#[test]
fn temporal_counters_match_a_designed_stream_exactly() {
    // Single shard + single producer: the SPSC ring preserves offer order, so
    // every temporal counter is a pure function of the stream below.
    //
    // width 10, 4 fine buckets, default retention (2 tiers, factor 4).
    // Buckets 0..=11 in order, 40 rows each:
    //   - 11 forward transitions  -> rotations = 11
    //   - min_live ends at 11-3=8 -> buckets 0..=7 expire: 8 tier-0 pushes,
    //     compacting at the 4th and 8th -> tier_compactions = 2
    // Then 6 rows at bucket 2 (below min_live -> clamped late) and 5 rows at
    // bucket 9 (in-window out-of-order -> placed exactly, NOT late).
    let engine = TemporalIngestEngine::new(
        TemporalConfig::new(1, 64, 9, 10, 4).with_batch_rows(64),
    );
    let mut handle = engine.handle();
    let mut sent = 0u64;
    for b in 0..12u64 {
        for i in 0..40u64 {
            handle.offer_at(100 + (i * 13 + b * 31) % 150, b * 10 + (i % 10));
            sent += 1;
        }
    }
    for i in 0..6u64 {
        handle.offer_at(7_000 + i, 25); // bucket 2: late
        sent += 1;
    }
    for i in 0..5u64 {
        handle.offer_at(8_000 + i, 95); // bucket 9: out-of-order, in window
        sent += 1;
    }
    handle.flush();

    let em = Arc::clone(engine.metrics());
    let tm = Arc::clone(engine.temporal_metrics());

    // First full-range capture quiesces the worker (ring cut + settle) and
    // MISSES the cold range cache; the repeat at the same watermark HITS.
    let first = engine.range_capture(&TimeRange::All);
    assert_eq!(first.rows_processed(), sent);
    assert_eq!(em.rows_total(), sent, "worker row counter at quiesce");
    assert_eq!(engine.rows_enqueued(), sent);
    assert_eq!(tm.rotations.get(), 11);
    assert_eq!(tm.tier_compactions.get(), 2);
    assert_eq!(tm.late_rows.get(), 6);
    assert_eq!(tm.range_cache_misses.get(), 1);
    assert_eq!(tm.range_cache_hits.get(), 0);

    let again = engine.range_capture(&TimeRange::All);
    assert_eq!(tm.range_cache_hits.get(), 1);
    assert_eq!(tm.range_cache_misses.get(), 1, "hit performs no fold");
    assert_eq!(again.rows_processed(), sent);

    // A narrower range is a different cache key: one more miss.
    let _ = engine.range_capture(&TimeRange::Between { start: 40, end: 80 });
    assert_eq!(tm.range_cache_misses.get(), 2);

    // Ladder conservation: every node ever materialised was counted built,
    // every node ever dropped (late-row invalidation or retention retire) was
    // counted invalidated, so with the workers joined the difference is the
    // number of nodes still alive.
    let stores = engine.finish_stores();
    let live: u64 = stores.iter().map(|s| s.ladder_node_count() as u64).sum();
    let built = tm.ladder_nodes_built.get();
    let invalidated = tm.ladder_nodes_invalidated.get();
    assert!(built >= invalidated, "built {built} < invalidated {invalidated}");
    assert_eq!(built - invalidated, live, "ladder node balance");
    assert!(
        tm.ladder_repaired_at_query.get() <= built,
        "query repairs are a subset of builds"
    );
    // And the stream-level ground truth the store itself tracks agrees.
    assert_eq!(stores[0].late_rows(), tm.late_rows.get());
    assert_eq!(stores[0].rows_processed(), sent);
}

#[test]
fn checkpoint_counters_match_the_files_on_disk() {
    let dir = scratch_dir("ckpt");
    let engine = TemporalIngestEngine::new(TemporalConfig::new(2, 32, 5, 10, 8));
    let mut handle = engine.handle();
    for i in 0..1_000u64 {
        handle.offer_at(i % 50, i / 20);
    }
    handle.flush();
    engine.checkpoint(&dir).expect("checkpoint");

    let metrics = engine.metrics();
    // 2 shard files + 1 manifest.
    assert_eq!(metrics.checkpoint_frames.get(), 3);
    assert_eq!(metrics.checkpoint_failures.get(), 0);
    let on_disk: u64 = std::fs::read_dir(&dir)
        .expect("read checkpoint dir")
        .map(|e| e.expect("dir entry").metadata().expect("metadata").len())
        .sum();
    assert_eq!(
        metrics.checkpoint_bytes.get(),
        on_disk,
        "byte counter equals the bytes actually on disk"
    );

    // A second checkpoint accumulates (counters are _total).
    engine.checkpoint(&dir).expect("second checkpoint");
    assert_eq!(metrics.checkpoint_frames.get(), 6);
    let _ = engine.finish();
    let _ = std::fs::remove_dir_all(&dir);
}
