//! Temporal-subsystem correctness: mass conservation across bucket boundaries,
//! unbiasedness of range merges (z-tests over ≥50 seeds), tier-compaction
//! equivalence, out-of-order / late-timestamp handling, bit-identity of a
//! whole-stream temporal range with the non-temporal engine, and exact
//! checkpoint→restore→continue of the bucket ring — plus the decayed sketch
//! serving through the unchanged query layer.

use std::sync::Arc;

use uss_core::engine::{EngineConfig, ShardedIngestEngine};
use uss_core::query::{Query, QueryAnswer, QueryServer, QueryServerConfig, SnapshotSource};
use uss_core::temporal::{
    compact_fold, BucketReport, TemporalConfig, TemporalIngestEngine, TimeRange, WindowConfig,
    WindowedSketchStore,
};
use uss_core::traits::StreamSketch;
use uss_core::DecayedSpaceSaving;

/// A deterministic skewed stream: `(item, bucket)` rows spanning `buckets` time
/// buckets of `rows_per_bucket` rows each, with item 7 given `extra` additional
/// rows in every bucket of `[hot_from, hot_to)`.
fn hot_item_stream(
    buckets: u64,
    rows_per_bucket: u64,
    hot_from: u64,
    hot_to: u64,
    extra: u64,
) -> Vec<(u64, u64)> {
    let mut rows = Vec::new();
    for b in 0..buckets {
        for i in 0..rows_per_bucket {
            rows.push((100 + (i * 13 + b * 31) % 150, b));
        }
        if (hot_from..hot_to).contains(&b) {
            for _ in 0..extra {
                rows.push((7, b));
            }
        }
    }
    rows
}

#[test]
fn mass_is_conserved_across_bucket_boundaries_and_compaction() {
    // Rows cross many bucket boundaries and several compaction events; no row
    // may ever be lost or double-counted, in any retained structure.
    let mut store = WindowedSketchStore::new(
        WindowConfig::new(24, 11, 1, 3).with_retention(2, 2),
    );
    let mut offered = 0u64;
    for (item, b) in hot_item_stream(40, 50, 10, 20, 5) {
        store.offer_at(item, b);
        offered += 1;
    }
    assert_eq!(store.rows_processed(), offered);
    // Structure-level accounting: fine + tiers + terminal add up exactly.
    let mut accounted: u64 = store
        .fine_sketches()
        .map(|(_, sk)| sk.rows_processed())
        .sum();
    for t in 0..2 {
        accounted += store.tier_buckets(t).iter().map(|b| b.rows()).sum::<u64>();
    }
    accounted += store.terminal_bucket().map_or(0, |b| b.rows());
    assert_eq!(accounted, offered);
    // The folded full range conserves the mass to float precision, and every
    // compacted entry list conserves its own span's mass exactly (the unbiased
    // merge is mass-preserving by construction).
    let folded = store.fold_range(0, u64::MAX, 1, 2);
    let mass: f64 = folded.entries().iter().map(|(_, c)| c).sum();
    assert!((mass - offered as f64).abs() < 1e-6, "mass {mass} vs {offered}");
    for t in 0..2 {
        for bucket in store.tier_buckets(t) {
            let m: f64 = bucket.entries().iter().map(|(_, c)| c).sum();
            assert!(
                (m - bucket.rows() as f64).abs() < 1e-6,
                "tier {t} span [{}, {}): mass {m} vs rows {}",
                bucket.start(),
                bucket.end(),
                bucket.rows()
            );
        }
    }
}

#[test]
fn range_merge_estimates_are_unbiased_over_many_seeds() {
    // Item 7 receives exactly 30 extra rows in each of buckets 2, 3, 4. The
    // range fold over [2, 5) must estimate its count without bias even though
    // every bucket sketch is lossy (capacity 16 over 150 distinct items) and
    // the fold subsamples again. z-test over 60 sketch seeds (deterministic:
    // the stream is fixed, only the sketch/merge RNG varies with the seed).
    let rows = hot_item_stream(10, 300, 2, 5, 30);
    let truth = 3.0 * 30.0;
    let seeds = 60;
    let mut estimates = Vec::with_capacity(seeds);
    for seed in 0..seeds as u64 {
        let mut store = WindowedSketchStore::new(
            WindowConfig::new(16, seed, 1, 10).with_retention(2, 4),
        );
        for &(item, b) in &rows {
            store.offer_at(item, b);
        }
        let folded = store.fold_range(2, 5, seed ^ 0xAAAA, seed ^ 0xBBBB);
        assert_eq!(folded.rows_processed(), 3 * 300 + 3 * 30);
        estimates.push(folded.estimate(7));
    }
    let n = estimates.len() as f64;
    let mean = estimates.iter().sum::<f64>() / n;
    let var = estimates.iter().map(|e| (e - mean).powi(2)).sum::<f64>() / (n - 1.0);
    let z = (mean - truth) / (var / n).sqrt().max(1e-9);
    assert!(
        z.abs() < 4.0,
        "range-merge bias detected: mean {mean} vs truth {truth} (z = {z:.2})"
    );
}

#[test]
fn compacted_tier_bucket_equals_direct_merge_of_its_fine_buckets() {
    // Store A retains every fine bucket (window larger than the stream); store
    // B compacts aggressively. Same seed => identical fine sketches while they
    // live, so every compacted bucket in B must equal `compact_fold` applied
    // directly to A's still-retained fine buckets over the same span — the
    // compaction loses nothing beyond the documented unbiased merge.
    let rows = hot_item_stream(12, 120, 0, 12, 10);
    let seed = 77;
    let mut a = WindowedSketchStore::new(
        WindowConfig::new(20, seed, 1, 64).with_retention(2, 2),
    );
    let mut b = WindowedSketchStore::new(
        WindowConfig::new(20, seed, 1, 2).with_retention(2, 2),
    );
    for &(item, bk) in &rows {
        a.offer_at(item, bk);
        b.offer_at(item, bk);
    }
    assert_eq!(a.fine_sketches().count(), 12, "A must retain every bucket");
    type FineImage = (u64, Vec<(u64, f64)>, u64);
    let fine_a: Vec<FineImage> = a
        .fine_sketches()
        .map(|(i, sk)| (i, sk.entries(), sk.rows_processed()))
        .collect();
    let report_for = |index: u64| -> BucketReport {
        let (_, entries, rows) = fine_a
            .iter()
            .find(|(i, _, _)| *i == index)
            .expect("fine bucket retained in A");
        BucketReport {
            entries: entries.clone(),
            rows: *rows,
        }
    };
    // Tier 0 holds raw expired buckets: identical to A's fine entries.
    for bucket in b.tier_buckets(0) {
        assert_eq!(bucket.end(), bucket.start() + 1);
        let expected = report_for(bucket.start());
        assert_eq!(bucket.entries(), &expected.entries[..]);
        assert_eq!(bucket.rows(), expected.rows);
    }
    // Tier 1 holds span-2 compactions: exactly the deterministic fold of the
    // two fine buckets they were built from.
    let tier1 = b.tier_buckets(1);
    assert!(!tier1.is_empty(), "the stream must have forced a tier-1 compaction");
    for bucket in tier1 {
        let span: Vec<BucketReport> =
            (bucket.start()..bucket.end()).map(report_for).collect();
        let expected = compact_fold(20, seed, bucket.start(), bucket.end(), span);
        assert_eq!(bucket, &expected, "span [{}, {})", bucket.start(), bucket.end());
    }
}

#[test]
fn engine_places_out_of_order_rows_exactly_and_clamps_late_ones() {
    // Producers emit timestamps shuffled inside the live window: every row must
    // land in its true bucket (exact per-bucket row counts), and rows older
    // than the window clamp into the oldest retained bucket instead of
    // vanishing.
    // Fine window of 4 buckets: buckets 0 and 1 expire into tier 0 (span-1
    // buckets, so single-bucket range queries stay exact) and a timestamp from
    // bucket 0 arriving at the end is genuinely late.
    let config = TemporalConfig::new(2, 64, 5, 10, 4).with_batch_rows(32);
    let engine = TemporalIngestEngine::new(config);
    let mut handle = engine.handle();
    // 6 buckets × 100 rows, timestamps emitted in a scrambled in-window order.
    let mut rows: Vec<(u64, u64)> = Vec::new();
    for b in 0..6u64 {
        for i in 0..100u64 {
            rows.push((i % 40, b * 10 + (i * 7) % 10));
        }
    }
    // Deterministic shuffle with a reordering horizon under the fine window,
    // so nothing here is late.
    rows.chunks_mut(250).for_each(<[(u64, u64)]>::reverse);
    handle.offer_batch_at(&rows);
    handle.flush();
    for b in 0..6u64 {
        let one = engine.range_snapshot(&TimeRange::Between {
            start: b * 10,
            end: (b + 1) * 10,
        });
        assert_eq!(one.rows_processed(), 100, "bucket {b}");
    }
    // A row far older than the window is clamped, not dropped.
    handle.offer_at(999, 0);
    handle.flush();
    let all = engine.range_snapshot(&TimeRange::All);
    assert_eq!(all.rows_processed(), 601);
    let stores = engine.finish_stores();
    let late: u64 = stores.iter().map(WindowedSketchStore::late_rows).sum();
    assert_eq!(late, 1);
}

/// Feeds the same unit-weight stream to a non-temporal engine (combiner off)
/// and a temporal engine whose bucket width swallows every timestamp, using
/// identical batch geometry.
fn twin_engines(rows: &[u64]) -> (ShardedIngestEngine, TemporalIngestEngine) {
    let plain = ShardedIngestEngine::new(
        EngineConfig::new(3, 48, 42)
            .with_combiner_items(0)
            .with_batch_rows(128),
    );
    let temporal = TemporalIngestEngine::new(
        TemporalConfig::new(3, 48, 42, u64::MAX, 4).with_batch_rows(128),
    );
    let mut ph = plain.handle();
    let mut th = temporal.handle();
    for &item in rows {
        ph.offer(item);
        th.offer_at(item, item % 1_000);
    }
    ph.flush();
    th.flush();
    (plain, temporal)
}

#[test]
fn whole_stream_range_is_bit_identical_to_the_non_temporal_engine() {
    // The acceptance criterion: with every row in one bucket, the bucket
    // sketches are seeded exactly like the plain engine's shard sketches, and a
    // whole-stream range fold uses the same salted merge-seed sequence — so the
    // answers are bit-identical, not merely statistically equal.
    let rows: Vec<u64> = (0..30_000u64)
        .map(|i| if i % 5 == 0 { i % 40 } else { 500 + i % 2_000 })
        .collect();
    let (plain, temporal) = twin_engines(&rows);

    // Direct snapshot vs whole-range snapshot: both consume merge salt 0.
    let p = plain.snapshot();
    let t = temporal.range_snapshot(&TimeRange::All);
    assert_eq!(p.rows_processed(), t.rows_processed());
    assert_eq!(p.entries(), t.entries());

    // Served comparison: each server's construction capture consumes salt 1 on
    // its own engine, so the epochs line up too. All five variants and the
    // marginal group-by must agree bit for bit.
    let ps = QueryServer::new(&plain, QueryServerConfig::new());
    let ts = QueryServer::new(
        temporal.range_source(TimeRange::All),
        QueryServerConfig::new(),
    );
    let items: Vec<u64> = (0..40).collect();
    for query in [
        Query::SubsetSum { items: items.clone() },
        Query::Proportion { items },
        Query::TopK { k: 10 },
        Query::FrequentItems { phi: 0.001 },
        Query::RankQuantile { q: 0.5 },
    ] {
        let a = ps.execute(&query);
        let b = ts.execute(&query);
        assert_eq!(a.rows, b.rows, "{query:?}");
        assert_eq!(a.answer, b.answer, "{query:?}");
    }
    let ma = ps.marginals(|item| Some(item % 8));
    let mb = ts.marginals(|item| Some(item % 8));
    assert_eq!(ma.len(), mb.len());
    for ((k1, e1), (k2, e2)) in ma.iter().zip(&mb) {
        assert_eq!(k1, k2);
        assert_eq!(e1.sum.to_bits(), e2.sum.to_bits());
        assert_eq!(e1.variance.to_bits(), e2.variance.to_bits());
    }
    drop(ts);
    let _ = temporal.finish();
    let _ = plain.finish();
}

#[test]
fn sliding_window_server_answers_every_variant_with_correct_rows() {
    let engine = TemporalIngestEngine::new(
        TemporalConfig::new(2, 128, 9, 10, 6).with_batch_rows(64),
    );
    let mut handle = engine.handle();
    for ts in 0u64..120 {
        for i in 0..50u64 {
            handle.offer_at(i % 30, ts);
        }
    }
    handle.flush();
    let server = QueryServer::new(
        engine.range_source(TimeRange::LastBuckets(3)),
        QueryServerConfig::new(),
    );
    // Buckets 9, 10, 11 (30 ticks × 50 rows).
    let expected_rows: u64 = 3 * 10 * 50;
    let items: Vec<u64> = (0..10).collect();
    let r = server.execute(&Query::SubsetSum { items: items.clone() });
    assert_eq!(r.rows, expected_rows);
    let QueryAnswer::Estimate { estimate, ci } = r.answer else {
        panic!("subset sum must answer with an estimate")
    };
    assert!(estimate.sum > 0.0 && ci.upper >= ci.lower);
    let r = server.execute(&Query::Proportion { items });
    let QueryAnswer::Estimate { estimate, .. } = r.answer else {
        panic!("proportion must answer with an estimate")
    };
    assert!((estimate.sum - 1.0 / 3.0).abs() < 0.15, "proportion {}", estimate.sum);
    let QueryAnswer::Items(top) = server.execute(&Query::TopK { k: 5 }).answer else {
        panic!("top-k must answer with items")
    };
    assert_eq!(top.len(), 5);
    let QueryAnswer::Items(heavy) =
        server.execute(&Query::FrequentItems { phi: 0.02 }).answer
    else {
        panic!("frequent items must answer with items")
    };
    assert!(!heavy.is_empty());
    let QueryAnswer::Rank(rank) = server.execute(&Query::RankQuantile { q: 0.0 }).answer
    else {
        panic!("rank quantile must answer with a rank")
    };
    assert!(rank.is_some());
    let groups = server.marginals(|item| Some(item % 3));
    assert_eq!(groups.len(), 3);
    let group_mass: f64 = groups.iter().map(|(_, e)| e.sum).sum();
    assert!((group_mass - expected_rows as f64).abs() < 1e-6);
    drop(server);
    let _ = engine.finish();
}

#[test]
fn checkpoint_restore_continue_matches_an_uninterrupted_run_exactly() {
    let dir = std::env::temp_dir().join(format!("uss-temporal-ckpt-{}", std::process::id()));
    let config = TemporalConfig::new(2, 32, 21, 5, 4)
        .with_retention(2, 2)
        .with_batch_rows(64);
    let first: Vec<(u64, u64)> = (0..4_000u64).map(|i| (i % 90, i / 50)).collect();
    let second: Vec<(u64, u64)> = (0..4_000u64).map(|i| ((i * 3) % 90, 80 + i / 50)).collect();

    let uninterrupted = TemporalIngestEngine::new(config);
    let mut handle = uninterrupted.handle();
    handle.offer_batch_at(&first);
    handle.flush();
    let _ = uninterrupted.range_snapshot(&TimeRange::All); // advance the salt counter
    uninterrupted.checkpoint(&dir).unwrap();
    handle.offer_batch_at(&second);
    handle.flush();
    drop(handle);

    let restored = TemporalIngestEngine::restore(&dir, config).unwrap();
    assert_eq!(restored.rows_enqueued(), 4_000);
    assert_eq!(restored.max_time(), 79);
    let mut handle = restored.handle();
    handle.offer_batch_at(&second);
    handle.flush();
    drop(handle);

    // The post-checkpoint salted range snapshots continue the same sequence.
    let a = uninterrupted.range_snapshot(&TimeRange::LastBuckets(4));
    let b = restored.range_snapshot(&TimeRange::LastBuckets(4));
    assert_eq!(a.entries(), b.entries());
    assert_eq!(a.rows_processed(), b.rows_processed());

    // And the full per-shard ring state is identical: fine sketches (bit-level
    // entries), every tier bucket, terminal bucket, and the counters.
    let sa = uninterrupted.finish_stores();
    let sb = restored.finish_stores();
    assert_eq!(sa.len(), sb.len());
    for (x, y) in sa.iter().zip(&sb) {
        assert_eq!(x.rows_processed(), y.rows_processed());
        assert_eq!(x.late_rows(), y.late_rows());
        assert_eq!(x.last_time(), y.last_time());
        let fx: Vec<_> = x.fine_sketches().map(|(i, sk)| (i, sk.entries())).collect();
        let fy: Vec<_> = y.fine_sketches().map(|(i, sk)| (i, sk.entries())).collect();
        assert_eq!(fx, fy);
        for t in 0..2 {
            assert_eq!(x.tier_buckets(t), y.tier_buckets(t), "tier {t}");
        }
        assert_eq!(x.terminal_bucket(), y.terminal_bucket());
    }

    // A mismatched identity is refused.
    assert!(TemporalIngestEngine::restore(&dir, TemporalConfig::new(2, 32, 22, 5, 4)).is_err());
    assert!(TemporalIngestEngine::restore(
        &dir,
        TemporalConfig::new(2, 32, 21, 5, 4).with_retention(1, 2)
    )
    .is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A cheap deterministic mixer for "random" interleavings without an RNG dep.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[test]
fn ladder_answers_conserve_mass_for_random_interleavings() {
    // Random rotation/out-of-order/query interleavings: every resolvable range
    // answered through the ladder reports exactly the rows the leaf path
    // reports, and its total mass equals those rows to float precision. The
    // ladder may re-sample *which* items carry the mass — never how much.
    for seed in 0..8u64 {
        let mut store = WindowedSketchStore::new(
            WindowConfig::new(24, seed, 1, 16).with_retention(2, 3),
        );
        let mut clock = 0u64;
        for step in 0..3_000u64 {
            let r = mix(seed ^ (step << 8));
            match r % 10 {
                // Mostly in-order rows; the clock drifts forward.
                0..=6 => {
                    clock += u64::from(r.is_multiple_of(7));
                    store.offer_at(r >> 32, clock);
                }
                // Out-of-order rows, some inside the window, some late.
                7 | 8 => store.offer_at(r >> 32, clock.saturating_sub(r % 40)),
                // A range query through the ladder at a random span.
                _ => {
                    let width = 1 + r % 16;
                    let start = clock.saturating_sub(width);
                    let (reports, _) = store.indexed_range_reports(start, start + width);
                    let leaf_rows: u64 = store
                        .range_reports(start, start + width)
                        .iter()
                        .map(|b| b.rows)
                        .sum();
                    let rows: u64 = reports.iter().map(|b| b.rows).sum();
                    assert_eq!(rows, leaf_rows, "seed {seed} step {step}");
                    let mass: f64 = reports
                        .iter()
                        .flat_map(|b| &b.entries)
                        .map(|&(_, c)| c)
                        .sum();
                    assert!(
                        (mass - rows as f64).abs() < 1e-6 * (rows as f64).max(1.0),
                        "seed {seed} step {step}: mass {mass} vs rows {rows}"
                    );
                }
            }
        }
    }
}

#[test]
fn ladder_estimates_are_statistically_indistinguishable_from_leaf_folds() {
    // Item 7 receives exactly 30 extra rows in each of buckets 2, 3, 4. Over
    // 60 sketch seeds, the ladder fold of [2, 5) must (a) stay unbiased
    // against the truth and (b) be indistinguishable from the leaf fold: the
    // paired per-seed differences must not drift from zero. Both are z-tests
    // at |z| < 4 — the deterministic stream means only sketch/merge RNG varies.
    let rows = hot_item_stream(10, 300, 2, 5, 30);
    let truth = 3.0 * 30.0;
    let seeds = 60;
    let mut ladder_estimates = Vec::with_capacity(seeds);
    let mut diffs = Vec::with_capacity(seeds);
    for seed in 0..seeds as u64 {
        // A window wide enough to keep buckets 2..5 fine and sealed, so the
        // range decomposes into the level-1 node [2, 4) plus leaf 4.
        let mut store = WindowedSketchStore::new(
            WindowConfig::new(16, seed, 1, 12).with_retention(2, 4),
        );
        for &(item, b) in &rows {
            store.offer_at(item, b);
        }
        let ladder = store.fold_range_indexed(2, 5, seed ^ 0xAAAA, seed ^ 0xBBBB);
        let leaf = store.fold_range(2, 5, seed ^ 0xAAAA, seed ^ 0xBBBB);
        assert_eq!(ladder.rows_processed(), 3 * 300 + 3 * 30);
        assert_eq!(ladder.rows_processed(), leaf.rows_processed());
        ladder_estimates.push(ladder.estimate(7));
        diffs.push(ladder.estimate(7) - leaf.estimate(7));
    }
    let z_of = |xs: &[f64], target: f64| {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        (mean - target) / (var / n).sqrt().max(1e-9)
    };
    let z_truth = z_of(&ladder_estimates, truth);
    assert!(
        z_truth.abs() < 4.0,
        "ladder fold is biased: z = {z_truth:.2} against truth {truth}"
    );
    let z_leaf = z_of(&diffs, 0.0);
    assert!(
        z_leaf.abs() < 4.0,
        "ladder and leaf folds drift apart: z = {z_leaf:.2}"
    );
}

#[test]
fn straddling_batches_account_late_rows_per_item() {
    // One enqueued batch straddles the window boundary: rows at the leading
    // edge advance the window and retroactively make the batch's oldest rows
    // late. Accounting must be per item — identical, row for row and byte for
    // byte, to offering the same rows one at a time.
    let config = TemporalConfig::new(2, 32, 13, 10, 4).with_batch_rows(4096);
    let batched = TemporalIngestEngine::new(config);
    let single = TemporalIngestEngine::new(config);
    let mut rows: Vec<(u64, u64)> = Vec::new();
    for ts in 0u64..80 {
        for i in 0..10u64 {
            rows.push((i * 31 + ts, ts));
        }
    }
    // The straddle: rows behind the (now advanced) window mixed with live
    // ones, inside one batch.
    for k in 0..50u64 {
        rows.push((k, k % 100));
    }
    let mut bh = batched.handle();
    bh.offer_batch_at(&rows);
    bh.flush();
    drop(bh);
    let mut sh = single.handle();
    for &(item, ts) in &rows {
        sh.offer_at(item, ts);
        sh.flush();
    }
    drop(sh);
    let sa = batched.finish_stores();
    let sb = single.finish_stores();
    let late: u64 = sa.iter().map(WindowedSketchStore::late_rows).sum();
    assert!(late > 0, "the stream must actually straddle the window");
    for (x, y) in sa.iter().zip(&sb) {
        assert_eq!(x.rows_processed(), y.rows_processed());
        assert_eq!(x.late_rows(), y.late_rows());
        let fx: Vec<_> = x.fine_sketches().map(|(i, sk)| (i, sk.entries())).collect();
        let fy: Vec<_> = y.fine_sketches().map(|(i, sk)| (i, sk.entries())).collect();
        assert_eq!(fx, fy);
    }
}

#[test]
fn degenerate_ranges_serve_every_query_variant_with_finite_zeros() {
    // The range path's empty-snapshot contract: a served range that resolves
    // to no buckets (end <= start, or entirely before history) must answer
    // all five query variants with finite zeros — never NaN, never a panic —
    // exactly like a server over a 0-row source.
    let engine = TemporalIngestEngine::new(TemporalConfig::new(2, 32, 3, 10, 6));
    let mut handle = engine.handle();
    for ts in 60u64..120 {
        handle.offer_at(ts % 9, ts);
    }
    handle.flush();
    for range in [
        TimeRange::Between { start: 7, end: 7 },
        TimeRange::Between { start: 9, end: 3 },
        TimeRange::LastBuckets(0),
        // Pre-history: resolvable, but no retained bucket overlaps it.
        TimeRange::Between { start: 0, end: 30 },
    ] {
        let server = QueryServer::new(engine.range_source(range), QueryServerConfig::new());
        let items: Vec<u64> = vec![1, 2, 3];
        for query in [
            Query::SubsetSum { items: items.clone() },
            Query::Proportion { items: items.clone() },
        ] {
            let response = server.execute(&query);
            assert_eq!(response.rows, 0, "{range:?} {query:?}");
            let QueryAnswer::Estimate { estimate, ci } = response.answer else {
                panic!("{range:?} {query:?} must answer with an estimate")
            };
            assert_eq!(estimate.sum, 0.0, "{range:?} {query:?}");
            assert_eq!(estimate.variance, 0.0, "{range:?} {query:?}");
            assert!(ci.lower.is_finite() && ci.upper.is_finite(), "{range:?} {query:?}");
            assert_eq!((ci.lower, ci.upper), (0.0, 0.0), "{range:?} {query:?}");
        }
        assert_eq!(
            server.execute(&Query::TopK { k: 5 }).answer,
            QueryAnswer::Items(vec![]),
            "{range:?}"
        );
        assert_eq!(
            server.execute(&Query::FrequentItems { phi: 0.01 }).answer,
            QueryAnswer::Items(vec![]),
            "{range:?}"
        );
        assert_eq!(
            server.execute(&Query::RankQuantile { q: 0.5 }).answer,
            QueryAnswer::Rank(None),
            "{range:?}"
        );
        assert!(server.marginals(|item| Some(item % 4)).is_empty(), "{range:?}");
    }
    let _ = engine.finish();
}

#[test]
fn ladder_bearing_checkpoint_restore_continues_bit_compatibly() {
    // A checkpoint taken mid-stream carries the dyadic-ladder nodes built so
    // far (frame kind 8). The restored engine must continue bit-compatibly
    // with the uninterrupted one across *wide* ranges — the answers that
    // actually travel through the ladder and its span-derived seeds — and the
    // range cache must never serve a pre-restore snapshot (its slots are
    // generation-tagged; a fresh incarnation starts empty).
    let dir = std::env::temp_dir().join(format!("uss-ladder-ckpt-{}", std::process::id()));
    let config = TemporalConfig::new(2, 32, 21, 5, 16)
        .with_retention(2, 2)
        .with_batch_rows(64);
    let first: Vec<(u64, u64)> = (0..6_000u64).map(|i| (i % 90, i / 50)).collect();
    let second: Vec<(u64, u64)> = (0..6_000u64).map(|i| ((i * 3) % 90, 120 + i / 50)).collect();

    let uninterrupted = TemporalIngestEngine::new(config);
    let mut handle = uninterrupted.handle();
    handle.offer_batch_at(&first);
    handle.flush();
    // A wide pre-checkpoint query builds ladder nodes in every shard (and
    // advances the salt counter), so the checkpoint is genuinely
    // ladder-bearing. Cached too: the restored engine must not reuse it.
    let wide = TimeRange::LastBuckets(12);
    let pre = uninterrupted.range_capture(&wide);
    assert!(pre.rows_processed() > 0);
    uninterrupted.checkpoint(&dir).unwrap();
    handle.offer_batch_at(&second);
    handle.flush();
    drop(handle);

    // The shard files really are the new ladder frame kind.
    for shard in 0..config.shards {
        let bytes = std::fs::read(dir.join(TemporalIngestEngine::shard_file_name(shard))).unwrap();
        assert_eq!(
            uss_core::persist::peek_kind(&bytes).unwrap(),
            uss_core::persist::SketchKind::TemporalLadderShard,
            "shard {shard}"
        );
    }

    let restored = TemporalIngestEngine::restore(&dir, config).unwrap();
    // The cache regression: this capture carries the *same* (range, rows)
    // key the pre-checkpoint capture was cached under, but the restored
    // incarnation must fold fresh — its own salt draw, not the old bytes.
    let cb = restored.range_capture(&wide);
    assert_eq!(cb.rows_processed(), pre.rows_processed());
    assert_ne!(cb.entries(), pre.entries(), "restored capture replayed a stale slot");
    // The fresh-generation cache works on its own terms.
    assert!(Arc::ptr_eq(&cb, &restored.range_capture(&wide)));
    // Keep the salt counters in step for the bit-compat comparison below.
    let _ = uninterrupted.range_snapshot(&wide);

    let mut handle = restored.handle();
    handle.offer_batch_at(&second);
    handle.flush();
    drop(handle);

    // Wide (ladder-served) and narrow (raw) post-checkpoint answers continue
    // the same salted sequence bit for bit.
    for range in [
        TimeRange::LastBuckets(12),
        TimeRange::LastBuckets(16),
        TimeRange::LastBuckets(1),
        TimeRange::All,
    ] {
        let a = uninterrupted.range_snapshot(&range);
        let b = restored.range_snapshot(&range);
        assert_eq!(a.entries(), b.entries(), "{range:?}");
        assert_eq!(a.rows_processed(), b.rows_processed(), "{range:?}");
    }
    // The capture path agrees at the new watermark too.
    let ca = uninterrupted.range_capture(&wide);
    let cc = restored.range_capture(&wide);
    assert_eq!(ca.entries(), cc.entries());
    std::fs::remove_dir_all(&dir).unwrap();
    let _ = uninterrupted.finish();
    let _ = restored.finish();
}

#[test]
fn decayed_sketch_serves_through_the_query_layer() {
    // The smooth-decay alternative to hard windows: a DecayedSpaceSaving behind
    // the unchanged QueryServer, shared with a producer through an RwLock.
    let shared = Arc::new(parking_lot::RwLock::new(DecayedSpaceSaving::with_seed(
        64, 0.01, 3,
    )));
    {
        let mut sketch = shared.write();
        for t in 0..200u64 {
            for i in 0..20u64 {
                sketch.offer_at(i % 10, t as f64);
            }
        }
    }
    let server = QueryServer::new(
        Arc::clone(&shared),
        QueryServerConfig::new().refresh_every_rows(1),
    );
    // The served snapshot is the decayed state at the last update time.
    let direct = shared.read().snapshot_at(shared.read().last_time());
    assert_eq!(server.top_k(5), direct.top_k(5));
    let QueryAnswer::Estimate { estimate, ci } = server
        .execute(&Query::SubsetSum { items: (0..5).collect() })
        .answer
    else {
        panic!("subset sum must answer with an estimate")
    };
    assert!(estimate.sum > 0.0 && ci.upper >= ci.lower);
    // Recency: a new heavy item offered much later dominates the decayed top-k
    // after a refresh, even though older items have more raw occurrences.
    {
        let mut sketch = shared.write();
        for _ in 0..300 {
            sketch.offer_at(777, 900.0);
        }
    }
    assert_eq!(server.top_k(1)[0].0, 777);
    let rank = server.execute(&Query::RankQuantile { q: 0.0 }).answer;
    assert_eq!(rank, QueryAnswer::Rank(Some(server.top_k(1)[0])));
}

#[test]
fn decayed_capture_normalises_min_count_consistently() {
    let mut sketch = DecayedSpaceSaving::with_seed(4, 0.1, 5);
    for i in 0..200u64 {
        sketch.offer_at(i % 20, i as f64 * 0.5);
    }
    let snap = sketch.capture();
    // min_count must be in the same (decayed) units as the entries: no entry
    // may fall below it minus float noise.
    let min_entry = snap
        .entries()
        .iter()
        .map(|(_, c)| *c)
        .fold(f64::INFINITY, f64::min);
    assert!(snap.min_count() <= min_entry + 1e-9);
    assert!(snap.min_count() > 0.0);
    assert_eq!(snap.rows_processed(), 200);
}
