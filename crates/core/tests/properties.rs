//! Property-based tests for the core sketch invariants.

use proptest::collection::vec;
use proptest::prelude::*;

use uss_core::prelude::*;
use uss_core::reduction::{combine_entries, pps_reduce, threshold_reduce};
use uss_core::StreamSummary;

/// Arbitrary small streams: item ids are kept in a narrow range so collisions and
/// evictions actually happen.
fn stream_strategy(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    vec(0u64..50, 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The Space Saving mass-conservation invariant: the counters always sum to the
    /// number of rows processed, for any input sequence and any capacity.
    #[test]
    fn unbiased_total_mass_equals_rows(stream in stream_strategy(400), capacity in 1usize..20, seed in any::<u64>()) {
        let mut sketch = UnbiasedSpaceSaving::with_seed(capacity, seed);
        for &item in &stream {
            sketch.offer(item);
        }
        let total: f64 = sketch.entries().iter().map(|(_, c)| c).sum();
        prop_assert_eq!(total, stream.len() as f64);
        prop_assert_eq!(sketch.rows_processed(), stream.len() as u64);
    }

    /// Same invariant for the deterministic variant.
    #[test]
    fn deterministic_total_mass_equals_rows(stream in stream_strategy(400), capacity in 1usize..20) {
        let mut sketch = DeterministicSpaceSaving::new(capacity);
        for &item in &stream {
            sketch.offer(item);
        }
        let total: f64 = sketch.entries().iter().map(|(_, c)| c).sum();
        prop_assert_eq!(total, stream.len() as f64);
    }

    /// Deterministic Space Saving's classical guarantee: every estimate overshoots the
    /// true count by at most `rows / capacity`, and never undershoots for retained
    /// items.
    #[test]
    fn deterministic_error_bound(stream in stream_strategy(500), capacity in 1usize..16) {
        let mut sketch = DeterministicSpaceSaving::new(capacity);
        let mut truth = std::collections::HashMap::new();
        for &item in &stream {
            sketch.offer(item);
            *truth.entry(item).or_insert(0u64) += 1;
        }
        let bound = stream.len() as f64 / capacity as f64;
        for (&item, &count) in &truth {
            let est = sketch.estimate(item);
            prop_assert!(est <= count as f64 + bound + 1e-9);
            if est > 0.0 {
                prop_assert!(est >= count as f64 - bound - 1e-9);
            }
        }
    }

    /// The number of retained items never exceeds the capacity, and retained estimates
    /// are always positive.
    #[test]
    fn retained_len_bounded(stream in stream_strategy(300), capacity in 1usize..12, seed in any::<u64>()) {
        let mut sketch = UnbiasedSpaceSaving::with_seed(capacity, seed);
        for &item in &stream {
            sketch.offer(item);
            prop_assert!(sketch.retained_len() <= capacity);
        }
        for (_, count) in sketch.entries() {
            prop_assert!(count > 0.0);
        }
    }

    /// The weighted sketch conserves total weight exactly for any weight sequence.
    #[test]
    fn weighted_mass_conservation(
        rows in vec((0u64..30, 0u32..1000u32), 1..200),
        capacity in 1usize..10,
        seed in any::<u64>(),
    ) {
        let mut sketch = WeightedSpaceSaving::with_seed(capacity, seed);
        let mut total = 0.0;
        for &(item, w) in &rows {
            let w = f64::from(w) / 16.0;
            sketch.offer_weighted(item, w);
            total += w;
        }
        let sum: f64 = sketch.entries().iter().map(|(_, c)| c).sum();
        prop_assert!((sum - total).abs() < 1e-6 * total.max(1.0));
    }

    /// The stream-summary structure never violates its internal invariants under any
    /// operation sequence expressible through the sketch API.
    #[test]
    fn stream_summary_invariants(ops in vec((0u64..40, 1u64..5), 1..300), capacity in 1usize..12) {
        let mut summary = StreamSummary::new(capacity);
        for &(item, by) in &ops {
            if summary.increment(item, by) {
                // incremented existing
            } else if !summary.is_full() {
                summary.insert(item, by);
            } else {
                summary.replace_min(item, by);
            }
            prop_assert!(summary.validate().is_ok(), "{:?}", summary.validate());
        }
    }

    /// The Misra-Gries threshold reduction never overestimates and never keeps more
    /// than the target number of entries.
    #[test]
    fn threshold_reduce_properties(
        counts in vec(1u32..1000u32, 1..60),
        target in 0usize..20,
    ) {
        let entries: Vec<(u64, f64)> = counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as u64, f64::from(c)))
            .collect();
        let mut reduced = entries.clone();
        threshold_reduce(&mut reduced, target);
        prop_assert!(reduced.len() <= target.max(entries.len().min(target)) || entries.len() <= target);
        prop_assert!(reduced.len() <= entries.len());
        for (item, count) in &reduced {
            let original = entries.iter().find(|(i, _)| i == item).unwrap().1;
            prop_assert!(*count <= original + 1e-9);
            prop_assert!(*count > 0.0);
        }
    }

    /// The PPS reduction keeps at most the target number of entries, keeps items at or
    /// above the threshold verbatim, and never invents items.
    #[test]
    fn pps_reduce_properties(
        counts in vec(1u32..1000u32, 1..60),
        target in 1usize..20,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let entries: Vec<(u64, f64)> = counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as u64, f64::from(c)))
            .collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let reduced = pps_reduce(entries.clone(), target, &mut rng);
        prop_assert!(reduced.len() <= entries.len().max(target));
        if entries.len() > target {
            prop_assert!(reduced.len() <= target);
        }
        for (item, count) in &reduced {
            let original = entries.iter().find(|(i, _)| i == item);
            prop_assert!(original.is_some(), "reduction invented item {item}");
            prop_assert!(*count >= original.unwrap().1 - 1e-9, "counts never shrink");
        }
    }

    /// Combining entry lists is commutative and preserves totals exactly.
    #[test]
    fn combine_entries_commutative(
        a in vec((0u64..30, 1u32..100u32), 0..30),
        b in vec((0u64..30, 1u32..100u32), 0..30),
    ) {
        let a: Vec<(u64, f64)> = a.into_iter().map(|(i, c)| (i, f64::from(c))).collect();
        let b: Vec<(u64, f64)> = b.into_iter().map(|(i, c)| (i, f64::from(c))).collect();
        // Deduplicate items within each list first (combine assumes each side is a
        // sketch entry list, where items are unique).
        let a = combine_entries(&a, &[]);
        let b = combine_entries(&b, &[]);
        let mut ab = combine_entries(&a, &b);
        let mut ba = combine_entries(&b, &a);
        ab.sort_by_key(|e| e.0);
        ba.sort_by_key(|e| e.0);
        prop_assert_eq!(&ab, &ba);
        let total_in: f64 = a.iter().chain(&b).map(|(_, c)| c).sum();
        let total_out: f64 = ab.iter().map(|(_, c)| c).sum();
        prop_assert!((total_in - total_out).abs() < 1e-9);
    }

    /// Snapshot subset sums decompose: the estimate for a union of two disjoint
    /// predicates equals the sum of the two estimates.
    #[test]
    fn subset_sum_is_additive(stream in stream_strategy(400), capacity in 1usize..16, seed in any::<u64>()) {
        let mut sketch = UnbiasedSpaceSaving::with_seed(capacity, seed);
        for &item in &stream {
            sketch.offer(item);
        }
        let snap = sketch.snapshot();
        let low = snap.subset_sum(|i| i < 20);
        let high = snap.subset_sum(|i| i >= 20);
        let all = snap.subset_sum(|_| true);
        prop_assert!((low + high - all).abs() < 1e-9);
        prop_assert!((all - stream.len() as f64).abs() < 1e-9);
    }

    /// Merging preserves the row accounting and respects the capacity bound.
    #[test]
    fn merge_row_accounting(
        a_stream in stream_strategy(200),
        b_stream in stream_strategy(200),
        capacity in 2usize..16,
        seed in any::<u64>(),
    ) {
        let mut a = UnbiasedSpaceSaving::with_seed(capacity, seed);
        let mut b = UnbiasedSpaceSaving::with_seed(capacity, seed ^ 1);
        for &item in &a_stream {
            a.offer(item);
        }
        for &item in &b_stream {
            b.offer(item);
        }
        let merged = merge_unbiased(&a, &b, seed);
        prop_assert_eq!(merged.rows_processed(), (a_stream.len() + b_stream.len()) as u64);
        prop_assert!(merged.retained_len() <= capacity);
    }
}

/// Sorts entry lists so batched and sequential ingestion can be compared for exact
/// equality regardless of enumeration order.
fn sorted_entries<S: StreamSketch>(sketch: &S) -> Vec<(u64, f64)> {
    let mut entries = sketch.entries();
    entries.sort_by_key(|e| e.0);
    entries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `offer_batch` ≡ the equivalent sequence of `offer` calls for Unbiased Space
    /// Saving: same seed, same entries, same rows, same estimates — including the
    /// randomized relabel draws, and regardless of how the stream is cut into
    /// batches. Streams are partially sorted so runs of equal items (the batched fast
    /// path) actually occur.
    #[test]
    fn unbiased_offer_batch_matches_sequential(
        mut stream in stream_strategy(400),
        sort_prefix in 0usize..400,
        cut in 1usize..97,
        capacity in 1usize..20,
        seed in any::<u64>(),
    ) {
        let prefix = sort_prefix.min(stream.len());
        stream[..prefix].sort_unstable();
        let mut batched = UnbiasedSpaceSaving::with_seed(capacity, seed);
        let mut sequential = UnbiasedSpaceSaving::with_seed(capacity, seed);
        for chunk in stream.chunks(cut) {
            batched.offer_batch(chunk);
        }
        for &item in &stream {
            sequential.offer(item);
        }
        prop_assert_eq!(batched.rows_processed(), sequential.rows_processed());
        prop_assert_eq!(sorted_entries(&batched), sorted_entries(&sequential));
        for item in 0u64..50 {
            prop_assert_eq!(batched.estimate(item), sequential.estimate(item));
        }
    }

    /// `offer_batch` ≡ sequential `offer` calls for Deterministic Space Saving.
    #[test]
    fn deterministic_offer_batch_matches_sequential(
        mut stream in stream_strategy(400),
        sort_prefix in 0usize..400,
        cut in 1usize..97,
        capacity in 1usize..20,
    ) {
        let prefix = sort_prefix.min(stream.len());
        stream[..prefix].sort_unstable();
        let mut batched = DeterministicSpaceSaving::new(capacity);
        let mut sequential = DeterministicSpaceSaving::new(capacity);
        for chunk in stream.chunks(cut) {
            batched.offer_batch(chunk);
        }
        for &item in &stream {
            sequential.offer(item);
        }
        prop_assert_eq!(batched.rows_processed(), sequential.rows_processed());
        prop_assert_eq!(sorted_entries(&batched), sorted_entries(&sequential));
    }

    /// `offer_batch` / `offer_weighted_batch` ≡ the sequential calls for the weighted
    /// sketch, under the same seed (ties in the internal min-heap are broken by state
    /// the batched path must reproduce exactly).
    #[test]
    fn weighted_offer_batches_match_sequential(
        rows in proptest::collection::vec((0u64..40, 0.0f64..4.0), 1..300),
        cut in 1usize..61,
        capacity in 1usize..16,
        seed in any::<u64>(),
    ) {
        let mut batched = WeightedSpaceSaving::with_seed(capacity, seed);
        let mut sequential = WeightedSpaceSaving::with_seed(capacity, seed);
        for chunk in rows.chunks(cut) {
            batched.offer_weighted_batch(chunk);
        }
        for &(item, weight) in &rows {
            sequential.offer_weighted(item, weight);
        }
        prop_assert_eq!(batched.rows_processed(), sequential.rows_processed());
        prop_assert_eq!(sorted_entries(&batched), sorted_entries(&sequential));

        // Unit-weight batch entry point, driven by the integer items alone.
        let items: Vec<u64> = rows.iter().map(|&(item, _)| item).collect();
        let mut unit_batched = WeightedSpaceSaving::with_seed(capacity, seed ^ 0xA5);
        let mut unit_sequential = WeightedSpaceSaving::with_seed(capacity, seed ^ 0xA5);
        for chunk in items.chunks(cut) {
            unit_batched.offer_batch(chunk);
        }
        for &item in &items {
            unit_sequential.offer(item);
        }
        prop_assert_eq!(sorted_entries(&unit_batched), sorted_entries(&unit_sequential));
    }

    /// `offer_batch_at` ≡ sequential `offer_at` calls for the decayed sketch: one
    /// batch per (non-decreasing) timestamp, identical decayed estimates.
    #[test]
    fn decayed_offer_batch_at_matches_sequential(
        batches in proptest::collection::vec((proptest::collection::vec(0u64..30, 1..40), 0.0f64..50.0), 1..12),
        capacity in 1usize..12,
        seed in any::<u64>(),
    ) {
        let lambda = 0.05;
        let mut batched = DecayedSpaceSaving::with_seed(capacity, lambda, seed);
        let mut sequential = DecayedSpaceSaving::with_seed(capacity, lambda, seed);
        let mut time = 0.0f64;
        for (items, dt) in &batches {
            time += dt;
            batched.offer_batch_at(items, time);
            for &item in items {
                sequential.offer_at(item, time);
            }
        }
        let query_time = time + 1.0;
        let mut a = batched.decayed_entries(query_time);
        let mut b = sequential.decayed_entries(query_time);
        a.sort_by_key(|e| e.0);
        b.sort_by_key(|e| e.0);
        prop_assert_eq!(a.len(), b.len());
        for ((ia, ca), (ib, cb)) in a.iter().zip(&b) {
            prop_assert_eq!(ia, ib);
            prop_assert!((ca - cb).abs() <= 1e-9 * ca.abs().max(1.0));
        }
    }
}
