//! Merge operations for Space Saving sketches (section 5.5 of the paper).
//!
//! Merging lets sketches built over different partitions of the data (different days,
//! different mappers, different data centres) be combined into a single sketch that
//! answers queries over the union. Two merges are provided:
//!
//! * [`merge_misra_gries`] — the classical *biased* merge of Agarwal et al. (2013):
//!   sum the per-item counts and soft-threshold by the `(m+1)`-th largest. Preserves
//!   the deterministic error guarantee but biases all counts downward, so repeated
//!   merging accumulates bias in subset sums.
//! * [`merge_unbiased`] — the paper's *unbiased* merge: sum the per-item counts, then
//!   apply the PPS subsampling reduction of [`crate::reduction::pps_reduce`], which
//!   preserves the expected count of every item (Theorem 2). The price is that the
//!   merged sketch may recover slightly fewer of the very top items than the biased
//!   merge (Figure 1 of the paper) and that counters become real-valued, so the result
//!   is a [`WeightedSpaceSaving`].

use rand::Rng;

use crate::reduction::{combine_entries, pps_reduce, threshold_reduce};
use crate::space_saving::{DeterministicSpaceSaving, UnbiasedSpaceSaving, WeightedSpaceSaving};
use crate::traits::{MergeableSketch, StreamSketch};

/// Salt XOR-ed into a base seed to derive the RNG stream driving an unbiased
/// PPS fold ([`fold_unbiased`] / [`fold_unbiased_multiway`]) at its call sites.
/// Every `*_SALT` constant in the workspace must be pairwise distinct so no two
/// derived RNG streams can collide for the same base seed (enforced by
/// `uss-lint` rule R3).
pub const FOLD_MERGE_SALT: u64 = 0xD15C0;

/// Salt XOR-ed into a base seed to derive the folded *output* sketch's own RNG
/// seed — distinct from [`FOLD_MERGE_SALT`] so the fold's subsampling draws and
/// the output sketch's future eviction draws come from unrelated streams.
pub const FOLD_OUT_SALT: u64 = 0xFEED;

/// Biased Misra-Gries style merge of two entry lists down to `capacity` entries.
/// Returns the soft-thresholded entries (estimates in the *Misra-Gries* convention,
/// i.e. lower bounds).
#[must_use]
pub fn merge_misra_gries(
    a: &[(u64, f64)],
    b: &[(u64, f64)],
    capacity: usize,
) -> Vec<(u64, f64)> {
    let mut combined = combine_entries(a, b);
    threshold_reduce(&mut combined, capacity);
    combined
}

/// Unbiased merge of two entry lists down to `capacity` entries via PPS subsampling.
#[must_use]
pub fn merge_unbiased_entries<R: Rng + ?Sized>(
    a: &[(u64, f64)],
    b: &[(u64, f64)],
    capacity: usize,
    rng: &mut R,
) -> Vec<(u64, f64)> {
    let combined = combine_entries(a, b);
    pps_reduce(combined, capacity, rng)
}

/// Folds any number of `(entries, rows)` partitions into one weighted sketch with
/// the unbiased PPS merge, in input order: the accumulator starts empty and each
/// partition is merged in with [`merge_unbiased_entries`], all sampling driven by a
/// single RNG seeded from `merge_seed`. `out_seed` seeds the result sketch's own
/// RNG. Deterministic given the seeds and the partition order — this is the one
/// fold primitive behind engine snapshots ([`crate::engine::ShardedIngestEngine`]),
/// temporal range queries and tier compaction
/// ([`crate::temporal::WindowedSketchStore`]), and the map-reduce wrapper
/// ([`crate::distributed::DistributedSketcher`]).
#[must_use]
pub fn fold_unbiased<I>(
    capacity: usize,
    merge_seed: u64,
    out_seed: u64,
    parts: I,
) -> WeightedSpaceSaving
where
    I: IntoIterator<Item = (Vec<(u64, f64)>, u64)>,
{
    let mut rng = rand::rngs::StdRng::seed_from_u64(merge_seed);
    let mut acc_entries: Vec<(u64, f64)> = Vec::new();
    let mut acc_rows: u64 = 0;
    for (entries, rows) in parts {
        acc_entries = merge_unbiased_entries(&acc_entries, &entries, capacity, &mut rng);
        acc_rows += rows;
    }
    let mut out = WeightedSpaceSaving::with_seed(capacity, out_seed);
    out.load_entries(acc_entries, acc_rows as f64);
    out
}

/// Folds any number of `(entries, rows)` partitions into one weighted sketch by
/// summing every per-item count exactly and applying a **single** PPS
/// subsampling reduction — the k-way counterpart of [`fold_unbiased`].
///
/// The sequential fold reduces after every partition, so a k-part fold pays
/// k−1 sort-and-sample passes; this fold pays exactly one, over the combined
/// entry list. Unbiasedness is immediate: the combine step is exact, and the
/// one reduction preserves `E[post count] = pre count` for every item (Theorem
/// 2 applied once), so the result estimates the same totals as the sequential
/// fold — with one fewer layer of sampling noise, never more. This is the
/// node-combine entry point used by the temporal dyadic range-merge ladder
/// ([`crate::temporal`]): the pre-merged nodes selected for a range are
/// combined here under the engine's salted snapshot-seed sequence.
///
/// For a single partition that already fits `capacity` the result is
/// bit-identical to [`fold_unbiased`] (both rebuild the entry list through the
/// same hash-combine and skip the reduction).
#[must_use]
pub fn fold_unbiased_multiway<I>(
    capacity: usize,
    merge_seed: u64,
    out_seed: u64,
    parts: I,
) -> WeightedSpaceSaving
where
    I: IntoIterator<Item = (Vec<(u64, f64)>, u64)>,
{
    let mut rng = rand::rngs::StdRng::seed_from_u64(merge_seed);
    let mut combined: crate::hash::FxHashMap<u64, f64> = crate::hash::FxHashMap::default();
    let mut acc_rows: u64 = 0;
    for (entries, rows) in parts {
        for (item, count) in entries {
            *combined.entry(item).or_insert(0.0) += count;
        }
        acc_rows += rows;
    }
    let reduced = pps_reduce(combined.into_iter().collect(), capacity, &mut rng);
    let mut out = WeightedSpaceSaving::with_seed(capacity, out_seed);
    out.load_entries(reduced, acc_rows as f64);
    out
}

/// Merges two Unbiased Space Saving sketches into a weighted sketch over the union of
/// their streams, preserving unbiasedness of every per-item count.
///
/// The output capacity is the larger of the two input capacities.
#[must_use]
pub fn merge_unbiased(
    a: &UnbiasedSpaceSaving,
    b: &UnbiasedSpaceSaving,
    seed: u64,
) -> WeightedSpaceSaving {
    let capacity = a.capacity().max(b.capacity());
    let mut out = WeightedSpaceSaving::with_seed(capacity, seed);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let entries = merge_unbiased_entries(&a.entries(), &b.entries(), capacity, &mut rng);
    let rows = (a.rows_processed() + b.rows_processed()) as f64;
    out.load_entries(entries, rows);
    out
}

/// Merges two Deterministic Space Saving sketches with the biased Misra-Gries merge,
/// returning the merged entries in the *Space Saving* convention (threshold added back
/// onto every surviving counter, matching the isomorphism of section 5.2).
#[must_use]
pub fn merge_deterministic(
    a: &DeterministicSpaceSaving,
    b: &DeterministicSpaceSaving,
) -> Vec<(u64, f64)> {
    let capacity = a.capacity().max(b.capacity());
    let mut combined = combine_entries(&a.entries(), &b.entries());
    let threshold = threshold_reduce(&mut combined, capacity);
    // Space Saving convention: estimates include the mass that was thresholded away.
    for (_, c) in &mut combined {
        *c += threshold;
    }
    combined
}

use rand::SeedableRng;

impl MergeableSketch for WeightedSpaceSaving {
    /// Merges `other` into `self` using the unbiased PPS reduction; `self`'s capacity
    /// and internal random state are reused.
    fn merge_from(&mut self, other: &Self) {
        let capacity = self.capacity();
        let combined = combine_entries(&self.entries(), &other.entries());
        // Deterministically derive a reduction seed from the two sketches' masses so
        // merge_from stays reproducible for seeded sketches.
        let seed = (self.total_weight().to_bits()) ^ other.total_weight().to_bits().rotate_left(17);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let reduced = pps_reduce(combined, capacity, &mut rng);
        let rows = self.total_weight() + other.total_weight();
        self.load_entries(reduced, rows);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::StreamSketch;

    fn sketch_from(stream: &[u64], capacity: usize, seed: u64) -> UnbiasedSpaceSaving {
        let mut s = UnbiasedSpaceSaving::with_seed(capacity, seed);
        for &item in stream {
            s.offer(item);
        }
        s
    }

    #[test]
    fn misra_gries_merge_bounds_size() {
        let a: Vec<(u64, f64)> = (0..20).map(|i| (i, (i + 1) as f64)).collect();
        let b: Vec<(u64, f64)> = (10..30).map(|i| (i, 2.0)).collect();
        let merged = merge_misra_gries(&a, &b, 8);
        assert!(merged.len() <= 8);
    }

    #[test]
    fn misra_gries_merge_never_overestimates() {
        let a = vec![(1, 10.0), (2, 6.0), (3, 2.0)];
        let b = vec![(1, 5.0), (4, 7.0), (5, 1.0)];
        let merged = merge_misra_gries(&a, &b, 3);
        for (item, count) in merged {
            let truth: f64 = a
                .iter()
                .chain(&b)
                .filter(|(i, _)| *i == item)
                .map(|(_, c)| c)
                .sum();
            assert!(count <= truth + 1e-12, "item {item}: {count} > {truth}");
        }
    }

    #[test]
    fn unbiased_merge_keeps_capacity_and_total_mass_in_expectation() {
        let stream_a: Vec<u64> = (0..2000u64).map(|i| i % 111).collect();
        let stream_b: Vec<u64> = (0..3000u64).map(|i| 50 + i % 200).collect();
        let total = (stream_a.len() + stream_b.len()) as f64;
        let reps = 300;
        let mut mass = 0.0;
        for seed in 0..reps {
            let a = sketch_from(&stream_a, 40, seed);
            let b = sketch_from(&stream_b, 40, seed + 1000);
            let merged = merge_unbiased(&a, &b, seed);
            assert!(merged.retained_len() <= 40);
            mass += merged.entries().iter().map(|(_, c)| c).sum::<f64>();
        }
        let mean = mass / reps as f64;
        assert!(
            (mean - total).abs() / total < 0.02,
            "mean merged mass {mean} vs {total}"
        );
    }

    #[test]
    fn unbiased_merge_item_estimates_are_unbiased() {
        // Item 7 appears 150 times in stream A only; the merged estimate must average
        // to ~150 even though both sketches are lossy.
        let mut stream_a: Vec<u64> = (0..1500u64).map(|i| 100 + i % 97).collect();
        stream_a.extend(std::iter::repeat_n(7u64, 150));
        let stream_b: Vec<u64> = (0..1500u64).map(|i| 300 + i % 83).collect();
        let truth = 150.0;
        let reps = 600;
        let mut sum = 0.0;
        for seed in 0..reps {
            let a = sketch_from(&stream_a, 30, seed);
            let b = sketch_from(&stream_b, 30, seed + 5000);
            let merged = merge_unbiased(&a, &b, seed);
            sum += merged.estimate(7);
        }
        let mean = sum / reps as f64;
        assert!(
            (mean - truth).abs() / truth < 0.12,
            "mean merged estimate {mean} vs {truth}"
        );
    }

    #[test]
    fn deterministic_merge_restores_space_saving_convention() {
        let mut a = DeterministicSpaceSaving::new(4);
        let mut b = DeterministicSpaceSaving::new(4);
        for item in [1u64, 1, 1, 2, 2, 3] {
            a.offer(item);
        }
        for item in [1u64, 4, 4, 5, 6, 6] {
            b.offer(item);
        }
        let merged = merge_deterministic(&a, &b);
        assert!(merged.len() <= 4);
        // Item 1 is the heaviest overall and must be present with an estimate at least
        // its true combined count.
        let one = merged.iter().find(|(i, _)| *i == 1).expect("item 1 kept");
        assert!(one.1 >= 4.0);
    }

    #[test]
    fn merge_from_accumulates_mass() {
        let mut a = WeightedSpaceSaving::with_seed(20, 1);
        let mut b = WeightedSpaceSaving::with_seed(20, 2);
        for i in 0..500u64 {
            a.offer(i % 60);
            b.offer(i % 35);
        }
        let total = a.total_weight() + b.total_weight();
        a.merge_from(&b);
        assert!(a.retained_len() <= 20);
        // Mass is preserved in expectation; for a single merge allow a loose band.
        let mass: f64 = a.entries().iter().map(|(_, c)| c).sum();
        assert!(mass > 0.5 * total && mass < 1.5 * total);
        // The row/weight accounting reflects the union of the two input streams.
        assert!((a.total_weight() - total).abs() < 1e-6);
    }

    #[test]
    fn multiway_fold_conserves_rows_and_mass_exactly() {
        // PPS reduction conserves total mass exactly (certainty items keep their
        // weight; the tail items each carry τ), so the multiway fold must too.
        let parts: Vec<(Vec<(u64, f64)>, u64)> = (0..6u64)
            .map(|p| {
                let entries: Vec<(u64, f64)> = (0..300u64)
                    .map(|i| (p * 10_000 + i, 1.0 + (i % 7) as f64))
                    .collect();
                let rows = entries.iter().map(|&(_, c)| c).sum::<f64>() as u64;
                (entries, rows)
            })
            .collect();
        let total_mass: f64 = parts
            .iter()
            .flat_map(|(e, _)| e.iter().map(|&(_, c)| c))
            .sum();
        let total_rows: u64 = parts.iter().map(|&(_, r)| r).sum();
        for seed in 0..20u64 {
            let out = fold_unbiased_multiway(64, seed, seed ^ 99, parts.iter().cloned());
            let mass: f64 = out.entries().iter().map(|(_, c)| c).sum();
            assert!(
                (mass - total_mass).abs() < 1e-6 * total_mass,
                "seed {seed}: mass {mass} vs {total_mass}"
            );
            assert_eq!(out.rows_processed(), total_rows);
            assert!(out.retained_len() <= 64);
        }
    }

    #[test]
    fn multiway_fold_is_unbiased_per_item() {
        // Item 7 carries 120 across two partitions; the reduced estimate must average
        // back to 120 over seeds.
        let mut part_a: Vec<(u64, f64)> = (0..400u64).map(|i| (100 + i, 1.0)).collect();
        part_a.push((7, 80.0));
        let mut part_b: Vec<(u64, f64)> = (0..400u64).map(|i| (1000 + i, 1.0)).collect();
        part_b.push((7, 40.0));
        let part_c: Vec<(u64, f64)> = (0..400u64).map(|i| (2000 + i, 1.0)).collect();
        let parts = [(part_a, 480u64), (part_b, 440), (part_c, 400)];
        let reps = 400u64;
        let mut sum = 0.0;
        for seed in 0..reps {
            let out = fold_unbiased_multiway(48, seed, seed ^ 5, parts.iter().cloned());
            sum += out.estimate(7);
        }
        let mean = sum / reps as f64;
        assert!(
            (mean - 120.0).abs() / 120.0 < 0.1,
            "mean multiway estimate {mean} vs 120"
        );
    }

    #[test]
    fn multiway_fold_of_one_small_part_matches_sequential_fold_bitwise() {
        // A single partition under capacity skips the reduction in both folds and is
        // rebuilt through the same hash-combine, so the outputs are bit-identical.
        let entries: Vec<(u64, f64)> = (0..50u64).map(|i| (i * 31, (i + 1) as f64)).collect();
        let part = [(entries, 725u64)];
        let a = fold_unbiased(64, 11, 13, part.iter().cloned());
        let b = fold_unbiased_multiway(64, 11, 13, part.iter().cloned());
        assert_eq!(a.entries(), b.entries());
        assert_eq!(a.rows_processed(), b.rows_processed());
    }

    #[test]
    fn multiway_fold_of_nothing_is_a_well_formed_empty_sketch() {
        let out = fold_unbiased_multiway(16, 1, 2, std::iter::empty());
        assert_eq!(out.retained_len(), 0);
        assert_eq!(out.rows_processed(), 0);
        assert_eq!(out.total_weight(), 0.0);
    }

    #[test]
    fn merging_empty_sketches_is_harmless() {
        let a = UnbiasedSpaceSaving::with_seed(8, 1);
        let b = UnbiasedSpaceSaving::with_seed(8, 2);
        let merged = merge_unbiased(&a, &b, 3);
        assert_eq!(merged.retained_len(), 0);
        assert_eq!(merged.rows_processed(), 0);
    }
}
