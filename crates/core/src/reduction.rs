//! Reduction operations (section 5.3 of the paper).
//!
//! Every frequent-item sketch fits Algorithm 2: increment the new row's counter
//! exactly, then apply a *reduction* that keeps the number of counters bounded.
//! Deterministic Space Saving, Misra-Gries, and Lossy Counting all use (adaptive or
//! scheduled) thresholding reductions, which bias counts downward (or upward, after
//! adding the threshold back). Unbiased Space Saving replaces the thresholding by a
//! *subsampling* reduction whose expectation preserves the counts (Theorem 2), which
//! is what makes the sketch usable for subset sums.
//!
//! This module implements the two reductions as standalone operations on
//! `(item, count)` entry lists so they can be reused by merge operations and studied
//! in isolation by the ablation benchmarks:
//!
//! * [`threshold_reduce`] — the biased Misra-Gries merge reduction: soft-threshold all
//!   counts by the `(target+1)`-th largest so at most `target` survive.
//! * [`pps_reduce`] — the unbiased reduction: a fixed-size PPS subsample of the bins
//!   where surviving tail bins are Horvitz-Thompson adjusted to the threshold `τ`.

use rand::Rng;
use uss_sampling::{pps_inclusion_probabilities, SplittingSampler};

/// Soft-thresholds `entries` so that at most `target` survive, exactly as the
/// Misra-Gries merge of Agarwal et al. (2013): subtract the `(target+1)`-th largest
/// count from every count and drop non-positive results. Returns the threshold that
/// was subtracted (0 when no reduction was necessary).
///
/// This reduction is *biased*: after it, every surviving count underestimates the
/// pre-reduction count by the threshold.
pub fn threshold_reduce(entries: &mut Vec<(u64, f64)>, target: usize) -> f64 {
    if entries.len() <= target {
        return 0.0;
    }
    if target == 0 {
        entries.clear();
        return f64::INFINITY;
    }
    let mut counts: Vec<f64> = entries.iter().map(|(_, c)| *c).collect();
    // The (target+1)-th largest count is the threshold. `total_cmp` matches
    // `partial_cmp` on the finite counts and sorts without a branchy unwrap; only the
    // sorted *values* are consumed, so an unstable sort yields the same threshold.
    counts.sort_unstable_by(|a, b| b.total_cmp(a));
    let threshold = counts[target];
    entries.retain_mut(|(_, c)| {
        *c -= threshold;
        *c > 0.0
    });
    debug_assert!(entries.len() <= target);
    threshold
}

/// Unbiased PPS reduction: keeps at most `target` entries whose expected counts equal
/// the input counts.
///
/// The thresholded PPS design with expected size `target` is computed over the counts;
/// entries with count at least the threshold `τ` are kept verbatim, the remaining
/// entries are selected by the Deville–Tillé splitting procedure with probability
/// `count/τ` and, if selected, have their count raised to `τ` (the Horvitz-Thompson
/// adjustment). The output therefore satisfies
/// `E[post-reduction count_i] = pre-reduction count_i` for every item — the condition
/// of Theorem 2 — while the total mass is preserved in expectation as well.
pub fn pps_reduce<R: Rng + ?Sized>(
    entries: Vec<(u64, f64)>,
    target: usize,
    rng: &mut R,
) -> Vec<(u64, f64)> {
    if entries.len() <= target {
        return entries;
    }
    if target == 0 {
        return Vec::new();
    }
    let counts: Vec<f64> = entries.iter().map(|(_, c)| *c).collect();
    let design = pps_inclusion_probabilities(&counts, target);
    let included = SplittingSampler::new().sample(&design.inclusion_probabilities, rng);
    let tau = design.threshold;
    entries
        .into_iter()
        .zip(included)
        .filter_map(|((item, count), keep)| {
            if !keep {
                return None;
            }
            if count >= tau {
                Some((item, count))
            } else {
                Some((item, tau))
            }
        })
        .collect()
}

/// Sums per-item counts of two entry lists (the "exact increment" half of a merge).
#[must_use]
pub fn combine_entries(a: &[(u64, f64)], b: &[(u64, f64)]) -> Vec<(u64, f64)> {
    let mut combined: crate::hash::FxHashMap<u64, f64> = crate::hash::FxHashMap::default();
    for &(item, count) in a.iter().chain(b) {
        *combined.entry(item).or_insert(0.0) += count;
    }
    combined.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn threshold_reduce_noop_when_small() {
        let mut entries = vec![(1, 5.0), (2, 3.0)];
        let t = threshold_reduce(&mut entries, 4);
        assert_eq!(t, 0.0);
        assert_eq!(entries.len(), 2);
    }

    #[test]
    fn threshold_reduce_keeps_target_largest() {
        let mut entries = vec![(1, 10.0), (2, 7.0), (3, 4.0), (4, 2.0), (5, 1.0)];
        let t = threshold_reduce(&mut entries, 2);
        assert_eq!(t, 4.0);
        entries.sort_by_key(|e| e.0);
        assert_eq!(entries, vec![(1, 6.0), (2, 3.0)]);
    }

    #[test]
    fn threshold_reduce_to_zero_clears() {
        let mut entries = vec![(1, 10.0), (2, 7.0)];
        threshold_reduce(&mut entries, 0);
        assert!(entries.is_empty());
    }

    #[test]
    fn threshold_reduce_handles_ties() {
        let mut entries = vec![(1, 5.0), (2, 5.0), (3, 5.0)];
        let t = threshold_reduce(&mut entries, 2);
        assert_eq!(t, 5.0);
        assert!(entries.is_empty(), "all counts tie with the threshold and vanish");
    }

    #[test]
    fn pps_reduce_noop_when_small() {
        let mut rng = StdRng::seed_from_u64(1);
        let entries = vec![(1, 5.0), (2, 3.0)];
        let out = pps_reduce(entries.clone(), 4, &mut rng);
        assert_eq!(out, entries);
    }

    #[test]
    fn pps_reduce_respects_target_size() {
        let mut rng = StdRng::seed_from_u64(2);
        let entries: Vec<(u64, f64)> = (0..50).map(|i| (i, (i % 11 + 1) as f64)).collect();
        for _ in 0..100 {
            let out = pps_reduce(entries.clone(), 10, &mut rng);
            assert!(out.len() <= 10);
            // The design's expected size is exactly 10, and the splitting sampler
            // realises a fixed size when the mass is integral, so we usually get 10.
            assert!(out.len() >= 9);
        }
    }

    #[test]
    fn pps_reduce_keeps_heavy_items_verbatim() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut entries: Vec<(u64, f64)> = (0..40).map(|i| (i, 1.0)).collect();
        entries.push((1000, 500.0));
        for _ in 0..50 {
            let out = pps_reduce(entries.clone(), 5, &mut rng);
            let big = out.iter().find(|(i, _)| *i == 1000).expect("heavy item kept");
            assert_eq!(big.1, 500.0);
        }
    }

    #[test]
    fn pps_reduce_is_unbiased_per_item() {
        // Expected post-reduction count equals the input count for a tail item.
        let entries: Vec<(u64, f64)> = (0..30).map(|i| (i, ((i % 5) + 1) as f64)).collect();
        let target = 8;
        let reps = 40_000;
        let mut rng = StdRng::seed_from_u64(4);
        let probe = 3u64; // count 4
        let truth = 4.0;
        let mut sum = 0.0;
        for _ in 0..reps {
            let out = pps_reduce(entries.clone(), target, &mut rng);
            sum += out
                .iter()
                .find(|(i, _)| *i == probe)
                .map_or(0.0, |(_, c)| *c);
        }
        let mean = sum / reps as f64;
        assert!((mean - truth).abs() < 0.1, "mean {mean} vs {truth}");
    }

    #[test]
    fn pps_reduce_preserves_total_mass_in_expectation() {
        let entries: Vec<(u64, f64)> = (0..25).map(|i| (i, (i + 1) as f64)).collect();
        let truth: f64 = entries.iter().map(|(_, c)| c).sum();
        let reps = 20_000;
        let mut rng = StdRng::seed_from_u64(5);
        let mut sum = 0.0;
        for _ in 0..reps {
            let out = pps_reduce(entries.clone(), 6, &mut rng);
            sum += out.iter().map(|(_, c)| c).sum::<f64>();
        }
        let mean = sum / reps as f64;
        assert!((mean - truth).abs() / truth < 0.02, "mean {mean} vs {truth}");
    }

    #[test]
    fn combine_entries_sums_shared_items() {
        let a = vec![(1, 2.0), (2, 3.0)];
        let b = vec![(2, 4.0), (3, 5.0)];
        let mut combined = combine_entries(&a, &b);
        combined.sort_by_key(|e| e.0);
        assert_eq!(combined, vec![(1, 2.0), (2, 7.0), (3, 5.0)]);
    }

    #[test]
    fn combine_entries_with_empty() {
        let a = vec![(1, 2.0)];
        assert_eq!(combine_entries(&a, &[]), vec![(1, 2.0)]);
        assert!(combine_entries(&[], &[]).is_empty());
    }
}
