//! Lock-free, dependency-free runtime metrics: cache-padded atomic
//! [`Counter`]s and [`Gauge`]s, a fixed-bucket log₂-scale [`Histogram`], and
//! the aggregate structs the engines thread through their hot paths.
//!
//! Design constraints, in order:
//!
//! 1. **Wait-free on the hot path.** Every `record`/`inc` is a single
//!    `Relaxed` atomic RMW on a cache-padded line; the ingest fast path
//!    (`try_push` success, `ShardWorker::apply`) pays at most one counter add
//!    *per block* (254 rows), never per row. Slow paths (ring full, parks,
//!    rotations, compactions) carry the per-event counters.
//! 2. **Deterministic core.** `uss-core` never reads a wall clock (uss-lint
//!    rule R5); durations enter only through the [`Clock`] trait, whose real
//!    implementation lives in `uss-server` and the benches. Core ships the
//!    deterministic [`ManualClock`] for tests.
//! 3. **One sample builder.** The wire `Stats` snapshot and the Prometheus
//!    text exposition both render from the same `collect` output, so the two
//!    surfaces agree by construction.
//!
//! # Metric families
//!
//! Core families (all labeled at the server with `stream`; per-shard families
//! additionally with `shard`):
//!
//! | name | type | labels | meaning |
//! |------|------|--------|---------|
//! | `uss_ingest_rows_total` | counter | stream, shard | rows applied by the shard worker (post-quiesce exact) |
//! | `uss_ingest_blocks_total` | counter | stream, shard | row blocks applied by the shard worker |
//! | `uss_ring_full_total` | counter | stream, shard | `try_push` attempts that found the SPSC ring full |
//! | `uss_ring_producer_parks_total` | counter | stream, shard | producer parks while waiting for ring space |
//! | `uss_ring_consumer_wakes_total` | counter | stream, shard | consumer unparks actually performed by producers |
//! | `uss_ring_occupancy_high_water` | gauge | stream, shard | max observed blocks queued in any of the shard's rings |
//! | `uss_sketch_memory_bytes` | gauge | stream, shard | high-water resident bytes of the shard's sketch |
//! | `uss_checkpoint_bytes_total` | counter | stream | bytes durably written by checkpoints (shards + manifest) |
//! | `uss_checkpoint_frames_total` | counter | stream | checkpoint files durably written |
//! | `uss_checkpoint_failures_total` | counter | stream | per-shard checkpoint write failures |
//! | `uss_temporal_rotations_total` | counter | stream | fine-ring rotations (new fine bucket opened) |
//! | `uss_temporal_tier_compactions_total` | counter | stream | tier merges triggered by a full tier |
//! | `uss_temporal_late_rows_total` | counter | stream | rows clamped into an older open bucket |
//! | `uss_ladder_nodes_built_total` | counter | stream | dyadic ladder nodes materialised (idle or query) |
//! | `uss_ladder_nodes_invalidated_total` | counter | stream | ladder nodes dropped by late rows or rotation |
//! | `uss_ladder_repaired_at_query_total` | counter | stream | ladder nodes built on the query path (missed idle repair) |
//! | `uss_range_cache_hits_total` | counter | stream | merged-range cache hits |
//! | `uss_range_cache_misses_total` | counter | stream | merged-range cache misses (fold performed) |
//!
//! The server adds its own families (connection lifecycle, per-kind request
//! counters and latency histograms, error frames by code); see
//! `uss-server`'s `server` module docs.
//!
//! # Example
//!
//! ```
//! use uss_core::metrics::{Counter, Histogram};
//!
//! static ROWS: Counter = Counter::new();
//! ROWS.add(254);
//! assert_eq!(ROWS.get(), 254);
//!
//! let latency = Histogram::new();
//! latency.record(900); // nanoseconds, externally measured
//! latency.record(1_100);
//! let snap = latency.snapshot();
//! assert_eq!(snap.count, 2);
//! assert_eq!(snap.sum, 2_000);
//! assert!(snap.quantile(0.5) >= 900);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing event count. Cache-line aligned so adjacent
/// counters in an aggregate struct never false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter, usable in `static` position.
    #[must_use]
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds one. Relaxed: counters are statistics, not synchronisation.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    #[inline]
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write or high-water value. Same layout discipline as [`Counter`].
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge, usable in `static` position.
    #[must_use]
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if `v` is larger (high-water semantics).
    #[inline]
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one per possible `u64` bit width (0..=63,
/// with the last bucket absorbing widths 64).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A fixed-bucket log₂-scale histogram of `u64` values (nanoseconds, by
/// convention). Bucket `i` counts values of bit width `i` — i.e. values in
/// `[2^(i-1), 2^i - 1]`, with bucket 0 holding zeros and the last bucket
/// absorbing everything of width ≥ 63. `record` is a wait-free pair of
/// Relaxed adds; p50/p90/p99 are derived from the buckets at read time.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    /// Sum of all recorded values (for mean / Prometheus `_sum`).
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram, usable in `static` position.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            sum: AtomicU64::new(0),
        }
    }

    /// Bucket index for a value: its bit width, clamped to the last bucket.
    #[inline]
    #[must_use]
    pub fn bucket_index(v: u64) -> usize {
        let width = (u64::BITS - v.leading_zeros()) as usize;
        width.min(HISTOGRAM_BUCKETS - 1)
    }

    /// Inclusive upper bound of a bucket's value range.
    #[inline]
    #[must_use]
    pub fn bucket_upper_bound(index: usize) -> u64 {
        if index >= HISTOGRAM_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    /// Records one value. Wait-free; two Relaxed atomic adds.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// A point-in-time copy of the non-empty buckets plus count and sum.
    ///
    /// Concurrent recorders may land between the bucket reads, so `count`
    /// (the bucket total) and `sum` are each individually consistent but not
    /// guaranteed to describe the identical instant; quiesced readers (the
    /// tests) observe exact values.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                count += n;
                // Bucket indices are 0..64; the cast is lossless.
                #[allow(clippy::cast_possible_truncation)]
                buckets.push((i as u8, n));
            }
        }
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time view of a [`Histogram`]: the non-empty `(bucket index,
/// count)` pairs plus the total count and value sum.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Non-empty buckets as `(bucket index, count)`, index ascending.
    pub buckets: Vec<(u8, u64)>,
    /// Total number of recorded values.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// The value at quantile `p` (0.0..=1.0), reported as the inclusive upper
    /// bound of the bucket containing that rank — an overestimate by at most
    /// 2× (the bucket width). Returns 0 for an empty histogram.
    #[must_use]
    pub fn quantile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // ceil(p * count), clamped to [1, count]: the 1-based rank to find.
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
        #[allow(clippy::cast_sign_loss)]
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(index, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Histogram::bucket_upper_bound(usize::from(index));
            }
        }
        Histogram::bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }
}

/// A monotonic nanosecond time source. `uss-core` itself never reads a wall
/// clock (uss-lint R5 keeps the deterministic crates clock-free); callers
/// that want real durations inject one from a non-deterministic crate —
/// `uss-server` and the benches implement this over the OS monotonic clock.
pub trait Clock: Send + Sync {
    /// Nanoseconds elapsed since an arbitrary fixed origin.
    fn now_nanos(&self) -> u64;
}

/// A deterministic [`Clock`] driven entirely by the caller: starts at zero
/// and moves only via [`advance`](Self::advance) / [`set`](Self::set).
#[derive(Debug, Default)]
pub struct ManualClock(AtomicU64);

impl ManualClock {
    /// A clock frozen at zero.
    #[must_use]
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Moves the clock forward by `nanos`.
    pub fn advance(&self, nanos: u64) {
        self.0.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Jumps the clock to an absolute reading.
    pub fn set(&self, nanos: u64) {
        self.0.store(nanos, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// What kind of time series a metric family is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing event count.
    Counter,
    /// Last-write or high-water value.
    Gauge,
    /// Log₂-bucketed value distribution.
    Histogram,
}

/// Static description of one metric family: stable snake_case name, help
/// text, kind, and the label names its samples carry.
#[derive(Debug, Clone, Copy)]
pub struct FamilyDesc {
    /// Stable snake_case family name (`uss_` prefix).
    pub name: &'static str,
    /// One-line human description (Prometheus `# HELP`).
    pub help: &'static str,
    /// Counter, gauge, or histogram.
    pub kind: MetricKind,
    /// Label names every sample of this family carries.
    pub labels: &'static [&'static str],
}

/// The metric families produced by `uss-core` engines. The server's
/// exposition endpoint renders `# HELP`/`# TYPE` headers from this table, so
/// a family missing here is a bug `cargo test` catches (see the conservation
/// suite).
pub const CORE_FAMILIES: &[FamilyDesc] = &[
    FamilyDesc {
        name: "uss_ingest_rows_total",
        help: "Rows applied by shard workers (exact at quiesce points).",
        kind: MetricKind::Counter,
        labels: &["stream", "shard"],
    },
    FamilyDesc {
        name: "uss_ingest_blocks_total",
        help: "Row blocks applied by shard workers.",
        kind: MetricKind::Counter,
        labels: &["stream", "shard"],
    },
    FamilyDesc {
        name: "uss_ring_full_total",
        help: "try_push attempts that found an SPSC ring full.",
        kind: MetricKind::Counter,
        labels: &["stream", "shard"],
    },
    FamilyDesc {
        name: "uss_ring_producer_parks_total",
        help: "Producer parks while waiting for ring space.",
        kind: MetricKind::Counter,
        labels: &["stream", "shard"],
    },
    FamilyDesc {
        name: "uss_ring_consumer_wakes_total",
        help: "Consumer unparks performed by producers.",
        kind: MetricKind::Counter,
        labels: &["stream", "shard"],
    },
    FamilyDesc {
        name: "uss_ring_occupancy_high_water",
        help: "Max observed queued blocks across the shard's rings.",
        kind: MetricKind::Gauge,
        labels: &["stream", "shard"],
    },
    FamilyDesc {
        name: "uss_sketch_memory_bytes",
        help: "High-water resident bytes of the shard's sketch.",
        kind: MetricKind::Gauge,
        labels: &["stream", "shard"],
    },
    FamilyDesc {
        name: "uss_checkpoint_bytes_total",
        help: "Bytes durably written by checkpoints.",
        kind: MetricKind::Counter,
        labels: &["stream"],
    },
    FamilyDesc {
        name: "uss_checkpoint_frames_total",
        help: "Checkpoint files durably written.",
        kind: MetricKind::Counter,
        labels: &["stream"],
    },
    FamilyDesc {
        name: "uss_checkpoint_failures_total",
        help: "Per-shard checkpoint write failures.",
        kind: MetricKind::Counter,
        labels: &["stream"],
    },
    FamilyDesc {
        name: "uss_temporal_rotations_total",
        help: "Fine-ring rotations (new fine bucket opened).",
        kind: MetricKind::Counter,
        labels: &["stream"],
    },
    FamilyDesc {
        name: "uss_temporal_tier_compactions_total",
        help: "Tier merges triggered by a full tier.",
        kind: MetricKind::Counter,
        labels: &["stream"],
    },
    FamilyDesc {
        name: "uss_temporal_late_rows_total",
        help: "Rows clamped into an older open bucket.",
        kind: MetricKind::Counter,
        labels: &["stream"],
    },
    FamilyDesc {
        name: "uss_ladder_nodes_built_total",
        help: "Dyadic ladder nodes materialised (idle or query path).",
        kind: MetricKind::Counter,
        labels: &["stream"],
    },
    FamilyDesc {
        name: "uss_ladder_nodes_invalidated_total",
        help: "Ladder nodes dropped by late rows or rotation.",
        kind: MetricKind::Counter,
        labels: &["stream"],
    },
    FamilyDesc {
        name: "uss_ladder_repaired_at_query_total",
        help: "Ladder nodes built on the query path (missed idle repair).",
        kind: MetricKind::Counter,
        labels: &["stream"],
    },
    FamilyDesc {
        name: "uss_range_cache_hits_total",
        help: "Merged-range cache hits.",
        kind: MetricKind::Counter,
        labels: &["stream"],
    },
    FamilyDesc {
        name: "uss_range_cache_misses_total",
        help: "Merged-range cache misses (full fold performed).",
        kind: MetricKind::Counter,
        labels: &["stream"],
    },
];

/// One rendered sample: `name{labels}` plus its value, the unit both the
/// wire `Stats` payload and the text exposition are built from.
pub type Sample = (String, u64);

/// Pushes `family{labels}` (or bare `family` when `labels` is empty) onto
/// `out`.
fn push_sample(out: &mut Vec<Sample>, family: &str, labels: &str, value: u64) {
    if labels.is_empty() {
        out.push((family.to_string(), value));
    } else {
        out.push((format!("{family}{{{labels}}}"), value));
    }
}

/// Per-shard SPSC ring telemetry, shared by every ring a producer handle
/// opens to that shard (via the shard's `ShardLink`).
#[derive(Debug, Default)]
pub struct RingCounters {
    /// `try_push` attempts that found the ring full.
    pub try_push_full: Counter,
    /// Producer parks while waiting for space.
    pub producer_parks: Counter,
    /// Consumer unparks actually performed by producers.
    pub consumer_wakes: Counter,
    /// Max observed queued blocks (sampled on slow paths only).
    pub occupancy_high_water: Gauge,
}

impl RingCounters {
    /// A zeroed set.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            try_push_full: Counter::new(),
            producer_parks: Counter::new(),
            consumer_wakes: Counter::new(),
            occupancy_high_water: Gauge::new(),
        }
    }

    /// Appends this ring's samples, labeled `labels`.
    pub fn collect(&self, labels: &str, out: &mut Vec<Sample>) {
        push_sample(out, "uss_ring_full_total", labels, self.try_push_full.get());
        push_sample(
            out,
            "uss_ring_producer_parks_total",
            labels,
            self.producer_parks.get(),
        );
        push_sample(
            out,
            "uss_ring_consumer_wakes_total",
            labels,
            self.consumer_wakes.get(),
        );
        push_sample(
            out,
            "uss_ring_occupancy_high_water",
            labels,
            self.occupancy_high_water.get(),
        );
    }
}

/// One ingest shard's telemetry: rows/blocks applied by its worker, sketch
/// memory high-water, and the ring counters shared with its producers.
#[derive(Debug, Default)]
pub struct ShardMetrics {
    /// Rows applied by the shard worker (exact at quiesce points).
    pub rows: Counter,
    /// Blocks applied by the shard worker.
    pub blocks: Counter,
    /// High-water resident bytes of the shard's sketch.
    pub sketch_memory: Gauge,
    /// Ring telemetry shared with every producer ring to this shard.
    pub ring: Arc<RingCounters>,
}

impl ShardMetrics {
    /// A zeroed set with a fresh ring-counter block.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends this shard's samples, labeled `labels`.
    pub fn collect(&self, labels: &str, out: &mut Vec<Sample>) {
        push_sample(out, "uss_ingest_rows_total", labels, self.rows.get());
        push_sample(out, "uss_ingest_blocks_total", labels, self.blocks.get());
        push_sample(
            out,
            "uss_sketch_memory_bytes",
            labels,
            self.sketch_memory.get(),
        );
        self.ring.collect(labels, out);
    }
}

/// A sharded engine's full telemetry: one [`ShardMetrics`] per shard plus
/// engine-level checkpoint counters. Shared between the engine, its workers,
/// and every producer handle via `Arc`.
#[derive(Debug, Default)]
pub struct EngineMetrics {
    /// Per-shard telemetry, indexed by shard id.
    pub shards: Vec<Arc<ShardMetrics>>,
    /// Bytes durably written by checkpoints (shards + manifest).
    pub checkpoint_bytes: Counter,
    /// Checkpoint files durably written.
    pub checkpoint_frames: Counter,
    /// Per-shard checkpoint write failures.
    pub checkpoint_failures: Counter,
}

impl EngineMetrics {
    /// A zeroed set sized for `shards` shards.
    #[must_use]
    pub fn with_shards(shards: usize) -> Self {
        Self {
            shards: (0..shards).map(|_| Arc::new(ShardMetrics::new())).collect(),
            checkpoint_bytes: Counter::new(),
            checkpoint_frames: Counter::new(),
            checkpoint_failures: Counter::new(),
        }
    }

    /// Total rows applied across all shards.
    #[must_use]
    pub fn rows_total(&self) -> u64 {
        self.shards.iter().map(|s| s.rows.get()).sum()
    }

    /// Total blocks applied across all shards.
    #[must_use]
    pub fn blocks_total(&self) -> u64 {
        self.shards.iter().map(|s| s.blocks.get()).sum()
    }

    /// Appends every engine sample. `labels` (e.g. `stream="clicks"`, or
    /// empty) prefixes each sample's label set; per-shard samples additionally
    /// carry `shard="<id>"`.
    pub fn collect(&self, labels: &str, out: &mut Vec<Sample>) {
        for (id, shard) in self.shards.iter().enumerate() {
            let shard_labels = if labels.is_empty() {
                format!("shard=\"{id}\"")
            } else {
                format!("{labels},shard=\"{id}\"")
            };
            shard.collect(&shard_labels, out);
        }
        push_sample(
            out,
            "uss_checkpoint_bytes_total",
            labels,
            self.checkpoint_bytes.get(),
        );
        push_sample(
            out,
            "uss_checkpoint_frames_total",
            labels,
            self.checkpoint_frames.get(),
        );
        push_sample(
            out,
            "uss_checkpoint_failures_total",
            labels,
            self.checkpoint_failures.get(),
        );
    }
}

/// Temporal-subsystem telemetry, shared by every shard's
/// `WindowedSketchStore` (the events are engine-wide aggregates).
#[derive(Debug, Default)]
pub struct TemporalMetrics {
    /// Fine-ring rotations (new fine bucket opened).
    pub rotations: Counter,
    /// Tier merges triggered by a full tier.
    pub tier_compactions: Counter,
    /// Rows clamped into an older open bucket.
    pub late_rows: Counter,
    /// Dyadic ladder nodes materialised (idle or query path).
    pub ladder_nodes_built: Counter,
    /// Ladder nodes dropped by late rows or rotation.
    pub ladder_nodes_invalidated: Counter,
    /// Ladder nodes built on the query path (missed idle repair).
    pub ladder_repaired_at_query: Counter,
    /// Merged-range cache hits.
    pub range_cache_hits: Counter,
    /// Merged-range cache misses (full fold performed).
    pub range_cache_misses: Counter,
}

impl TemporalMetrics {
    /// A zeroed set.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            rotations: Counter::new(),
            tier_compactions: Counter::new(),
            late_rows: Counter::new(),
            ladder_nodes_built: Counter::new(),
            ladder_nodes_invalidated: Counter::new(),
            ladder_repaired_at_query: Counter::new(),
            range_cache_hits: Counter::new(),
            range_cache_misses: Counter::new(),
        }
    }

    /// Appends every temporal sample, labeled `labels`.
    pub fn collect(&self, labels: &str, out: &mut Vec<Sample>) {
        push_sample(
            out,
            "uss_temporal_rotations_total",
            labels,
            self.rotations.get(),
        );
        push_sample(
            out,
            "uss_temporal_tier_compactions_total",
            labels,
            self.tier_compactions.get(),
        );
        push_sample(
            out,
            "uss_temporal_late_rows_total",
            labels,
            self.late_rows.get(),
        );
        push_sample(
            out,
            "uss_ladder_nodes_built_total",
            labels,
            self.ladder_nodes_built.get(),
        );
        push_sample(
            out,
            "uss_ladder_nodes_invalidated_total",
            labels,
            self.ladder_nodes_invalidated.get(),
        );
        push_sample(
            out,
            "uss_ladder_repaired_at_query_total",
            labels,
            self.ladder_repaired_at_query.get(),
        );
        push_sample(
            out,
            "uss_range_cache_hits_total",
            labels,
            self.range_cache_hits.get(),
        );
        push_sample(
            out,
            "uss_range_cache_misses_total",
            labels,
            self.range_cache_misses.get(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);

        let g = Gauge::new();
        g.set(7);
        g.record_max(3);
        assert_eq!(g.get(), 7);
        g.record_max(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn counter_is_cache_line_sized() {
        assert_eq!(std::mem::align_of::<Counter>(), 64);
        assert_eq!(std::mem::align_of::<Gauge>(), 64);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 63);
        assert_eq!(Histogram::bucket_upper_bound(0), 0);
        assert_eq!(Histogram::bucket_upper_bound(2), 3);
        assert_eq!(Histogram::bucket_upper_bound(63), u64::MAX);
        // Every value lands in a bucket whose range contains it.
        for v in [0u64, 1, 2, 3, 7, 8, 1_000, u64::MAX / 2, u64::MAX] {
            let i = Histogram::bucket_index(v);
            assert!(v <= Histogram::bucket_upper_bound(i));
            if i > 0 {
                assert!(v > Histogram::bucket_upper_bound(i - 1));
            }
        }
    }

    #[test]
    fn histogram_snapshot_and_quantiles() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(100); // bucket 7, upper bound 127
        }
        for _ in 0..10 {
            h.record(10_000); // bucket 14, upper bound 16383
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.sum, 90 * 100 + 10 * 10_000);
        assert_eq!(snap.buckets, vec![(7, 90), (14, 10)]);
        assert_eq!(snap.quantile(0.5), 127);
        assert_eq!(snap.quantile(0.9), 127);
        assert_eq!(snap.quantile(0.99), 16_383);
        assert_eq!(snap.quantile(1.0), 16_383);
        // Bucket-count conservation: bucket sum equals the record count.
        let bucket_total: u64 = snap.buckets.iter().map(|&(_, n)| n).sum();
        assert_eq!(bucket_total, snap.count);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.quantile(0.99), 0);
    }

    #[test]
    fn manual_clock_is_caller_driven() {
        let clock = ManualClock::new();
        assert_eq!(clock.now_nanos(), 0);
        clock.advance(250);
        assert_eq!(clock.now_nanos(), 250);
        clock.set(1_000);
        assert_eq!(clock.now_nanos(), 1_000);
    }

    #[test]
    fn family_table_is_well_formed() {
        let mut seen = std::collections::HashSet::new();
        for f in CORE_FAMILIES {
            assert!(f.name.starts_with("uss_"), "{} lacks uss_ prefix", f.name);
            assert!(!f.help.is_empty());
            assert!(seen.insert(f.name), "duplicate family {}", f.name);
            if f.kind == MetricKind::Counter {
                assert!(
                    f.name.ends_with("_total"),
                    "counter {} should end in _total",
                    f.name
                );
            }
        }
    }

    #[test]
    fn collect_emits_every_core_family() {
        let engine = EngineMetrics::with_shards(2);
        let temporal = TemporalMetrics::new();
        let mut out = Vec::new();
        engine.collect("stream=\"s\"", &mut out);
        temporal.collect("stream=\"s\"", &mut out);
        for f in CORE_FAMILIES {
            assert!(
                out.iter().any(|(name, _)| {
                    name == f.name || name.starts_with(&format!("{}{{", f.name))
                }),
                "family {} missing from collect output",
                f.name
            );
        }
    }

    #[test]
    fn collect_labels_are_prefixed() {
        let engine = EngineMetrics::with_shards(1);
        engine.shards[0].rows.add(5);
        let mut out = Vec::new();
        engine.collect("stream=\"s\"", &mut out);
        assert!(out
            .iter()
            .any(|(n, v)| n == "uss_ingest_rows_total{stream=\"s\",shard=\"0\"}" && *v == 5));
        // Empty label prefix still yields the shard label.
        let mut bare = Vec::new();
        engine.collect("", &mut bare);
        assert!(bare
            .iter()
            .any(|(n, _)| n == "uss_ingest_rows_total{shard=\"0\"}"));
    }
}
