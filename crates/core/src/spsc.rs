//! Lock-free single-producer/single-consumer block channels for the ingest hot path.
//!
//! The sharded engines move rows from producer handles to worker shards. Before this
//! module they did so through [`std::sync::mpsc::sync_channel`], which takes a mutex
//! and possibly a condvar wait on *every* send and receive, and allocates a fresh
//! `Vec` per batch. This module replaces that hop with the classic lock-free SPSC
//! ring buffer design:
//!
//! * **Fixed-capacity power-of-two ring** ([`ring`]): a [Lamport queue] with a
//!   producer-owned `tail` and a consumer-owned `head` index, both monotonically
//!   increasing and masked into the slot array. Each side caches the other's index
//!   and re-loads it only when the cached value would block, so the steady state is
//!   one uncontended atomic store per operation.
//! * **Cache-line padding**: `head` and `tail` live on separate cache lines
//!   ([`CachePadded`]) so the producer and consumer cores do not false-share.
//! * **Acquire/release ordering** on the index handoffs publishes slot contents; a
//!   [`SeqCst` fence](std::sync::atomic::fence) is taken only around the park/unpark
//!   protocol (see below).
//! * **Park/unpark only on empty/full transitions** ([`Waker`]): the fast path never
//!   touches a mutex. A side that would block publishes its thread handle, sets a
//!   `parked` flag, re-checks the ring, and parks; the opposite side checks the flag
//!   (a single atomic load) after each operation and unparks on the transition. The
//!   flag-set/re-check vs. operation/flag-check pair is the store-buffering litmus,
//!   made safe by `SeqCst` fences on both sides.
//! * **Row blocks, not row vectors** ([`RowBlock`]): the ring carries boxed
//!   fixed-size blocks of rows (cache-line aligned, a whole number of cache lines
//!   long) and every block is *recycled* from consumer back to producer over a second
//!   ring running in the opposite direction ([`BlockSender`]/[`BlockReceiver`]), so
//!   steady-state ingest performs no allocation at all.
//!
//! A worker shard consumes from many rings (one per producer handle), so the
//! consumer-side [`Waker`] is shared: every ring that feeds the worker wakes the same
//! waker, and the worker only parks after re-scanning all of its rings with the flag
//! already set.
//!
//! [Lamport queue]: https://en.wikipedia.org/wiki/Non-blocking_algorithm

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::Thread;

use parking_lot::Mutex;

use crate::metrics::RingCounters;

/// Rows per [`RowBlock`]. Chosen so a block of unit rows (`u64`) is exactly 2 KiB —
/// 32 cache lines — including the length header.
pub const BLOCK_CAP: usize = 254;

/// A fixed-capacity, cache-line-aligned block of rows — the unit the ingest rings
/// carry. Blocks are allocated once and then recycled consumer→producer, so the
/// steady state allocates nothing.
#[repr(C, align(64))]
#[derive(Debug)]
pub struct RowBlock<T: Copy + Default> {
    len: u32,
    rows: [T; BLOCK_CAP],
}

impl<T: Copy + Default> RowBlock<T> {
    /// A fresh, empty, heap-allocated block.
    #[must_use]
    pub fn boxed() -> Box<Self> {
        Box::new(Self {
            len: 0,
            rows: [T::default(); BLOCK_CAP],
        })
    }

    /// Appends a row. Returns `true` when the block is now full. Must not be called
    /// on a full block.
    #[inline]
    pub fn push(&mut self, row: T) -> bool {
        debug_assert!((self.len as usize) < BLOCK_CAP);
        self.rows[self.len as usize] = row;
        self.len += 1;
        self.len as usize == BLOCK_CAP
    }

    /// Number of rows currently in the block.
    #[must_use]
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the block holds no rows.
    #[must_use]
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The filled prefix of the block.
    #[must_use]
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.rows[..self.len as usize]
    }

    /// Empties the block (for reuse after recycling).
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
    }
}

/// One-thread parking slot with a lost-wakeup-free flag protocol.
///
/// The parking side calls [`prepare`](Self::prepare), re-checks its wake condition,
/// and either [`cancel`](Self::cancel)s or [`park`](Self::park)s. The waking side
/// calls [`wake`](Self::wake) after making progress visible. `prepare` and `wake`
/// both issue `SeqCst` fences, so of the pair (parker re-check, waker flag-check) at
/// least one always observes the other side's write — the parker either sees the
/// progress and cancels, or the waker sees the flag and unparks.
#[derive(Debug, Default)]
pub struct Waker {
    parked: AtomicBool,
    thread: Mutex<Option<Thread>>,
}

impl Waker {
    /// A fresh waker with no thread registered.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the current thread and raises the parked flag. Call immediately
    /// before re-checking the wake condition.
    pub fn prepare(&self) {
        *self.thread.lock() = Some(std::thread::current());
        self.parked.store(true, Ordering::SeqCst);
        fence(Ordering::SeqCst);
    }

    /// Lowers the flag without parking (the re-check found work).
    pub fn cancel(&self) {
        self.parked.store(false, Ordering::SeqCst);
    }

    /// Parks the current thread until [`wake`](Self::wake) lowers the flag.
    /// Tolerates spurious unparks.
    pub fn park(&self) {
        while self.parked.load(Ordering::SeqCst) {
            std::thread::park();
        }
    }

    /// Unparks the registered thread if it is (preparing to be) parked. Cheap when
    /// nobody is parked: a single `SeqCst` load. Returns whether this call actually
    /// won the unpark (so callers can count true wake transitions, not no-ops).
    pub fn wake(&self) -> bool {
        fence(Ordering::SeqCst);
        if self.parked.load(Ordering::SeqCst) && self.parked.swap(false, Ordering::SeqCst) {
            let thread = self.thread.lock().take();
            if let Some(thread) = thread {
                thread.unpark();
            }
            return true;
        }
        false
    }
}

/// Pads a value to a cache line so adjacent atomics do not false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct CachePadded<T>(T);

/// State shared by a ring's producer and consumer endpoints.
struct RingShared<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot to pop. Written only by the consumer.
    head: CachePadded<AtomicUsize>,
    /// Next slot to push. Written only by the producer.
    tail: CachePadded<AtomicUsize>,
    producer_closed: AtomicBool,
    consumer_closed: AtomicBool,
    /// Shared with every ring feeding the same consumer; `None` for rings whose
    /// consumer never parks (the recycle direction).
    consumer_waker: Option<Arc<Waker>>,
    /// Parking slot for a producer blocked on a full ring.
    producer_waker: Waker,
    /// Slow-path telemetry (full rings, parks, wakes, occupancy high-water).
    /// Rings made by the plain constructors get a fresh unobserved block;
    /// engine rings share their shard's block.
    counters: Arc<RingCounters>,
}

// SAFETY: a `RingShared<T>` only ever moves between threads wholesale (inside
// the producer/consumer `Arc`), and the `T`s it carries are handed from exactly
// one thread to exactly one other, so `T: Send` is the only requirement.
unsafe impl<T: Send> Send for RingShared<T> {}
// SAFETY: shared access from the two endpoint threads is safe because every
// slot is touched by at most one side at a time: the producer writes only slots
// in `tail..head + capacity` and the consumer reads only slots in `head..tail`,
// with each index published by a release store and read with an acquire load,
// so a slot's ownership transfer happens-before the other side touches it.
// `T: Sync` is *not* required: no `&T` is ever shared across threads.
unsafe impl<T: Send> Sync for RingShared<T> {}

impl<T> Drop for RingShared<T> {
    fn drop(&mut self) {
        let head = *self.head.0.get_mut();
        let tail = *self.tail.0.get_mut();
        for i in head..tail {
            // SAFETY: `&mut self` proves both endpoints are gone, so no thread
            // races this drop. Every slot in `head..tail` was initialised by a
            // producer `write` (tail is only advanced after the slot is
            // written) and never popped (head is only advanced after a slot is
            // read out), so each holds a live `T` exactly once.
            unsafe {
                self.slots[i & self.mask].get_mut().assume_init_drop();
            }
        }
    }
}

/// Error returned by a push onto a ring whose consumer endpoint was dropped. The
/// rejected value is handed back.
#[derive(Debug)]
pub struct Disconnected<T>(pub T);

/// The producing endpoint of a [`ring`]. Dropping it marks the ring closed; the
/// consumer can still drain what was pushed.
pub struct RingProducer<T> {
    shared: Arc<RingShared<T>>,
    cached_head: usize,
    capacity: usize,
}

impl<T> RingProducer<T> {
    /// Pushes without blocking. `Ok(None)` on success, `Ok(Some(v))` when the ring
    /// is full, `Err` when the consumer is gone.
    ///
    /// # Errors
    ///
    /// [`Disconnected`] when the consumer endpoint has been dropped.
    pub fn try_push(&mut self, value: T) -> Result<Option<T>, Disconnected<T>> {
        if self.shared.consumer_closed.load(Ordering::Acquire) {
            return Err(Disconnected(value));
        }
        let tail = self.shared.tail.0.load(Ordering::Relaxed);
        if tail.wrapping_sub(self.cached_head) == self.capacity {
            self.cached_head = self.shared.head.0.load(Ordering::Acquire);
            if tail.wrapping_sub(self.cached_head) == self.capacity {
                // Slow path: the ring is genuinely full — count it and record
                // the (maximal) occupancy. The success path pays nothing.
                self.shared.counters.try_push_full.inc();
                self.shared
                    .counters
                    .occupancy_high_water
                    .record_max(self.capacity as u64);
                return Ok(Some(value));
            }
        }
        // SAFETY: the check above established `tail - head < capacity` (re-read
        // with an acquire load on the slow path), so the slot at `tail` is not
        // in the consumer's readable window `head..tail` and holds no live `T`.
        // This is the only thread writing slots (single producer), and the
        // consumer will not read this slot until the release store of `tail + 1`
        // below publishes the write.
        unsafe {
            (*self.shared.slots[tail & self.shared.mask].get()).write(value);
        }
        self.shared.tail.0.store(tail.wrapping_add(1), Ordering::Release);
        if let Some(waker) = &self.shared.consumer_waker {
            if waker.wake() {
                self.shared.counters.consumer_wakes.inc();
            }
        }
        Ok(())
        .map(|()| None)
    }

    /// Pushes, parking this thread while the ring is full.
    ///
    /// # Errors
    ///
    /// [`Disconnected`] when the consumer endpoint has been dropped.
    pub fn push(&mut self, value: T) -> Result<(), Disconnected<T>> {
        let mut value = value;
        loop {
            match self.try_push(value)? {
                None => return Ok(()),
                Some(rejected) => {
                    value = rejected;
                    self.shared.producer_waker.prepare();
                    // Re-check under the raised flag: the consumer may have popped
                    // (or closed) between the failed push and `prepare`.
                    self.cached_head = self.shared.head.0.load(Ordering::SeqCst);
                    let tail = self.shared.tail.0.load(Ordering::Relaxed);
                    if tail.wrapping_sub(self.cached_head) < self.capacity
                        || self.shared.consumer_closed.load(Ordering::SeqCst)
                    {
                        self.shared.producer_waker.cancel();
                        continue;
                    }
                    self.shared.counters.producer_parks.inc();
                    self.shared.producer_waker.park();
                }
            }
        }
    }
}

impl<T> Drop for RingProducer<T> {
    fn drop(&mut self) {
        self.shared.producer_closed.store(true, Ordering::Release);
        if let Some(waker) = &self.shared.consumer_waker {
            waker.wake();
        }
    }
}

impl<T> std::fmt::Debug for RingProducer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingProducer").field("capacity", &self.capacity).finish()
    }
}

/// The consuming endpoint of a [`ring`].
pub struct RingConsumer<T> {
    shared: Arc<RingShared<T>>,
    cached_tail: usize,
}

impl<T> RingConsumer<T> {
    /// Pops the oldest value, or `None` when the ring is currently empty.
    pub fn pop(&mut self) -> Option<T> {
        let head = self.shared.head.0.load(Ordering::Relaxed);
        if head == self.cached_tail {
            self.cached_tail = self.shared.tail.0.load(Ordering::Acquire);
            if head == self.cached_tail {
                return None;
            }
            // Once per refill, not per pop: record how deep the queue got.
            self.shared
                .counters
                .occupancy_high_water
                .record_max(self.cached_tail.wrapping_sub(head) as u64);
        }
        // SAFETY: the check above established `head < tail` (tail re-read with
        // an acquire load), so the producer's release store of `tail` — and
        // therefore its initialising write of this slot — happens-before this
        // read. This is the only thread reading slots (single consumer), and
        // the producer will not overwrite the slot until the release store of
        // `head + 1` below returns it to the writable window.
        let value = unsafe { (*self.shared.slots[head & self.shared.mask].get()).assume_init_read() };
        self.shared.head.0.store(head.wrapping_add(1), Ordering::Release);
        self.shared.producer_waker.wake();
        Some(value)
    }

    /// Whether the ring is currently empty (the producer may push concurrently).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shared.head.0.load(Ordering::Relaxed) == self.shared.tail.0.load(Ordering::Acquire)
    }

    /// Number of values queued right now. The producer may push concurrently, so
    /// this is a momentary lower bound — but every one of the counted values is
    /// already published and a subsequent `pop` run of this length cannot fail.
    /// This is the engines' quiesce cut: "drain what was pushed before this call".
    #[must_use]
    pub fn len(&self) -> usize {
        let head = self.shared.head.0.load(Ordering::Relaxed);
        let tail = self.shared.tail.0.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }

    /// Whether the producer endpoint is gone *and* everything it pushed has been
    /// popped — the ring will never yield another value.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        // Order matters: check closure before emptiness, so a push that races the
        // producer's close is never missed.
        self.shared.producer_closed.load(Ordering::Acquire) && self.is_empty()
    }
}

impl<T> Drop for RingConsumer<T> {
    fn drop(&mut self) {
        self.shared.consumer_closed.store(true, Ordering::Release);
        // A producer parked on a full ring must observe the closure.
        self.shared.producer_waker.wake();
    }
}

impl<T> std::fmt::Debug for RingConsumer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingConsumer").finish_non_exhaustive()
    }
}

/// Creates a lock-free SPSC ring holding at least `capacity` values (rounded up to a
/// power of two, minimum 2). `consumer_waker`, when given, is woken after every push
/// so a parked consumer thread observes new work; share one waker across all rings
/// feeding the same consumer.
#[must_use]
pub fn ring<T>(
    capacity: usize,
    consumer_waker: Option<Arc<Waker>>,
) -> (RingProducer<T>, RingConsumer<T>) {
    ring_with_counters(capacity, consumer_waker, Arc::new(RingCounters::new()))
}

/// [`ring`], with the slow-path telemetry block supplied by the caller — the
/// engines pass each shard's shared [`RingCounters`] so every ring feeding
/// that shard lands in the same per-shard metrics.
#[must_use]
pub fn ring_with_counters<T>(
    capacity: usize,
    consumer_waker: Option<Arc<Waker>>,
    counters: Arc<RingCounters>,
) -> (RingProducer<T>, RingConsumer<T>) {
    let capacity = capacity.next_power_of_two().max(2);
    let slots: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..capacity)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let shared = Arc::new(RingShared {
        slots,
        mask: capacity - 1,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
        producer_closed: AtomicBool::new(false),
        consumer_closed: AtomicBool::new(false),
        consumer_waker,
        producer_waker: Waker::new(),
        counters,
    });
    (
        RingProducer {
            shared: Arc::clone(&shared),
            cached_head: 0,
            capacity,
        },
        RingConsumer {
            shared,
            cached_tail: 0,
        },
    )
}

/// The producer half of a block channel: a data ring of recycled [`RowBlock`]s plus
/// the reverse recycle ring. See the [module docs](self).
#[derive(Debug)]
pub struct BlockSender<T: Copy + Default> {
    data: RingProducer<Box<RowBlock<T>>>,
    recycle: RingConsumer<Box<RowBlock<T>>>,
}

impl<T: Copy + Default> BlockSender<T> {
    /// An empty block to fill: recycled from the consumer when one is available,
    /// freshly allocated otherwise.
    #[must_use]
    pub fn acquire(&mut self) -> Box<RowBlock<T>> {
        match self.recycle.pop() {
            Some(mut block) => {
                block.clear();
                block
            }
            None => RowBlock::boxed(),
        }
    }

    /// Ships a filled block to the consumer, parking while the data ring is full.
    ///
    /// # Errors
    ///
    /// [`Disconnected`] when the receiver has been dropped.
    pub fn send(&mut self, block: Box<RowBlock<T>>) -> Result<(), Disconnected<Box<RowBlock<T>>>> {
        self.data.push(block)
    }
}

/// The consumer half of a block channel.
#[derive(Debug)]
pub struct BlockReceiver<T: Copy + Default> {
    data: RingConsumer<Box<RowBlock<T>>>,
    recycle: RingProducer<Box<RowBlock<T>>>,
}

impl<T: Copy + Default> BlockReceiver<T> {
    /// Pops the oldest pending block, or `None` when the channel is empty.
    pub fn recv(&mut self) -> Option<Box<RowBlock<T>>> {
        self.data.pop()
    }

    /// Hands a spent block back to the producer for reuse. Dropped (deallocated)
    /// when the recycle ring is full or the producer is gone.
    pub fn recycle(&mut self, block: Box<RowBlock<T>>) {
        match self.recycle.try_push(block) {
            Ok(_) | Err(Disconnected(_)) => {}
        }
    }

    /// Whether no blocks are currently queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of blocks queued right now — see [`RingConsumer::len`] for the
    /// quiesce-cut guarantee.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.data.len()
    }

    /// Whether the sender is gone and the channel drained — nothing more will ever
    /// arrive.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.data.is_finished()
    }
}

/// Creates a block channel of `depth` in-flight blocks (rounded up to a power of
/// two) from a producer handle to a worker shard. The recycle ring runs in the
/// opposite direction with the same capacity plus slack, so in the steady state
/// blocks circulate without allocation.
#[must_use]
pub fn block_channel<T: Copy + Default>(
    depth: usize,
    consumer_waker: Arc<Waker>,
) -> (BlockSender<T>, BlockReceiver<T>) {
    block_channel_with_counters(depth, consumer_waker, Arc::new(RingCounters::new()))
}

/// [`block_channel`], with the data ring's telemetry block supplied by the
/// caller (see [`ring_with_counters`]). The recycle ring keeps a private
/// unobserved block: a full recycle ring is the benign steady state, not
/// backpressure.
#[must_use]
pub fn block_channel_with_counters<T: Copy + Default>(
    depth: usize,
    consumer_waker: Arc<Waker>,
    counters: Arc<RingCounters>,
) -> (BlockSender<T>, BlockReceiver<T>) {
    let (data_tx, data_rx) = ring_with_counters(depth, Some(consumer_waker), counters);
    // +2: one block in the producer's hands, one in the consumer's, both rings full.
    let (recycle_tx, recycle_rx) = ring(depth + 2, None);
    (
        BlockSender {
            data: data_tx,
            recycle: recycle_rx,
        },
        BlockReceiver {
            data: data_rx,
            recycle: recycle_tx,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_passes_values_in_order_through_wraparound() {
        let (mut tx, mut rx) = ring::<u64>(4, None);
        let mut next_expected = 0u64;
        for value in 0..10_000u64 {
            while let Some(rejected) = tx.try_push(value).expect("consumer alive") {
                assert_eq!(rejected, value);
                let popped = rx.pop().expect("full ring pops");
                assert_eq!(popped, next_expected);
                next_expected += 1;
            }
        }
        while let Some(popped) = rx.pop() {
            assert_eq!(popped, next_expected);
            next_expected += 1;
        }
        assert_eq!(next_expected, 10_000);
    }

    #[test]
    fn ring_reports_full_and_empty_transitions() {
        let (mut tx, mut rx) = ring::<u32>(2, None);
        assert!(rx.pop().is_none(), "fresh ring is empty");
        assert!(tx.try_push(1).unwrap().is_none());
        assert!(tx.try_push(2).unwrap().is_none());
        assert_eq!(tx.try_push(3).unwrap(), Some(3), "capacity-2 ring is full");
        assert_eq!(rx.pop(), Some(1));
        assert!(tx.try_push(3).unwrap().is_none(), "pop frees a slot");
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), Some(3));
        assert!(rx.pop().is_none());
    }

    #[test]
    fn dropping_consumer_disconnects_producer() {
        let (mut tx, rx) = ring::<u8>(2, None);
        drop(rx);
        assert!(tx.try_push(1).is_err());
        assert!(tx.push(2).is_err(), "blocking push must not hang on a closed ring");
    }

    #[test]
    fn dropping_producer_finishes_consumer_after_drain() {
        let (mut tx, mut rx) = ring::<u8>(4, None);
        tx.try_push(7).unwrap();
        drop(tx);
        assert!(!rx.is_finished(), "pending value keeps the ring live");
        assert_eq!(rx.pop(), Some(7));
        assert!(rx.is_finished());
    }

    #[test]
    fn ring_drop_releases_undrained_values() {
        // Box values so a leak would be visible to sanitizers/Miri; mainly this
        // exercises the `RingShared::drop` drain path.
        let (mut tx, rx) = ring::<Box<u64>>(8, None);
        for i in 0..5u64 {
            tx.try_push(Box::new(i)).unwrap();
        }
        drop(rx);
        drop(tx);
    }

    #[test]
    fn threaded_ring_delivers_every_value_with_parking() {
        let waker = Arc::new(Waker::new());
        let (mut tx, mut rx) = ring::<u64>(4, Some(Arc::clone(&waker)));
        const N: u64 = 200_000;
        let consumer = std::thread::spawn(move || {
            let mut sum = 0u64;
            let mut seen = 0u64;
            while seen < N {
                match rx.pop() {
                    Some(v) => {
                        sum += v;
                        seen += 1;
                    }
                    None => {
                        waker.prepare();
                        if rx.is_empty() {
                            waker.park();
                        } else {
                            waker.cancel();
                        }
                    }
                }
            }
            sum
        });
        for v in 0..N {
            tx.push(v).expect("consumer alive");
        }
        let sum = consumer.join().expect("consumer thread");
        assert_eq!(sum, N * (N - 1) / 2);
    }

    #[test]
    fn block_channel_recycles_blocks() {
        let waker = Arc::new(Waker::new());
        let (mut tx, mut rx) = block_channel::<u64>(2, waker);
        let mut block = tx.acquire();
        block.push(11);
        block.push(22);
        let addr = std::ptr::addr_of!(*block) as usize;
        tx.send(block).unwrap();
        let got = rx.recv().expect("block arrives");
        assert_eq!(got.as_slice(), &[11, 22]);
        rx.recycle(got);
        let reused = tx.acquire();
        assert_eq!(
            std::ptr::addr_of!(*reused) as usize,
            addr,
            "recycled block is the same allocation"
        );
        assert!(reused.is_empty(), "recycled block arrives cleared");
    }

    #[test]
    fn ring_counters_track_slow_paths() {
        let counters = Arc::new(RingCounters::new());
        let (mut tx, mut rx) = ring_with_counters::<u32>(2, None, Arc::clone(&counters));
        tx.try_push(1).unwrap();
        tx.try_push(2).unwrap();
        assert_eq!(tx.try_push(3).unwrap(), Some(3), "ring full");
        assert_eq!(counters.try_push_full.get(), 1);
        assert_eq!(
            counters.occupancy_high_water.get(),
            2,
            "full ring records capacity as the high-water"
        );
        assert_eq!(rx.pop(), Some(1));
        assert_eq!(counters.producer_parks.get(), 0, "try_push never parks");
    }

    #[test]
    fn threaded_ring_counts_parks_and_wakes() {
        let waker = Arc::new(Waker::new());
        let counters = Arc::new(RingCounters::new());
        let (mut tx, mut rx) =
            ring_with_counters::<u64>(2, Some(Arc::clone(&waker)), Arc::clone(&counters));
        const N: u64 = 50_000;
        let consumer = std::thread::spawn(move || {
            let mut seen = 0u64;
            while seen < N {
                match rx.pop() {
                    Some(_) => seen += 1,
                    None => {
                        waker.prepare();
                        if rx.is_empty() {
                            waker.park();
                        } else {
                            waker.cancel();
                        }
                    }
                }
            }
        });
        for v in 0..N {
            tx.push(v).expect("consumer alive");
        }
        consumer.join().expect("consumer thread");
        // A capacity-2 ring under 50k rows must have hit the full slow path;
        // the exact counts are schedule-dependent but the invariants are not.
        assert!(counters.try_push_full.get() > 0, "full events recorded");
        assert!(counters.occupancy_high_water.get() >= 1);
        assert!(counters.occupancy_high_water.get() <= 2, "never above capacity");
    }

    #[test]
    fn row_block_reports_full_at_capacity() {
        let mut block = RowBlock::<u64>::boxed();
        for i in 0..BLOCK_CAP - 1 {
            assert!(!block.push(i as u64), "not full before capacity");
        }
        assert!(block.push(0), "push to capacity reports full");
        assert_eq!(block.len(), BLOCK_CAP);
        block.clear();
        assert!(block.is_empty());
    }
}
