//! Fast hashing utilities.
//!
//! The sketches index their counters by opaque `u64` item identifiers. Two helpers live
//! here:
//!
//! * [`FxHasher`] / [`FxBuildHasher`] — a small, allocation-free re-implementation of
//!   the Firefox/rustc "Fx" multiply-xor hash. The standard library's SipHash is
//!   collision-resistant but slow for short integer keys; the perf guidance for this
//!   repository calls for a fast integer hasher, and implementing the ~20-line Fx mix
//!   in-repo avoids an extra dependency.
//! * [`hash_bytes`] / [`hash_fields`] — helpers that turn user-level keys (strings,
//!   dimension tuples, IP pairs) into the `u64` item identifiers the sketches consume.

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx hash seed (the golden-ratio constant used by rustc's FxHasher).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher for short keys (the Fx multiply-xor scheme).
///
/// Not HashDoS-resistant: use only where keys are not attacker-controlled or where the
/// consequences of collisions are merely performance, as is the case for sketch
/// counter indexes.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("chunk is 8 bytes"));
            self.add_to_hash(word);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]; plug into `HashMap::with_hasher`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by item identifiers using the fast Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Hashes an arbitrary byte string to a 64-bit item identifier (SplitMix-finalised Fx).
#[must_use]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.write_u64(bytes.len() as u64);
    splitmix64(h.finish())
}

/// Hashes a sequence of field values (e.g. the dimension tuple identifying a unit of
/// analysis) into a single 64-bit item identifier. Field boundaries are length-prefixed
/// so `["ab","c"]` and `["a","bc"]` hash differently.
#[must_use]
pub fn hash_fields<I, T>(fields: I) -> u64
where
    I: IntoIterator<Item = T>,
    T: AsRef<[u8]>,
{
    let mut h = FxHasher::default();
    let mut n_fields = 0u64;
    for f in fields {
        let bytes = f.as_ref();
        h.write_u64(bytes.len() as u64);
        h.write(bytes);
        n_fields += 1;
    }
    h.write_u64(n_fields);
    splitmix64(h.finish())
}

/// Combines two 64-bit identifiers into one (order-sensitive); used for composite keys
/// such as (user, ad) pairs or (source IP, destination IP) flows.
#[must_use]
pub fn combine(a: u64, b: u64) -> u64 {
    splitmix64(a.rotate_left(32) ^ splitmix64(b) ^ 0x9E37_79B9_7F4A_7C15)
}

/// SplitMix64 finaliser, used to turn the weak Fx state into a well-mixed identifier.
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_bytes_is_deterministic() {
        assert_eq!(hash_bytes(b"hello"), hash_bytes(b"hello"));
        assert_ne!(hash_bytes(b"hello"), hash_bytes(b"hellp"));
    }

    #[test]
    fn hash_bytes_distinguishes_lengths() {
        assert_ne!(hash_bytes(b""), hash_bytes(b"\0"));
        assert_ne!(hash_bytes(b"a"), hash_bytes(b"a\0"));
    }

    #[test]
    fn hash_fields_respects_boundaries() {
        assert_ne!(hash_fields(["ab", "c"]), hash_fields(["a", "bc"]));
        assert_ne!(hash_fields(["ab"]), hash_fields(["ab", ""]));
        assert_eq!(hash_fields(["x", "y"]), hash_fields(["x", "y"]));
    }

    #[test]
    fn combine_is_order_sensitive() {
        assert_ne!(combine(1, 2), combine(2, 1));
        assert_eq!(combine(1, 2), combine(1, 2));
    }

    #[test]
    fn fx_hashmap_round_trip() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, (i * 3) as u32);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&i), Some(&((i * 3) as u32)));
        }
    }

    #[test]
    fn splitmix_avalanches() {
        let d = (splitmix64(42) ^ splitmix64(43)).count_ones();
        assert!(d > 16, "poor avalanche: {d} differing bits");
    }

    #[test]
    fn hasher_handles_unaligned_tails() {
        // 9 bytes exercises the chunk + remainder path.
        let a = hash_bytes(b"123456789");
        let b = hash_bytes(b"123456780");
        assert_ne!(a, b);
    }
}
