//! Distributed sketching: map-reduce style sharded ingestion plus unbiased merging.
//!
//! Section 5.5 motivates the unbiased merge by distributed computation: each mapper
//! sketches its partition of the stream independently, and only the small sketches
//! cross the network to be merged at a reducer. This module is the deterministic
//! map-reduce convenience wrapper over the live [`crate::engine`]: each partition is
//! streamed to its own engine shard (one OS thread per partition, combiner disabled so
//! every mapper sketch is row-for-row identical to sequential ingestion), and the
//! shard results are folded together with the unbiased PPS merge. The algorithmic
//! content (what is computed, and that it stays unbiased) is identical to a real
//! deployment; only the transport differs. For continuous multi-producer ingestion
//! with queries *during* the stream, use [`crate::engine::ShardedIngestEngine`]
//! directly.

use crate::engine::{fold_reports, EngineConfig, ShardReport, ShardedIngestEngine};
use crate::merge::{FOLD_MERGE_SALT, FOLD_OUT_SALT};
use crate::query::{QueryServer, QueryServerConfig};
use crate::space_saving::{UnbiasedSpaceSaving, WeightedSpaceSaving};
use crate::traits::StreamSketch;

/// Configuration for sharded sketching.
#[derive(Debug, Clone, Copy)]
pub struct DistributedSketcher {
    /// Number of bins per mapper sketch (and in the merged result).
    pub capacity: usize,
    /// Base RNG seed; mapper `i` uses `seed + i`, the reducer uses `seed ^ FOLD_MERGE_SALT`.
    pub seed: u64,
}

impl DistributedSketcher {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self { capacity, seed }
    }

    /// Rows per batch when streaming a partition to its engine shard.
    const FEED_BATCH_ROWS: usize = 8192;

    /// Sketches each partition on its own engine shard and merges the per-partition
    /// sketches into a single weighted sketch answering queries over the union of
    /// partitions.
    ///
    /// Mapper `i` is engine shard `i` (seeded `seed + i`, combiner disabled), so the
    /// result is identical to sketching each partition sequentially and folding with
    /// [`reduce`](Self::reduce).
    #[must_use]
    pub fn sketch_partitions(&self, partitions: &[Vec<u64>]) -> WeightedSpaceSaving {
        if partitions.is_empty() {
            return self.reduce(std::iter::empty());
        }
        let config = EngineConfig::new(partitions.len(), self.capacity, self.seed)
            .with_combiner_items(0)
            .with_batch_rows(Self::FEED_BATCH_ROWS);
        let engine = ShardedIngestEngine::new(config);
        // One feeding thread per partition, so the shard workers sketch all
        // partitions concurrently (a single feeder would stall shard i+1 behind
        // shard i's bounded queue).
        std::thread::scope(|scope| {
            for (shard, partition) in partitions.iter().enumerate() {
                let engine = &engine;
                scope.spawn(move || {
                    for chunk in partition.chunks(Self::FEED_BATCH_ROWS) {
                        engine.ingest_to_shard(shard, chunk.to_vec());
                    }
                });
            }
        });
        engine.finish()
    }

    /// Sketches the partitions and stands up a [`QueryServer`] over the merged
    /// result, so map-reduce outputs are queried through the same serving layer —
    /// typed queries, variance, confidence intervals, marginals — as live engines.
    #[must_use]
    pub fn serve(
        &self,
        partitions: &[Vec<u64>],
        config: QueryServerConfig,
    ) -> QueryServer<WeightedSpaceSaving> {
        QueryServer::new(self.sketch_partitions(partitions), config)
    }

    /// Merges an iterator of mapper sketches (the reduce step), preserving
    /// unbiasedness at every fold.
    #[must_use]
    pub fn reduce<I>(&self, sketches: I) -> WeightedSpaceSaving
    where
        I: IntoIterator<Item = UnbiasedSpaceSaving>,
    {
        fold_reports(
            self.capacity,
            self.seed ^ FOLD_MERGE_SALT,
            self.seed ^ FOLD_OUT_SALT,
            sketches.into_iter().map(|sketch| ShardReport {
                entries: sketch.entries(),
                rows: sketch.rows_processed(),
            }),
        )
    }

    /// The reduce step over *files*: folds N persisted shard sketches into one
    /// queryable weighted sketch with the unbiased PPS merge, in path order. This
    /// is the multi-node story [`crate::persist`] opens: every node
    /// [`checkpoint`](crate::engine::ShardedIngestEngine::checkpoint)s (or
    /// [`persist::save_unbiased`](crate::persist::save_unbiased)s) its shard
    /// locally, ships the small files, and any node folds them later — by
    /// Theorem 2 the folded result is as unbiased as a live merge of the same
    /// sketches. Accepts every sketch frame kind interchangeably — engine shard
    /// files, full unbiased or weighted sketches, and cold snapshots (the fold
    /// only needs entries and row counts); only a checkpoint manifest is
    /// rejected.
    ///
    /// # Errors
    ///
    /// [`PersistError`](crate::persist::PersistError) if a file cannot be read,
    /// fails checksum/format validation, or holds a checkpoint manifest instead
    /// of a sketch.
    pub fn merge_files<P, I>(&self, paths: I) -> Result<WeightedSpaceSaving, crate::persist::PersistError>
    where
        P: AsRef<std::path::Path>,
        I: IntoIterator<Item = P>,
    {
        use crate::persist::{self, PersistError, SketchKind};
        let mut reports = Vec::new();
        for path in paths {
            let path = path.as_ref();
            let bytes = std::fs::read(path)?;
            let (entries, rows) = match persist::peek_kind(&bytes)? {
                SketchKind::Snapshot => {
                    let snap = persist::decode_snapshot(&bytes)?;
                    (snap.entries().to_vec(), snap.rows_processed())
                }
                SketchKind::Unbiased => {
                    let sketch = persist::decode_unbiased(&bytes)?;
                    (sketch.entries(), sketch.rows_processed())
                }
                SketchKind::Weighted => {
                    let sketch = persist::decode_weighted(&bytes)?;
                    (sketch.entries(), sketch.rows_processed())
                }
                SketchKind::EngineShard => {
                    let sketch = persist::decode_shard(&bytes)?.2;
                    (sketch.entries(), sketch.rows_processed())
                }
                SketchKind::Decayed => {
                    // Decayed counts as of the sketch's last update; merging
                    // mixes decayed units with raw ones, which is the caller's
                    // call to make — the fold itself stays mass-preserving.
                    let sketch = persist::decode_decayed(&bytes)?;
                    let snap = sketch.snapshot_at(sketch.last_time());
                    (snap.entries().to_vec(), snap.rows_processed())
                }
                SketchKind::TemporalShard | SketchKind::TemporalLadderShard => {
                    // A bucket ring folds to its whole retained history first.
                    let (shard, meta, store) = persist::decode_temporal_shard(&bytes)?;
                    let seed = meta.seed.wrapping_add(shard);
                    let folded = store.fold_range(0, u64::MAX, seed ^ FOLD_MERGE_SALT, seed ^ FOLD_OUT_SALT);
                    (folded.entries(), folded.rows_processed())
                }
                kind @ (SketchKind::Manifest | SketchKind::TemporalManifest) => {
                    return Err(PersistError::Corrupt(format!(
                        "{} is a {kind}, not a sketch; pass the shard files",
                        path.display()
                    )))
                }
            };
            reports.push(ShardReport { entries, rows });
        }
        Ok(fold_reports(
            self.capacity,
            self.seed ^ FOLD_MERGE_SALT,
            self.seed ^ FOLD_OUT_SALT,
            reports,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn partitions() -> Vec<Vec<u64>> {
        // Four partitions with overlapping heavy items and disjoint tails.
        (0..4usize)
            .map(|p| {
                let mut v = Vec::new();
                for i in 0..3000u64 {
                    if i % 3 == 0 {
                        v.push(1); // globally heavy
                    } else if i % 3 == 1 {
                        v.push(2 + p as u64); // heavy within the partition
                    } else {
                        v.push(1000 + p as u64 * 10_000 + i); // unique tail
                    }
                }
                v
            })
            .collect()
    }

    #[test]
    fn sharded_sketch_covers_all_rows() {
        let sketcher = DistributedSketcher::new(50, 7);
        let parts = partitions();
        let total_rows: usize = parts.iter().map(Vec::len).sum();
        let merged = sketcher.sketch_partitions(&parts);
        assert_eq!(merged.rows_processed(), total_rows as u64);
        assert!(merged.retained_len() <= 50);
    }

    #[test]
    fn global_heavy_hitter_is_found_with_accurate_count() {
        let sketcher = DistributedSketcher::new(50, 3);
        let parts = partitions();
        let truth = parts
            .iter()
            .flatten()
            .filter(|&&i| i == 1)
            .count() as f64;
        let merged = sketcher.sketch_partitions(&parts);
        let est = merged.estimate(1);
        assert!(
            (est - truth).abs() / truth < 0.15,
            "estimate {est} vs truth {truth}"
        );
    }

    #[test]
    fn distributed_result_matches_single_sketch_statistically() {
        // The subset sum over the per-partition heavy items should be estimated
        // unbiasedly; average over several seeds.
        let parts = partitions();
        let truth: f64 = parts
            .iter()
            .flatten()
            .filter(|&&i| (2..=5).contains(&i))
            .count() as f64;
        let reps = 60;
        let mut sum = 0.0;
        for seed in 0..reps {
            let sketcher = DistributedSketcher::new(40, seed);
            let merged = sketcher.sketch_partitions(&parts);
            sum += merged
                .entries()
                .iter()
                .filter(|(i, _)| (2..=5).contains(i))
                .map(|(_, c)| c)
                .sum::<f64>();
        }
        let mean = sum / reps as f64;
        assert!(
            (mean - truth).abs() / truth < 0.1,
            "mean {mean} vs truth {truth}"
        );
    }

    #[test]
    fn serve_answers_queries_identical_to_the_merged_sketch() {
        let sketcher = DistributedSketcher::new(50, 11);
        let parts = partitions();
        let direct = sketcher.sketch_partitions(&parts).snapshot();
        let server = sketcher.serve(&parts, QueryServerConfig::new());
        // Same seeds on both paths: the served snapshot is the same merge.
        let (est, ci) = server.subset_estimate_where(|i| i == 1);
        assert_eq!(est.sum, direct.subset_sum(|i| i == 1));
        assert!(ci.contains(est.sum));
        assert_eq!(server.top_k(5), direct.top_k(5));
        assert_eq!(server.epoch(), 1);
    }

    #[test]
    fn merge_files_is_bit_identical_to_a_live_reduce() {
        use crate::traits::StreamSketch as _;
        // Sketch three partitions, persist each mapper sketch, and fold the files:
        // same seeds on both paths, so the file fold must equal the live fold
        // exactly, not just statistically.
        let sketches: Vec<UnbiasedSpaceSaving> = (0..3u64)
            .map(|p| {
                let mut s = UnbiasedSpaceSaving::with_seed(24, 100 + p);
                for i in 0..2_000u64 {
                    s.offer(p * 1_000 + i % (60 + p * 7));
                }
                s
            })
            .collect();
        let dir = std::env::temp_dir().join(format!("uss-merge-files-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let paths: Vec<_> = sketches
            .iter()
            .enumerate()
            .map(|(i, sketch)| {
                let path = dir.join(format!("mapper-{i}.uss"));
                crate::persist::save_unbiased(&path, sketch).unwrap();
                path
            })
            .collect();

        let sketcher = DistributedSketcher::new(32, 5);
        let live = sketcher.reduce(sketches);
        let from_files = sketcher.merge_files(&paths).unwrap();
        assert_eq!(from_files.entries(), live.entries());
        assert_eq!(from_files.rows_processed(), live.rows_processed());

        // A manifest (or any non-sketch frame) in the path list is an error.
        let manifest_path = dir.join("manifest.uss");
        let manifest = crate::persist::EngineManifest {
            meta: crate::persist::EngineMeta {
                shards: 1,
                capacity: 32,
                seed: 5,
            },
            snapshots: 0,
            rows: 0,
        };
        crate::persist::write_file(&manifest_path, &crate::persist::encode_manifest(&manifest))
            .unwrap();
        assert!(sketcher.merge_files([&manifest_path]).is_err());

        // Weighted and snapshot frames are accepted interchangeably: the fold
        // only needs entries and row counts.
        let weighted_path = dir.join("weighted.uss");
        crate::persist::save_weighted(&weighted_path, &live).unwrap();
        let snap_path = dir.join("snap.uss");
        crate::persist::save_snapshot(&snap_path, &live.snapshot()).unwrap();
        for path in [&weighted_path, &snap_path] {
            let folded = sketcher.merge_files([path]).unwrap();
            assert_eq!(folded.rows_processed(), live.rows_processed());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reduce_of_empty_iterator_is_empty() {
        let sketcher = DistributedSketcher::new(10, 1);
        let merged = sketcher.reduce(std::iter::empty());
        assert_eq!(merged.retained_len(), 0);
        assert_eq!(merged.rows_processed(), 0);
    }

    #[test]
    fn single_partition_equals_plain_sketching_rows() {
        let sketcher = DistributedSketcher::new(20, 5);
        let part: Vec<u64> = (0..500u64).map(|i| i % 37).collect();
        let merged = sketcher.sketch_partitions(std::slice::from_ref(&part));
        assert_eq!(merged.rows_processed(), 500);
        let mass: f64 = merged.entries().iter().map(|(_, c)| c).sum();
        assert!((mass - 500.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = DistributedSketcher::new(0, 1);
    }
}
