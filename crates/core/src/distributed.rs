//! Distributed sketching: map-reduce style sharded ingestion plus unbiased merging.
//!
//! Section 5.5 motivates the unbiased merge by distributed computation: each mapper
//! sketches its partition of the stream independently, and only the small sketches
//! cross the network to be merged at a reducer. This module simulates that pattern
//! in-process: one OS thread per partition builds an [`UnbiasedSpaceSaving`] sketch,
//! and the results are folded together with the unbiased PPS merge. The algorithmic
//! content (what is computed, and that it stays unbiased) is identical to a real
//! deployment; only the transport differs.

use parking_lot::Mutex;

use crate::merge::merge_unbiased_entries;
use crate::space_saving::{UnbiasedSpaceSaving, WeightedSpaceSaving};
use crate::traits::StreamSketch;

/// Configuration for sharded sketching.
#[derive(Debug, Clone, Copy)]
pub struct DistributedSketcher {
    /// Number of bins per mapper sketch (and in the merged result).
    pub capacity: usize,
    /// Base RNG seed; mapper `i` uses `seed + i`, the reducer uses `seed ^ 0xD15C0`.
    pub seed: u64,
}

impl DistributedSketcher {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self { capacity, seed }
    }

    /// Sketches each partition on its own thread and merges the per-partition sketches
    /// into a single weighted sketch answering queries over the union of partitions.
    #[must_use]
    pub fn sketch_partitions(&self, partitions: &[Vec<u64>]) -> WeightedSpaceSaving {
        let results: Mutex<Vec<(usize, UnbiasedSpaceSaving)>> =
            Mutex::new(Vec::with_capacity(partitions.len()));
        std::thread::scope(|scope| {
            for (i, partition) in partitions.iter().enumerate() {
                let results = &results;
                let capacity = self.capacity;
                let seed = self.seed + i as u64;
                scope.spawn(move || {
                    let mut sketch = UnbiasedSpaceSaving::with_seed(capacity, seed);
                    for &item in partition {
                        sketch.offer(item);
                    }
                    results.lock().push((i, sketch));
                });
            }
        });

        let mut mappers = results.into_inner();
        // Deterministic merge order regardless of thread completion order.
        mappers.sort_by_key(|(i, _)| *i);
        self.reduce(mappers.into_iter().map(|(_, s)| s))
    }

    /// Merges an iterator of mapper sketches (the reduce step), preserving
    /// unbiasedness at every fold.
    #[must_use]
    pub fn reduce<I>(&self, sketches: I) -> WeightedSpaceSaving
    where
        I: IntoIterator<Item = UnbiasedSpaceSaving>,
    {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xD15C0);
        let mut acc_entries: Vec<(u64, f64)> = Vec::new();
        let mut acc_rows: u64 = 0;
        for sketch in sketches {
            acc_entries = merge_unbiased_entries(
                &acc_entries,
                &sketch.entries(),
                self.capacity,
                &mut rng,
            );
            acc_rows += sketch.rows_processed();
        }
        let mut out = WeightedSpaceSaving::with_seed(self.capacity, self.seed ^ 0xFEED);
        out.load_entries(acc_entries, acc_rows as f64);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn partitions() -> Vec<Vec<u64>> {
        // Four partitions with overlapping heavy items and disjoint tails.
        (0..4usize)
            .map(|p| {
                let mut v = Vec::new();
                for i in 0..3000u64 {
                    if i % 3 == 0 {
                        v.push(1); // globally heavy
                    } else if i % 3 == 1 {
                        v.push(2 + p as u64); // heavy within the partition
                    } else {
                        v.push(1000 + p as u64 * 10_000 + i); // unique tail
                    }
                }
                v
            })
            .collect()
    }

    #[test]
    fn sharded_sketch_covers_all_rows() {
        let sketcher = DistributedSketcher::new(50, 7);
        let parts = partitions();
        let total_rows: usize = parts.iter().map(Vec::len).sum();
        let merged = sketcher.sketch_partitions(&parts);
        assert_eq!(merged.rows_processed(), total_rows as u64);
        assert!(merged.retained_len() <= 50);
    }

    #[test]
    fn global_heavy_hitter_is_found_with_accurate_count() {
        let sketcher = DistributedSketcher::new(50, 3);
        let parts = partitions();
        let truth = parts
            .iter()
            .flatten()
            .filter(|&&i| i == 1)
            .count() as f64;
        let merged = sketcher.sketch_partitions(&parts);
        let est = merged.estimate(1);
        assert!(
            (est - truth).abs() / truth < 0.15,
            "estimate {est} vs truth {truth}"
        );
    }

    #[test]
    fn distributed_result_matches_single_sketch_statistically() {
        // The subset sum over the per-partition heavy items should be estimated
        // unbiasedly; average over several seeds.
        let parts = partitions();
        let truth: f64 = parts
            .iter()
            .flatten()
            .filter(|&&i| (2..=5).contains(&i))
            .count() as f64;
        let reps = 60;
        let mut sum = 0.0;
        for seed in 0..reps {
            let sketcher = DistributedSketcher::new(40, seed);
            let merged = sketcher.sketch_partitions(&parts);
            sum += merged
                .entries()
                .iter()
                .filter(|(i, _)| (2..=5).contains(i))
                .map(|(_, c)| c)
                .sum::<f64>();
        }
        let mean = sum / reps as f64;
        assert!(
            (mean - truth).abs() / truth < 0.1,
            "mean {mean} vs truth {truth}"
        );
    }

    #[test]
    fn reduce_of_empty_iterator_is_empty() {
        let sketcher = DistributedSketcher::new(10, 1);
        let merged = sketcher.reduce(std::iter::empty());
        assert_eq!(merged.retained_len(), 0);
        assert_eq!(merged.rows_processed(), 0);
    }

    #[test]
    fn single_partition_equals_plain_sketching_rows() {
        let sketcher = DistributedSketcher::new(20, 5);
        let part: Vec<u64> = (0..500u64).map(|i| i % 37).collect();
        let merged = sketcher.sketch_partitions(std::slice::from_ref(&part));
        assert_eq!(merged.rows_processed(), 500);
        let mass: f64 = merged.entries().iter().map(|(_, c)| c).sum();
        assert!((mass - 500.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = DistributedSketcher::new(0, 1);
    }
}
