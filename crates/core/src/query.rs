//! Concurrent query serving: an epoch-versioned snapshot cache over a live sketch.
//!
//! The estimators in [`crate::estimator`] answer queries against a cold
//! [`SketchSnapshot`]; the [`crate::engine`] ingests concurrently but, until this
//! module, had no read path beyond folding a whole merged sketch per query. A
//! [`QueryServer`] closes that gap: it wraps any [`SnapshotSource`] — a live
//! [`ShardedIngestEngine`], a plain sketch, or an already-merged snapshot — and keeps
//! one *epoch-versioned* [`SketchSnapshot`] cached behind an `Arc`/`RwLock`. Readers
//! clone the `Arc` (one brief read-lock acquisition, no allocation, no contention
//! with ingest) and then run arbitrarily many queries against an immutable, complete
//! view; producers keep ingesting in parallel. The cache refreshes when asked
//! ([`QueryServer::refresh`]) or automatically once the source reports
//! [`QueryServerConfig::refresh_every_rows`] new rows.
//!
//! ## The typed query API and the paper's estimator sections
//!
//! Each [`Query`] variant is one of the paper's query families (Daniel Ting,
//! *Data Sketches for Disaggregated Subset Sum and Frequent Item Estimation*,
//! SIGMOD 2018):
//!
//! | variant | estimator | paper |
//! |---------|-----------|-------|
//! | [`Query::SubsetSum`] | unbiased disaggregated subset sum (Theorems 1–2), variance per equation 5, Normal CI per section 6.5 | §4, §6.4–6.5 |
//! | [`Query::Proportion`] | the same subset sum scaled by the row count (consistent by Theorem 3); variance scales by `1/rows²` | §4.1, §6.4 |
//! | [`Query::TopK`] | the `k` largest retained counters — frequent items with consistent count estimates | §4.1 (Theorem 3) |
//! | [`Query::FrequentItems`] | classical `φ`-heavy-hitters over the retained counters | §4.1 |
//! | [`Query::RankQuantile`] | the retained counter at rank quantile `q` — the count profile separating the "nearly exact" head from the PPS-sampled tail | §6 (N̂_min threshold) |
//!
//! Every numeric answer is a [`SubsetEstimate`] carrying the equation-5 variance and
//! a [`ConfidenceInterval`]. The keyed group-by ([`QueryServer::marginals`], built on
//! [`SketchSnapshot::marginals`]) serves the paper's Figure 6 workload — roll
//! full-granularity sketch entries up to arbitrary marginals after the fact.
//!
//! ## Staleness and epochs
//!
//! Snapshots are immutable, so a reader's answers within one epoch are mutually
//! consistent (mass conservation holds exactly: the entry total equals the snapshot's
//! row count). Epochs increase strictly and monotonically; a response's
//! [`QueryResponse::epoch`] names the complete snapshot that produced it. The cache
//! trades freshness for read throughput — with `refresh_every_rows = r`, answers lag
//! ingest by at most `r` rows plus whatever is buffered in producer-side handles.
//!
//! ```
//! use uss_core::prelude::*;
//!
//! let engine = ShardedIngestEngine::new(EngineConfig::new(2, 256, 7));
//! let mut handle = engine.handle();
//! for row in 0u64..20_000 {
//!     handle.offer(row % 500);
//! }
//! handle.flush();
//!
//! // Serve queries from a cached snapshot that refreshes every 10k ingested rows.
//! let server = QueryServer::new(&engine, QueryServerConfig::new().refresh_every_rows(10_000));
//! let response = server.execute(&Query::SubsetSum { items: (0..100).collect() });
//! if let QueryAnswer::Estimate { estimate, ci } = response.answer {
//!     assert!(estimate.sum > 0.0);
//!     assert!(ci.upper >= ci.lower);
//! }
//! assert!(response.epoch >= 1);
//! let merged = engine.finish();
//! assert_eq!(merged.rows_processed(), 20_000);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::engine::ShardedIngestEngine;
use crate::estimator::{SketchSnapshot, SubsetEstimate};
use crate::space_saving::{UnbiasedSpaceSaving, WeightedSpaceSaving};
use crate::variance::ConfidenceInterval;

/// Anything the [`QueryServer`] can capture consistent snapshots from.
///
/// `capture` may be expensive (for the engine it drains the shard queues and runs
/// the unbiased PPS merge); `rows_hint` must be cheap, monotone non-decreasing, and
/// is only used to decide *when* to refresh — never as an answer.
pub trait SnapshotSource {
    /// Captures a complete, consistent point-in-time snapshot.
    fn capture(&self) -> SketchSnapshot;

    /// A cheap monotone ingest-progress hint, in rows. Sources that cannot be
    /// mutated while served (an owned sketch, a cold snapshot) return their fixed
    /// row count, which makes automatic refresh a no-op — correctly so.
    fn rows_hint(&self) -> u64;
}

impl SnapshotSource for ShardedIngestEngine {
    /// Folds the live shards with the unbiased PPS merge (section 5.5), so the
    /// snapshot stays unbiased for every after-the-fact subset-sum query.
    fn capture(&self) -> SketchSnapshot {
        self.snapshot().snapshot()
    }

    fn rows_hint(&self) -> u64 {
        self.rows_enqueued()
    }
}

impl SnapshotSource for UnbiasedSpaceSaving {
    fn capture(&self) -> SketchSnapshot {
        self.snapshot()
    }

    fn rows_hint(&self) -> u64 {
        use crate::traits::StreamSketch;
        self.rows_processed()
    }
}

impl SnapshotSource for WeightedSpaceSaving {
    fn capture(&self) -> SketchSnapshot {
        self.snapshot()
    }

    fn rows_hint(&self) -> u64 {
        use crate::traits::StreamSketch;
        self.rows_processed()
    }
}

impl SnapshotSource for SketchSnapshot {
    fn capture(&self) -> SketchSnapshot {
        self.clone()
    }

    fn rows_hint(&self) -> u64 {
        self.rows_processed()
    }
}

impl<T: SnapshotSource + ?Sized> SnapshotSource for &T {
    fn capture(&self) -> SketchSnapshot {
        (**self).capture()
    }

    fn rows_hint(&self) -> u64 {
        (**self).rows_hint()
    }
}

impl<T: SnapshotSource + ?Sized> SnapshotSource for Arc<T> {
    fn capture(&self) -> SketchSnapshot {
        (**self).capture()
    }

    fn rows_hint(&self) -> u64 {
        (**self).rows_hint()
    }
}

impl<T: SnapshotSource> SnapshotSource for parking_lot::RwLock<T> {
    /// Serves a source that is still being *mutated* by producers — e.g. an
    /// `Arc<RwLock<DecayedSpaceSaving>>` shared between an ingest thread (write
    /// lock per batch) and a [`QueryServer`] (brief read lock per capture), the
    /// smooth-decay alternative to the hard windows of [`crate::temporal`].
    fn capture(&self) -> SketchSnapshot {
        self.read().capture()
    }

    fn rows_hint(&self) -> u64 {
        self.read().rows_hint()
    }
}

/// Configuration for a [`QueryServer`].
#[derive(Debug, Clone, Copy)]
pub struct QueryServerConfig {
    /// Automatically refresh the cached snapshot once the source reports this many
    /// rows beyond the last refresh. `0` (the default) disables automatic refresh:
    /// the cache then only moves on explicit [`QueryServer::refresh`] calls.
    pub refresh_every_rows: u64,
    /// Confidence level used by [`Query`] answers, e.g. `0.95`.
    pub confidence: f64,
}

impl Default for QueryServerConfig {
    fn default() -> Self {
        Self {
            refresh_every_rows: 0,
            confidence: 0.95,
        }
    }
}

impl QueryServerConfig {
    /// The default configuration: manual refresh only, 95% confidence intervals.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the automatic-refresh threshold, in ingested rows (`0` = manual only).
    #[must_use]
    pub fn refresh_every_rows(mut self, rows: u64) -> Self {
        self.refresh_every_rows = rows;
        self
    }

    /// Sets the confidence level for interval answers.
    ///
    /// # Panics
    ///
    /// Panics if `confidence` is not strictly between 0 and 1.
    #[must_use]
    pub fn confidence(mut self, confidence: f64) -> Self {
        assert!(
            confidence > 0.0 && confidence < 1.0,
            "confidence must be in (0, 1)"
        );
        self.confidence = confidence;
        self
    }
}

/// A complete snapshot tagged with the epoch that produced it.
///
/// Dereferences to [`SketchSnapshot`], so every estimator query runs directly on a
/// versioned snapshot.
#[derive(Debug, Clone)]
pub struct VersionedSnapshot {
    epoch: u64,
    as_of_rows: u64,
    snapshot: SketchSnapshot,
}

impl VersionedSnapshot {
    /// The strictly increasing epoch number (the first capture is epoch 1).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The source's [`SnapshotSource::rows_hint`] at capture time.
    #[must_use]
    pub fn as_of_rows(&self) -> u64 {
        self.as_of_rows
    }

    /// The snapshot itself.
    #[must_use]
    pub fn snapshot(&self) -> &SketchSnapshot {
        &self.snapshot
    }
}

impl std::ops::Deref for VersionedSnapshot {
    type Target = SketchSnapshot;

    fn deref(&self) -> &SketchSnapshot {
        &self.snapshot
    }
}

/// A typed query against a [`QueryServer`]. See the [module docs](self) for the
/// mapping from variants to the paper's estimator sections.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Unbiased estimate of the total count over the listed items (**sorted
    /// ascending**), with variance and confidence interval.
    SubsetSum {
        /// The queried item identifiers, sorted ascending.
        items: Vec<u64>,
    },
    /// The listed items' share of all rows, as a [`SubsetEstimate`] in proportion
    /// units (variance scaled by `1/rows²`).
    Proportion {
        /// The queried item identifiers, sorted ascending.
        items: Vec<u64>,
    },
    /// The `k` most frequent retained items, descending.
    TopK {
        /// Number of items to return.
        k: usize,
    },
    /// Items whose estimated count exceeds `phi · rows`, descending.
    FrequentItems {
        /// Frequency threshold in `(0, 1)`.
        phi: f64,
    },
    /// The retained `(item, count)` at rank quantile `q` of the descending count
    /// ranking (`0` = top item, `1` = minimum retained counter). A `q` outside
    /// `[0, 1]` — NaN included — answers [`QueryAnswer::Rank`]`(None)` rather than
    /// panicking the read path.
    RankQuantile {
        /// Rank quantile in `[0, 1]`.
        q: f64,
    },
}

/// The answer to a [`Query`].
#[derive(Debug, Clone, PartialEq)]
pub enum QueryAnswer {
    /// A numeric estimate with variance and confidence interval
    /// ([`Query::SubsetSum`] in row units, [`Query::Proportion`] in proportion
    /// units).
    Estimate {
        /// The point estimate with its equation-5 variance.
        estimate: SubsetEstimate,
        /// Normal-approximation interval at the server's configured confidence.
        ci: ConfidenceInterval,
    },
    /// A ranked item list ([`Query::TopK`], [`Query::FrequentItems`]).
    Items(Vec<(u64, f64)>),
    /// A single ranked entry ([`Query::RankQuantile`]); `None` on an empty sketch
    /// or an invalid quantile.
    Rank(Option<(u64, f64)>),
}

/// A query answer tagged with the complete epoch that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// Epoch of the snapshot that answered.
    pub epoch: u64,
    /// Rows processed by that snapshot.
    pub rows: u64,
    /// The answer payload.
    pub answer: QueryAnswer,
}

/// A concurrent query-serving layer over a live sketch. See the
/// [module docs](self).
///
/// All methods take `&self`; the server is `Sync` whenever the source is, so any
/// number of reader threads can share one server by reference while producer threads
/// keep feeding the underlying source.
#[derive(Debug)]
pub struct QueryServer<S> {
    source: S,
    config: QueryServerConfig,
    cached: RwLock<Arc<VersionedSnapshot>>,
    /// `rows_hint` at the last (started) refresh; claimed by compare-exchange so
    /// concurrent readers trigger one refresh, not a stampede.
    refresh_claimed_at: AtomicU64,
}

impl<S: SnapshotSource> QueryServer<S> {
    /// Captures the initial snapshot (epoch 1) and starts serving.
    #[must_use]
    pub fn new(source: S, config: QueryServerConfig) -> Self {
        let as_of_rows = source.rows_hint();
        let snapshot = source.capture();
        Self {
            cached: RwLock::new(Arc::new(VersionedSnapshot {
                epoch: 1,
                as_of_rows,
                snapshot,
            })),
            refresh_claimed_at: AtomicU64::new(as_of_rows),
            source,
            config,
        }
    }

    /// The server's configuration.
    #[must_use]
    pub fn config(&self) -> &QueryServerConfig {
        &self.config
    }

    /// The wrapped source (e.g. to create [`crate::engine::IngestHandle`]s from a
    /// served engine).
    #[must_use]
    pub fn source(&self) -> &S {
        &self.source
    }

    /// Tears the server down and returns the source (e.g. to
    /// [`ShardedIngestEngine::finish`] it).
    #[must_use]
    pub fn into_source(self) -> S {
        self.source
    }

    /// The current epoch (strictly increasing, starting at 1).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.cached.read().epoch
    }

    /// Forces a fresh capture from the source and returns the epoch serving it.
    /// Readers are only blocked for the `Arc` swap, not for the capture itself.
    ///
    /// Concurrent refreshes are safe: if another refresh captured a *fresher* view
    /// while this one was capturing, the staler capture is discarded (the cache
    /// never moves backwards in ingest time) and the already-published epoch is
    /// returned.
    pub fn refresh(&self) -> u64 {
        let as_of_rows = self.source.rows_hint();
        self.refresh_claimed_at.fetch_max(as_of_rows, Ordering::Relaxed);
        let snapshot = self.source.capture();
        let mut cached = self.cached.write();
        if as_of_rows < cached.as_of_rows {
            return cached.epoch;
        }
        let epoch = cached.epoch + 1;
        *cached = Arc::new(VersionedSnapshot {
            epoch,
            as_of_rows,
            snapshot,
        });
        epoch
    }

    /// The current cached snapshot, after applying the automatic staleness policy.
    /// The returned `Arc` stays valid (and immutable) for as long as the caller
    /// holds it, no matter how many refreshes happen meanwhile.
    #[must_use]
    pub fn current(&self) -> Arc<VersionedSnapshot> {
        self.maybe_refresh();
        Arc::clone(&self.cached.read())
    }

    /// Refreshes if the source has advanced `refresh_every_rows` past the last
    /// refresh. At most one of any number of concurrent readers performs the
    /// capture; the rest proceed with the still-cached epoch.
    fn maybe_refresh(&self) {
        let every = self.config.refresh_every_rows;
        if every == 0 {
            return;
        }
        let hint = self.source.rows_hint();
        let claimed = self.refresh_claimed_at.load(Ordering::Relaxed);
        if hint.saturating_sub(claimed) < every {
            return;
        }
        if self
            .refresh_claimed_at
            .compare_exchange(claimed, hint, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            self.refresh();
        }
    }

    /// Executes a typed [`Query`] against the current epoch.
    #[must_use]
    pub fn execute(&self, query: &Query) -> QueryResponse {
        let snap = self.current();
        QueryResponse {
            epoch: snap.epoch(),
            rows: snap.rows_processed(),
            answer: answer_query(snap.snapshot(), query, self.config.confidence),
        }
    }

    /// Subset-sum estimate with confidence interval for a sorted item list.
    #[must_use]
    pub fn subset_estimate(&self, items: &[u64]) -> (SubsetEstimate, ConfidenceInterval) {
        let snap = self.current();
        let estimate = snap.subset_estimate_items(items);
        let ci = estimate.confidence_interval(self.config.confidence);
        (estimate, ci)
    }

    /// Subset-sum estimate with confidence interval for an arbitrary predicate —
    /// the fully disaggregated form: the subset may be decided per query.
    pub fn subset_estimate_where<F>(&self, predicate: F) -> (SubsetEstimate, ConfidenceInterval)
    where
        F: FnMut(u64) -> bool,
    {
        let snap = self.current();
        let estimate = snap.subset_estimate(predicate);
        let ci = estimate.confidence_interval(self.config.confidence);
        (estimate, ci)
    }

    /// The `k` most frequent retained items, descending.
    #[must_use]
    pub fn top_k(&self, k: usize) -> Vec<(u64, f64)> {
        self.current().top_k(k)
    }

    /// Items whose estimated count exceeds `phi · rows`, descending.
    #[must_use]
    pub fn frequent_items(&self, phi: f64) -> Vec<(u64, f64)> {
        self.current().frequent_items(phi)
    }

    /// Keyed group-by: one [`SubsetEstimate`] per distinct key produced by
    /// `key_of`, in first-seen entry order — the marginal/roll-up query of the
    /// paper's Figure 6. See [`SketchSnapshot::marginals`].
    pub fn marginals<K, F>(&self, key_of: F) -> Vec<(K, SubsetEstimate)>
    where
        K: Eq + std::hash::Hash + Clone,
        F: FnMut(u64) -> Option<K>,
    {
        self.current().marginals(key_of)
    }
}

/// Evaluates one typed [`Query`] against a snapshot at the given confidence —
/// the single evaluation routine behind [`QueryServer::execute`], exposed so
/// other serving surfaces (the wire-protocol daemon) answer **bit-identically**
/// to an in-process server by construction: same snapshot, same query, same
/// confidence ⇒ same bytes in the answer.
///
/// # Panics
///
/// Inherits the snapshot methods' domain contracts: `FrequentItems` requires
/// `phi ∈ (0, 1)` and the confidence must lie in `(0, 1)` for estimate
/// queries. Callers decoding untrusted input must validate first (the wire
/// layer does).
#[must_use]
pub fn answer_query(snap: &SketchSnapshot, query: &Query, confidence: f64) -> QueryAnswer {
    match query {
        Query::SubsetSum { items } => {
            let estimate = snap.subset_estimate_items(items);
            QueryAnswer::Estimate {
                ci: estimate.confidence_interval(confidence),
                estimate,
            }
        }
        Query::Proportion { items } => {
            let estimate =
                scale_to_proportion(snap.subset_estimate_items(items), snap.rows_processed());
            QueryAnswer::Estimate {
                ci: estimate.confidence_interval(confidence),
                estimate,
            }
        }
        Query::TopK { k } => QueryAnswer::Items(snap.top_k(*k)),
        Query::FrequentItems { phi } => QueryAnswer::Items(snap.frequent_items(*phi)),
        Query::RankQuantile { q } => QueryAnswer::Rank(snap.rank_quantile(*q)),
    }
}

/// Rescales a row-unit subset estimate into proportion units (`sum / rows`,
/// variance `/ rows²`). A zero-row snapshot yields a zero proportion with zero
/// variance.
fn scale_to_proportion(estimate: SubsetEstimate, rows: u64) -> SubsetEstimate {
    if rows == 0 {
        return SubsetEstimate {
            sum: 0.0,
            variance: 0.0,
            items_in_sketch: estimate.items_in_sketch,
        };
    }
    let scale = 1.0 / rows as f64;
    SubsetEstimate {
        sum: estimate.sum * scale,
        variance: estimate.variance * scale * scale,
        items_in_sketch: estimate.items_in_sketch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::traits::StreamSketch;

    fn sketch_with(rows: &[u64]) -> UnbiasedSpaceSaving {
        let mut sketch = UnbiasedSpaceSaving::with_seed(64, 9);
        sketch.offer_batch(rows);
        sketch
    }

    #[test]
    fn server_over_owned_sketch_answers_like_the_snapshot() {
        let rows: Vec<u64> = (0..5_000u64).map(|i| i % 100).collect();
        let sketch = sketch_with(&rows);
        let direct = sketch.snapshot();
        let server = QueryServer::new(sketch, QueryServerConfig::new());

        let items: Vec<u64> = (0..30).collect();
        let (est, ci) = server.subset_estimate(&items);
        let reference = direct.subset_estimate_items(&items);
        assert_eq!(est.sum, reference.sum);
        assert_eq!(est.variance, reference.variance);
        assert!(ci.contains(est.sum));
        assert_eq!(server.top_k(5), direct.top_k(5));
        assert_eq!(server.frequent_items(0.005), direct.frequent_items(0.005));
    }

    #[test]
    fn execute_covers_every_query_variant() {
        let rows: Vec<u64> = (0..8_000u64).map(|i| i % 200).collect();
        let server = QueryServer::new(sketch_with(&rows), QueryServerConfig::new());
        let items: Vec<u64> = (0..50).collect();

        let r = server.execute(&Query::SubsetSum { items: items.clone() });
        assert_eq!(r.epoch, 1);
        assert_eq!(r.rows, 8_000);
        let QueryAnswer::Estimate { estimate, ci } = &r.answer else {
            panic!("subset sum must answer with an estimate")
        };
        assert!(estimate.sum > 0.0);
        assert!(ci.upper >= ci.lower);

        let r = server.execute(&Query::Proportion { items });
        let QueryAnswer::Estimate { estimate, .. } = &r.answer else {
            panic!("proportion must answer with an estimate")
        };
        assert!((0.0..=1.0).contains(&estimate.sum));
        assert!((estimate.sum - 0.25).abs() < 0.15);

        let QueryAnswer::Items(top) = server.execute(&Query::TopK { k: 3 }).answer else {
            panic!("top-k must answer with items")
        };
        assert_eq!(top.len(), 3);

        let QueryAnswer::Items(heavy) =
            server.execute(&Query::FrequentItems { phi: 0.004 }).answer
        else {
            panic!("frequent items must answer with items")
        };
        assert!(heavy.len() <= 200);

        let QueryAnswer::Rank(rank) = server.execute(&Query::RankQuantile { q: 0.0 }).answer
        else {
            panic!("rank quantile must answer with a rank")
        };
        assert_eq!(rank, server.top_k(1).first().copied());
    }

    #[test]
    fn refresh_bumps_the_epoch_and_old_snapshots_stay_valid() {
        let rows: Vec<u64> = (0..1_000u64).collect();
        let server = QueryServer::new(sketch_with(&rows), QueryServerConfig::new());
        let before = server.current();
        assert_eq!(before.epoch(), 1);
        assert_eq!(server.refresh(), 2);
        assert_eq!(server.refresh(), 3);
        assert_eq!(server.epoch(), 3);
        // The pre-refresh Arc is untouched.
        assert_eq!(before.epoch(), 1);
        assert_eq!(before.rows_processed(), 1_000);
    }

    #[test]
    fn auto_refresh_follows_engine_ingest_progress() {
        let engine = ShardedIngestEngine::new(
            EngineConfig::new(2, 64, 3).with_batch_rows(64),
        );
        let server = QueryServer::new(
            &engine,
            QueryServerConfig::new().refresh_every_rows(1_000),
        );
        assert_eq!(server.current().epoch(), 1);
        assert_eq!(server.current().rows_processed(), 0);

        let mut handle = engine.handle();
        for i in 0..5_000u64 {
            handle.offer(i % 40);
        }
        handle.flush();
        // The hint has advanced well past the threshold: the next read refreshes.
        let snap = server.current();
        assert!(snap.epoch() >= 2, "epoch {}", snap.epoch());
        assert_eq!(snap.rows_processed(), 5_000);
        // No further ingest => no further refresh.
        let epoch = server.epoch();
        let _ = server.current();
        assert_eq!(server.epoch(), epoch);

        drop(server);
        let merged = engine.finish();
        assert_eq!(merged.rows_processed(), 5_000);
    }

    #[test]
    fn stale_concurrent_refresh_cannot_publish_over_a_fresher_snapshot() {
        // Deterministically replay the losing side of a refresh race: a capture
        // whose rows_hint was read *before* a fresher refresh published must be
        // discarded — the cache never moves backwards in ingest time — while a
        // same-hint refresh (e.g. explicit refresh with no new rows) still
        // publishes.
        use std::sync::atomic::{AtomicU64, Ordering};

        struct ScriptedSource(AtomicU64);
        impl SnapshotSource for ScriptedSource {
            fn capture(&self) -> SketchSnapshot {
                let rows = self.0.load(Ordering::Relaxed);
                SketchSnapshot::new(vec![(1, rows as f64)], 0.0, rows, 4)
            }
            fn rows_hint(&self) -> u64 {
                self.0.load(Ordering::Relaxed)
            }
        }

        let source = Arc::new(ScriptedSource(AtomicU64::new(0)));
        let server = QueryServer::new(Arc::clone(&source), QueryServerConfig::new());

        source.0.store(100, Ordering::Relaxed);
        assert_eq!(server.refresh(), 2);
        assert_eq!(server.current().rows_processed(), 100);

        // A racer that read its hint at 50 (before the 100-row refresh landed)
        // tries to publish: it must be discarded, epoch and contents unchanged.
        source.0.store(50, Ordering::Relaxed);
        assert_eq!(server.refresh(), 2);
        assert_eq!(server.current().rows_processed(), 100);
        assert_eq!(server.epoch(), 2);

        // Same-hint refreshes still publish (owned sketches rely on this).
        source.0.store(100, Ordering::Relaxed);
        assert_eq!(server.refresh(), 3);

        // Fresher hints publish as usual.
        source.0.store(150, Ordering::Relaxed);
        assert_eq!(server.refresh(), 4);
        assert_eq!(server.current().rows_processed(), 150);
    }

    #[test]
    fn manual_only_server_never_auto_refreshes() {
        let engine = ShardedIngestEngine::new(EngineConfig::new(2, 64, 4));
        let server = QueryServer::new(&engine, QueryServerConfig::new());
        let mut handle = engine.handle();
        for i in 0..10_000u64 {
            handle.offer(i % 10);
        }
        handle.flush();
        assert_eq!(server.current().epoch(), 1);
        assert_eq!(server.current().rows_processed(), 0);
        assert_eq!(server.refresh(), 2);
        assert_eq!(server.current().rows_processed(), 10_000);
        drop(server);
        let _ = engine.finish();
    }

    #[test]
    fn proportion_scaling_handles_zero_rows() {
        let scaled = scale_to_proportion(
            SubsetEstimate {
                sum: 5.0,
                variance: 4.0,
                items_in_sketch: 2,
            },
            0,
        );
        assert_eq!(scaled.sum, 0.0);
        assert_eq!(scaled.variance, 0.0);
        let scaled = scale_to_proportion(
            SubsetEstimate {
                sum: 5.0,
                variance: 4.0,
                items_in_sketch: 2,
            },
            10,
        );
        assert_eq!(scaled.sum, 0.5);
        assert!((scaled.variance - 0.04).abs() < 1e-15);
    }

    #[test]
    fn marginals_through_the_server_match_the_snapshot() {
        let rows: Vec<u64> = (0..4_000u64).map(|i| i % 64).collect();
        let sketch = sketch_with(&rows);
        let direct = sketch.snapshot().marginals(|item| Some(item % 8));
        let server = QueryServer::new(sketch, QueryServerConfig::new());
        let served = server.marginals(|item| Some(item % 8));
        assert_eq!(direct.len(), served.len());
        for ((k1, e1), (k2, e2)) in direct.iter().zip(&served) {
            assert_eq!(k1, k2);
            assert_eq!(e1.sum, e2.sum);
            assert_eq!(e1.variance, e2.variance);
        }
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn invalid_confidence_panics() {
        let _ = QueryServerConfig::new().confidence(1.0);
    }

    #[test]
    fn malformed_rank_quantile_cannot_panic_the_read_path() {
        // Regression: a NaN or out-of-range q reaching the server used to assert!
        // inside SketchSnapshot::rank_quantile and take the reader down.
        let rows: Vec<u64> = (0..1_000u64).map(|i| i % 25).collect();
        let server = QueryServer::new(sketch_with(&rows), QueryServerConfig::new());
        for q in [f64::NAN, -0.5, 1.5, f64::INFINITY, f64::NEG_INFINITY] {
            let response = server.execute(&Query::RankQuantile { q });
            assert_eq!(response.answer, QueryAnswer::Rank(None), "q = {q}");
        }
        let QueryAnswer::Rank(Some(_)) = server.execute(&Query::RankQuantile { q: 0.5 }).answer
        else {
            panic!("valid quantiles must still answer");
        };
    }

    #[test]
    fn empty_snapshot_answers_every_variant_with_finite_zeros() {
        // A server over a 0-row source must answer all five query variants with
        // finite values — zero estimates, zero variance, degenerate [0, 0]
        // intervals — never NaN and never a panic.
        let server = QueryServer::new(
            UnbiasedSpaceSaving::with_seed(16, 1),
            QueryServerConfig::new(),
        );
        let items: Vec<u64> = vec![1, 2, 3];

        for query in [
            Query::SubsetSum { items: items.clone() },
            Query::Proportion { items },
        ] {
            let response = server.execute(&query);
            assert_eq!(response.rows, 0);
            let QueryAnswer::Estimate { estimate, ci } = response.answer else {
                panic!("{query:?} must answer with an estimate")
            };
            assert_eq!(estimate.sum, 0.0, "{query:?}");
            assert_eq!(estimate.variance, 0.0, "{query:?}");
            assert_eq!(estimate.std_dev(), 0.0, "{query:?}");
            assert!(ci.lower.is_finite() && ci.upper.is_finite(), "{query:?}");
            assert_eq!((ci.lower, ci.upper), (0.0, 0.0), "{query:?}");
        }

        assert_eq!(
            server.execute(&Query::TopK { k: 5 }).answer,
            QueryAnswer::Items(vec![])
        );
        assert_eq!(
            server.execute(&Query::FrequentItems { phi: 0.01 }).answer,
            QueryAnswer::Items(vec![])
        );
        assert_eq!(
            server.execute(&Query::RankQuantile { q: 0.5 }).answer,
            QueryAnswer::Rank(None)
        );
    }
}
