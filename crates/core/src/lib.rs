//! # Unbiased Space Saving
//!
//! A from-scratch Rust implementation of the data sketch introduced in *"Data Sketches
//! for Disaggregated Subset Sum and Frequent Item Estimation"* (Daniel Ting, SIGMOD
//! 2018), together with every substrate it builds on.
//!
//! The sketch answers two questions about a massive, *disaggregated* stream — one
//! where the per-item metric of interest (clicks per ad, bytes per IP flow, events per
//! user) is spread over many rows:
//!
//! 1. **Disaggregated subset sums**: an unbiased estimate of
//!    `Σ_{items i in S} n_i` for *any* subset `S` chosen after the fact, with a
//!    variance estimate and a confidence interval.
//! 2. **Frequent items**: the heavy hitters and consistent estimates of their
//!    frequencies.
//!
//! ## Quick start
//!
//! ```
//! use uss_core::prelude::*;
//!
//! // Sketch a click stream with 100 bins.
//! let mut sketch = UnbiasedSpaceSaving::with_seed(100, 42);
//! for user in 0u64..10_000 {
//!     // each user clicks 1 + (user % 7) times
//!     for _ in 0..=(user % 7) {
//!         sketch.offer(user);
//!     }
//! }
//!
//! // Unbiased estimate of total clicks from users 0..1000, with a 95% CI.
//! let snapshot = sketch.snapshot();
//! let (estimate, ci) = snapshot.subset_confidence_interval(|u| u < 1000, 0.95);
//! assert!(estimate.sum >= 0.0);
//! assert!(ci.upper >= ci.lower);
//!
//! // Heavy hitters.
//! let top = snapshot.top_k(5);
//! assert_eq!(top.len(), 5);
//! ```
//!
//! Hot ingest paths should prefer [`traits::StreamSketch::offer_batch`] (exactly
//! equivalent, measurably faster), and concurrent multi-producer pipelines the
//! [`engine`] module's [`ShardedIngestEngine`](engine::ShardedIngestEngine). For
//! serving queries *while* ingest continues, put a [`query::QueryServer`] in front:
//! it caches an epoch-versioned snapshot and answers typed queries with variance
//! and confidence intervals from any number of reader threads.
//!
//! ## Crate layout
//!
//! | module | contents |
//! |--------|----------|
//! | [`space_saving`] | [`UnbiasedSpaceSaving`], [`DeterministicSpaceSaving`], the weighted and time-decayed generalisations |
//! | [`stream_summary`] | the O(1)-update counter structure of Metwally et al. |
//! | [`reduction`] | thresholding vs PPS-subsampling reduction operations (section 5.3) |
//! | [`merge`] | biased Misra-Gries merge and the unbiased PPS merge (section 5.5) |
//! | [`engine`] | the concurrent sharded ingest engine: multi-producer block ingestion into live, queryable worker shards folded with the unbiased merge |
//! | [`metrics`] | lock-free runtime telemetry: cache-padded counters/gauges, log₂ histograms, the deterministic [`Clock`](metrics::Clock) trait, and the static metric-family registry |
//! | [`spsc`] | lock-free single-producer/single-consumer block rings — the engines' ingest transport |
//! | [`query`] | the concurrent query-serving layer: epoch-versioned cached snapshots over a live engine or sketch, typed queries with variance and confidence intervals |
//! | [`temporal`] | the time-partitioned subsystem: windowed ingest over a bucket ring, time-range queries, tiered retention with graceful aging |
//! | [`persist`] | durable snapshots: versioned checksummed binary codec, engine checkpoint files, bucket-ring/temporal frames, cold-file serving |
//! | [`distributed`] | map-reduce style sharded sketching, a deterministic convenience wrapper over the engine |
//! | [`estimator`] | query-side snapshots: subset sums, frequent items, proportions, keyed marginals |
//! | [`variance`] | the equation-5 variance estimator and Normal confidence intervals |
//! | [`hash`] | fast hashing of user-level keys to item identifiers |
//! | [`traits`] | the [`StreamSketch`](traits::StreamSketch) family of traits |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
// The only `unsafe` in the workspace lives in `spsc`; inside its `unsafe fn`
// bodies every unsafe operation must still be wrapped in an explicit `unsafe`
// block carrying its own `// SAFETY:` justification (uss-lint rule R4).
#![deny(unsafe_op_in_unsafe_fn)]

pub mod distributed;
pub mod engine;
pub mod estimator;
pub mod hash;
pub mod merge;
pub mod metrics;
pub mod persist;
pub mod query;
pub mod reduction;
pub mod space_saving;
pub mod spsc;
pub mod stream_summary;
pub mod temporal;
pub mod traits;
pub mod variance;

pub use engine::{
    EngineConfig, EngineConfigError, EngineError, IngestHandle, ShardFailure, ShardFault,
    ShardedIngestEngine,
};
pub use estimator::{SketchSnapshot, SubsetEstimate};
pub use metrics::{
    Clock, Counter, EngineMetrics, Gauge, Histogram, HistogramSnapshot, ManualClock,
    RingCounters, ShardMetrics, TemporalMetrics,
};
pub use persist::{ColdSnapshot, PayloadReader, PayloadWriter, PersistError, SketchKind};
pub use query::{
    answer_query, Query, QueryAnswer, QueryResponse, QueryServer, QueryServerConfig,
    SnapshotSource, VersionedSnapshot,
};
pub use space_saving::{
    DecayedSpaceSaving, DeterministicSpaceSaving, UnbiasedSpaceSaving, WeightedSpaceSaving,
};
pub use stream_summary::StreamSummary;
pub use temporal::{
    TemporalConfig, TemporalConfigError, TemporalIngestEngine, TemporalIngestHandle,
    TemporalRangeSource, TimeRange, WindowConfig, WindowConfigError, WindowedSketchStore,
};
pub use traits::{MergeableSketch, StreamSketch, WeightedStreamSketch};
pub use variance::{normal_confidence_interval, subset_variance_estimate, ConfidenceInterval};

/// Commonly used items, for glob import in examples and applications.
pub mod prelude {
    pub use crate::distributed::DistributedSketcher;
    pub use crate::engine::{EngineConfig, IngestHandle, ShardedIngestEngine};
    pub use crate::estimator::{SketchSnapshot, SubsetEstimate};
    pub use crate::hash::{combine, hash_bytes, hash_fields};
    pub use crate::merge::{merge_deterministic, merge_misra_gries, merge_unbiased};
    pub use crate::persist::{ColdSnapshot, PersistError, SketchKind};
    pub use crate::query::{
        Query, QueryAnswer, QueryResponse, QueryServer, QueryServerConfig, SnapshotSource,
        VersionedSnapshot,
    };
    pub use crate::space_saving::{
        DecayedSpaceSaving, DeterministicSpaceSaving, UnbiasedSpaceSaving, WeightedSpaceSaving,
    };
    pub use crate::temporal::{
        TemporalConfig, TemporalIngestEngine, TemporalIngestHandle, TemporalRangeSource,
        TimeRange, WindowConfig, WindowedSketchStore,
    };
    pub use crate::traits::{MergeableSketch, StreamSketch, WeightedStreamSketch};
    pub use crate::variance::{normal_confidence_interval, ConfidenceInterval};
}
