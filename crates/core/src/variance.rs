//! Variance estimation and Normal confidence intervals for subset-sum estimates
//! (sections 6.4 and 6.5 of the paper).
//!
//! The martingale argument of Theorem 2 bounds the variance of a subset-sum estimate
//! by `E[N̂_min · κ_S]`, where `κ_S` counts the non-deterministic additions of subset
//! items. The paper's plug-in estimator replaces `κ_S` by `N̂_min · C_S` with `C_S`
//! the number of subset items present in the sketch (at least 1), giving the upward
//! biased but practically accurate estimator of equation 5:
//!
//! ```text
//!   Var̂(N̂_S) = N̂_min² · max(1, C_S)
//! ```
//!
//! Combined with a Normal approximation this yields confidence intervals whose
//! empirical coverage matches or exceeds the nominal level whenever the subset holds
//! enough items for the CLT to apply (Figure 8 of the paper, reproduced by
//! `uss-eval`).

/// The paper's variance estimator (equation 5): `N̂_min² · max(1, C_S)`.
///
/// * `min_count` — the sketch's minimum counter `N̂_min` (0 while the sketch is not
///   full, in which case counts are exact and the variance is 0).
/// * `items_in_subset` — `C_S`, the number of sketch entries that satisfy the subset
///   predicate.
#[must_use]
pub fn subset_variance_estimate(min_count: f64, items_in_subset: usize) -> f64 {
    if min_count <= 0.0 {
        return 0.0;
    }
    min_count * min_count * (items_in_subset.max(1) as f64)
}

/// A two-sided confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower endpoint (not truncated at zero; callers may clamp for counts).
    pub lower: f64,
    /// Upper endpoint.
    pub upper: f64,
    /// Nominal coverage level, e.g. `0.95`.
    pub confidence: f64,
}

impl ConfidenceInterval {
    /// Whether the interval contains `value`.
    #[must_use]
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lower && value <= self.upper
    }

    /// Interval width.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }

    /// The same interval with its lower endpoint clamped at zero (counts cannot be
    /// negative).
    #[must_use]
    pub fn clamped_at_zero(self) -> Self {
        Self {
            lower: self.lower.max(0.0),
            ..self
        }
    }
}

/// Builds a Normal-approximation confidence interval `estimate ± z · sqrt(variance)`.
///
/// # Panics
///
/// Panics if `confidence` is not strictly between 0 and 1 or `variance` is negative.
#[must_use]
pub fn normal_confidence_interval(
    estimate: f64,
    variance: f64,
    confidence: f64,
) -> ConfidenceInterval {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1)"
    );
    assert!(variance >= 0.0, "variance must be non-negative");
    let z = normal_quantile(0.5 + confidence / 2.0);
    let half_width = z * variance.sqrt();
    ConfidenceInterval {
        lower: estimate - half_width,
        upper: estimate + half_width,
        confidence,
    }
}

/// Inverse CDF (quantile function) of the standard Normal distribution.
///
/// Uses Acklam's rational approximation (relative error below 1.15e-9 over the whole
/// open interval), refined with one Halley step of the complementary error function
/// series; accurate to roughly 1e-12 for the probabilities used in practice.
///
/// The edge probabilities are handled like the mathematical limits rather than as
/// errors: `normal_quantile(0.0)` is `-INFINITY` and `normal_quantile(1.0)` is
/// `INFINITY`, so a caller sweeping confidence levels up to the degenerate ones gets
/// the correct (infinitely wide) interval instead of a panic or a NaN.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` (including NaN).
#[must_use]
pub fn normal_quantile(p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }

    // Coefficients for Acklam's approximation.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step using the Normal CDF evaluated via erfc. In the
    // extreme tails (|x| ≳ 37.6, i.e. subnormal p) the exp() overflows and the step
    // degenerates to inf/NaN arithmetic; the unrefined Acklam value (relative error
    // < 1.15e-9) is returned instead of propagating the NaN.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    let refined = x - u / (1.0 + x * u / 2.0);
    if refined.is_finite() {
        refined
    } else {
        x
    }
}

/// Standard Normal cumulative distribution function, via a high-accuracy `erfc`
/// approximation (Numerical Recipes' `erfccheb`-style rational Chebyshev fit).
#[must_use]
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Complementary error function accurate to ~1e-12 (W. J. Cody style rational
/// approximation via the scaled complementary error function).
#[must_use]
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 2.0 / (2.0 + z);
    let ty = 4.0 * t - 2.0;
    const COF: [f64; 28] = [
        -1.3026537197817094,
        6.419_697_923_564_902e-1,
        1.9476473204185836e-2,
        -9.561_514_786_808_63e-3,
        -9.46595344482036e-4,
        3.66839497852761e-4,
        4.2523324806907e-5,
        -2.0278578112534e-5,
        -1.624290004647e-6,
        1.303655835580e-6,
        1.5626441722e-8,
        -8.5238095915e-8,
        6.529054439e-9,
        5.059343495e-9,
        -9.91364156e-10,
        -2.27365122e-10,
        9.6467911e-11,
        2.394038e-12,
        -6.886027e-12,
        8.94487e-13,
        3.13092e-13,
        -1.12708e-13,
        3.81e-16,
        7.106e-15,
        -1.523e-15,
        -9.4e-17,
        1.21e-16,
        -2.8e-17,
    ];
    let mut d = 0.0;
    let mut dd = 0.0;
    for &c in COF.iter().rev().take(COF.len() - 1) {
        let tmp = d;
        d = ty * d - dd + c;
        dd = tmp;
    }
    let ans = t * (-z * z + 0.5 * (COF[0] + ty * d) - dd).exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variance_estimator_matches_equation_five() {
        assert_eq!(subset_variance_estimate(10.0, 3), 300.0);
        assert_eq!(subset_variance_estimate(10.0, 0), 100.0, "C_S floors at 1");
        assert_eq!(subset_variance_estimate(0.0, 5), 0.0, "exact sketch has no variance");
    }

    #[test]
    fn normal_quantile_known_values() {
        // Standard table values.
        let cases = [
            (0.5, 0.0),
            (0.975, 1.959_963_984_540_054),
            (0.025, -1.959_963_984_540_054),
            (0.95, 1.644_853_626_951_472),
            (0.995, 2.575_829_303_548_901),
            (0.841_344_746_068_542_9, 1.0),
        ];
        for (p, expected) in cases {
            let got = normal_quantile(p);
            assert!(
                (got - expected).abs() < 1e-8,
                "quantile({p}) = {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn quantile_and_cdf_are_inverses() {
        for &p in &[0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999] {
            let x = normal_quantile(p);
            let back = normal_cdf(x);
            assert!((back - p).abs() < 1e-10, "p {p} -> x {x} -> {back}");
        }
    }

    #[test]
    fn erfc_known_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-12);
        assert!((erfc(1.0) - 0.157_299_207_050_285).abs() < 1e-10);
        assert!((erfc(-1.0) - 1.842_700_792_949_715).abs() < 1e-10);
        assert!(erfc(6.0) < 1e-15);
    }

    #[test]
    fn confidence_interval_is_symmetric_and_contains_estimate() {
        let ci = normal_confidence_interval(100.0, 25.0, 0.95);
        assert!(ci.contains(100.0));
        assert!((ci.upper - 100.0 - (100.0 - ci.lower)).abs() < 1e-9);
        assert!((ci.width() - 2.0 * 1.959_963_984_540_054 * 5.0).abs() < 1e-6);
        assert_eq!(ci.confidence, 0.95);
    }

    #[test]
    fn clamped_interval_does_not_go_negative() {
        let ci = normal_confidence_interval(2.0, 100.0, 0.95).clamped_at_zero();
        assert_eq!(ci.lower, 0.0);
        assert!(ci.upper > 2.0);
    }

    #[test]
    fn zero_variance_interval_is_degenerate() {
        let ci = normal_confidence_interval(7.0, 0.0, 0.9);
        assert_eq!(ci.lower, 7.0);
        assert_eq!(ci.upper, 7.0);
        assert!(ci.contains(7.0));
        assert!(!ci.contains(7.1));
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn invalid_confidence_panics() {
        let _ = normal_confidence_interval(0.0, 1.0, 1.0);
    }

    #[test]
    fn quantile_edges_are_the_mathematical_limits() {
        assert_eq!(normal_quantile(0.0), f64::NEG_INFINITY);
        assert_eq!(normal_quantile(1.0), f64::INFINITY);
    }

    #[test]
    fn quantile_tail_accuracy_against_reference_z_values() {
        // Reference values from standard Normal tables (scipy.stats.norm.ppf).
        let cases = [
            (1e-3, -3.090_232_306_167_813),
            (1e-4, -3.719_016_485_455_709),
            (1e-6, -4.753_424_308_822_899),
        ];
        for (p, expected) in cases {
            let got = normal_quantile(p);
            assert!(
                (got - expected).abs() < 1e-8,
                "quantile({p}) = {got}, expected {expected}"
            );
            // The upper tail mirrors the lower tail.
            let upper = normal_quantile(1.0 - p);
            assert!(
                (upper + expected).abs() < 1e-7,
                "quantile({}) = {upper}, expected {}",
                1.0 - p,
                -expected
            );
        }
    }

    #[test]
    fn quantile_deep_tail_round_trips_through_the_cdf() {
        for &p in &[1e-7, 1e-8, 1e-10] {
            let x = normal_quantile(p);
            assert!(x.is_finite() && x < -5.0);
            let back = normal_cdf(x);
            assert!(
                ((back - p) / p).abs() < 1e-6,
                "p {p} -> x {x} -> {back}"
            );
        }
    }

    #[test]
    fn quantile_subnormal_probability_is_finite_not_nan() {
        // The Halley refinement overflows out here; the raw Acklam value must be
        // returned rather than a NaN.
        let x = normal_quantile(5e-324);
        assert!(x.is_finite() && x < -35.0, "got {x}");
        let x = normal_quantile(1.0 - f64::EPSILON / 2.0);
        assert!(x.is_finite() && x > 8.0, "got {x}");
    }

    #[test]
    fn quantile_is_monotone_across_the_tail_switchovers() {
        let ps = [
            1e-12, 1e-9, 1e-6, 0.001, 0.02, 0.024, 0.0243, 0.025, 0.1, 0.5, 0.9, 0.975,
            0.9757, 0.976, 0.98, 0.999, 1.0 - 1e-6, 1.0 - 1e-9,
        ];
        for w in ps.windows(2) {
            assert!(
                normal_quantile(w[0]) < normal_quantile(w[1]),
                "quantile not increasing between {} and {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn negative_probability_panics() {
        let _ = normal_quantile(-0.1);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn probability_above_one_panics() {
        let _ = normal_quantile(1.5);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn nan_probability_panics() {
        let _ = normal_quantile(f64::NAN);
    }

    #[test]
    fn monte_carlo_coverage_of_normal_interval() {
        // Sanity check the plumbing end-to-end: simulate Normal data, build 95%
        // intervals for the mean of 30 observations, and verify coverage.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let reps = 4000;
        let n = 30;
        let mut covered = 0;
        for _ in 0..reps {
            // Sum of n standard normals via Box-Muller.
            let mut sum = 0.0;
            for _ in 0..n {
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                sum += (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            }
            let ci = normal_confidence_interval(sum, n as f64, 0.95);
            if ci.contains(0.0) {
                covered += 1;
            }
        }
        let coverage = covered as f64 / reps as f64;
        assert!(
            (coverage - 0.95).abs() < 0.02,
            "empirical coverage {coverage}"
        );
    }
}
