//! Common traits implemented by every sketch in this workspace.
//!
//! The evaluation harness and the examples are written against these traits so that
//! Unbiased Space Saving, Deterministic Space Saving, and the baseline sketches can be
//! swapped freely.

/// A sketch that ingests a *disaggregated* stream: one call per row, where each row is
/// a single occurrence of an item (the unit of analysis).
pub trait StreamSketch {
    /// Offers one row — a single occurrence of `item` with unit weight.
    fn offer(&mut self, item: u64);

    /// Total number of rows offered so far (including rows whose item was discarded).
    fn rows_processed(&self) -> u64;

    /// Point estimate of the total count of `item` over the whole stream. Items not
    /// currently retained estimate to `0`.
    fn estimate(&self, item: u64) -> f64;

    /// Every retained `(item, estimated count)` pair, in unspecified order.
    fn entries(&self) -> Vec<(u64, f64)>;

    /// Maximum number of retained items (the paper's `m`).
    fn capacity(&self) -> usize;

    /// Number of items currently retained.
    fn retained_len(&self) -> usize {
        self.entries().len()
    }

    /// Estimates the sum of counts over all items satisfying `predicate`
    /// (the disaggregated subset sum query).
    fn subset_sum(&self, predicate: &mut dyn FnMut(u64) -> bool) -> f64 {
        self.entries()
            .into_iter()
            .filter(|(item, _)| predicate(*item))
            .map(|(_, count)| count)
            .sum()
    }

    /// The `k` retained items with the largest estimated counts, descending.
    fn top_k(&self, k: usize) -> Vec<(u64, f64)> {
        let mut entries = self.entries();
        entries.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("counts are finite"));
        entries.truncate(k);
        entries
    }
}

/// A sketch that additionally accepts rows carrying an arbitrary non-negative weight
/// (e.g. bytes per packet rather than packet counts), per section 5.3 of the paper.
pub trait WeightedStreamSketch: StreamSketch {
    /// Offers one row carrying `weight` units of the metric for `item`.
    fn offer_weighted(&mut self, item: u64, weight: f64);
}

/// A sketch that can absorb the contents of another sketch of the same type, enabling
/// distributed and multi-dataset aggregation (section 5.5 of the paper).
pub trait MergeableSketch: Sized {
    /// Merges `other` into `self`. The result answers queries about the union of the
    /// two input streams.
    fn merge_from(&mut self, other: &Self);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy exact-counting sketch used to exercise the default trait methods.
    struct Exact {
        counts: std::collections::BTreeMap<u64, u64>,
        rows: u64,
    }

    impl StreamSketch for Exact {
        fn offer(&mut self, item: u64) {
            *self.counts.entry(item).or_insert(0) += 1;
            self.rows += 1;
        }
        fn rows_processed(&self) -> u64 {
            self.rows
        }
        fn estimate(&self, item: u64) -> f64 {
            self.counts.get(&item).copied().unwrap_or(0) as f64
        }
        fn entries(&self) -> Vec<(u64, f64)> {
            self.counts.iter().map(|(&i, &c)| (i, c as f64)).collect()
        }
        fn capacity(&self) -> usize {
            usize::MAX
        }
    }

    #[test]
    fn default_subset_sum_and_top_k() {
        let mut sketch = Exact {
            counts: Default::default(),
            rows: 0,
        };
        for item in [1u64, 1, 1, 2, 2, 3] {
            sketch.offer(item);
        }
        assert_eq!(sketch.rows_processed(), 6);
        assert_eq!(sketch.retained_len(), 3);
        assert_eq!(sketch.subset_sum(&mut |i| i != 3), 5.0);
        let top = sketch.top_k(2);
        assert_eq!(top, vec![(1, 3.0), (2, 2.0)]);
    }
}
