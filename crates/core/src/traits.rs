//! Common traits implemented by every sketch in this workspace.
//!
//! The evaluation harness and the examples are written against these traits so that
//! Unbiased Space Saving, Deterministic Space Saving, and the baseline sketches can be
//! swapped freely.

/// A sketch that ingests a *disaggregated* stream: one call per row, where each row is
/// a single occurrence of an item (the unit of analysis).
pub trait StreamSketch {
    /// Offers one row — a single occurrence of `item` with unit weight.
    fn offer(&mut self, item: u64);

    /// Offers a batch of rows, exactly equivalent to calling [`offer`](Self::offer)
    /// once per element of `items` in order (same final entries, same row count, and —
    /// for randomized sketches — the same random decisions under the same seed).
    ///
    /// The default implementation is the plain loop. Sketches override it where a
    /// genuinely faster batched form exists: the hash probe and bucket walk can be
    /// amortized over runs of equal items, and per-row bookkeeping hoisted out of the
    /// loop. Prefer this entry point on hot ingest paths; the engine and the
    /// evaluation harness feed sketches exclusively through it.
    fn offer_batch(&mut self, items: &[u64]) {
        for &item in items {
            self.offer(item);
        }
    }

    /// Total number of rows offered so far (including rows whose item was discarded).
    fn rows_processed(&self) -> u64;

    /// Point estimate of the total count of `item` over the whole stream. Items not
    /// currently retained estimate to `0`.
    fn estimate(&self, item: u64) -> f64;

    /// Every retained `(item, estimated count)` pair, in unspecified order.
    fn entries(&self) -> Vec<(u64, f64)>;

    /// Maximum number of retained items (the paper's `m`).
    fn capacity(&self) -> usize;

    /// Number of items currently retained.
    fn retained_len(&self) -> usize {
        self.entries().len()
    }

    /// Estimates the sum of counts over all items satisfying `predicate`
    /// (the disaggregated subset sum query).
    fn subset_sum(&self, predicate: &mut dyn FnMut(u64) -> bool) -> f64 {
        self.entries()
            .into_iter()
            .filter(|(item, _)| predicate(*item))
            .map(|(_, count)| count)
            .sum()
    }

    /// The `k` retained items with the largest estimated counts, descending.
    /// Uses a total order on the estimates, so a pathological (NaN) estimate can
    /// never panic query code.
    fn top_k(&self, k: usize) -> Vec<(u64, f64)> {
        let mut entries = self.entries();
        entries.sort_by(|a, b| b.1.total_cmp(&a.1));
        entries.truncate(k);
        entries
    }
}

/// A sketch that additionally accepts rows carrying an arbitrary non-negative weight
/// (e.g. bytes per packet rather than packet counts), per section 5.3 of the paper.
pub trait WeightedStreamSketch: StreamSketch {
    /// Offers one row carrying `weight` units of the metric for `item`.
    fn offer_weighted(&mut self, item: u64, weight: f64);

    /// Offers a batch of weighted rows, exactly equivalent to calling
    /// [`offer_weighted`](Self::offer_weighted) once per `(item, weight)` pair in
    /// order. The default implementation is the plain loop; see
    /// [`StreamSketch::offer_batch`] for when and why sketches override it.
    fn offer_weighted_batch(&mut self, rows: &[(u64, f64)]) {
        for &(item, weight) in rows {
            self.offer_weighted(item, weight);
        }
    }
}

/// A sketch that can absorb the contents of another sketch of the same type, enabling
/// distributed and multi-dataset aggregation (section 5.5 of the paper).
pub trait MergeableSketch: Sized {
    /// Merges `other` into `self`. The result answers queries about the union of the
    /// two input streams.
    fn merge_from(&mut self, other: &Self);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy exact-counting sketch used to exercise the default trait methods.
    struct Exact {
        counts: std::collections::BTreeMap<u64, u64>,
        rows: u64,
    }

    impl StreamSketch for Exact {
        fn offer(&mut self, item: u64) {
            *self.counts.entry(item).or_insert(0) += 1;
            self.rows += 1;
        }
        fn rows_processed(&self) -> u64 {
            self.rows
        }
        fn estimate(&self, item: u64) -> f64 {
            self.counts.get(&item).copied().unwrap_or(0) as f64
        }
        fn entries(&self) -> Vec<(u64, f64)> {
            self.counts.iter().map(|(&i, &c)| (i, c as f64)).collect()
        }
        fn capacity(&self) -> usize {
            usize::MAX
        }
    }

    #[test]
    fn default_subset_sum_and_top_k() {
        let mut sketch = Exact {
            counts: Default::default(),
            rows: 0,
        };
        for item in [1u64, 1, 1, 2, 2, 3] {
            sketch.offer(item);
        }
        assert_eq!(sketch.rows_processed(), 6);
        assert_eq!(sketch.retained_len(), 3);
        assert_eq!(sketch.subset_sum(&mut |i| i != 3), 5.0);
        let top = sketch.top_k(2);
        assert_eq!(top, vec![(1, 3.0), (2, 2.0)]);
    }

    #[test]
    fn default_offer_batch_matches_sequential_offers() {
        let mut batched = Exact {
            counts: Default::default(),
            rows: 0,
        };
        let mut sequential = Exact {
            counts: Default::default(),
            rows: 0,
        };
        let rows = [3u64, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5];
        batched.offer_batch(&rows);
        for &item in &rows {
            sequential.offer(item);
        }
        assert_eq!(batched.rows_processed(), sequential.rows_processed());
        assert_eq!(batched.entries(), sequential.entries());
    }

    #[test]
    fn top_k_tolerates_nan_estimates() {
        /// A sketch whose entries contain a NaN estimate; `top_k` must not panic.
        struct Poisoned;
        impl StreamSketch for Poisoned {
            fn offer(&mut self, _item: u64) {}
            fn rows_processed(&self) -> u64 {
                0
            }
            fn estimate(&self, _item: u64) -> f64 {
                f64::NAN
            }
            fn entries(&self) -> Vec<(u64, f64)> {
                vec![(1, 2.0), (2, f64::NAN), (3, 1.0)]
            }
            fn capacity(&self) -> usize {
                3
            }
        }
        let top = Poisoned.top_k(3);
        assert_eq!(top.len(), 3);
        // The finite estimates keep their relative order.
        let finite: Vec<u64> = top
            .iter()
            .filter(|(_, c)| c.is_finite())
            .map(|(i, _)| *i)
            .collect();
        assert_eq!(finite, vec![1, 3]);
    }
}
