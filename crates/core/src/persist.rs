//! Durable sketch snapshots: a versioned, checksummed binary codec plus file
//! helpers, so sketches survive restarts, ship between nodes, and serve cold.
//!
//! Every sketch in this workspace is otherwise process-lifetime state; this module
//! is the persistence layer underneath [`crate::engine::ShardedIngestEngine::checkpoint`] /
//! [`restore`](crate::engine::ShardedIngestEngine::restore), the cold-serving
//! [`ColdSnapshot`] source for [`crate::query::QueryServer`], and the shard-file
//! merge path [`crate::distributed::DistributedSketcher::merge_files`]. Ting's
//! sketches are the ideal unit of durability: the unbiased PPS merge (section 5.5)
//! makes a shard file folded *later* statistically identical to a live merge, so a
//! checkpoint is not an approximation of the stream — it *is* the sketch.
//!
//! # File format
//!
//! Everything is little-endian. A file is one *frame*:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"USSK"
//! 4       2     format version  (currently 1)
//! 6       1     sketch kind     (see below)
//! 7       1     reserved        (0)
//! 8       8     payload length  n
//! 16      n     payload         (kind-specific, see below)
//! 16+n    8     CRC-64/ECMA checksum over bytes [0, 16+n)
//! ```
//!
//! | kind | payload |
//! |------|---------|
//! | 0 `Snapshot` | `capacity u64, rows u64, min_count f64, n u64, n × (item u64, count f64)` |
//! | 1 `Unbiased` | `capacity u64, rows u64, rng [u8; 32], n u64, n × item u64, b u64, b × (value u64, len u32, len × slot u32)` |
//! | 2 `Weighted` | `capacity u64, rows u64, total_weight f64, rng [u8; 32], n u64, n × item u64, n × count f64, n × heap u32` |
//! | 3 `EngineShard` | `shard u64, shards u64, capacity u64, seed u64,` then an `Unbiased` payload |
//! | 4 `Manifest` | `shards u64, capacity u64, seed u64, snapshots u64, rows u64` |
//! | 5 `Decayed` | `lambda f64, landmark f64, last_time f64,` then a `Weighted` payload |
//! | 6 `TemporalShard` | `shard u64,` temporal meta (7 × u64)`, late_rows u64, last_ts u64, f u64, f × (index u64, Unbiased payload), t u64, t × (k u64, k × tier bucket), terminal u8 [, tier bucket]` where a tier bucket is `start u64, end u64, rows u64, n u64, n × (item u64, count f64)` |
//! | 7 `TemporalManifest` | temporal meta (7 × u64)`, snapshots u64, rows u64` |
//! | 8 `TemporalLadderShard` | a `TemporalShard` payload, then `n u64, n × (level u64, tier bucket)` — the dyadic-ladder nodes, level 1 first, ascending starts within a level |
//!
//! The randomized sketches serialize their *full* state — the RNG (xoshiro256++
//! words), the counter-structure layout (bucket chains for the integer sketch, the
//! heap arrangement for the weighted one), not just the `(item, count)` pairs.
//! That is what makes restore bit-compatible: entry iteration order and every
//! min-label tie-break survive the round trip, so a restored sketch makes exactly
//! the decisions an uninterrupted one would, and goldens stay byte-stable across a
//! checkpoint boundary.
//!
//! Decoding never panics: wrong magic, unsupported version, wrong kind, truncated
//! or bit-flipped bytes, and images violating a sketch invariant (mass
//! conservation, heap order, bucket ordering) all come back as [`PersistError`].
//!
//! ```
//! use uss_core::prelude::*;
//! use uss_core::persist;
//!
//! let mut sketch = UnbiasedSpaceSaving::with_seed(64, 7);
//! for row in 0u64..10_000 {
//!     sketch.offer(row % 300);
//! }
//!
//! let dir = std::env::temp_dir().join(format!("uss-doc-persist-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("sketch.uss");
//! persist::save_unbiased(&path, &sketch).unwrap();
//!
//! // A cold file serves queries bit-identically to the live sketch.
//! let cold = persist::ColdSnapshot::open(&path).unwrap();
//! let server = QueryServer::new(cold, QueryServerConfig::new());
//! assert_eq!(server.top_k(5), sketch.snapshot().top_k(5));
//! # std::fs::remove_file(&path).unwrap();
//! ```

use std::fmt;
use std::path::{Path, PathBuf};

use crate::estimator::SketchSnapshot;
use crate::merge::{FOLD_MERGE_SALT, FOLD_OUT_SALT};
use crate::query::SnapshotSource;
use crate::space_saving::{DecayedSpaceSaving, UnbiasedSpaceSaving, WeightedSpaceSaving};
use crate::stream_summary::SummaryDump;
use crate::temporal::{TemporalConfig, TierBucket, WindowConfig, WindowedSketchStore};
use crate::traits::StreamSketch;

/// The four magic bytes opening every sketch file.
pub const MAGIC: [u8; 4] = *b"USSK";

/// The current format version written by [`encode`] and accepted by [`decode`].
pub const FORMAT_VERSION: u16 = 1;

const HEADER_LEN: usize = 16;
const CHECKSUM_LEN: usize = 8;
const RNG_STATE_LEN: usize = 32;

/// Upper bound on a decoded sketch capacity (bins). Real sketches use at most
/// tens of thousands of bins; this bound exists so a crafted frame declaring an
/// absurd capacity is rejected as [`PersistError::Corrupt`] *before* anything
/// sizes an allocation from it — part of the never-panic totality guarantee.
pub const MAX_DECODED_CAPACITY: u64 = 1 << 26;

/// Validates a capacity field read from a frame: positive, bounded, and
/// convertible to `usize`.
fn checked_capacity(capacity: u64) -> Result<usize, PersistError> {
    if capacity == 0 {
        return Err(PersistError::Corrupt("capacity must be positive".into()));
    }
    if capacity > MAX_DECODED_CAPACITY {
        return Err(PersistError::Corrupt(format!(
            "capacity {capacity} exceeds the decodable maximum {MAX_DECODED_CAPACITY}"
        )));
    }
    capacity
        .try_into()
        .map_err(|_| PersistError::Corrupt(format!("capacity {capacity} overflows usize")))
}

/// What a frame holds; byte 6 of the header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SketchKind {
    /// A cold [`SketchSnapshot`]: entries + `N̂_min` + rows. Enough to answer every
    /// estimator query, but not to resume ingest.
    Snapshot = 0,
    /// A full [`UnbiasedSpaceSaving`] including RNG and counter-structure state;
    /// resumable bit-compatibly.
    Unbiased = 1,
    /// A full [`WeightedSpaceSaving`] including RNG and heap state; resumable
    /// bit-compatibly.
    Weighted = 2,
    /// One engine shard: the shard's position and engine configuration echo plus
    /// its full unbiased sketch. Written by
    /// [`crate::engine::ShardedIngestEngine::checkpoint`].
    EngineShard = 3,
    /// The engine checkpoint manifest tying the shard files together.
    Manifest = 4,
    /// A full [`DecayedSpaceSaving`]: the forward-decay parameters (decay rate,
    /// landmark, last-update time) plus the complete inner weighted sketch
    /// (RNG and heap state); resumable bit-compatibly.
    Decayed = 5,
    /// One temporal shard's bucket ring: the fine buckets (each a full
    /// resumable unbiased sketch), the compacted retention tiers and the
    /// terminal bucket, plus the window-geometry echo. Written by
    /// [`crate::temporal::TemporalIngestEngine::checkpoint`].
    TemporalShard = 6,
    /// The temporal checkpoint manifest tying the bucket-ring files together.
    TemporalManifest = 7,
    /// A temporal bucket ring plus its dyadic range-merge ladder: a
    /// [`Self::TemporalShard`] payload followed by the pre-merged ladder
    /// nodes, so a restored shard serves wide ranges at full speed without
    /// rebuilding the index first. Every node is revalidated against the ring
    /// it covers on decode. Written by
    /// [`crate::temporal::TemporalIngestEngine::checkpoint`].
    TemporalLadderShard = 8,
}

impl SketchKind {
    /// The header byte encoding this kind — the inverse of [`Self::from_byte`].
    /// Exists so decode paths compare kind bytes without an `as` cast.
    pub(crate) fn byte(self) -> u8 {
        self as u8
    }

    fn from_byte(byte: u8) -> Option<Self> {
        match byte {
            0 => Some(Self::Snapshot),
            1 => Some(Self::Unbiased),
            2 => Some(Self::Weighted),
            3 => Some(Self::EngineShard),
            4 => Some(Self::Manifest),
            5 => Some(Self::Decayed),
            6 => Some(Self::TemporalShard),
            7 => Some(Self::TemporalManifest),
            8 => Some(Self::TemporalLadderShard),
            _ => None,
        }
    }
}

impl fmt::Display for SketchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Self::Snapshot => "snapshot",
            Self::Unbiased => "unbiased sketch",
            Self::Weighted => "weighted sketch",
            Self::EngineShard => "engine shard",
            Self::Manifest => "engine manifest",
            Self::Decayed => "decayed sketch",
            Self::TemporalShard => "temporal bucket ring",
            Self::TemporalManifest => "temporal manifest",
            Self::TemporalLadderShard => "temporal bucket ring with dyadic ladder",
        };
        f.write_str(name)
    }
}

/// Everything that can go wrong while persisting or loading a sketch. Decoding is
/// total: malformed input yields one of these, never a panic.
#[derive(Debug)]
pub enum PersistError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// The input is shorter than a minimal frame or than its own declared length.
    Truncated {
        /// Bytes needed for the structure being read.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The first four bytes are not [`MAGIC`].
    BadMagic,
    /// The frame declares a format version this build does not read.
    UnsupportedVersion(u16),
    /// The frame holds a different kind of sketch than the caller asked for.
    WrongKind {
        /// The kind the caller expected.
        expected: SketchKind,
        /// The kind byte found in the header.
        got: u8,
    },
    /// The CRC-64 over header + payload does not match the stored checksum.
    ChecksumMismatch,
    /// The payload parsed but violates a structural or statistical invariant.
    Corrupt(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Truncated { needed, got } => {
                write!(f, "truncated input: needed {needed} bytes, got {got}")
            }
            Self::BadMagic => f.write_str("not a sketch file (bad magic)"),
            Self::UnsupportedVersion(v) => write!(
                f,
                "unsupported format version {v} (this build reads {FORMAT_VERSION})"
            ),
            Self::WrongKind { expected, got } => {
                write!(f, "expected a {expected} frame, found kind byte {got}")
            }
            Self::ChecksumMismatch => f.write_str("checksum mismatch (corrupted frame)"),
            Self::Corrupt(why) => write!(f, "corrupt payload: {why}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

// ----- CRC-64 (ECMA-182 polynomial, unreflected) -----

const CRC64_POLY: u64 = 0x42F0_E1EB_A9EA_3693;

const fn crc64_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = (i as u64) << 56;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & (1 << 63) != 0 {
                (crc << 1) ^ CRC64_POLY
            } else {
                crc << 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC64_TABLE: [u64; 256] = crc64_table();

/// CRC-64 (ECMA-182, unreflected, zero init) over `bytes` — the frame checksum.
#[must_use]
pub fn crc64(bytes: &[u8]) -> u64 {
    let mut crc = 0u64;
    for &b in bytes {
        crc = CRC64_TABLE[(((crc >> 56) as u8) ^ b) as usize] ^ (crc << 8);
    }
    crc
}

// ----- little-endian payload writer / reader -----

/// Little-endian payload builder — the writing half of this codec's frame
/// discipline, public so other framed protocols (the wire protocol of
/// `uss-server`) assemble payloads with exactly the same byte conventions.
#[derive(Debug, Default)]
pub struct PayloadWriter {
    buf: Vec<u8>,
}

impl PayloadWriter {
    /// An empty payload.
    #[must_use]
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its little-endian IEEE-754 bits.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, yielding the assembled payload.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian reader over a payload slice. Every read that would
/// run past the end reports [`PersistError::Truncated`] instead of panicking, and
/// element counts are validated against the bytes actually present *before* any
/// allocation, so a corrupted length field cannot trigger an absurd reservation.
#[derive(Debug)]
pub struct PayloadReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

// lint: total-decode — every reader primitive feeds hostile bytes to callers.
impl<'a> PayloadReader<'a> {
    /// Starts reading at the front of `bytes`.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Consumes the next `n` bytes, or reports how short the payload fell.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::Truncated {
                needed: n,
                got: self.remaining(),
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Consumes exactly `N` bytes and returns them as a fixed-size array.
    pub fn array<const N: usize>(&mut self) -> Result<[u8; N], PersistError> {
        let mut out = [0u8; N];
        out.copy_from_slice(self.take(N)?);
        Ok(out)
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    /// Reads a little-endian IEEE-754 `f64`.
    pub fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_le_bytes(self.array()?))
    }

    /// Reads a `u32` length field, converting to `usize` without a cast.
    pub fn len_u32(&mut self) -> Result<usize, PersistError> {
        let n = self.u32()?;
        usize::try_from(n)
            .map_err(|_| PersistError::Corrupt(format!("length {n} overflows usize")))
    }

    /// Reads a count of elements that each occupy at least `elem_bytes` more bytes,
    /// rejecting counts the remaining payload cannot possibly hold.
    pub fn count(&mut self, elem_bytes: usize) -> Result<usize, PersistError> {
        let n = self.u64()?;
        let n: usize = n
            .try_into()
            .map_err(|_| PersistError::Corrupt(format!("element count {n} overflows usize")))?;
        if n.checked_mul(elem_bytes).is_none_or(|need| need > self.remaining()) {
            return Err(PersistError::Corrupt(format!(
                "element count {n} exceeds the bytes present"
            )));
        }
        Ok(n)
    }

    /// Rejects any bytes left over once the payload should be exhausted.
    pub fn finish(&self) -> Result<(), PersistError> {
        if self.remaining() != 0 {
            return Err(PersistError::Corrupt(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )));
        }
        Ok(())
    }
}

// ----- frame layer -----

/// Copies a slice the caller has already length-checked into a fixed-size
/// array, so frame readers never reach for `try_into().unwrap()`.
// lint: total-decode
fn header_array<const N: usize>(slice: &[u8]) -> [u8; N] {
    let mut out = [0u8; N];
    out.copy_from_slice(slice);
    out
}

fn encode_frame(kind: SketchKind, payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + CHECKSUM_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.push(kind.byte());
    out.push(0);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    let crc = crc64(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Shared header gate: checks minimal length, magic and version, and returns the
/// kind byte. Every frame reader goes through here, so a future format change
/// (e.g. accepting a version range) lives in exactly one place.
fn check_header(bytes: &[u8]) -> Result<u8, PersistError> {
    if bytes.len() < HEADER_LEN + CHECKSUM_LEN {
        return Err(PersistError::Truncated {
            needed: HEADER_LEN + CHECKSUM_LEN,
            got: bytes.len(),
        });
    }
    if bytes[0..4] != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = u16::from_le_bytes(header_array(&bytes[4..6]));
    if version != FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion(version));
    }
    Ok(bytes[6])
}

/// Validates magic, version, kind, declared length and checksum; returns the
/// payload slice.
fn decode_frame(bytes: &[u8], expected: SketchKind) -> Result<&[u8], PersistError> {
    let kind_byte = check_header(bytes)?;
    if kind_byte != expected.byte() {
        return Err(PersistError::WrongKind {
            expected,
            got: kind_byte,
        });
    }
    let declared = u64::from_le_bytes(header_array(&bytes[8..16]));
    let body_len = bytes.len() - HEADER_LEN - CHECKSUM_LEN;
    if declared != body_len as u64 {
        return Err(PersistError::Truncated {
            needed: HEADER_LEN
                + CHECKSUM_LEN
                + usize::try_from(declared).unwrap_or(usize::MAX),
            got: bytes.len(),
        });
    }
    let stored = u64::from_le_bytes(header_array(&bytes[bytes.len() - CHECKSUM_LEN..]));
    if crc64(&bytes[..bytes.len() - CHECKSUM_LEN]) != stored {
        return Err(PersistError::ChecksumMismatch);
    }
    Ok(&bytes[HEADER_LEN..bytes.len() - CHECKSUM_LEN])
}

/// The kind byte of an encoded frame, after checking magic and version only. Used
/// by loaders that accept several kinds (e.g. [`ColdSnapshot::open`]).
pub fn peek_kind(bytes: &[u8]) -> Result<SketchKind, PersistError> {
    let kind_byte = check_header(bytes)?;
    SketchKind::from_byte(kind_byte).ok_or(PersistError::Corrupt(format!(
        "unknown sketch kind byte {kind_byte}"
    )))
}

// ----- kind payloads -----

/// Encodes a cold [`SketchSnapshot`] frame.
#[must_use]
pub fn encode_snapshot(snapshot: &SketchSnapshot) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.u64(snapshot.capacity() as u64);
    w.u64(snapshot.rows_processed());
    w.f64(snapshot.min_count());
    w.u64(snapshot.entries().len() as u64);
    for &(item, count) in snapshot.entries() {
        w.u64(item);
        w.f64(count);
    }
    encode_frame(SketchKind::Snapshot, w.buf)
}

fn read_snapshot_payload(payload: &[u8]) -> Result<SketchSnapshot, PersistError> {
    let mut r = PayloadReader::new(payload);
    let capacity = r.u64()?;
    let rows = r.u64()?;
    let min_count = r.f64()?;
    if !min_count.is_finite() || min_count < 0.0 {
        return Err(PersistError::Corrupt(format!(
            "min_count {min_count} must be finite and non-negative"
        )));
    }
    let n = r.count(16)?;
    let capacity = checked_capacity(capacity)?;
    if n > capacity {
        return Err(PersistError::Corrupt(format!(
            "{n} entries exceed capacity {capacity}"
        )));
    }
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let item = r.u64()?;
        let count = r.f64()?;
        if !count.is_finite() || count < 0.0 {
            return Err(PersistError::Corrupt(format!(
                "count {count} must be finite and non-negative"
            )));
        }
        entries.push((item, count));
    }
    r.finish()?;
    Ok(SketchSnapshot::new(entries, min_count, rows, capacity))
}

/// Decodes a [`SketchSnapshot`] frame.
pub fn decode_snapshot(bytes: &[u8]) -> Result<SketchSnapshot, PersistError> {
    read_snapshot_payload(decode_frame(bytes, SketchKind::Snapshot)?)
}

fn write_unbiased_payload(w: &mut PayloadWriter, sketch: &UnbiasedSpaceSaving) {
    let (dump, rows, rng) = sketch.persist_dump();
    w.u64(dump.capacity as u64);
    w.u64(rows);
    w.bytes(&rng);
    w.u64(dump.counters.len() as u64);
    for &item in &dump.counters {
        w.u64(item);
    }
    w.u64(dump.buckets.len() as u64);
    for (value, chain) in &dump.buckets {
        w.u64(*value);
        w.u32(chain.len() as u32);
        for &slot in chain {
            w.u32(slot);
        }
    }
}

fn read_unbiased_payload(r: &mut PayloadReader<'_>) -> Result<UnbiasedSpaceSaving, PersistError> {
    let capacity = checked_capacity(r.u64()?)?;
    let rows = r.u64()?;
    let rng: [u8; RNG_STATE_LEN] = r.array()?;
    let n = r.count(8)?;
    let mut counters = Vec::with_capacity(n);
    for _ in 0..n {
        counters.push(r.u64()?);
    }
    let b = r.count(12)?;
    let mut buckets = Vec::with_capacity(b);
    for _ in 0..b {
        let value = r.u64()?;
        let len = r.len_u32()?;
        if len.checked_mul(4).is_none_or(|need| need > r.remaining()) {
            return Err(PersistError::Corrupt(format!(
                "bucket chain length {len} exceeds the bytes present"
            )));
        }
        let mut chain = Vec::with_capacity(len);
        for _ in 0..len {
            chain.push(r.u32()?);
        }
        buckets.push((value, chain));
    }
    UnbiasedSpaceSaving::from_persisted(
        SummaryDump {
            capacity,
            counters,
            buckets,
        },
        rows,
        rng,
    )
    .map_err(PersistError::Corrupt)
}

/// Encodes a full [`UnbiasedSpaceSaving`] frame (RNG and structure included).
#[must_use]
pub fn encode_unbiased(sketch: &UnbiasedSpaceSaving) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    write_unbiased_payload(&mut w, sketch);
    encode_frame(SketchKind::Unbiased, w.buf)
}

/// Decodes an [`UnbiasedSpaceSaving`] frame; the result resumes bit-compatibly.
pub fn decode_unbiased(bytes: &[u8]) -> Result<UnbiasedSpaceSaving, PersistError> {
    let mut r = PayloadReader::new(decode_frame(bytes, SketchKind::Unbiased)?);
    let sketch = read_unbiased_payload(&mut r)?;
    r.finish()?;
    Ok(sketch)
}

fn write_weighted_payload(w: &mut PayloadWriter, sketch: &WeightedSpaceSaving) {
    let (capacity, items, counts, heap, rows, total_weight, rng) = sketch.persist_dump();
    w.u64(capacity as u64);
    w.u64(rows);
    w.f64(total_weight);
    w.bytes(&rng);
    w.u64(items.len() as u64);
    for &item in items {
        w.u64(item);
    }
    for &count in counts {
        w.f64(count);
    }
    for &slot in heap {
        w.u32(slot);
    }
}

fn read_weighted_payload(r: &mut PayloadReader<'_>) -> Result<WeightedSpaceSaving, PersistError> {
    let capacity = checked_capacity(r.u64()?)?;
    let rows = r.u64()?;
    let total_weight = r.f64()?;
    let rng: [u8; RNG_STATE_LEN] = r.array()?;
    let n = r.count(20)?;
    let mut items = Vec::with_capacity(n);
    for _ in 0..n {
        items.push(r.u64()?);
    }
    let mut counts = Vec::with_capacity(n);
    for _ in 0..n {
        counts.push(r.f64()?);
    }
    let mut heap = Vec::with_capacity(n);
    for _ in 0..n {
        heap.push(r.u32()?);
    }
    WeightedSpaceSaving::from_persisted(capacity, items, counts, heap, rows, total_weight, rng)
        .map_err(PersistError::Corrupt)
}

/// Encodes a full [`WeightedSpaceSaving`] frame (RNG and heap state included).
#[must_use]
pub fn encode_weighted(sketch: &WeightedSpaceSaving) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    write_weighted_payload(&mut w, sketch);
    encode_frame(SketchKind::Weighted, w.buf)
}

/// Decodes a [`WeightedSpaceSaving`] frame; the result resumes bit-compatibly.
pub fn decode_weighted(bytes: &[u8]) -> Result<WeightedSpaceSaving, PersistError> {
    let mut r = PayloadReader::new(decode_frame(bytes, SketchKind::Weighted)?);
    let sketch = read_weighted_payload(&mut r)?;
    r.finish()?;
    Ok(sketch)
}

/// Encodes a full [`DecayedSpaceSaving`] frame: the forward-decay parameters
/// plus the complete inner weighted sketch (RNG and heap state included).
#[must_use]
pub fn encode_decayed(sketch: &DecayedSpaceSaving) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.f64(sketch.lambda());
    w.f64(sketch.landmark());
    w.f64(sketch.last_time());
    write_weighted_payload(&mut w, sketch.inner());
    encode_frame(SketchKind::Decayed, w.buf)
}

/// Decodes a [`DecayedSpaceSaving`] frame; the result resumes bit-compatibly
/// (same decayed estimates, same rescale points, same random evictions under
/// the same subsequent stream).
pub fn decode_decayed(bytes: &[u8]) -> Result<DecayedSpaceSaving, PersistError> {
    let mut r = PayloadReader::new(decode_frame(bytes, SketchKind::Decayed)?);
    let lambda = r.f64()?;
    let landmark = r.f64()?;
    let last_time = r.f64()?;
    let inner = read_weighted_payload(&mut r)?;
    r.finish()?;
    DecayedSpaceSaving::from_persisted(inner, lambda, landmark, last_time)
        .map_err(PersistError::Corrupt)
}

// ----- engine checkpoint frames -----

/// The engine identity echoed into every shard file and the manifest, so a
/// restore can refuse mismatched directories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineMeta {
    /// Number of shards the checkpointing engine ran.
    pub shards: u64,
    /// Bins per shard sketch.
    pub capacity: u64,
    /// The engine's base RNG seed.
    pub seed: u64,
}

/// The manifest tying an engine checkpoint directory together.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineManifest {
    /// The engine identity (shards / capacity / seed).
    pub meta: EngineMeta,
    /// Snapshot-counter value at checkpoint time; restored so post-restore
    /// [`crate::engine::ShardedIngestEngine::snapshot`] calls continue the same
    /// merge-salt sequence an uninterrupted engine would use.
    pub snapshots: u64,
    /// Total rows across the shard sketches at checkpoint time.
    pub rows: u64,
}

/// Encodes one engine shard frame.
#[must_use]
pub fn encode_shard(shard: u64, meta: EngineMeta, sketch: &UnbiasedSpaceSaving) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.u64(shard);
    w.u64(meta.shards);
    w.u64(meta.capacity);
    w.u64(meta.seed);
    write_unbiased_payload(&mut w, sketch);
    encode_frame(SketchKind::EngineShard, w.buf)
}

/// Decodes an engine shard frame into its position, engine identity and sketch.
pub fn decode_shard(bytes: &[u8]) -> Result<(u64, EngineMeta, UnbiasedSpaceSaving), PersistError> {
    let mut r = PayloadReader::new(decode_frame(bytes, SketchKind::EngineShard)?);
    let shard = r.u64()?;
    let meta = EngineMeta {
        shards: r.u64()?,
        capacity: r.u64()?,
        seed: r.u64()?,
    };
    if shard >= meta.shards {
        return Err(PersistError::Corrupt(format!(
            "shard index {shard} out of range for {} shards",
            meta.shards
        )));
    }
    let sketch = read_unbiased_payload(&mut r)?;
    r.finish()?;
    if sketch.capacity() as u64 != meta.capacity {
        return Err(PersistError::Corrupt(format!(
            "shard sketch capacity {} disagrees with engine capacity {}",
            sketch.capacity(),
            meta.capacity
        )));
    }
    Ok((shard, meta, sketch))
}

/// Encodes an engine checkpoint manifest frame.
#[must_use]
pub fn encode_manifest(manifest: &EngineManifest) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.u64(manifest.meta.shards);
    w.u64(manifest.meta.capacity);
    w.u64(manifest.meta.seed);
    w.u64(manifest.snapshots);
    w.u64(manifest.rows);
    encode_frame(SketchKind::Manifest, w.buf)
}

/// Decodes an engine checkpoint manifest frame.
pub fn decode_manifest(bytes: &[u8]) -> Result<EngineManifest, PersistError> {
    let mut r = PayloadReader::new(decode_frame(bytes, SketchKind::Manifest)?);
    let meta = EngineMeta {
        shards: r.u64()?,
        capacity: r.u64()?,
        seed: r.u64()?,
    };
    let snapshots = r.u64()?;
    let rows = r.u64()?;
    r.finish()?;
    if meta.shards == 0 {
        return Err(PersistError::Corrupt("manifest declares zero shards".into()));
    }
    if meta.capacity == 0 {
        return Err(PersistError::Corrupt(
            "manifest declares zero capacity".into(),
        ));
    }
    Ok(EngineManifest {
        meta,
        snapshots,
        rows,
    })
}

// ----- temporal checkpoint frames -----

/// The temporal-engine identity echoed into every bucket-ring file and the
/// temporal manifest, so a restore can refuse mismatched directories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TemporalMeta {
    /// Number of shards the checkpointing engine ran.
    pub shards: u64,
    /// Bins per bucket sketch.
    pub capacity: u64,
    /// The engine's base RNG seed.
    pub seed: u64,
    /// Time units per fine bucket.
    pub bucket_width: u64,
    /// Fine buckets retained per shard.
    pub fine_buckets: u64,
    /// Buckets per tier before a group compacts into the next tier.
    pub tier_factor: u64,
    /// Number of retention tiers.
    pub tiers: u64,
}

impl TemporalMeta {
    /// The meta a [`TemporalConfig`] produces (the identity half of the config;
    /// queue depth and batch size are operational and not part of it).
    #[must_use]
    pub fn from_config(config: &TemporalConfig) -> Self {
        Self {
            shards: config.shards as u64,
            capacity: config.window.capacity as u64,
            seed: config.window.seed,
            bucket_width: config.window.bucket_width,
            fine_buckets: config.window.fine_buckets as u64,
            tier_factor: config.window.tier_factor as u64,
            tiers: config.window.tiers as u64,
        }
    }

    /// Reconstructs a [`TemporalConfig`] from the checkpointed identity,
    /// filling the operational knobs (queue depth, batch size) with the engine
    /// defaults. This is how a server boots a stream from a checkpoint
    /// directory without any out-of-band configuration.
    ///
    /// # Errors
    ///
    /// Reports [`PersistError::Corrupt`] when a checkpointed dimension
    /// overflows `usize` on this platform.
    pub fn to_config(&self) -> Result<TemporalConfig, PersistError> {
        fn dim(v: u64, what: &str) -> Result<usize, PersistError> {
            v.try_into()
                .map_err(|_| PersistError::Corrupt(format!("{what} {v} overflows usize")))
        }
        Ok(TemporalConfig {
            window: WindowConfig {
                capacity: dim(self.capacity, "capacity")?,
                seed: self.seed,
                bucket_width: self.bucket_width,
                fine_buckets: dim(self.fine_buckets, "fine bucket count")?,
                tier_factor: dim(self.tier_factor, "tier factor")?,
                tiers: dim(self.tiers, "tier count")?,
            },
            shards: dim(self.shards, "shard count")?,
            queue_depth: 4,
            batch_rows: 4096,
        })
    }
}

/// The manifest tying a temporal checkpoint directory together.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TemporalManifest {
    /// The engine identity (shards / window geometry / seed).
    pub meta: TemporalMeta,
    /// Snapshot-counter value at checkpoint time; restored so post-restore
    /// range snapshots continue the same merge-salt sequence.
    pub snapshots: u64,
    /// Total rows across the shard stores at checkpoint time.
    pub rows: u64,
}

fn write_temporal_meta(w: &mut PayloadWriter, meta: TemporalMeta) {
    w.u64(meta.shards);
    w.u64(meta.capacity);
    w.u64(meta.seed);
    w.u64(meta.bucket_width);
    w.u64(meta.fine_buckets);
    w.u64(meta.tier_factor);
    w.u64(meta.tiers);
}

fn read_temporal_meta(r: &mut PayloadReader<'_>) -> Result<TemporalMeta, PersistError> {
    let meta = TemporalMeta {
        shards: r.u64()?,
        capacity: r.u64()?,
        seed: r.u64()?,
        bucket_width: r.u64()?,
        fine_buckets: r.u64()?,
        tier_factor: r.u64()?,
        tiers: r.u64()?,
    };
    if meta.shards == 0 || meta.bucket_width == 0 || meta.fine_buckets == 0 {
        return Err(PersistError::Corrupt(
            "temporal meta declares a zero shard count, bucket width or fine window".into(),
        ));
    }
    // Bounded before anything (the range fold included) sizes an allocation
    // from it.
    let _ = checked_capacity(meta.capacity)?;
    if meta.tier_factor < 2 {
        return Err(PersistError::Corrupt(format!(
            "temporal meta declares tier factor {} (must be at least 2)",
            meta.tier_factor
        )));
    }
    Ok(meta)
}

fn write_tier_bucket(w: &mut PayloadWriter, bucket: &TierBucket) {
    w.u64(bucket.start());
    w.u64(bucket.end());
    w.u64(bucket.rows());
    w.u64(bucket.entries().len() as u64);
    for &(item, count) in bucket.entries() {
        w.u64(item);
        w.f64(count);
    }
}

fn read_tier_bucket(r: &mut PayloadReader<'_>) -> Result<TierBucket, PersistError> {
    let start = r.u64()?;
    let end = r.u64()?;
    let rows = r.u64()?;
    let n = r.count(16)?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let item = r.u64()?;
        let count = r.f64()?;
        entries.push((item, count));
    }
    // Span ordering, entry bounds and count validity are re-validated against
    // the window geometry when the whole store image is assembled.
    Ok(TierBucket {
        start,
        end,
        entries,
        rows,
    })
}

fn write_temporal_shard_payload(
    w: &mut PayloadWriter,
    shard: u64,
    meta: TemporalMeta,
    store: &WindowedSketchStore,
) {
    w.u64(shard);
    write_temporal_meta(w, meta);
    w.u64(store.late_rows());
    w.u64(store.last_time());
    let fine: Vec<_> = store.fine_sketches().collect();
    w.u64(fine.len() as u64);
    for (index, sketch) in fine {
        w.u64(index);
        write_unbiased_payload(w, sketch);
    }
    w.u64(meta.tiers);
    for t in 0..meta.tiers as usize {
        let buckets = store.tier_buckets(t);
        w.u64(buckets.len() as u64);
        for bucket in buckets {
            write_tier_bucket(w, bucket);
        }
    }
    match store.terminal_bucket() {
        Some(bucket) => {
            w.buf.push(1);
            write_tier_bucket(w, bucket);
        }
        None => w.buf.push(0),
    }
}

/// Encodes one temporal bucket-ring frame: a shard's complete
/// [`WindowedSketchStore`] — fine buckets as full resumable unbiased payloads,
/// compacted tiers and the terminal bucket as entry lists.
#[must_use]
pub fn encode_temporal_shard(
    shard: u64,
    meta: TemporalMeta,
    store: &WindowedSketchStore,
) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    write_temporal_shard_payload(&mut w, shard, meta, store);
    encode_frame(SketchKind::TemporalShard, w.buf)
}

/// Encodes one temporal bucket-ring frame *with* its dyadic range-merge
/// ladder ([`SketchKind::TemporalLadderShard`]): the full
/// [`encode_temporal_shard`] payload followed by every pre-merged node (level
/// 1 first, ascending starts within a level — a deterministic order, so two
/// encodes of the same store are byte-identical). A restored shard then
/// serves wide ranges at full speed immediately.
#[must_use]
pub fn encode_temporal_shard_indexed(
    shard: u64,
    meta: TemporalMeta,
    store: &WindowedSketchStore,
) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    write_temporal_shard_payload(&mut w, shard, meta, store);
    let levels = store.ladder_levels();
    let nodes: u64 = levels.iter().map(|level| level.len() as u64).sum();
    w.u64(nodes);
    for (idx, level) in levels.iter().enumerate() {
        for node in level.values() {
            w.u64(idx as u64 + 1);
            write_tier_bucket(&mut w, node);
        }
    }
    encode_frame(SketchKind::TemporalLadderShard, w.buf)
}

/// Decodes a temporal bucket-ring frame — with or without a dyadic ladder
/// ([`SketchKind::TemporalShard`] or [`SketchKind::TemporalLadderShard`]) —
/// into its shard position, engine identity and store. The store resumes
/// bit-compatibly (fine buckets keep their RNG and counter-structure state);
/// corrupted images — overlapping spans, out-of-order buckets, capacity
/// violations, ladder nodes misaligned or disagreeing with the leaves they
/// cover — are rejected as [`PersistError::Corrupt`], never a panic.
pub fn decode_temporal_shard(
    bytes: &[u8],
) -> Result<(u64, TemporalMeta, WindowedSketchStore), PersistError> {
    let kind = match peek_kind(bytes)? {
        kind @ (SketchKind::TemporalShard | SketchKind::TemporalLadderShard) => kind,
        other => {
            return Err(PersistError::WrongKind {
                expected: SketchKind::TemporalShard,
                got: other.byte(),
            })
        }
    };
    let mut r = PayloadReader::new(decode_frame(bytes, kind)?);
    let shard = r.u64()?;
    let meta = read_temporal_meta(&mut r)?;
    if shard >= meta.shards {
        return Err(PersistError::Corrupt(format!(
            "shard index {shard} out of range for {} shards",
            meta.shards
        )));
    }
    let late_rows = r.u64()?;
    let last_ts = r.u64()?;
    let f = r.count(8)?;
    let mut fine = Vec::with_capacity(f);
    for _ in 0..f {
        let index = r.u64()?;
        let sketch = read_unbiased_payload(&mut r)?;
        fine.push((index, sketch));
    }
    let t = r.u64()?;
    if t != meta.tiers {
        return Err(PersistError::Corrupt(format!(
            "{t} tiers in the frame but the meta declares {}",
            meta.tiers
        )));
    }
    let tiers_n: usize = t
        .try_into()
        .map_err(|_| PersistError::Corrupt(format!("tier count {t} overflows usize")))?;
    // Each tier occupies at least its own 8-byte bucket count; reject counts the
    // remaining payload cannot possibly hold before any allocation.
    if tiers_n.checked_mul(8).is_none_or(|need| need > r.remaining()) {
        return Err(PersistError::Corrupt(format!(
            "tier count {tiers_n} exceeds the bytes present"
        )));
    }
    let mut tiers = Vec::with_capacity(tiers_n);
    for _ in 0..tiers_n {
        let k = r.count(32)?;
        let mut buckets = Vec::with_capacity(k);
        for _ in 0..k {
            buckets.push(read_tier_bucket(&mut r)?);
        }
        tiers.push(buckets);
    }
    let terminal = match r.take(1)?[0] {
        0 => None,
        1 => Some(read_tier_bucket(&mut r)?),
        other => {
            return Err(PersistError::Corrupt(format!(
                "terminal-bucket flag must be 0 or 1, found {other}"
            )))
        }
    };
    let ladder_nodes = if kind == SketchKind::TemporalLadderShard {
        // Each node occupies at least its level word plus a tier bucket's
        // four fixed u64s.
        let n = r.count(40)?;
        let mut nodes = Vec::with_capacity(n);
        for _ in 0..n {
            let level = r.u64()?;
            let level: u32 = level.try_into().map_err(|_| {
                PersistError::Corrupt(format!("ladder level {level} overflows a level index"))
            })?;
            nodes.push((level, read_tier_bucket(&mut r)?));
        }
        nodes
    } else {
        Vec::new()
    };
    r.finish()?;
    let config = WindowConfig {
        capacity: checked_capacity(meta.capacity)?,
        // Wrapping: the sum is RNG material only, and a corrupt frame with a
        // huge seed must decode to Corrupt, never panic on overflow checks.
        seed: meta.seed.wrapping_add(shard),
        bucket_width: meta.bucket_width,
        fine_buckets: usize::try_from(meta.fine_buckets).map_err(|_| {
            PersistError::Corrupt(format!(
                "fine bucket count {} overflows usize",
                meta.fine_buckets
            ))
        })?,
        tier_factor: usize::try_from(meta.tier_factor).map_err(|_| {
            PersistError::Corrupt(format!("tier factor {} overflows usize", meta.tier_factor))
        })?,
        tiers: tiers_n,
    };
    let mut store =
        WindowedSketchStore::from_parts(config, fine, tiers, terminal, late_rows, last_ts)
            .map_err(PersistError::Corrupt)?;
    // Revalidated against the assembled ring: alignment, span-per-level, the
    // sealed retained window, and exact rows/mass agreement with the covered
    // fine leaves.
    store.attach_ladder(ladder_nodes).map_err(PersistError::Corrupt)?;
    Ok((shard, meta, store))
}

/// Encodes a temporal checkpoint manifest frame.
#[must_use]
pub fn encode_temporal_manifest(manifest: &TemporalManifest) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    write_temporal_meta(&mut w, manifest.meta);
    w.u64(manifest.snapshots);
    w.u64(manifest.rows);
    encode_frame(SketchKind::TemporalManifest, w.buf)
}

/// Decodes a temporal checkpoint manifest frame.
pub fn decode_temporal_manifest(bytes: &[u8]) -> Result<TemporalManifest, PersistError> {
    let mut r = PayloadReader::new(decode_frame(bytes, SketchKind::TemporalManifest)?);
    let meta = read_temporal_meta(&mut r)?;
    let snapshots = r.u64()?;
    let rows = r.u64()?;
    r.finish()?;
    Ok(TemporalManifest {
        meta,
        snapshots,
        rows,
    })
}

// ----- file helpers -----

/// Writes an encoded frame to `path` atomically and durably: the bytes land in a
/// sibling temporary file, are fsynced, renamed into place, and the parent
/// directory is fsynced too — so a crash (or power loss) mid-write can leave a
/// stray `.tmp` but never a torn or empty sketch file behind the final name.
/// Returns the number of bytes written (for the `uss_checkpoint_bytes_total`
/// counter).
pub fn write_file(path: &Path, bytes: &[u8]) -> Result<u64, PersistError> {
    use std::io::Write as _;
    let tmp = path.with_extension("uss.tmp");
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        // Data must be on disk before the rename becomes visible, or a crash can
        // journal the rename ahead of the contents.
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    // Persist the directory entry itself (the rename) as well.
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::File::open(parent)?.sync_all()?;
    }
    Ok(bytes.len() as u64)
}

/// Saves a cold [`SketchSnapshot`] to `path`.
pub fn save_snapshot<P: AsRef<Path>>(path: P, snapshot: &SketchSnapshot) -> Result<(), PersistError> {
    write_file(path.as_ref(), &encode_snapshot(snapshot)).map(|_| ())
}

/// Loads a [`SketchSnapshot`] from `path`.
pub fn load_snapshot<P: AsRef<Path>>(path: P) -> Result<SketchSnapshot, PersistError> {
    decode_snapshot(&std::fs::read(path)?)
}

/// Saves a full [`UnbiasedSpaceSaving`] to `path`.
pub fn save_unbiased<P: AsRef<Path>>(
    path: P,
    sketch: &UnbiasedSpaceSaving,
) -> Result<(), PersistError> {
    write_file(path.as_ref(), &encode_unbiased(sketch)).map(|_| ())
}

/// Loads a full [`UnbiasedSpaceSaving`] from `path`.
pub fn load_unbiased<P: AsRef<Path>>(path: P) -> Result<UnbiasedSpaceSaving, PersistError> {
    decode_unbiased(&std::fs::read(path)?)
}

/// Saves a full [`WeightedSpaceSaving`] to `path`.
pub fn save_weighted<P: AsRef<Path>>(
    path: P,
    sketch: &WeightedSpaceSaving,
) -> Result<(), PersistError> {
    write_file(path.as_ref(), &encode_weighted(sketch)).map(|_| ())
}

/// Loads a full [`WeightedSpaceSaving`] from `path`.
pub fn load_weighted<P: AsRef<Path>>(path: P) -> Result<WeightedSpaceSaving, PersistError> {
    decode_weighted(&std::fs::read(path)?)
}

/// A sketch file loaded for cold serving: a [`SnapshotSource`] over yesterday's
/// (or another node's) data, so a [`crate::query::QueryServer`] serves a
/// historical snapshot through exactly the same typed-query API as a live engine.
///
/// Accepts any single-sketch kind — a cold [`SketchKind::Snapshot`], a full
/// [`SketchKind::Unbiased`] / [`SketchKind::Weighted`] / [`SketchKind::Decayed`]
/// sketch (decayed files serve their state as of the last update), a single
/// [`SketchKind::EngineShard`] file (served alone; use
/// [`crate::distributed::DistributedSketcher::merge_files`] to fold a full shard
/// set first), or a single [`SketchKind::TemporalShard`] /
/// [`SketchKind::TemporalLadderShard`] bucket ring (served as the fold of its
/// whole retained history). The file is read once at open time; serving never
/// touches the filesystem again.
#[derive(Debug, Clone)]
pub struct ColdSnapshot {
    path: PathBuf,
    snapshot: SketchSnapshot,
}

impl ColdSnapshot {
    /// Reads and decodes `path`.
    // lint: total-decode — accepts any frame kind straight off disk.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, PersistError> {
        let path = path.as_ref().to_path_buf();
        let bytes = std::fs::read(&path)?;
        let snapshot = match peek_kind(&bytes)? {
            SketchKind::Snapshot => decode_snapshot(&bytes)?,
            SketchKind::Unbiased => decode_unbiased(&bytes)?.snapshot(),
            SketchKind::Weighted => decode_weighted(&bytes)?.snapshot(),
            SketchKind::EngineShard => decode_shard(&bytes)?.2.snapshot(),
            SketchKind::Decayed => {
                let sketch = decode_decayed(&bytes)?;
                sketch.snapshot_at(sketch.last_time())
            }
            SketchKind::TemporalShard | SketchKind::TemporalLadderShard => {
                // Serve the shard's whole retained history: fold every bucket
                // with the unbiased PPS merge under span-derived seeds. (The
                // ladder nodes in a kind-8 frame are an index over the same
                // buckets; the whole-history fold reads the buckets directly.)
                let (shard, meta, store) = decode_temporal_shard(&bytes)?;
                let seed = meta.seed.wrapping_add(shard);
                store
                    .fold_range(0, u64::MAX, seed ^ FOLD_MERGE_SALT, seed ^ FOLD_OUT_SALT)
                    .snapshot()
            }
            kind @ (SketchKind::Manifest | SketchKind::TemporalManifest) => {
                return Err(PersistError::WrongKind {
                    expected: SketchKind::Snapshot,
                    got: kind.byte(),
                })
            }
        };
        Ok(Self { path, snapshot })
    }

    /// The file this snapshot was loaded from.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The decoded snapshot.
    #[must_use]
    pub fn snapshot(&self) -> &SketchSnapshot {
        &self.snapshot
    }
}

impl SnapshotSource for ColdSnapshot {
    fn capture(&self) -> SketchSnapshot {
        self.snapshot.clone()
    }

    /// A cold file never grows, so automatic refresh is (correctly) a no-op.
    fn rows_hint(&self) -> u64 {
        self.snapshot.rows_processed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::StreamSketch;

    fn sample_unbiased() -> UnbiasedSpaceSaving {
        let mut sketch = UnbiasedSpaceSaving::with_seed(32, 11);
        for i in 0..5_000u64 {
            sketch.offer(i % 120);
        }
        sketch
    }

    #[test]
    fn crc64_known_properties() {
        assert_eq!(crc64(&[]), 0);
        let a = crc64(b"hello sketch");
        let mut flipped = b"hello sketch".to_vec();
        flipped[3] ^= 0x10;
        assert_ne!(a, crc64(&flipped));
    }

    #[test]
    fn snapshot_frame_round_trips() {
        let snap = sample_unbiased().snapshot();
        let bytes = encode_snapshot(&snap);
        assert_eq!(peek_kind(&bytes).unwrap(), SketchKind::Snapshot);
        let back = decode_snapshot(&bytes).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn unbiased_frame_round_trips_bit_compatibly() {
        let sketch = sample_unbiased();
        let bytes = encode_unbiased(&sketch);
        let mut restored = decode_unbiased(&bytes).unwrap();
        assert_eq!(restored.snapshot(), sketch.snapshot());
        // Continuing both sketches must produce identical states: structure *and*
        // RNG survived the round trip.
        let mut original = sketch;
        for i in 0..5_000u64 {
            original.offer(i.wrapping_mul(31) % 4_000);
            restored.offer(i.wrapping_mul(31) % 4_000);
        }
        assert_eq!(original.entries(), restored.entries());
        assert_eq!(original.snapshot(), restored.snapshot());
    }

    #[test]
    fn weighted_frame_round_trips_bit_compatibly() {
        use crate::traits::WeightedStreamSketch;
        let mut sketch = WeightedSpaceSaving::with_seed(24, 3);
        for i in 0..4_000u64 {
            sketch.offer_weighted(i % 90, (i % 5 + 1) as f64 * 0.5);
        }
        let bytes = encode_weighted(&sketch);
        let mut restored = decode_weighted(&bytes).unwrap();
        assert_eq!(restored.snapshot(), sketch.snapshot());
        assert_eq!(restored.total_weight(), sketch.total_weight());
        for i in 0..4_000u64 {
            sketch.offer_weighted(i % 333, 1.25);
            restored.offer_weighted(i % 333, 1.25);
        }
        assert_eq!(sketch.entries(), restored.entries());
        assert_eq!(sketch.min_count(), restored.min_count());
    }

    #[test]
    fn shard_and_manifest_frames_round_trip() {
        let meta = EngineMeta {
            shards: 4,
            capacity: 32,
            seed: 9,
        };
        let sketch = {
            let mut s = UnbiasedSpaceSaving::with_seed(32, 9);
            for i in 0..1_000u64 {
                s.offer(i % 50);
            }
            s
        };
        let bytes = encode_shard(2, meta, &sketch);
        let (shard, back_meta, back) = decode_shard(&bytes).unwrap();
        assert_eq!(shard, 2);
        assert_eq!(back_meta, meta);
        assert_eq!(back.snapshot(), sketch.snapshot());

        let manifest = EngineManifest {
            meta,
            snapshots: 7,
            rows: 1_000,
        };
        let bytes = encode_manifest(&manifest);
        assert_eq!(decode_manifest(&bytes).unwrap(), manifest);
    }

    #[test]
    fn decode_rejects_malformed_frames() {
        let sketch = sample_unbiased();
        let good = encode_unbiased(&sketch);

        assert!(matches!(
            decode_unbiased(&[]),
            Err(PersistError::Truncated { .. })
        ));
        assert!(matches!(
            decode_unbiased(&good[..good.len() - 1]),
            Err(PersistError::Truncated { .. })
        ));

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            decode_unbiased(&bad_magic),
            Err(PersistError::BadMagic)
        ));

        let mut future = good.clone();
        future[4] = 0xFF;
        assert!(matches!(
            decode_unbiased(&future),
            Err(PersistError::UnsupportedVersion(_))
        ));

        assert!(matches!(
            decode_weighted(&good),
            Err(PersistError::WrongKind { .. })
        ));

        let mut flipped = good;
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x04;
        assert!(decode_unbiased(&flipped).is_err());
    }

    #[test]
    fn wrong_kind_reports_both_sides() {
        let snap = sample_unbiased().snapshot();
        let bytes = encode_snapshot(&snap);
        match decode_unbiased(&bytes) {
            Err(PersistError::WrongKind { expected, got }) => {
                assert_eq!(expected, SketchKind::Unbiased);
                assert_eq!(got, SketchKind::Snapshot as u8);
            }
            other => panic!("expected WrongKind, got {other:?}"),
        }
    }

    #[test]
    fn cold_snapshot_serves_any_single_sketch_kind() {
        let sketch = sample_unbiased();
        let dir = std::env::temp_dir().join(format!("uss-persist-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        let snap_path = dir.join("cold.uss");
        save_snapshot(&snap_path, &sketch.snapshot()).unwrap();
        let cold = ColdSnapshot::open(&snap_path).unwrap();
        assert_eq!(cold.capture(), sketch.snapshot());
        assert_eq!(cold.rows_hint(), 5_000);
        assert_eq!(cold.path(), snap_path.as_path());

        let full_path = dir.join("full.uss");
        save_unbiased(&full_path, &sketch).unwrap();
        let cold = ColdSnapshot::open(&full_path).unwrap();
        assert_eq!(cold.capture(), sketch.snapshot());

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn decayed_frame_round_trips_and_serves_cold() {
        let mut sketch = DecayedSpaceSaving::with_seed(16, 0.02, 4);
        for i in 0..3_000u64 {
            sketch.offer_at(i % 60, i as f64 * 0.1);
        }
        let bytes = encode_decayed(&sketch);
        assert_eq!(peek_kind(&bytes).unwrap(), SketchKind::Decayed);
        let decoded = decode_decayed(&bytes).unwrap();
        assert_eq!(decoded.rows_processed(), 3_000);
        assert_eq!(decoded.lambda().to_bits(), sketch.lambda().to_bits());
        assert_eq!(decoded.last_time().to_bits(), sketch.last_time().to_bits());

        let dir = std::env::temp_dir().join(format!("uss-decayed-cold-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("decayed.uss");
        write_file(&path, &bytes).unwrap();
        let cold = ColdSnapshot::open(&path).unwrap();
        assert_eq!(cold.capture(), sketch.snapshot_at(sketch.last_time()));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn temporal_manifest_round_trips_and_validates() {
        let config = crate::temporal::TemporalConfig::new(3, 64, 5, 10, 8).with_retention(2, 4);
        let meta = TemporalMeta::from_config(&config);
        let manifest = TemporalManifest {
            meta,
            snapshots: 11,
            rows: 12_345,
        };
        let bytes = encode_temporal_manifest(&manifest);
        assert_eq!(peek_kind(&bytes).unwrap(), SketchKind::TemporalManifest);
        assert_eq!(decode_temporal_manifest(&bytes).unwrap(), manifest);
        // A manifest is not a servable sketch.
        assert!(matches!(
            {
                let dir =
                    std::env::temp_dir().join(format!("uss-tmanifest-{}", std::process::id()));
                std::fs::create_dir_all(&dir).unwrap();
                let path = dir.join("m.uss");
                write_file(&path, &bytes).unwrap();
                let result = ColdSnapshot::open(&path);
                std::fs::remove_dir_all(&dir).unwrap();
                result
            },
            Err(PersistError::WrongKind { .. })
        ));
        // Degenerate geometry is rejected.
        let mut zero_width = manifest;
        zero_width.meta.bucket_width = 0;
        assert!(decode_temporal_manifest(&encode_temporal_manifest(&zero_width)).is_err());
    }

    #[test]
    fn temporal_shard_frame_serves_cold_as_its_full_history() {
        use crate::temporal::{TemporalConfig, WindowConfig, WindowedSketchStore};
        let config = TemporalConfig::new(2, 24, 9, 2, 3).with_retention(1, 2);
        let shard = 1u64;
        let mut store = WindowedSketchStore::new(WindowConfig {
            seed: config.window.seed + shard,
            ..config.window
        });
        for ts in 0u64..40 {
            store.offer_at(ts % 30, ts);
        }
        let meta = TemporalMeta::from_config(&config);
        let bytes = encode_temporal_shard(shard, meta, &store);
        let dir = std::env::temp_dir().join(format!("uss-tshard-cold-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("window-0001.uss");
        write_file(&path, &bytes).unwrap();
        let cold = ColdSnapshot::open(&path).unwrap();
        let seed = meta.seed + shard;
        let expected = store
            .fold_range(0, u64::MAX, seed ^ FOLD_MERGE_SALT, seed ^ FOLD_OUT_SALT)
            .snapshot();
        assert_eq!(cold.capture(), expected);
        assert_eq!(cold.rows_hint(), 40);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn absurd_declared_capacities_are_rejected_before_any_allocation() {
        // Regression: a crafted frame with a valid CRC but a huge capacity used
        // to pass decoding and then panic ('capacity overflow') when something
        // downstream — StreamSummary::new, the temporal range fold — sized an
        // allocation from it. The bound turns it into Corrupt at decode time.
        let config = crate::temporal::TemporalConfig::new(2, 24, 9, 2, 3);
        let store = crate::temporal::WindowedSketchStore::new(config.window);
        let mut meta = TemporalMeta::from_config(&config);
        meta.capacity = 1 << 61;
        let bytes = encode_temporal_shard(0, meta, &store);
        assert!(matches!(
            decode_temporal_shard(&bytes),
            Err(PersistError::Corrupt(_))
        ));

        // The single-sketch kinds are bounded the same way: rewrite the
        // capacity field (offset 16 = first payload word) and re-seal the CRC.
        let sketch = sample_unbiased();
        for mut bytes in [encode_unbiased(&sketch), encode_snapshot(&sketch.snapshot())] {
            bytes[16..24].copy_from_slice(&(1u64 << 61).to_le_bytes());
            let crc_at = bytes.len() - 8;
            let crc = crc64(&bytes[..crc_at]);
            bytes[crc_at..].copy_from_slice(&crc.to_le_bytes());
            assert!(matches!(
                peek_kind(&bytes).and_then(|kind| match kind {
                    SketchKind::Unbiased => decode_unbiased(&bytes).map(|_| ()),
                    _ => decode_snapshot(&bytes).map(|_| ()),
                }),
                Err(PersistError::Corrupt(_))
            ));
        }
    }

    #[test]
    fn error_display_is_informative() {
        let text = PersistError::UnsupportedVersion(9).to_string();
        assert!(text.contains('9'), "{text}");
        let text = PersistError::Corrupt("heap order violated".into()).to_string();
        assert!(text.contains("heap"), "{text}");
    }
}
