//! Query-side API: immutable snapshots of a sketch supporting subset-sum estimates
//! with variance / confidence intervals, frequent-item extraction, and proportion
//! estimates.
//!
//! Sketches are mutable streaming objects; analysis code usually wants a stable view
//! to run many queries against. [`SketchSnapshot`] captures the retained
//! `(item, count)` pairs together with the minimum counter `N̂_min` (the quantity
//! driving the variance estimator of section 6.4) and the number of processed rows.

use serde::{Deserialize, Serialize};

use crate::traits::StreamSketch;
use crate::variance::{
    normal_confidence_interval, subset_variance_estimate, ConfidenceInterval,
};

/// A point-in-time view of a Space Saving style sketch.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct SketchSnapshot {
    entries: Vec<(u64, f64)>,
    min_count: f64,
    rows: u64,
    capacity: usize,
}

/// A subset-sum estimate bundled with its estimated sampling variability.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct SubsetEstimate {
    /// Estimated sum of counts over the subset.
    pub sum: f64,
    /// Estimated variance (equation 5 of the paper); upward biased by construction.
    pub variance: f64,
    /// Number of sketch entries that fell in the subset (`C_S`).
    pub items_in_sketch: usize,
}

impl SubsetEstimate {
    /// Estimated standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Normal-approximation confidence interval at the given level, clamped at zero.
    #[must_use]
    pub fn confidence_interval(&self, confidence: f64) -> ConfidenceInterval {
        normal_confidence_interval(self.sum, self.variance, confidence).clamped_at_zero()
    }

    /// Relative standard error `σ̂ / sum` (infinite for a zero estimate).
    #[must_use]
    pub fn relative_std_error(&self) -> f64 {
        if self.sum == 0.0 {
            f64::INFINITY
        } else {
            self.std_dev() / self.sum
        }
    }
}

impl SketchSnapshot {
    /// Builds a snapshot from raw parts.
    #[must_use]
    pub fn new(entries: Vec<(u64, f64)>, min_count: f64, rows: u64, capacity: usize) -> Self {
        Self {
            entries,
            min_count,
            rows,
            capacity,
        }
    }

    /// Builds a snapshot from any [`StreamSketch`]. The minimum counter is taken to be
    /// the smallest retained estimate when the sketch is at capacity and 0 otherwise.
    #[must_use]
    pub fn from_sketch<S: StreamSketch + ?Sized>(sketch: &S) -> Self {
        let entries = sketch.entries();
        let min_count = if entries.len() >= sketch.capacity() {
            entries
                .iter()
                .map(|(_, c)| *c)
                .fold(f64::INFINITY, f64::min)
        } else {
            0.0
        };
        Self {
            entries,
            min_count: if min_count.is_finite() { min_count } else { 0.0 },
            rows: sketch.rows_processed(),
            capacity: sketch.capacity(),
        }
    }

    /// The retained `(item, estimated count)` pairs.
    #[must_use]
    pub fn entries(&self) -> &[(u64, f64)] {
        &self.entries
    }

    /// The minimum counter `N̂_min` (0 if the sketch never filled).
    #[must_use]
    pub fn min_count(&self) -> f64 {
        self.min_count
    }

    /// Number of rows processed by the sketch that produced this snapshot.
    #[must_use]
    pub fn rows_processed(&self) -> u64 {
        self.rows
    }

    /// Capacity (number of bins) of the producing sketch.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of retained items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no items are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Point estimate for a single item (0 if not retained).
    #[must_use]
    pub fn estimate(&self, item: u64) -> f64 {
        self.entries
            .iter()
            .find(|(i, _)| *i == item)
            .map_or(0.0, |(_, c)| *c)
    }

    /// Sum of all retained counts (equals the number of rows / total weight processed
    /// for Space Saving sketches).
    #[must_use]
    pub fn total(&self) -> f64 {
        self.entries.iter().map(|(_, c)| c).sum()
    }

    /// Estimated sum of counts over all items satisfying `predicate`, with variance.
    pub fn subset_estimate<F>(&self, mut predicate: F) -> SubsetEstimate
    where
        F: FnMut(u64) -> bool,
    {
        let mut sum = 0.0;
        let mut items = 0usize;
        for &(item, count) in &self.entries {
            if predicate(item) {
                sum += count;
                items += 1;
            }
        }
        SubsetEstimate {
            sum,
            variance: subset_variance_estimate(self.min_count, items),
            items_in_sketch: items,
        }
    }

    /// Shorthand for the point estimate of a subset sum.
    pub fn subset_sum<F>(&self, predicate: F) -> f64
    where
        F: FnMut(u64) -> bool,
    {
        self.subset_estimate(predicate).sum
    }

    /// Estimated proportion of all rows whose item satisfies `predicate`.
    pub fn subset_proportion<F>(&self, predicate: F) -> f64
    where
        F: FnMut(u64) -> bool,
    {
        if self.rows == 0 {
            return 0.0;
        }
        self.subset_sum(predicate) / self.rows as f64
    }

    /// Items whose estimated count exceeds `phi · rows` — the classical frequent-item
    /// (heavy hitter) query — sorted by estimated count, descending.
    #[must_use]
    pub fn frequent_items(&self, phi: f64) -> Vec<(u64, f64)> {
        assert!(phi > 0.0 && phi < 1.0, "phi must be in (0, 1)");
        let threshold = phi * self.rows as f64;
        let mut result: Vec<(u64, f64)> = self
            .entries
            .iter()
            .copied()
            .filter(|(_, c)| *c > threshold)
            .collect();
        result.sort_by(|a, b| b.1.total_cmp(&a.1));
        result
    }

    /// The `k` items with the largest estimated counts, descending.
    #[must_use]
    pub fn top_k(&self, k: usize) -> Vec<(u64, f64)> {
        let mut entries = self.entries.clone();
        entries.sort_by(|a, b| b.1.total_cmp(&a.1));
        entries.truncate(k);
        entries
    }

    /// Estimated relative frequency (`count / rows`) of every retained item, sorted
    /// descending.
    #[must_use]
    pub fn proportions(&self) -> Vec<(u64, f64)> {
        if self.rows == 0 {
            return Vec::new();
        }
        let mut result: Vec<(u64, f64)> = self
            .entries
            .iter()
            .map(|&(i, c)| (i, c / self.rows as f64))
            .collect();
        result.sort_by(|a, b| b.1.total_cmp(&a.1));
        result
    }

    /// Convenience: subset estimate plus its confidence interval in one call.
    pub fn subset_confidence_interval<F>(
        &self,
        predicate: F,
        confidence: f64,
    ) -> (SubsetEstimate, ConfidenceInterval)
    where
        F: FnMut(u64) -> bool,
    {
        let est = self.subset_estimate(predicate);
        let ci = est.confidence_interval(confidence);
        (est, ci)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> SketchSnapshot {
        SketchSnapshot::new(
            vec![(1, 50.0), (2, 30.0), (3, 10.0), (4, 10.0)],
            10.0,
            100,
            4,
        )
    }

    #[test]
    fn subset_estimate_sums_matching_items() {
        let snap = snapshot();
        let est = snap.subset_estimate(|i| i <= 2);
        assert_eq!(est.sum, 80.0);
        assert_eq!(est.items_in_sketch, 2);
        assert_eq!(est.variance, 200.0); // 10^2 * 2
        assert!((est.std_dev() - 200.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_subset_still_reports_floor_variance() {
        let snap = snapshot();
        let est = snap.subset_estimate(|i| i > 100);
        assert_eq!(est.sum, 0.0);
        assert_eq!(est.items_in_sketch, 0);
        assert_eq!(est.variance, 100.0); // C_S floors at 1
        assert!(est.relative_std_error().is_infinite());
    }

    #[test]
    fn proportions_and_subset_proportion() {
        let snap = snapshot();
        assert!((snap.subset_proportion(|i| i == 1) - 0.5).abs() < 1e-12);
        let props = snap.proportions();
        assert_eq!(props[0], (1, 0.5));
        assert_eq!(props.len(), 4);
    }

    #[test]
    fn frequent_items_threshold() {
        let snap = snapshot();
        let heavy = snap.frequent_items(0.25);
        assert_eq!(heavy, vec![(1, 50.0), (2, 30.0)]);
        let heavier = snap.frequent_items(0.45);
        assert_eq!(heavier, vec![(1, 50.0)]);
    }

    #[test]
    fn top_k_orders_descending() {
        let snap = snapshot();
        assert_eq!(snap.top_k(3), vec![(1, 50.0), (2, 30.0), (3, 10.0)]);
        assert_eq!(snap.top_k(0), vec![]);
    }

    #[test]
    fn estimate_and_total() {
        let snap = snapshot();
        assert_eq!(snap.estimate(2), 30.0);
        assert_eq!(snap.estimate(99), 0.0);
        assert_eq!(snap.total(), 100.0);
        assert_eq!(snap.len(), 4);
        assert!(!snap.is_empty());
    }

    #[test]
    fn confidence_interval_covers_point_estimate() {
        let snap = snapshot();
        let (est, ci) = snap.subset_confidence_interval(|i| i == 1, 0.95);
        assert!(ci.contains(est.sum));
        assert!(ci.lower >= 0.0);
    }

    #[test]
    fn from_sketch_uses_capacity_to_decide_min_count() {
        struct Fake {
            entries: Vec<(u64, f64)>,
            capacity: usize,
        }
        impl StreamSketch for Fake {
            fn offer(&mut self, _item: u64) {}
            fn rows_processed(&self) -> u64 {
                42
            }
            fn estimate(&self, _item: u64) -> f64 {
                0.0
            }
            fn entries(&self) -> Vec<(u64, f64)> {
                self.entries.clone()
            }
            fn capacity(&self) -> usize {
                self.capacity
            }
        }
        let not_full = Fake {
            entries: vec![(1, 3.0), (2, 5.0)],
            capacity: 4,
        };
        assert_eq!(SketchSnapshot::from_sketch(&not_full).min_count(), 0.0);
        let full = Fake {
            entries: vec![(1, 3.0), (2, 5.0)],
            capacity: 2,
        };
        assert_eq!(SketchSnapshot::from_sketch(&full).min_count(), 3.0);
    }

    #[test]
    #[should_panic(expected = "phi")]
    fn invalid_phi_panics() {
        let _ = snapshot().frequent_items(1.5);
    }

    #[test]
    fn snapshot_equality_and_clone() {
        let snap = snapshot();
        let copy = snap.clone();
        assert_eq!(snap, copy);
    }
}
