//! Query-side API: immutable snapshots of a sketch supporting subset-sum estimates
//! with variance / confidence intervals, frequent-item extraction, and proportion
//! estimates.
//!
//! Sketches are mutable streaming objects; analysis code usually wants a stable view
//! to run many queries against. [`SketchSnapshot`] captures the retained
//! `(item, count)` pairs together with the minimum counter `N̂_min` (the quantity
//! driving the variance estimator of section 6.4) and the number of processed rows.

use serde::{Deserialize, Serialize};

use crate::traits::StreamSketch;
use crate::variance::{
    normal_confidence_interval, subset_variance_estimate, ConfidenceInterval,
};

/// A point-in-time view of a Space Saving style sketch.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct SketchSnapshot {
    entries: Vec<(u64, f64)>,
    min_count: f64,
    rows: u64,
    capacity: usize,
}

/// A subset-sum estimate bundled with its estimated sampling variability.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct SubsetEstimate {
    /// Estimated sum of counts over the subset.
    pub sum: f64,
    /// Estimated variance (equation 5 of the paper); upward biased by construction.
    pub variance: f64,
    /// Number of sketch entries that fell in the subset (`C_S`).
    pub items_in_sketch: usize,
}

impl SubsetEstimate {
    /// Estimated standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Normal-approximation confidence interval at the given level, clamped at zero.
    #[must_use]
    pub fn confidence_interval(&self, confidence: f64) -> ConfidenceInterval {
        normal_confidence_interval(self.sum, self.variance, confidence).clamped_at_zero()
    }

    /// Relative standard error `σ̂ / sum` (infinite for a zero estimate).
    #[must_use]
    pub fn relative_std_error(&self) -> f64 {
        if self.sum == 0.0 {
            f64::INFINITY
        } else {
            self.std_dev() / self.sum
        }
    }
}

impl SketchSnapshot {
    /// Builds a snapshot from raw parts.
    #[must_use]
    pub fn new(entries: Vec<(u64, f64)>, min_count: f64, rows: u64, capacity: usize) -> Self {
        Self {
            entries,
            min_count,
            rows,
            capacity,
        }
    }

    /// Builds a snapshot from any [`StreamSketch`]. The minimum counter is taken to be
    /// the smallest retained estimate when the sketch is at capacity and 0 otherwise.
    #[must_use]
    pub fn from_sketch<S: StreamSketch + ?Sized>(sketch: &S) -> Self {
        let entries = sketch.entries();
        let min_count = if entries.len() >= sketch.capacity() {
            entries
                .iter()
                .map(|(_, c)| *c)
                .fold(f64::INFINITY, f64::min)
        } else {
            0.0
        };
        Self {
            entries,
            min_count: if min_count.is_finite() { min_count } else { 0.0 },
            rows: sketch.rows_processed(),
            capacity: sketch.capacity(),
        }
    }

    /// The retained `(item, estimated count)` pairs.
    #[must_use]
    pub fn entries(&self) -> &[(u64, f64)] {
        &self.entries
    }

    /// The minimum counter `N̂_min` (0 if the sketch never filled).
    #[must_use]
    pub fn min_count(&self) -> f64 {
        self.min_count
    }

    /// Number of rows processed by the sketch that produced this snapshot.
    #[must_use]
    pub fn rows_processed(&self) -> u64 {
        self.rows
    }

    /// Capacity (number of bins) of the producing sketch.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of retained items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no items are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Point estimate for a single item (0 if not retained).
    #[must_use]
    pub fn estimate(&self, item: u64) -> f64 {
        self.entries
            .iter()
            .find(|(i, _)| *i == item)
            .map_or(0.0, |(_, c)| *c)
    }

    /// Sum of all retained counts (equals the number of rows / total weight processed
    /// for Space Saving sketches).
    #[must_use]
    pub fn total(&self) -> f64 {
        self.entries.iter().map(|(_, c)| c).sum()
    }

    /// Estimated sum of counts over all items satisfying `predicate`, with variance.
    pub fn subset_estimate<F>(&self, mut predicate: F) -> SubsetEstimate
    where
        F: FnMut(u64) -> bool,
    {
        let mut sum = 0.0;
        let mut items = 0usize;
        for &(item, count) in &self.entries {
            if predicate(item) {
                sum += count;
                items += 1;
            }
        }
        SubsetEstimate {
            sum,
            variance: subset_variance_estimate(self.min_count, items),
            items_in_sketch: items,
        }
    }

    /// Shorthand for the point estimate of a subset sum.
    pub fn subset_sum<F>(&self, predicate: F) -> f64
    where
        F: FnMut(u64) -> bool,
    {
        self.subset_estimate(predicate).sum
    }

    /// Estimated proportion of all rows whose item satisfies `predicate`.
    pub fn subset_proportion<F>(&self, predicate: F) -> f64
    where
        F: FnMut(u64) -> bool,
    {
        if self.rows == 0 {
            return 0.0;
        }
        self.subset_sum(predicate) / self.rows as f64
    }

    /// Items whose estimated count exceeds `phi · rows` — the classical frequent-item
    /// (heavy hitter) query — sorted by estimated count, descending.
    #[must_use]
    pub fn frequent_items(&self, phi: f64) -> Vec<(u64, f64)> {
        assert!(phi > 0.0 && phi < 1.0, "phi must be in (0, 1)");
        let threshold = phi * self.rows as f64;
        let mut result: Vec<(u64, f64)> = self
            .entries
            .iter()
            .copied()
            .filter(|(_, c)| *c > threshold)
            .collect();
        result.sort_by(|a, b| b.1.total_cmp(&a.1));
        result
    }

    /// The `k` items with the largest estimated counts, descending.
    #[must_use]
    pub fn top_k(&self, k: usize) -> Vec<(u64, f64)> {
        let mut entries = self.entries.clone();
        entries.sort_by(|a, b| b.1.total_cmp(&a.1));
        entries.truncate(k);
        entries
    }

    /// Estimated relative frequency (`count / rows`) of every retained item, sorted
    /// descending.
    #[must_use]
    pub fn proportions(&self) -> Vec<(u64, f64)> {
        if self.rows == 0 {
            return Vec::new();
        }
        let mut result: Vec<(u64, f64)> = self
            .entries
            .iter()
            .map(|&(i, c)| (i, c / self.rows as f64))
            .collect();
        result.sort_by(|a, b| b.1.total_cmp(&a.1));
        result
    }

    /// Estimated sum of counts over the listed items, with variance — the list form
    /// of [`subset_estimate`](Self::subset_estimate) used by the typed
    /// [`Query::SubsetSum`](crate::query::Query::SubsetSum). Sorted input is looked
    /// up directly; unsorted input is sorted into a scratch copy first, so the
    /// answer is correct either way.
    #[must_use]
    pub fn subset_estimate_items(&self, items: &[u64]) -> SubsetEstimate {
        if items.is_sorted() {
            self.subset_estimate(|item| items.binary_search(&item).is_ok())
        } else {
            let mut sorted = items.to_vec();
            sorted.sort_unstable();
            self.subset_estimate(|item| sorted.binary_search(&item).is_ok())
        }
    }

    /// Group-by query: folds every retained entry through `key_of` and returns one
    /// [`SubsetEstimate`] per distinct key, in first-seen entry order. Entries mapped
    /// to `None` are skipped. This is the paper's "historical count" / marginal
    /// workload (section 7, Figure 6): sketch at full key granularity, then roll up
    /// to any coarser grouping after the fact — every group total is itself a subset
    /// sum and stays unbiased, with the equation-5 variance per group.
    pub fn marginals<K, F>(&self, mut key_of: F) -> Vec<(K, SubsetEstimate)>
    where
        K: Eq + std::hash::Hash + Clone,
        F: FnMut(u64) -> Option<K>,
    {
        let mut order: Vec<(K, f64, usize)> = Vec::new();
        let mut index: crate::hash::FxHashMap<K, usize> = crate::hash::FxHashMap::default();
        for &(item, count) in &self.entries {
            let Some(key) = key_of(item) else { continue };
            match index.get(&key) {
                Some(&i) => {
                    order[i].1 += count;
                    order[i].2 += 1;
                }
                None => {
                    index.insert(key.clone(), order.len());
                    order.push((key, count, 1));
                }
            }
        }
        order
            .into_iter()
            .map(|(key, sum, items)| {
                (
                    key,
                    SubsetEstimate {
                        sum,
                        variance: subset_variance_estimate(self.min_count, items),
                        items_in_sketch: items,
                    },
                )
            })
            .collect()
    }

    /// The retained `(item, count)` at rank quantile `q` of the descending count
    /// ranking: `q = 0` is the most frequent retained item, `q = 1` the least
    /// frequent, `q = 0.5` the median retained count. Returns `None` on an empty
    /// snapshot — and on a `q` outside `[0, 1]` (NaN included): this runs on the
    /// serving read path, where a malformed query must be an empty answer, never
    /// a panic.
    #[must_use]
    pub fn rank_quantile(&self, q: f64) -> Option<(u64, f64)> {
        if !(0.0..=1.0).contains(&q) || self.entries.is_empty() {
            return None;
        }
        let idx = ((q * (self.entries.len() - 1) as f64).round() as usize)
            .min(self.entries.len() - 1);
        // Selection over an index scratch, not a full sort and not a clone of the
        // entries: O(m) time and half the scratch bytes per query on the serving
        // hot path.
        let mut order: Vec<u32> = (0..self.entries.len() as u32).collect();
        let (_, &mut rank, _) = order.select_nth_unstable_by(idx, |&a, &b| {
            self.entries[b as usize].1.total_cmp(&self.entries[a as usize].1)
        });
        Some(self.entries[rank as usize])
    }

    /// Convenience: subset estimate plus its confidence interval in one call.
    pub fn subset_confidence_interval<F>(
        &self,
        predicate: F,
        confidence: f64,
    ) -> (SubsetEstimate, ConfidenceInterval)
    where
        F: FnMut(u64) -> bool,
    {
        let est = self.subset_estimate(predicate);
        let ci = est.confidence_interval(confidence);
        (est, ci)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> SketchSnapshot {
        SketchSnapshot::new(
            vec![(1, 50.0), (2, 30.0), (3, 10.0), (4, 10.0)],
            10.0,
            100,
            4,
        )
    }

    #[test]
    fn subset_estimate_sums_matching_items() {
        let snap = snapshot();
        let est = snap.subset_estimate(|i| i <= 2);
        assert_eq!(est.sum, 80.0);
        assert_eq!(est.items_in_sketch, 2);
        assert_eq!(est.variance, 200.0); // 10^2 * 2
        assert!((est.std_dev() - 200.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_subset_still_reports_floor_variance() {
        let snap = snapshot();
        let est = snap.subset_estimate(|i| i > 100);
        assert_eq!(est.sum, 0.0);
        assert_eq!(est.items_in_sketch, 0);
        assert_eq!(est.variance, 100.0); // C_S floors at 1
        assert!(est.relative_std_error().is_infinite());
    }

    #[test]
    fn proportions_and_subset_proportion() {
        let snap = snapshot();
        assert!((snap.subset_proportion(|i| i == 1) - 0.5).abs() < 1e-12);
        let props = snap.proportions();
        assert_eq!(props[0], (1, 0.5));
        assert_eq!(props.len(), 4);
    }

    #[test]
    fn frequent_items_threshold() {
        let snap = snapshot();
        let heavy = snap.frequent_items(0.25);
        assert_eq!(heavy, vec![(1, 50.0), (2, 30.0)]);
        let heavier = snap.frequent_items(0.45);
        assert_eq!(heavier, vec![(1, 50.0)]);
    }

    #[test]
    fn top_k_orders_descending() {
        let snap = snapshot();
        assert_eq!(snap.top_k(3), vec![(1, 50.0), (2, 30.0), (3, 10.0)]);
        assert_eq!(snap.top_k(0), vec![]);
    }

    #[test]
    fn estimate_and_total() {
        let snap = snapshot();
        assert_eq!(snap.estimate(2), 30.0);
        assert_eq!(snap.estimate(99), 0.0);
        assert_eq!(snap.total(), 100.0);
        assert_eq!(snap.len(), 4);
        assert!(!snap.is_empty());
    }

    #[test]
    fn confidence_interval_covers_point_estimate() {
        let snap = snapshot();
        let (est, ci) = snap.subset_confidence_interval(|i| i == 1, 0.95);
        assert!(ci.contains(est.sum));
        assert!(ci.lower >= 0.0);
    }

    #[test]
    fn from_sketch_uses_capacity_to_decide_min_count() {
        struct Fake {
            entries: Vec<(u64, f64)>,
            capacity: usize,
        }
        impl StreamSketch for Fake {
            fn offer(&mut self, _item: u64) {}
            fn rows_processed(&self) -> u64 {
                42
            }
            fn estimate(&self, _item: u64) -> f64 {
                0.0
            }
            fn entries(&self) -> Vec<(u64, f64)> {
                self.entries.clone()
            }
            fn capacity(&self) -> usize {
                self.capacity
            }
        }
        let not_full = Fake {
            entries: vec![(1, 3.0), (2, 5.0)],
            capacity: 4,
        };
        assert_eq!(SketchSnapshot::from_sketch(&not_full).min_count(), 0.0);
        let full = Fake {
            entries: vec![(1, 3.0), (2, 5.0)],
            capacity: 2,
        };
        assert_eq!(SketchSnapshot::from_sketch(&full).min_count(), 3.0);
    }

    #[test]
    #[should_panic(expected = "phi")]
    fn invalid_phi_panics() {
        let _ = snapshot().frequent_items(1.5);
    }

    #[test]
    fn marginals_group_in_first_seen_order_with_per_group_variance() {
        let snap = snapshot();
        // Group items by parity: 1, 3 are odd; 2, 4 even. Entry order is 1,2,3,4 so
        // the odd group is seen first.
        let groups = snap.marginals(|item| Some(item % 2));
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, 1);
        assert_eq!(groups[0].1.sum, 60.0);
        assert_eq!(groups[0].1.items_in_sketch, 2);
        assert_eq!(groups[0].1.variance, 200.0); // 10^2 * 2
        assert_eq!(groups[1].0, 0);
        assert_eq!(groups[1].1.sum, 40.0);
        // Keys mapped to None are dropped entirely.
        let only_odd = snap.marginals(|item| (item % 2 == 1).then_some(()));
        assert_eq!(only_odd.len(), 1);
        assert_eq!(only_odd[0].1.sum, 60.0);
    }

    #[test]
    fn subset_estimate_items_matches_predicate_form() {
        let snap = snapshot();
        let est = snap.subset_estimate_items(&[1, 2]);
        let reference = snap.subset_estimate(|i| i <= 2);
        assert_eq!(est.sum, reference.sum);
        assert_eq!(est.variance, reference.variance);
    }

    #[test]
    fn subset_estimate_items_accepts_unsorted_input() {
        let snap = snapshot();
        let sorted = snap.subset_estimate_items(&[1, 2, 4]);
        let unsorted = snap.subset_estimate_items(&[4, 1, 2]);
        assert_eq!(unsorted.sum, sorted.sum);
        assert_eq!(unsorted.variance, sorted.variance);
        assert_eq!(unsorted.items_in_sketch, 3);
    }

    #[test]
    fn rank_quantile_walks_the_descending_ranking() {
        let snap = snapshot();
        assert_eq!(snap.rank_quantile(0.0), Some((1, 50.0)));
        assert_eq!(snap.rank_quantile(1.0).unwrap().1, 10.0);
        // Median of 4 entries rounds to index 2 (count 10).
        assert_eq!(snap.rank_quantile(0.5).unwrap().1, 10.0);
        let empty = SketchSnapshot::new(vec![], 0.0, 0, 4);
        assert_eq!(empty.rank_quantile(0.5), None);
    }

    #[test]
    fn rank_quantile_answers_none_for_invalid_q() {
        // Regression: q outside [0, 1] used to assert!, so a NaN or out-of-range
        // quantile reaching the query server panicked the read path.
        let snap = snapshot();
        assert_eq!(snap.rank_quantile(1.5), None);
        assert_eq!(snap.rank_quantile(-0.1), None);
        assert_eq!(snap.rank_quantile(f64::NAN), None);
        assert_eq!(snap.rank_quantile(f64::INFINITY), None);
        // Valid quantiles still answer.
        assert!(snap.rank_quantile(0.25).is_some());
    }

    #[test]
    fn snapshot_equality_and_clone() {
        let snap = snapshot();
        let copy = snap.clone();
        assert_eq!(snap, copy);
    }
}
