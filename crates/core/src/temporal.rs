//! Temporal sketching: windowed ingest, time-range queries, tiered retention.
//!
//! The rest of this crate answers queries over an *entire* stream; this module
//! partitions the stream by time so the dominant monitoring shapes — "top-k over
//! the last hour", "subset sum for yesterday vs. today" — become answerable from
//! the same sketches. It is the hard-window counterpart to the smooth forward
//! decay of [`crate::space_saving::DecayedSpaceSaving`] (the paper's section 5.3
//! observation that the reduction step is a sampling operation and can be swapped
//! for a time-aware one): a window query weights every in-range row 1 and every
//! out-of-range row 0, where forward decay weights rows by `exp(-λ·age)`.
//!
//! Three layers:
//!
//! * [`WindowedSketchStore`] — a single-threaded ring of per-bucket
//!   [`UnbiasedSpaceSaving`] sketches. Rows carry a `u64` timestamp; bucket
//!   `ts / bucket_width` holds the rows of one time slice. The newest
//!   `fine_buckets` buckets stay *fine* (full resumable sketches); older buckets
//!   expire into coarser **tiers**: each tier holds up to `tier_factor - 1`
//!   buckets and compacts groups of `tier_factor` into one bucket of the next
//!   tier via the same unbiased PPS fold used everywhere else
//!   ([`crate::merge::fold_unbiased`]), so every compacted count stays unbiased
//!   (Theorem 2 applies to each merge). Buckets that age past the last tier
//!   accumulate into a single *terminal* bucket. Total memory is therefore
//!   bounded by `(fine_buckets + tiers · (tier_factor - 1) + 1) · capacity`
//!   entries per shard, while the whole history stays queryable — accuracy
//!   degrades gracefully with age: a range query is answered at the granularity
//!   of the retained buckets, so resolution coarsens by `tier_factor` per tier.
//! * [`TemporalIngestEngine`] — the concurrent engine, mirroring
//!   [`crate::engine::ShardedIngestEngine`]: one [`WindowedSketchStore`] per
//!   worker shard, timestamped rows routed by item hash through cloneable
//!   batching [`TemporalIngestHandle`]s, window rotation and compaction running
//!   inside the workers (no locks on the ingest path).
//! * Time-range queries — [`TemporalIngestEngine::range_snapshot`] folds every
//!   retained bucket overlapping a [`TimeRange`] across all shards with the
//!   unbiased PPS merge, using the engine's salted snapshot-seed sequence, so a
//!   range answer is exactly the kind of merged sketch a
//!   [`crate::engine::ShardedIngestEngine::snapshot`] produces (equation-5
//!   variance and all). [`TemporalIngestEngine::range_source`] wraps a range as
//!   a [`SnapshotSource`], so the unchanged [`crate::query::QueryServer`] serves
//!   all five [`crate::query::Query`] variants plus `marginals` over any range;
//!   a small merged-range cache makes repeated queries at the same ingest
//!   watermark cheap *and* mutually consistent. When every row lands in one
//!   bucket, a whole-stream range answer is **bit-identical** to the
//!   non-temporal engine's snapshot under the same seeds.
//!
//! Late rows (older than the fine window) are clamped into the oldest retained
//! fine bucket — mass is never dropped, the time smear is bounded by the fine
//! window, and [`WindowedSketchStore::late_rows`] counts the clamps.
//! In-window out-of-order rows land in their true bucket exactly.
//!
//! # The dyadic range-merge ladder
//!
//! A naive range fold touches every overlapping bucket, so wide ranges cost
//! O(window) unbiased merges *per query*. Each store therefore maintains a
//! **dyadic ladder** over the sealed part of its fine window — a segment-tree
//! of pre-merged nodes, one per aligned power-of-two span: level `ℓ ≥ 1` holds
//! at most `(fine_buckets − 1) / 2^ℓ` nodes, each covering fine-bucket span
//! `[s, s + 2^ℓ)` with `s` a multiple of `2^ℓ`, built by one unbiased PPS fold
//! of its two children (level-1 nodes fold two fine leaves). Only *sealed*
//! buckets — strictly older than the newest — are covered, so the
//! still-ingesting bucket never invalidates anything. Nodes are built
//! incrementally: the shard worker builds one node per idle slot between
//! batches (rotation only retires expired nodes, keeping the ingest path
//! cheap), and a range query repairs any node it needs on demand. A node's
//! contents are a *deterministic* function of the current leaf contents — node
//! folds are seeded from the base seed and the span alone — so when an
//! out-of-order or late-clamped row mutates a sealed bucket, the ≤ 1 covering
//! node per level is dropped and rebuilt lazily.
//!
//! Query decomposition is the classical dyadic one: any fine-bucket range
//! `[start, end)` splits into O(log fine_buckets) maximal aligned nodes plus
//! boundary leaves, and the shard additionally pre-merges the selected reports
//! (nodes + leaves + overlapping tier/terminal buckets) into a **single**
//! span report under span-derived seeds, memoized at the shard's applied-row
//! watermark. The engine then folds one report per shard with
//! [`crate::merge::fold_unbiased_multiway`] under its salted snapshot-seed
//! sequence — so a wide-range query costs O(shards) merge work instead of
//! O(shards · window), flat in the span width.
//!
//! Statistically nothing changes: every ladder node is produced by the same
//! Theorem-2 PPS reduction as a tier compaction, so `E[node count] = `true
//! in-span count for every item, and a fold of unbiased nodes is unbiased by
//! linearity — with *fewer* sampling stages than the leaf-by-leaf fold (a
//! depth-log tree instead of a length-n chain), so per-item variance can only
//! shrink. Equation-5 variance/CI machinery on a ladder-served snapshot stays
//! honest; `temporal_properties.rs` locks this with a z-test over seeds
//! against leaf folds. Ladder memory is bounded by `fine_buckets · capacity`
//! extra entries per shard (the levels form a geometric series). Ranges that
//! resolve to a single bucket per shard keep the exact legacy fold, so
//! single-bucket answers (and the one-bucket bit-identity guarantee) are
//! byte-for-byte unchanged.
//!
//! The whole ring checkpoints and restores through [`crate::persist`] (one
//! bucket-ring frame per shard plus a temporal manifest), bit-compatibly: fine
//! buckets keep their RNG and counter-structure images, so a restored engine
//! continues exactly as an uninterrupted one would.
//!
//! ```
//! use uss_core::prelude::*;
//! use uss_core::temporal::{TemporalConfig, TemporalIngestEngine, TimeRange};
//!
//! // 2 shards, 256 bins, 10-tick buckets, 6 fine buckets retained.
//! let engine = TemporalIngestEngine::new(TemporalConfig::new(2, 256, 7, 10, 6));
//! let mut handle = engine.handle();
//! for ts in 0u64..100 {
//!     for row in 0u64..200 {
//!         handle.offer_at(row % 50, ts);
//!     }
//! }
//! handle.flush();
//!
//! // Serve a sliding window through the unchanged QueryServer.
//! let server = QueryServer::new(
//!     engine.range_source(TimeRange::LastBuckets(3)),
//!     QueryServerConfig::new(),
//! );
//! let top = server.top_k(5);
//! assert_eq!(top.len(), 5);
//!
//! // A whole-history range still answers (coarser with age).
//! let all = engine.range_snapshot(&TimeRange::All);
//! assert_eq!(all.rows_processed(), 100 * 200);
//! let _ = engine.finish();
//! ```

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use crate::engine::{EngineError, ShardFailure, ShardFault, ShardLink};
use crate::estimator::SketchSnapshot;
use crate::hash::splitmix64;
use crate::metrics::{EngineMetrics, ShardMetrics, TemporalMetrics};
use crate::spsc::{
    block_channel_with_counters, BlockReceiver, BlockSender, RowBlock, Waker, BLOCK_CAP,
};
use crate::merge::{fold_unbiased, fold_unbiased_multiway, FOLD_MERGE_SALT, FOLD_OUT_SALT};
use crate::persist::{self, PersistError};
use crate::query::SnapshotSource;
use crate::space_saving::{UnbiasedSpaceSaving, WeightedSpaceSaving};
use crate::traits::StreamSketch;

/// Why a [`WindowConfig`] cannot drive a store. Construction through
/// [`WindowConfig::new`] and the builders rejects these values eagerly, but the
/// fields are public — and a serving daemon builds configs from *client-supplied*
/// bytes — so [`WindowConfig::validate`] re-checks and surfaces this typed error
/// instead of panicking, mirroring [`crate::engine::EngineConfigError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum WindowConfigError {
    /// `capacity == 0`: bucket sketches cannot hold zero counters.
    ZeroCapacity,
    /// `bucket_width == 0`: every timestamp would divide into a single
    /// degenerate bucket index by zero.
    ZeroBucketWidth,
    /// `fine_buckets == 0`: there would be no bucket to ingest into.
    ZeroFineBuckets,
    /// `tier_factor < 2`: a tier must compact groups of at least two buckets,
    /// or compaction would never terminate.
    TierFactorTooSmall,
}

impl std::fmt::Display for WindowConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ZeroCapacity => write!(f, "capacity must be positive"),
            Self::ZeroBucketWidth => write!(f, "bucket_width must be positive"),
            Self::ZeroFineBuckets => write!(f, "fine_buckets must be positive"),
            Self::TierFactorTooSmall => write!(f, "tier_factor must be at least 2"),
        }
    }
}

impl std::error::Error for WindowConfigError {}

/// Why a [`TemporalConfig`] cannot drive an engine; the temporal analogue of
/// [`crate::engine::EngineConfigError`], returned by [`TemporalConfig::validate`]
/// and [`TemporalIngestEngine::try_new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TemporalConfigError {
    /// `shards == 0`: there would be no worker to route any row to.
    ZeroShards,
    /// `queue_depth == 0`: every send would block forever on a zero-slot queue.
    ZeroQueueDepth,
    /// `batch_rows == 0`: a handle would never accumulate a sendable batch.
    ZeroBatchRows,
    /// The per-shard window geometry is invalid.
    Window(WindowConfigError),
}

impl std::fmt::Display for TemporalConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ZeroShards => write!(f, "engine needs at least one shard"),
            Self::ZeroQueueDepth => write!(f, "queue_depth must be positive"),
            Self::ZeroBatchRows => write!(f, "batch_rows must be positive"),
            Self::Window(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for TemporalConfigError {}

impl From<WindowConfigError> for TemporalConfigError {
    fn from(err: WindowConfigError) -> Self {
        Self::Window(err)
    }
}

/// Per-shard window configuration: bucket geometry and retention tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowConfig {
    /// Bins per bucket sketch (and per merged range answer).
    pub capacity: usize,
    /// Base RNG seed. Bucket 0 of a store seeded `s` sketches with seed `s`
    /// exactly (which is what makes a one-bucket store bit-identical to a plain
    /// sketch with that seed); later buckets derive their seeds from `s` and the
    /// bucket index.
    pub seed: u64,
    /// Time units per fine bucket. Bucket `i` covers `[i·width, (i+1)·width)`.
    pub bucket_width: u64,
    /// Number of fine (full-sketch) buckets retained before expiry.
    pub fine_buckets: usize,
    /// Buckets per tier before a group compacts into the next tier.
    pub tier_factor: usize,
    /// Number of retention tiers between the fine ring and the terminal bucket.
    /// `0` sends expired fine buckets straight to the terminal bucket.
    pub tiers: usize,
}

impl WindowConfig {
    /// A window configuration with the default retention (2 tiers, factor 4).
    ///
    /// # Panics
    ///
    /// Panics if `capacity`, `bucket_width` or `fine_buckets` is zero.
    #[must_use]
    pub fn new(capacity: usize, seed: u64, bucket_width: u64, fine_buckets: usize) -> Self {
        match Self::try_new(capacity, seed, bucket_width, fine_buckets) {
            Ok(config) => config,
            Err(err) => panic!("{err}"),
        }
    }

    /// Fallible [`new`](Self::new), for configurations built from untrusted
    /// input (a daemon's client-supplied stream specs): returns the typed error
    /// instead of panicking, mirroring [`crate::engine::EngineConfig`]'s
    /// `try_new`.
    ///
    /// # Errors
    ///
    /// [`WindowConfigError`] when `capacity`, `bucket_width` or `fine_buckets`
    /// is zero.
    pub fn try_new(
        capacity: usize,
        seed: u64,
        bucket_width: u64,
        fine_buckets: usize,
    ) -> Result<Self, WindowConfigError> {
        let config = Self {
            capacity,
            seed,
            bucket_width,
            fine_buckets,
            tier_factor: 4,
            tiers: 2,
        };
        config.validate()?;
        Ok(config)
    }

    /// Overrides the retention geometry: `tiers` coarse tiers, each compacting
    /// groups of `tier_factor` buckets into the next.
    ///
    /// # Panics
    ///
    /// Panics if `tier_factor < 2`.
    #[must_use]
    pub fn with_retention(mut self, tiers: usize, tier_factor: usize) -> Self {
        assert!(tier_factor >= 2, "tier_factor must be at least 2");
        self.tiers = tiers;
        self.tier_factor = tier_factor;
        self
    }

    /// Checks the configuration for values no store can run with. The fields
    /// are public (and a daemon fills them from client bytes), so stores and
    /// engines re-validate before building anything.
    ///
    /// # Errors
    ///
    /// The first [`WindowConfigError`] found, checking capacity, bucket width,
    /// fine buckets, then tier factor.
    pub fn validate(&self) -> Result<(), WindowConfigError> {
        if self.capacity == 0 {
            return Err(WindowConfigError::ZeroCapacity);
        }
        if self.bucket_width == 0 {
            return Err(WindowConfigError::ZeroBucketWidth);
        }
        if self.fine_buckets == 0 {
            return Err(WindowConfigError::ZeroFineBuckets);
        }
        if self.tier_factor < 2 {
            return Err(WindowConfigError::TierFactorTooSmall);
        }
        Ok(())
    }
}

/// The entries and row count of one retained bucket, as reported to a range
/// fold. The temporal analogue of the engine's internal shard report.
#[derive(Debug, Clone, PartialEq)]
pub struct BucketReport {
    /// The bucket's retained `(item, count)` pairs.
    pub entries: Vec<(u64, f64)>,
    /// Rows absorbed by the bucket.
    pub rows: u64,
}

/// A compacted (coarse-tier or terminal) bucket: an entry list covering a span
/// of fine-bucket indices. Compacted buckets are never ingested into again, so
/// they carry no RNG or counter structure — just the unbiased merged entries.
#[derive(Debug, Clone, PartialEq)]
pub struct TierBucket {
    pub(crate) start: u64,
    pub(crate) end: u64,
    pub(crate) entries: Vec<(u64, f64)>,
    pub(crate) rows: u64,
}

impl TierBucket {
    /// First fine-bucket index covered.
    #[must_use]
    pub fn start(&self) -> u64 {
        self.start
    }

    /// One past the last fine-bucket index covered.
    #[must_use]
    pub fn end(&self) -> u64 {
        self.end
    }

    /// The merged `(item, count)` entries.
    #[must_use]
    pub fn entries(&self) -> &[(u64, f64)] {
        &self.entries
    }

    /// Rows covered by the bucket.
    #[must_use]
    pub fn rows(&self) -> u64 {
        self.rows
    }
}

/// Compacts a group of bucket reports covering fine-bucket span `[start, end)`
/// into one [`TierBucket`] with the unbiased PPS fold. The fold seeds derive
/// deterministically from `base_seed` and the span, so compaction is exactly
/// reproducible: compacting the same bucket contents over the same span always
/// yields the same entries (the tier-compaction equivalence locked by tests).
#[must_use]
pub fn compact_fold(
    capacity: usize,
    base_seed: u64,
    start: u64,
    end: u64,
    parts: Vec<BucketReport>,
) -> TierBucket {
    let salt = splitmix64(start ^ end.rotate_left(32));
    let merged = fold_unbiased(
        capacity,
        base_seed ^ 0x00C0_FFEE ^ salt,
        base_seed ^ 0xFACE ^ salt,
        parts.into_iter().map(|b| (b.entries, b.rows)),
    );
    TierBucket {
        start,
        end,
        rows: merged.rows_processed(),
        entries: merged.entries(),
    }
}

/// One fine (still-ingesting) bucket: its index and full resumable sketch.
#[derive(Debug, Clone)]
struct FineBucket {
    index: u64,
    sketch: UnbiasedSpaceSaving,
}

/// Seed salts for dyadic-ladder node folds and per-shard span pre-merges.
/// Distinct from the tier-compaction constants in [`compact_fold`] so no two
/// fold sites ever share an RNG stream over the same span.
const LADDER_MERGE_SALT: u64 = 0xD1AD_1C00;
const LADDER_OUT_SALT: u64 = 0xD1AD_1C01;
const SPAN_MERGE_SALT: u64 = 0xD1AD_1C02;
const SPAN_OUT_SALT: u64 = 0xD1AD_1C03;

/// How many pre-merged span reports a store memoizes (keyed by the span and
/// the applied-row watermark, so any ingest invalidates naturally). Matches
/// the engine's merged-range cache: a dashboard polls a handful of ranges.
const SPAN_MEMO_SLOTS: usize = 8;

/// Deferred-compaction backlog bound: once this many expired-bucket reports
/// are queued, each further expiry settles one inline so the debt (and its
/// memory) stays bounded even when a worker never sees an idle slot.
const MAX_PENDING_EXPIRED: usize = 64;

/// The deepest ladder level for a window of `fine_buckets`: nodes only cover
/// *sealed* buckets (everything except the newest), so the largest node span
/// is the largest power of two that fits in `fine_buckets - 1`. Zero means no
/// ladder (windows of one or two buckets gain nothing from pre-merging).
fn ladder_max_level(fine_buckets: usize) -> u32 {
    let sealed = fine_buckets.saturating_sub(1);
    if sealed < 2 {
        0
    } else {
        sealed.ilog2()
    }
}

/// The dyadic pre-merge index over a store's sealed fine buckets. See the
/// [module docs](self) for the maintenance and decomposition rules.
#[derive(Debug, Clone)]
struct DyadicLadder {
    /// `levels[ℓ-1]`: the level-`ℓ` nodes, keyed by their aligned start index.
    /// Every node is a [`TierBucket`] covering `[start, start + 2^ℓ)`.
    levels: Vec<BTreeMap<u64, TierBucket>>,
    /// Per level, the idle builder's frontier: aligned spans ending at or
    /// before it have been offered to [`WindowedSketchStore::ensure_node`].
    /// Query-time repair may build beyond it; invalidation may remove nodes
    /// behind it (they are rebuilt on demand).
    built: Vec<u64>,
}

impl DyadicLadder {
    fn new(max_level: u32) -> Self {
        Self {
            levels: vec![BTreeMap::new(); max_level as usize],
            built: vec![0; max_level as usize],
        }
    }
}

/// One memoized pre-merged span report (see [`SPAN_MEMO_SLOTS`]).
#[derive(Debug, Clone)]
struct SpanMemo {
    start: u64,
    end: u64,
    /// The store's applied-row count when the report was folded.
    at_rows: u64,
    report: BucketReport,
}

/// The RNG seed of the fine bucket at `index` in a store seeded `base_seed`.
/// Bucket 0 uses `base_seed` itself so a one-bucket store is bit-identical to a
/// plain sketch (and a one-bucket temporal engine to the non-temporal engine).
fn bucket_seed(base_seed: u64, index: u64) -> u64 {
    if index == 0 {
        base_seed
    } else {
        base_seed ^ splitmix64(index)
    }
}

/// A time-partitioned sketch store: a ring of fine per-bucket
/// [`UnbiasedSpaceSaving`] sketches with tiered compaction of expired buckets.
/// Single-threaded; the unit the [`TemporalIngestEngine`] runs one-per-shard.
/// See the [module docs](self) for the retention geometry and query semantics.
#[derive(Debug, Clone)]
pub struct WindowedSketchStore {
    config: WindowConfig,
    /// Fine buckets, ascending by index (sparse: only buckets that saw rows).
    fine: VecDeque<FineBucket>,
    /// `tiers[t]` holds spans of `tier_factor^(t+1)` fine buckets (ascending);
    /// higher `t` is coarser and older.
    tiers: Vec<VecDeque<TierBucket>>,
    /// Everything older than the last tier, merged into one bucket.
    terminal: Option<TierBucket>,
    /// The dyadic pre-merge index over the sealed fine buckets.
    ladder: DyadicLadder,
    /// Memoized pre-merged span reports (never persisted; rebuilt on demand).
    span_memo: VecDeque<SpanMemo>,
    /// Expired fine-bucket reports whose tier compaction is deferred (engine
    /// workers only; see [`set_defer_compaction`](Self::set_defer_compaction)).
    /// Always settled before any query, checkpoint or clone, so the queue is
    /// pure scheduling state — it never reaches persisted images.
    pending_expired: VecDeque<TierBucket>,
    /// When set, [`expire`](Self::expire) queues reports instead of compacting
    /// them inline; idle-slot [`settle_one`](Self::settle_one) calls (and the
    /// pre-query [`settle_all`](Self::settle_all)) do the tier work instead.
    defer_compaction: bool,
    /// One retired fine-bucket sketch kept for reuse: rotation hands the next
    /// [`make_bucket`](Self::make_bucket) recycled allocations instead of a
    /// fresh `capacity`-sized sketch every window advance.
    spare: Option<UnbiasedSpaceSaving>,
    rows: u64,
    late_rows: u64,
    last_ts: u64,
    /// Engine-wide temporal telemetry (rotations, compactions, ladder churn).
    /// Standalone stores get a private block; engine workers share the
    /// engine's. Never persisted; clones share the same block.
    metrics: Arc<TemporalMetrics>,
    /// Whether a dyadic range walk is currently repairing nodes — ladder
    /// builds under this flag count as query-path repairs, not idle builds.
    query_repair: bool,
}

impl WindowedSketchStore {
    /// Creates an empty store.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration (see [`WindowConfig::validate`]).
    #[must_use]
    pub fn new(config: WindowConfig) -> Self {
        if let Err(err) = config.validate() {
            panic!("{err}");
        }
        Self {
            tiers: (0..config.tiers).map(|_| VecDeque::new()).collect(),
            ladder: DyadicLadder::new(ladder_max_level(config.fine_buckets)),
            span_memo: VecDeque::new(),
            pending_expired: VecDeque::new(),
            defer_compaction: false,
            spare: None,
            config,
            fine: VecDeque::new(),
            terminal: None,
            rows: 0,
            late_rows: 0,
            last_ts: 0,
            metrics: Arc::new(TemporalMetrics::new()),
            query_repair: false,
        }
    }

    /// Points the store at a shared telemetry block (the engine's, so every
    /// shard's events land in one set of stream-level counters).
    pub(crate) fn set_metrics(&mut self, metrics: Arc<TemporalMetrics>) {
        self.metrics = metrics;
    }

    /// The store's configuration.
    #[must_use]
    pub fn config(&self) -> &WindowConfig {
        &self.config
    }

    /// Total rows offered (fine + compacted + terminal; mass is never dropped).
    #[must_use]
    pub fn rows_processed(&self) -> u64 {
        self.rows
    }

    /// Rows that arrived older than the fine window and were clamped into the
    /// oldest retained fine bucket.
    #[must_use]
    pub fn late_rows(&self) -> u64 {
        self.late_rows
    }

    /// The largest timestamp offered so far (0 before any row).
    #[must_use]
    pub fn last_time(&self) -> u64 {
        self.last_ts
    }

    /// The newest fine-bucket index, or `None` before any row.
    #[must_use]
    pub fn newest_bucket(&self) -> Option<u64> {
        self.fine.back().map(|f| f.index)
    }

    /// The fine buckets currently retained, ascending: `(index, sketch)`.
    pub fn fine_sketches(&self) -> impl Iterator<Item = (u64, &UnbiasedSpaceSaving)> {
        self.fine.iter().map(|f| (f.index, &f.sketch))
    }

    /// The buckets of coarse tier `t` (0 = finest coarse tier), ascending.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not below the configured tier count.
    #[must_use]
    pub fn tier_buckets(&self, t: usize) -> Vec<&TierBucket> {
        self.tiers[t].iter().collect()
    }

    /// The terminal bucket holding everything older than the last tier.
    #[must_use]
    pub fn terminal_bucket(&self) -> Option<&TierBucket> {
        self.terminal.as_ref()
    }

    /// Offers one row of `item` stamped `ts`.
    pub fn offer_at(&mut self, item: u64, ts: u64) {
        self.rows += 1;
        let (sketch, late) = self.sketch_for_ts(ts);
        sketch.offer(item);
        if late {
            self.late_rows += 1;
            self.metrics.late_rows.inc();
        }
    }

    /// Offers a batch of unit rows all stamped `ts`, exactly equivalent to
    /// calling [`offer_at`](Self::offer_at) per item in order (the bucket lookup
    /// and rotation run once for the batch).
    pub fn offer_batch_at(&mut self, items: &[u64], ts: u64) {
        if items.is_empty() {
            return;
        }
        self.rows += items.len() as u64;
        let (sketch, late) = self.sketch_for_ts(ts);
        sketch.offer_batch(items);
        if late {
            self.late_rows += items.len() as u64;
            self.metrics.late_rows.add(items.len() as u64);
        }
    }

    /// Resolves the fine bucket for `ts`, rotating the window (and compacting
    /// expired buckets) as needed. Returns the sketch and whether the row was
    /// clamped as late.
    fn sketch_for_ts(&mut self, ts: u64) -> (&mut UnbiasedSpaceSaving, bool) {
        self.last_ts = self.last_ts.max(ts);
        // Clamp to the last *representable* bucket: spans are half-open
        // `[index, index + 1)` and the all-history range ends (exclusively) at
        // `u64::MAX`, so index `u64::MAX` itself could neither form a span nor
        // be covered by any range — a `ts / width == u64::MAX` row (width 1,
        // maximal timestamp) lands in the final representable bucket instead
        // of overflowing span arithmetic or silently escaping every query.
        let b = (ts / self.config.bucket_width).min(u64::MAX - 1);
        let Some(back) = self.fine.back() else {
            let bucket = self.make_bucket(b);
            self.fine.push_back(bucket);
            return (&mut self.fine.back_mut().expect("just pushed").sketch, false);
        };
        let newest = back.index;
        if b == newest {
            return (
                &mut self.fine.back_mut().expect("non-empty").sketch,
                false,
            );
        }
        if b > newest {
            self.metrics.rotations.inc();
            // Advance the window: expire everything that falls out of it.
            let min_live = b.saturating_sub(self.config.fine_buckets as u64 - 1);
            while self.fine.front().is_some_and(|f| f.index < min_live) {
                let expired = self.fine.pop_front().expect("front checked");
                self.expire(expired);
            }
            // Rotation does only cheap ladder work: retire the nodes that fell
            // out of retention. New nodes over the freshly sealed buckets are
            // built in worker idle slots or repaired on demand at query time.
            self.ladder_retire(min_live);
            let bucket = self.make_bucket(b);
            self.fine.push_back(bucket);
            return (&mut self.fine.back_mut().expect("just pushed").sketch, false);
        }
        // Out of order. In-window rows land in their true bucket exactly; rows
        // older than the window clamp into the oldest retained fine bucket.
        // Either way a *sealed* bucket mutates, so the covering ladder nodes
        // are dropped (and rebuilt lazily from the new contents).
        let min_live = newest.saturating_sub(self.config.fine_buckets as u64 - 1);
        if b < min_live {
            let front = self.fine.front().expect("non-empty").index;
            self.ladder_invalidate(front);
            return (
                &mut self.fine.front_mut().expect("non-empty").sketch,
                true,
            );
        }
        self.ladder_invalidate(b);
        match self.fine.binary_search_by_key(&b, |f| f.index) {
            Ok(i) => (&mut self.fine[i].sketch, false),
            Err(i) => {
                let bucket = self.make_bucket(b);
                self.fine.insert(i, bucket);
                (&mut self.fine[i].sketch, false)
            }
        }
    }

    fn make_bucket(&mut self, index: u64) -> FineBucket {
        let seed = bucket_seed(self.config.seed, index);
        // Reuse the last retired bucket's allocations when one is available:
        // the reset is bit-identical to a fresh `with_seed` sketch, so the
        // recycled path is indistinguishable from the allocating one.
        let sketch = match self.spare.take() {
            Some(mut sketch) => {
                sketch.reset_with_seed(seed);
                sketch
            }
            None => UnbiasedSpaceSaving::with_seed(self.config.capacity, seed),
        };
        FineBucket { index, sketch }
    }

    /// Moves an expired fine bucket into the retention tiers (or the deferral
    /// queue) and keeps its sketch allocations for the next rotation.
    fn expire(&mut self, bucket: FineBucket) {
        let report = TierBucket {
            start: bucket.index,
            end: bucket.index + 1,
            rows: bucket.sketch.rows_processed(),
            entries: bucket.sketch.entries(),
        };
        if self.spare.is_none() {
            self.spare = Some(bucket.sketch);
        }
        if self.defer_compaction {
            self.pending_expired.push_back(report);
            // Bound the deferral debt: a store rotating continuously with no
            // idle slots still compacts amortized-O(1) per rotation instead of
            // accumulating an unbounded report backlog.
            if self.pending_expired.len() > MAX_PENDING_EXPIRED {
                self.settle_one();
            }
        } else {
            self.push_tier(0, report);
        }
    }

    /// Switches the store between inline tier compaction (the default, what
    /// every standalone-store caller sees) and deferred compaction, where
    /// [`expire`](Self::expire) queues reports for idle-slot settling. Engine
    /// workers enable deferral; they settle before every query, checkpoint and
    /// shutdown, so the two modes produce byte-identical tier state — the tiers
    /// depend only on the sequence of expired reports, which deferral preserves.
    pub(crate) fn set_defer_compaction(&mut self, defer: bool) {
        self.defer_compaction = defer;
        if !defer {
            self.settle_all();
        }
    }

    /// Compacts the oldest deferred expiry report, if any. Returns whether any
    /// work was done. One call is one bounded unit of idle work: a single
    /// tier-0 push, including whatever compaction cascade it triggers.
    pub(crate) fn settle_one(&mut self) -> bool {
        match self.pending_expired.pop_front() {
            Some(report) => {
                self.push_tier(0, report);
                true
            }
            None => false,
        }
    }

    /// Drains the deferral queue completely. Must run before any observation of
    /// tier state (range reports, clones for checkpoints, the final store).
    pub(crate) fn settle_all(&mut self) {
        while self.settle_one() {}
    }

    /// Pushes a bucket onto tier `t`, compacting a full group into tier `t + 1`
    /// (and ultimately into the terminal bucket).
    fn push_tier(&mut self, t: usize, bucket: TierBucket) {
        if t >= self.config.tiers {
            self.terminal = Some(match self.terminal.take() {
                None => bucket,
                Some(term) => self.compact_group(vec![term, bucket]),
            });
            return;
        }
        self.tiers[t].push_back(bucket);
        if self.tiers[t].len() >= self.config.tier_factor {
            self.metrics.tier_compactions.inc();
            let group: Vec<TierBucket> = self.tiers[t].drain(..).collect();
            let merged = self.compact_group(group);
            self.push_tier(t + 1, merged);
        }
    }

    /// Folds a time-ascending group of buckets into one via [`compact_fold`].
    fn compact_group(&self, group: Vec<TierBucket>) -> TierBucket {
        let start = group.first().map_or(0, |b| b.start);
        let end = group.last().map_or(0, |b| b.end);
        compact_fold(
            self.config.capacity,
            self.config.seed,
            start,
            end,
            group
                .into_iter()
                .map(|b| BucketReport {
                    entries: b.entries,
                    rows: b.rows,
                })
                .collect(),
        )
    }

    /// Every retained bucket overlapping the fine-bucket index range
    /// `[start, end)`, oldest first (terminal, then tiers coarsest-first, then
    /// fine buckets). A compacted bucket is included whenever its span overlaps
    /// the range at all — the documented resolution degradation with age.
    #[must_use]
    pub fn range_reports(&self, start: u64, end: u64) -> Vec<BucketReport> {
        let mut out = Vec::new();
        if start >= end {
            return out;
        }
        let overlaps = |s: u64, e: u64| s < end && e > start;
        if let Some(term) = &self.terminal {
            if overlaps(term.start, term.end) {
                out.push(BucketReport {
                    entries: term.entries.clone(),
                    rows: term.rows,
                });
            }
        }
        for tier in self.tiers.iter().rev() {
            for b in tier {
                if overlaps(b.start, b.end) {
                    out.push(BucketReport {
                        entries: b.entries.clone(),
                        rows: b.rows,
                    });
                }
            }
        }
        for f in &self.fine {
            if overlaps(f.index, f.index + 1) {
                out.push(BucketReport {
                    entries: f.sketch.entries(),
                    rows: f.sketch.rows_processed(),
                });
            }
        }
        out
    }

    /// Folds every retained bucket in `[start, end)` (fine-bucket indices) into
    /// one queryable weighted sketch with the unbiased PPS merge under the given
    /// seeds. The single-store form of the engine's range snapshot.
    #[must_use]
    pub fn fold_range(
        &self,
        start: u64,
        end: u64,
        merge_seed: u64,
        out_seed: u64,
    ) -> WeightedSpaceSaving {
        fold_unbiased(
            self.config.capacity,
            merge_seed,
            out_seed,
            self.range_reports(start, end)
                .into_iter()
                .map(|r| (r.entries, r.rows)),
        )
    }

    /// The fine-bucket index below which nothing is retained as fine, given
    /// the newest index (the window's live floor).
    fn min_live(&self, newest: u64) -> u64 {
        newest.saturating_sub(self.config.fine_buckets as u64 - 1)
    }

    /// The report of the fine bucket at `index`, if one is retained.
    fn leaf_report(&self, index: u64) -> Option<BucketReport> {
        self.fine
            .binary_search_by_key(&index, |f| f.index)
            .ok()
            .map(|i| BucketReport {
                entries: self.fine[i].sketch.entries(),
                rows: self.fine[i].sketch.rows_processed(),
            })
    }

    /// Folds parts into a ladder node over `[start, end)`. Seeded from the
    /// base seed and the span alone, so a node's contents are a deterministic
    /// function of the leaves it covers — rebuildable at any time, on any
    /// restore, to the same bytes.
    fn ladder_node_fold(&self, start: u64, end: u64, parts: Vec<BucketReport>) -> TierBucket {
        let salt = splitmix64(start ^ end.rotate_left(32));
        let merged = fold_unbiased(
            self.config.capacity,
            self.config.seed ^ LADDER_MERGE_SALT ^ salt,
            self.config.seed ^ LADDER_OUT_SALT ^ salt,
            parts.into_iter().map(|b| (b.entries, b.rows)),
        );
        TierBucket {
            start,
            end,
            rows: merged.rows_processed(),
            entries: merged.entries(),
        }
    }

    /// Ensures the level-`level` node at aligned `start` exists, building it
    /// (and any missing children, recursively) from the current leaf contents.
    /// Returns `false` when no such node is buildable (out of alignment, out
    /// of the sealed retained window, or no buckets at all).
    fn ensure_node(&mut self, level: u32, start: u64) -> bool {
        let Some(idx) = (level as usize).checked_sub(1) else {
            return false;
        };
        if idx >= self.ladder.levels.len() {
            return false;
        }
        if self.ladder.levels[idx].contains_key(&start) {
            return true;
        }
        let len = 1u64 << level;
        let Some(newest) = self.newest_bucket() else {
            return false;
        };
        let Some(end) = start.checked_add(len) else {
            return false;
        };
        if !start.is_multiple_of(len) || start < self.min_live(newest) || end > newest {
            return false;
        }
        let mut parts: Vec<BucketReport> = Vec::with_capacity(2);
        if level == 1 {
            for b in [start, start + 1] {
                if let Some(r) = self.leaf_report(b) {
                    parts.push(r);
                }
            }
        } else {
            let half = len / 2;
            for s in [start, start + half] {
                if !self.ensure_node(level - 1, s) {
                    return false;
                }
                let child = &self.ladder.levels[idx - 1][&s];
                // Empty children (spans with no retained leaves) contribute
                // nothing and are skipped, so a node's fold sequence depends
                // only on which covered leaves exist and what they hold.
                if child.rows > 0 || !child.entries.is_empty() {
                    parts.push(BucketReport {
                        entries: child.entries.clone(),
                        rows: child.rows,
                    });
                }
            }
        }
        let node = self.ladder_node_fold(start, end, parts);
        self.ladder.levels[idx].insert(start, node);
        self.metrics.ladder_nodes_built.inc();
        if self.query_repair {
            self.metrics.ladder_repaired_at_query.inc();
        }
        true
    }

    /// Drops every ladder node whose span covers `bucket` (at most one per
    /// level) — called when a sealed bucket's contents change, so existing
    /// nodes always equal the canonical fold of the *current* leaves.
    fn ladder_invalidate(&mut self, bucket: u64) {
        for (idx, level) in self.ladder.levels.iter_mut().enumerate() {
            let len = 1u64 << (idx + 1);
            if level.remove(&(bucket - bucket % len)).is_some() {
                self.metrics.ladder_nodes_invalidated.inc();
            }
        }
    }

    /// Retires ladder nodes that fell out of retention (span reaching below
    /// `min_live`) and advances the idle-build frontier past them.
    fn ladder_retire(&mut self, min_live: u64) {
        for idx in 0..self.ladder.levels.len() {
            let len = 1u64 << (idx + 1);
            // split_off keeps keys >= min_live; anything starting below the
            // floor covers at least one expired bucket.
            let keep = self.ladder.levels[idx].split_off(&min_live);
            self.metrics
                .ladder_nodes_invalidated
                .add(self.ladder.levels[idx].len() as u64);
            self.ladder.levels[idx] = keep;
            let frontier = min_live.checked_next_multiple_of(len).unwrap_or(u64::MAX);
            self.ladder.built[idx] = self.ladder.built[idx].max(frontier);
        }
    }

    /// Builds (at most) one missing ladder node over the sealed window,
    /// bottom level first so parents always find their children. Returns
    /// whether there was anything left to do — the shard worker calls this in
    /// idle slots between batches until the ladder is complete.
    pub(crate) fn ladder_idle_step(&mut self) -> bool {
        let Some(newest) = self.newest_bucket() else {
            return false;
        };
        let min_live = self.min_live(newest);
        for idx in 0..self.ladder.levels.len() {
            let len = 1u64 << (idx + 1);
            let floor = min_live.checked_next_multiple_of(len).unwrap_or(u64::MAX);
            let from = self.ladder.built[idx].max(floor);
            let Some(end) = from.checked_add(len) else {
                continue;
            };
            if end <= newest {
                self.ladder.built[idx] = end;
                let _ = self.ensure_node((idx + 1) as u32, from);
                return true;
            }
        }
        false
    }

    /// Number of ladder nodes currently held, across all levels.
    #[must_use]
    pub fn ladder_node_count(&self) -> usize {
        self.ladder.levels.iter().map(BTreeMap::len).sum()
    }

    /// The ladder nodes per level (level 1 first), for persistence.
    pub(crate) fn ladder_levels(&self) -> &[BTreeMap<u64, TierBucket>] {
        &self.ladder.levels
    }

    /// Attaches decoded ladder nodes to a freshly rebuilt store, revalidating
    /// every structural invariant a live ladder maintains: aligned power-of-two
    /// spans inside the sealed retained window, capacity-bounded finite
    /// entries, no duplicates, and rows/mass agreeing exactly with the covered
    /// fine leaves. An image violating any of these is corrupt.
    pub(crate) fn attach_ladder(&mut self, nodes: Vec<(u32, TierBucket)>) -> Result<(), String> {
        if nodes.is_empty() {
            return Ok(());
        }
        let max_level = ladder_max_level(self.config.fine_buckets);
        let Some(newest) = self.newest_bucket() else {
            return Err("ladder nodes without any fine bucket".into());
        };
        let min_live = self.min_live(newest);
        for (level, node) in nodes {
            if level == 0 || level > max_level {
                return Err(format!("ladder level {level} is outside 1..={max_level}"));
            }
            let len = 1u64 << level;
            if node.start % len != 0 {
                return Err("ladder node start is not aligned to its level".into());
            }
            if node.start.checked_add(len) != Some(node.end) {
                return Err("ladder node span disagrees with its level".into());
            }
            if node.start < min_live || node.end > newest {
                return Err("ladder node is outside the sealed retained window".into());
            }
            if node.entries.len() > self.config.capacity {
                return Err(format!(
                    "ladder node holds {} entries over capacity {}",
                    node.entries.len(),
                    self.config.capacity
                ));
            }
            let mut node_mass = 0.0f64;
            for &(_, c) in &node.entries {
                if !c.is_finite() || c < 0.0 {
                    return Err(format!(
                        "ladder node count {c} must be finite and non-negative"
                    ));
                }
                node_mass += c;
            }
            // A node is a mass-conserving fold of the leaves it covers.
            let covered = self
                .fine
                .iter()
                .filter(|f| f.index >= node.start && f.index < node.end);
            let mut leaf_rows = 0u64;
            let mut leaf_mass = 0.0f64;
            for f in covered {
                leaf_rows += f.sketch.rows_processed();
                leaf_mass += f.sketch.entries().iter().map(|&(_, c)| c).sum::<f64>();
            }
            if node.rows != leaf_rows {
                return Err(format!(
                    "ladder node claims {} rows but its leaves hold {leaf_rows}",
                    node.rows
                ));
            }
            if (node_mass - leaf_mass).abs() > 1e-6 * leaf_mass.max(1.0) {
                return Err(format!(
                    "ladder node mass {node_mass} disagrees with its leaves' {leaf_mass}"
                ));
            }
            let idx = (level - 1) as usize;
            if self.ladder.levels[idx].insert(node.start, node).is_some() {
                return Err("duplicate ladder node".into());
            }
        }
        Ok(())
    }

    /// Every retained bucket overlapping `[start, end)` with the fine window
    /// served through the dyadic ladder: overlapping terminal/tier buckets as
    /// in [`range_reports`](Self::range_reports), then the fine span covered
    /// by O(log n) maximal pre-merged nodes plus boundary leaves, oldest
    /// first. Missing nodes are (re)built on demand (hence `&mut`). The flag
    /// is `true` when no ladder node was used — the report list is then
    /// exactly what [`range_reports`](Self::range_reports) returns.
    pub fn range_reports_dyadic(&mut self, start: u64, end: u64) -> (Vec<BucketReport>, bool) {
        let mut out = Vec::new();
        let mut used_ladder = false;
        if start >= end {
            return (out, true);
        }
        let overlaps = |s: u64, e: u64| s < end && e > start;
        if let Some(term) = &self.terminal {
            if overlaps(term.start, term.end) {
                out.push(BucketReport {
                    entries: term.entries.clone(),
                    rows: term.rows,
                });
            }
        }
        for tier in self.tiers.iter().rev() {
            for b in tier {
                if overlaps(b.start, b.end) {
                    out.push(BucketReport {
                        entries: b.entries.clone(),
                        rows: b.rows,
                    });
                }
            }
        }
        let Some(newest) = self.newest_bucket() else {
            return (out, true);
        };
        let min_live = self.min_live(newest);
        let max_level = ladder_max_level(self.config.fine_buckets);
        let lo = start.max(min_live);
        let hi = end.min(newest.saturating_add(1));
        // Node builds from here to the end of the walk are query-path repairs
        // (the idle builder didn't get there first).
        self.query_repair = true;
        let mut x = lo;
        while x < hi {
            // The largest aligned node starting at x that stays inside the
            // range and the sealed region (nodes never cover `newest`).
            let node_limit = hi.min(newest);
            let mut level = 0u32;
            if x < node_limit && max_level > 0 {
                let align = x.trailing_zeros(); // 64 for x == 0; capped below
                let span_room = (node_limit - x).ilog2();
                level = align.min(span_room).min(max_level);
            }
            if level >= 1 && self.ensure_node(level, x) {
                let node = &self.ladder.levels[(level - 1) as usize][&x];
                if node.rows > 0 || !node.entries.is_empty() {
                    out.push(BucketReport {
                        entries: node.entries.clone(),
                        rows: node.rows,
                    });
                    used_ladder = true;
                }
                x += 1u64 << level;
            } else {
                if let Some(r) = self.leaf_report(x) {
                    out.push(r);
                }
                x += 1;
            }
        }
        self.query_repair = false;
        (out, !used_ladder)
    }

    /// The shard-side indexed range answer: at most **one** report. Ranges
    /// touching a single retained bucket return it raw (flag `true` —
    /// byte-identical to the leaf path); anything wider is pre-merged through
    /// the dyadic decomposition into a single span report under deterministic
    /// span-derived seeds, memoized at the applied-row watermark.
    pub fn indexed_range_reports(&mut self, start: u64, end: u64) -> (Vec<BucketReport>, bool) {
        if start >= end {
            return (Vec::new(), true);
        }
        let at_rows = self.rows;
        if let Some(memo) = self
            .span_memo
            .iter()
            .find(|m| m.start == start && m.end == end && m.at_rows == at_rows)
        {
            return (vec![memo.report.clone()], false);
        }
        let (reports, raw) = self.range_reports_dyadic(start, end);
        if reports.len() <= 1 {
            return (reports, raw);
        }
        let salt = splitmix64(start ^ end.rotate_left(32));
        let merged = fold_unbiased_multiway(
            self.config.capacity,
            self.config.seed ^ SPAN_MERGE_SALT ^ salt,
            self.config.seed ^ SPAN_OUT_SALT ^ salt,
            reports.into_iter().map(|r| (r.entries, r.rows)),
        );
        let report = BucketReport {
            entries: merged.entries(),
            rows: merged.rows_processed(),
        };
        self.span_memo.push_back(SpanMemo {
            start,
            end,
            at_rows,
            report: report.clone(),
        });
        while self.span_memo.len() > SPAN_MEMO_SLOTS {
            self.span_memo.pop_front();
        }
        (vec![report], false)
    }

    /// Folds `[start, end)` through the dyadic index into one queryable
    /// weighted sketch — the indexed counterpart of
    /// [`fold_range`](Self::fold_range), matching the engine's fold choice:
    /// a raw single-bucket answer uses the exact sequential fold, anything
    /// pre-merged uses the one-reduction multiway fold.
    #[must_use]
    pub fn fold_range_indexed(
        &mut self,
        start: u64,
        end: u64,
        merge_seed: u64,
        out_seed: u64,
    ) -> WeightedSpaceSaving {
        let (reports, raw) = self.indexed_range_reports(start, end);
        let parts = reports.into_iter().map(|r| (r.entries, r.rows));
        if raw {
            fold_unbiased(self.config.capacity, merge_seed, out_seed, parts)
        } else {
            fold_unbiased_multiway(self.config.capacity, merge_seed, out_seed, parts)
        }
    }

    /// Rebuilds a store from persisted parts, rejecting images that violate the
    /// structural invariants (ascending spans, tier ordering, capacity bounds).
    pub(crate) fn from_parts(
        config: WindowConfig,
        fine: Vec<(u64, UnbiasedSpaceSaving)>,
        tiers: Vec<Vec<TierBucket>>,
        terminal: Option<TierBucket>,
        late_rows: u64,
        last_ts: u64,
    ) -> Result<Self, String> {
        if config.capacity == 0 || config.bucket_width == 0 || config.fine_buckets == 0 {
            return Err("window geometry must be positive".into());
        }
        if config.tier_factor < 2 {
            return Err("tier_factor must be at least 2".into());
        }
        if tiers.len() != config.tiers {
            return Err(format!(
                "{} tiers in the image but the configuration has {}",
                tiers.len(),
                config.tiers
            ));
        }
        // Occupancy bounds: a live store never exceeds them (the ring expires
        // past `fine_buckets`, a tier compacts on reaching `tier_factor`), so
        // an image that does is corrupt — and would otherwise resurrect as a
        // store violating the documented bounded-memory geometry.
        if fine.len() > config.fine_buckets {
            return Err(format!(
                "{} fine buckets exceed the {}-bucket window",
                fine.len(),
                config.fine_buckets
            ));
        }
        for (t, tier) in tiers.iter().enumerate() {
            if tier.len() >= config.tier_factor {
                return Err(format!(
                    "tier {t} holds {} buckets, at or over the compaction factor {}",
                    tier.len(),
                    config.tier_factor
                ));
            }
        }
        let mut rows = 0u64;
        // Coarse spans must ascend oldest-to-newest: terminal, then tiers
        // coarsest-first, then the fine ring.
        let mut last_end = 0u64;
        let mut check_bucket = |b: &TierBucket, what: &str| -> Result<(), String> {
            if b.start >= b.end {
                return Err(format!("{what} bucket has an empty span"));
            }
            if b.start < last_end {
                return Err(format!("{what} bucket overlaps an older span"));
            }
            if b.entries.len() > config.capacity {
                return Err(format!(
                    "{what} bucket holds {} entries over capacity {}",
                    b.entries.len(),
                    config.capacity
                ));
            }
            for &(_, c) in &b.entries {
                if !c.is_finite() || c < 0.0 {
                    return Err(format!("{what} bucket count {c} must be finite and non-negative"));
                }
            }
            last_end = b.end;
            Ok(())
        };
        if let Some(term) = &terminal {
            check_bucket(term, "terminal")?;
            rows += term.rows;
        }
        for tier in tiers.iter().rev() {
            for b in tier {
                check_bucket(b, "tier")?;
                rows += b.rows;
            }
        }
        let mut prev_fine: Option<u64> = None;
        for (index, sketch) in &fine {
            if *index == u64::MAX {
                return Err("fine bucket index is not representable".into());
            }
            if *index < last_end {
                return Err("fine bucket predates a compacted span".into());
            }
            if prev_fine.is_some_and(|p| *index <= p) {
                return Err("fine bucket indices must ascend".into());
            }
            if sketch.capacity() != config.capacity {
                return Err(format!(
                    "fine bucket capacity {} disagrees with window capacity {}",
                    sketch.capacity(),
                    config.capacity
                ));
            }
            prev_fine = Some(*index);
            rows += sketch.rows_processed();
        }
        Ok(Self {
            ladder: DyadicLadder::new(ladder_max_level(config.fine_buckets)),
            span_memo: VecDeque::new(),
            pending_expired: VecDeque::new(),
            defer_compaction: false,
            spare: None,
            config,
            fine: fine
                .into_iter()
                .map(|(index, sketch)| FineBucket { index, sketch })
                .collect(),
            tiers: tiers.into_iter().map(VecDeque::from).collect(),
            terminal,
            rows,
            late_rows,
            last_ts,
            metrics: Arc::new(TemporalMetrics::new()),
            query_repair: false,
        })
    }
}

/// Configuration for a [`TemporalIngestEngine`].
#[derive(Debug, Clone, Copy)]
pub struct TemporalConfig {
    /// The per-shard window geometry. Shard `i`'s store is seeded
    /// `window.seed + i`, exactly as the non-temporal engine seeds its shards.
    pub window: WindowConfig,
    /// Number of worker shards (one OS thread and one store each).
    pub shards: usize,
    /// Bound of each shard's queue, in batches.
    pub queue_depth: usize,
    /// Rows buffered per shard inside a [`TemporalIngestHandle`] before a batch
    /// is sent.
    pub batch_rows: usize,
}

impl TemporalConfig {
    /// A configuration with the engine defaults (queue depth 4, 4096-row
    /// batches) and the default retention (2 tiers, factor 4).
    ///
    /// # Panics
    ///
    /// Panics if `shards`, `capacity`, `bucket_width` or `fine_buckets` is zero.
    #[must_use]
    pub fn new(
        shards: usize,
        capacity: usize,
        seed: u64,
        bucket_width: u64,
        fine_buckets: usize,
    ) -> Self {
        match Self::try_new(shards, capacity, seed, bucket_width, fine_buckets) {
            Ok(config) => config,
            Err(err) => panic!("{err}"),
        }
    }

    /// Fallible [`new`](Self::new), for configurations built from untrusted
    /// input: the typed error instead of a panic.
    ///
    /// # Errors
    ///
    /// [`TemporalConfigError`] when `shards` is zero or the window geometry is
    /// invalid.
    pub fn try_new(
        shards: usize,
        capacity: usize,
        seed: u64,
        bucket_width: u64,
        fine_buckets: usize,
    ) -> Result<Self, TemporalConfigError> {
        let config = Self {
            window: WindowConfig::try_new(capacity, seed, bucket_width, fine_buckets)?,
            shards,
            queue_depth: 4,
            batch_rows: 4096,
        };
        config.validate()?;
        Ok(config)
    }

    /// Checks the configuration for values no engine can run with, mirroring
    /// [`crate::engine::EngineConfig::validate`]. The fields are public (and a
    /// daemon fills them from client bytes), so
    /// [`TemporalIngestEngine::try_new`] re-validates before spawning workers.
    ///
    /// # Errors
    ///
    /// The first [`TemporalConfigError`] found, checking shards, queue depth,
    /// batch size, then the window geometry.
    pub fn validate(&self) -> Result<(), TemporalConfigError> {
        if self.shards == 0 {
            return Err(TemporalConfigError::ZeroShards);
        }
        if self.queue_depth == 0 {
            return Err(TemporalConfigError::ZeroQueueDepth);
        }
        if self.batch_rows == 0 {
            return Err(TemporalConfigError::ZeroBatchRows);
        }
        self.window.validate()?;
        Ok(())
    }

    /// Overrides the retention geometry (see [`WindowConfig::with_retention`]).
    #[must_use]
    pub fn with_retention(mut self, tiers: usize, tier_factor: usize) -> Self {
        self.window = self.window.with_retention(tiers, tier_factor);
        self
    }

    /// Overrides the producer-side batch size, in rows.
    ///
    /// # Panics
    ///
    /// Panics if `batch_rows` is zero.
    #[must_use]
    pub fn with_batch_rows(mut self, batch_rows: usize) -> Self {
        assert!(batch_rows > 0, "batch_rows must be positive");
        self.batch_rows = batch_rows;
        self
    }

    /// Overrides the per-shard queue bound, in batches.
    ///
    /// # Panics
    ///
    /// Panics if `queue_depth` is zero.
    #[must_use]
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        assert!(queue_depth > 0, "queue_depth must be positive");
        self.queue_depth = queue_depth;
        self
    }

    /// The per-(handle, shard) ring bound, in blocks: the block-channel
    /// equivalent of "`queue_depth` batches of `batch_rows` rows" of producer
    /// backpressure, exactly as on [`crate::engine::EngineConfig`].
    pub(crate) fn ring_blocks(&self) -> usize {
        (self.queue_depth * self.batch_rows)
            .div_ceil(BLOCK_CAP)
            .max(2)
    }
}

/// A time range for queries against a [`TemporalIngestEngine`]. Ranges resolve
/// to fine-bucket index ranges; see the [module docs](self) for the resolution
/// semantics over compacted tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeRange {
    /// Everything the engine has ever ingested.
    All,
    /// The newest `n` fine buckets, relative to the largest timestamp enqueued
    /// so far (the sliding-window query).
    LastBuckets(u64),
    /// Rows with timestamps in `[start, end)`, rounded outward to bucket
    /// boundaries.
    Between {
        /// Inclusive start timestamp.
        start: u64,
        /// Exclusive end timestamp.
        end: u64,
    },
}

/// Control-plane messages to a temporal shard worker. Data rides the SPSC block
/// rings (as on the non-temporal engine); this unbounded, rarely used channel
/// carries everything else. Every request that observes store state first
/// drains a *cut* of the data rings and settles deferred compaction.
enum TemporalMsg {
    /// A new producer ring of `(item, timestamp)` blocks to poll: sent when a
    /// [`TemporalIngestHandle`] is created or cloned. The worker retires the
    /// ring once the handle drops it and the remaining blocks are drained.
    Register(BlockReceiver<(u64, u64)>),
    /// Report the retained buckets overlapping `[start, end)` — through the
    /// dyadic index (at most one pre-merged report), or every leaf when
    /// `leaf` is set — plus whether the reply is raw (byte-identical to the
    /// leaf path) and the store's total applied row count (the
    /// cache-soundness watermark).
    Range {
        start: u64,
        end: u64,
        leaf: bool,
        reply: Sender<(Vec<BucketReport>, bool, u64)>,
    },
    /// Reply with a full clone of the shard's store for a durable checkpoint.
    Checkpoint(Sender<WindowedSketchStore>),
    /// Drain a cut, settle, then stop — even if producer handles (and thus
    /// rings feeding this shard) are still alive.
    Shutdown,
    /// Panic the worker immediately. A test-only fault injector (reachable via
    /// `debug_kill_shard`) used to prove that control paths degrade into
    /// [`EngineError::ShardDown`] instead of killing the daemon.
    Poison,
}

/// How many distinct folded ranges the engine keeps cached. Small by design: a
/// dashboard polls a handful of ranges, and every cache entry is a full
/// snapshot.
const RANGE_CACHE_SLOTS: usize = 8;

#[derive(Debug)]
struct CacheSlot {
    start: u64,
    end: u64,
    rows: u64,
    /// The engine incarnation that folded this slot. `rows_enqueued` restarts
    /// relative to bucket contents across a checkpoint/restore, so a slot is
    /// only valid within the incarnation whose watermark keyed it.
    generation: u64,
    snapshot: Arc<SketchSnapshot>,
}

/// A live, concurrently-fed, time-partitioned sharded sketch. The temporal
/// counterpart of [`crate::engine::ShardedIngestEngine`]; see the
/// [module docs](self).
#[derive(Debug)]
pub struct TemporalIngestEngine {
    config: TemporalConfig,
    links: Vec<ShardLink<TemporalMsg>>,
    workers: Vec<JoinHandle<WindowedSketchStore>>,
    snapshots: AtomicU64,
    rows_enqueued: Arc<AtomicU64>,
    /// Largest timestamp enqueued so far (drives [`TimeRange::LastBuckets`]).
    max_time: Arc<AtomicU64>,
    /// This incarnation's cache epoch (the snapshot counter at spawn): a fresh
    /// engine starts at 0, a restored one at the manifest's counter. Tags
    /// every [`CacheSlot`] so a slot keyed by another incarnation's
    /// `rows_enqueued` watermark can never be served as a stale hit.
    generation: u64,
    /// The merged-range cache: repeated range queries at the same ingest
    /// watermark return the identical snapshot without re-folding.
    range_cache: Mutex<VecDeque<CacheSlot>>,
    /// Per-shard rows/blocks/ring counters plus checkpoint counters, exactly
    /// as on the non-temporal engine.
    metrics: Arc<EngineMetrics>,
    /// Stream-level temporal telemetry, shared by every shard's store.
    temporal_metrics: Arc<TemporalMetrics>,
}

impl TemporalIngestEngine {
    /// Spawns the worker shards and returns the running engine.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration (see [`TemporalConfig::validate`]);
    /// use [`try_new`](Self::try_new) to get the typed error instead.
    #[must_use]
    pub fn new(config: TemporalConfig) -> Self {
        match Self::try_new(config) {
            Ok(engine) => engine,
            Err(err) => panic!("{err}"),
        }
    }

    /// Validates the configuration and spawns the worker shards.
    ///
    /// # Errors
    ///
    /// [`TemporalConfigError`] when `config` carries a zero (or `tier_factor <
    /// 2`) where a positive value is required — caught here, before any worker
    /// thread exists, so a daemon can refuse a client-supplied stream spec with
    /// an error frame instead of panicking.
    pub fn try_new(config: TemporalConfig) -> Result<Self, TemporalConfigError> {
        config.validate()?;
        let stores = (0..config.shards)
            .map(|shard| {
                WindowedSketchStore::new(WindowConfig {
                    // Wrapping, so any base seed is valid — and so the decode
                    // path (which must never panic) derives the same per-shard
                    // seed a live engine uses.
                    seed: config.window.seed.wrapping_add(shard as u64),
                    ..config.window
                })
            })
            .collect();
        Ok(Self::spawn(config, stores, 0, 0, 0))
    }

    /// Spawns one worker per store; shared by [`new`](Self::new) (fresh stores)
    /// and [`restore`](Self::restore) (checkpointed stores).
    fn spawn(
        config: TemporalConfig,
        stores: Vec<WindowedSketchStore>,
        snapshots: u64,
        rows_enqueued: u64,
        max_time: u64,
    ) -> Self {
        let metrics = Arc::new(EngineMetrics::with_shards(stores.len()));
        let temporal_metrics = Arc::new(TemporalMetrics::new());
        let mut links = Vec::with_capacity(stores.len());
        let mut workers = Vec::with_capacity(stores.len());
        for (shard, mut store) in stores.into_iter().enumerate() {
            store.set_metrics(Arc::clone(&temporal_metrics));
            let (tx, rx) = std::sync::mpsc::channel();
            let waker = Arc::new(Waker::new());
            let worker_waker = Arc::clone(&waker);
            let shard_metrics = Arc::clone(&metrics.shards[shard]);
            workers.push(std::thread::spawn(move || {
                run_worker(&rx, &worker_waker, store, &shard_metrics)
            }));
            links.push(ShardLink::new(
                tx,
                waker,
                Arc::clone(&metrics.shards[shard].ring),
            ));
        }
        Self {
            config,
            links,
            workers,
            snapshots: AtomicU64::new(snapshots),
            rows_enqueued: Arc::new(AtomicU64::new(rows_enqueued)),
            max_time: Arc::new(AtomicU64::new(max_time)),
            generation: snapshots,
            // Every spawn (fresh or restored) starts with a cleared cache;
            // the generation tag above guards even hypothetical slot reuse
            // across incarnations.
            range_cache: Mutex::new(VecDeque::new()),
            metrics,
            temporal_metrics,
        }
    }

    /// The engine's per-shard/checkpoint telemetry (live counters — exact
    /// after a quiesce point such as a range capture or checkpoint).
    #[must_use]
    pub fn metrics(&self) -> &Arc<EngineMetrics> {
        &self.metrics
    }

    /// The engine's temporal telemetry (rotations, compactions, ladder churn,
    /// range-cache hits/misses), aggregated across all shards.
    #[must_use]
    pub fn temporal_metrics(&self) -> &Arc<TemporalMetrics> {
        &self.temporal_metrics
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &TemporalConfig {
        &self.config
    }

    /// Number of worker shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.links.len()
    }

    /// Rows handed to the shard queues so far (the cheap monotone progress
    /// hint, exactly as on the non-temporal engine).
    #[must_use]
    pub fn rows_enqueued(&self) -> u64 {
        self.rows_enqueued.load(Ordering::Relaxed)
    }

    /// The largest timestamp enqueued so far (0 before any row).
    #[must_use]
    pub fn max_time(&self) -> u64 {
        self.max_time.load(Ordering::Relaxed)
    }

    /// The fine-bucket index the newest enqueued row falls in.
    #[must_use]
    pub fn current_bucket(&self) -> u64 {
        self.max_time() / self.config.window.bucket_width
    }

    /// Creates a producer handle. Handles are independent and cheap; create one
    /// per producer thread.
    ///
    /// # Panics
    ///
    /// Panics if a worker is gone; [`try_handle`](Self::try_handle) degrades
    /// that into a typed error instead.
    #[must_use]
    pub fn handle(&self) -> TemporalIngestHandle {
        match self.try_handle() {
            Ok(handle) => handle,
            Err(err) => panic!("{err}"),
        }
    }

    /// Fallible variant of [`handle`](Self::handle), for callers (like a
    /// serving daemon) that must survive a dead worker.
    ///
    /// # Errors
    ///
    /// [`EngineError::ShardDown`] naming the first shard whose worker could
    /// not register the new ring.
    pub fn try_handle(&self) -> Result<TemporalIngestHandle, EngineError> {
        TemporalIngestHandle::connect(
            &self.links,
            self.config.ring_blocks(),
            &self.rows_enqueued,
            &self.max_time,
        )
    }

    /// Resolves a [`TimeRange`] to a fine-bucket index range `[start, end)`.
    #[must_use]
    pub fn resolve_range(&self, range: &TimeRange) -> (u64, u64) {
        let width = self.config.window.bucket_width;
        match *range {
            TimeRange::All => (0, u64::MAX),
            TimeRange::LastBuckets(n) => {
                if self.rows_enqueued() == 0 {
                    return (0, 0);
                }
                let end = (self.max_time() / width).saturating_add(1);
                (end.saturating_sub(n), end)
            }
            TimeRange::Between { start, end } => {
                if end <= start {
                    return (0, 0);
                }
                (start / width, end.div_ceil(width))
            }
        }
    }

    /// Collects every shard's bucket reports for `[start, end)` (fine-bucket
    /// indices), in shard order, each shard's buckets oldest first, together
    /// with whether *every* reply was raw (byte-identical to the leaf path)
    /// and the total rows the shards had *applied* when they reported. Each
    /// worker first drains a cut of its data rings (the blocks queued at
    /// request time) and settles deferred compaction, so all previously
    /// enqueued batches are applied first. With `leaf` set the shards bypass
    /// the dyadic index and report every overlapping bucket (the reference
    /// path for equivalence tests and benchmarks).
    fn collect_reports(
        &self,
        start: u64,
        end: u64,
        leaf: bool,
    ) -> Result<(Vec<BucketReport>, bool, u64), EngineError> {
        let receivers: Vec<_> = self
            .links
            .iter()
            .enumerate()
            .map(|(shard, link)| {
                let (tx, rx) = std::sync::mpsc::channel();
                link.try_send(TemporalMsg::Range {
                    start,
                    end,
                    leaf,
                    reply: tx,
                })
                .map_err(|()| EngineError::ShardDown { shard })?;
                Ok(rx)
            })
            .collect::<Result<_, EngineError>>()?;
        let mut reports = Vec::new();
        let mut all_raw = true;
        let mut applied = 0u64;
        for (shard, rx) in receivers.into_iter().enumerate() {
            // The send above raced a dying worker if this recv fails.
            let (shard_reports, raw, shard_rows) =
                rx.recv().map_err(|_| EngineError::ShardDown { shard })?;
            reports.extend(shard_reports);
            all_raw &= raw;
            applied += shard_rows;
        }
        Ok((reports, all_raw, applied))
    }

    /// Folds the collected reports with the engine's salted snapshot seeds.
    /// Raw (leaf-path) report sets use the exact sequential fold — preserving
    /// every byte of the pre-ladder behaviour for single-bucket spans — while
    /// pre-merged sets use the one-reduction multiway fold.
    fn fold_collected(&self, reports: Vec<BucketReport>, raw: bool) -> WeightedSpaceSaving {
        let n = self.snapshots.fetch_add(1, Ordering::Relaxed);
        let salt = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let seed = self.config.window.seed;
        let capacity = self.config.window.capacity;
        let merge_seed = seed ^ FOLD_MERGE_SALT ^ salt;
        let out_seed = seed ^ FOLD_OUT_SALT ^ salt;
        let parts = reports.into_iter().map(|r| (r.entries, r.rows));
        if raw {
            fold_unbiased(capacity, merge_seed, out_seed, parts)
        } else {
            fold_unbiased_multiway(capacity, merge_seed, out_seed, parts)
        }
    }

    /// The deterministic well-formed answer for a range that resolves to no
    /// buckets at all (`end <= start`, or nothing enqueued yet): an empty
    /// weighted sketch under the engine's *unsalted* seeds. No shard
    /// round-trip happens and no snapshot salt is consumed, so degenerate
    /// polls never perturb the seed sequence of real queries.
    fn empty_range_snapshot(&self) -> WeightedSpaceSaving {
        let seed = self.config.window.seed;
        fold_unbiased(
            self.config.window.capacity,
            seed ^ FOLD_MERGE_SALT,
            seed ^ FOLD_OUT_SALT,
            std::iter::empty(),
        )
    }

    /// Folds every retained bucket overlapping `range` across all shards into
    /// one queryable [`WeightedSpaceSaving`], without stopping ingest — the
    /// time-range analogue of [`crate::engine::ShardedIngestEngine::snapshot`],
    /// using the same salted merge-seed sequence (each call is an independent
    /// draw of the merge's sampling step). Served through the dyadic ladder,
    /// so the cost is O(log window) node merges per shard (amortized O(1)
    /// once built) regardless of the span width. Bypasses the range cache.
    /// Degenerate ranges answer a well-formed empty snapshot.
    #[must_use]
    pub fn range_snapshot(&self, range: &TimeRange) -> WeightedSpaceSaving {
        match self.try_range_snapshot(range) {
            Ok(merged) => merged,
            Err(err) => panic!("{err}"),
        }
    }

    /// Fallible [`range_snapshot`](Self::range_snapshot): a dead worker
    /// degrades the request into [`EngineError::ShardDown`] instead of
    /// panicking the calling thread.
    ///
    /// # Errors
    ///
    /// [`EngineError::ShardDown`] naming the first dead shard found.
    pub fn try_range_snapshot(&self, range: &TimeRange) -> Result<WeightedSpaceSaving, EngineError> {
        let (start, end) = self.resolve_range(range);
        if start >= end {
            return Ok(self.empty_range_snapshot());
        }
        let (reports, all_raw, _) = self.collect_reports(start, end, false)?;
        Ok(self.fold_collected(reports, all_raw))
    }

    /// [`range_snapshot`](Self::range_snapshot) through the leaf-by-leaf fold,
    /// bypassing the dyadic ladder entirely: every overlapping retained bucket
    /// is folded sequentially, exactly as before the ladder existed. The
    /// reference implementation that equivalence tests and benchmarks compare
    /// ladder answers against.
    #[must_use]
    pub fn range_snapshot_leaf(&self, range: &TimeRange) -> WeightedSpaceSaving {
        let (start, end) = self.resolve_range(range);
        if start >= end {
            return self.empty_range_snapshot();
        }
        let (reports, _, _) = match self.collect_reports(start, end, true) {
            Ok(collected) => collected,
            Err(err) => panic!("{err}"),
        };
        self.fold_collected(reports, true)
    }

    /// The cached form of [`range_snapshot`](Self::range_snapshot): repeated
    /// captures of the same range at the same ingest watermark
    /// ([`rows_enqueued`](Self::rows_enqueued)) return the identical snapshot
    /// without re-folding; any ingest progress invalidates naturally because
    /// the watermark is part of the key.
    #[must_use]
    pub fn range_capture(&self, range: &TimeRange) -> Arc<SketchSnapshot> {
        match self.try_range_capture(range) {
            Ok(snapshot) => snapshot,
            Err(err) => panic!("{err}"),
        }
    }

    /// Fallible [`range_capture`](Self::range_capture), the form a serving
    /// daemon uses: a dead worker degrades the request into
    /// [`EngineError::ShardDown`] instead of panicking.
    ///
    /// # Errors
    ///
    /// [`EngineError::ShardDown`] naming the first dead shard found.
    pub fn try_range_capture(&self, range: &TimeRange) -> Result<Arc<SketchSnapshot>, EngineError> {
        let (start, end) = self.resolve_range(range);
        if start >= end {
            // Degenerate ranges answer the deterministic empty snapshot
            // directly — nothing worth caching, no salt consumed.
            return Ok(Arc::new(self.empty_range_snapshot().snapshot()));
        }
        let rows = self.rows_enqueued();
        let generation = self.generation;
        {
            let cache = self.range_cache.lock();
            if let Some(slot) = cache.iter().find(|s| {
                s.start == start && s.end == end && s.rows == rows && s.generation == generation
            }) {
                self.temporal_metrics.range_cache_hits.inc();
                return Ok(Arc::clone(&slot.snapshot));
            }
        }
        self.temporal_metrics.range_cache_misses.inc();
        // Fold outside the lock: captures are expensive, the cache is not.
        let (reports, all_raw, applied) = self.collect_reports(start, end, false)?;
        let snapshot = Arc::new(self.fold_collected(reports, all_raw).snapshot());
        // Cache soundness: `rows_enqueued` is bumped *before* a batch is sent,
        // so a producer preempted between the two can leave a fold that misses
        // rows the watermark already counts. Only cache when the shards had
        // applied at least the watermark's rows — a fold that raced such a
        // batch then reports `applied < rows` and is served once, uncached,
        // instead of becoming a stale answer pinned to that watermark.
        if applied >= rows {
            let mut cache = self.range_cache.lock();
            if !cache
                .iter()
                .any(|s| s.start == start && s.end == end && s.rows == rows)
            {
                cache.push_back(CacheSlot {
                    start,
                    end,
                    rows,
                    generation,
                    snapshot: Arc::clone(&snapshot),
                });
                while cache.len() > RANGE_CACHE_SLOTS {
                    cache.pop_front();
                }
            }
        }
        Ok(snapshot)
    }

    /// Wraps a time range as a [`SnapshotSource`], so the unchanged
    /// [`crate::query::QueryServer`] serves every typed query (and `marginals`)
    /// over the range. Captures go through the merged-range cache.
    #[must_use]
    pub fn range_source(&self, range: TimeRange) -> TemporalRangeSource<'_> {
        TemporalRangeSource {
            engine: self,
            range,
        }
    }

    /// Writes a durable checkpoint of the whole engine into `dir`: one
    /// bucket-ring file per shard (fine buckets with full RNG + structure
    /// images, compacted tiers, the terminal bucket, and the dyadic-ladder
    /// nodes built so far) plus a temporal manifest.
    /// Quiesces each shard with a ring cut exactly as the non-temporal
    /// engine's checkpoint does; ingest continues afterwards.
    ///
    /// The checkpoint is *resilient per shard*: a dead worker or a failed
    /// write on one shard does not abort the remaining shards' writes — every
    /// healthy shard's file still lands on disk, with the failures reported
    /// together in [`EngineError::CheckpointIncomplete`]. The manifest is only
    /// written when every shard succeeded, so a manifest on disk always
    /// describes a complete, restorable checkpoint.
    ///
    /// # Errors
    ///
    /// [`EngineError::Persist`] when the directory cannot be created or the
    /// manifest cannot be written; [`EngineError::CheckpointIncomplete`]
    /// listing the per-shard failures otherwise.
    pub fn checkpoint<P: AsRef<std::path::Path>>(&self, dir: P) -> Result<(), EngineError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(PersistError::Io)?;
        let receivers: Vec<_> = self
            .links
            .iter()
            .map(|link| {
                let (tx, rx) = std::sync::mpsc::channel();
                link.try_send(TemporalMsg::Checkpoint(tx)).map(|()| rx)
            })
            .collect();
        let meta = persist::TemporalMeta::from_config(&self.config);
        let mut failures = Vec::new();
        let mut rows = 0u64;
        for (shard, receiver) in receivers.into_iter().enumerate() {
            let store = match receiver.map(|rx| rx.recv()) {
                Ok(Ok(store)) => store,
                Ok(Err(_)) | Err(()) => {
                    failures.push(ShardFailure { shard, fault: ShardFault::Down });
                    continue;
                }
            };
            rows += store.rows_processed();
            match persist::write_file(
                &dir.join(Self::shard_file_name(shard)),
                &persist::encode_temporal_shard_indexed(shard as u64, meta, &store),
            ) {
                Ok(bytes) => {
                    self.metrics.checkpoint_bytes.add(bytes);
                    self.metrics.checkpoint_frames.inc();
                }
                Err(err) => {
                    self.metrics.checkpoint_failures.inc();
                    failures.push(ShardFailure { shard, fault: ShardFault::Persist(err) });
                }
            }
        }
        if !failures.is_empty() {
            return Err(EngineError::CheckpointIncomplete { failures });
        }
        let manifest = persist::TemporalManifest {
            meta,
            snapshots: self.snapshots.load(Ordering::Relaxed),
            rows,
        };
        let bytes = persist::write_file(
            &dir.join(Self::MANIFEST_FILE),
            &persist::encode_temporal_manifest(&manifest),
        )
        .map_err(EngineError::Persist)?;
        self.metrics.checkpoint_bytes.add(bytes);
        self.metrics.checkpoint_frames.inc();
        Ok(())
    }

    /// Kills the worker thread of `shard` by making it panic. Fault injection
    /// for tests only: this is how the regression suite proves that a poisoned
    /// shard degrades control requests into [`EngineError::ShardDown`] instead
    /// of taking a daemon down. The control channel is FIFO, so any request
    /// sent after this observes the dead worker deterministically.
    #[doc(hidden)]
    pub fn debug_kill_shard(&self, shard: usize) {
        self.links[shard].send_lossy(TemporalMsg::Poison);
        // Wait for the unwind to drop the worker's control receiver, so the
        // *next* control request fails at send time rather than racing.
        while self.links[shard].try_send(TemporalMsg::Poison).is_ok() {
            std::thread::yield_now();
        }
    }

    /// Resumes an engine from a [`checkpoint`](Self::checkpoint) directory. The
    /// identity in `config` (shards, capacity, seed, window geometry) must
    /// match the manifest; queue depth and batch size are operational knobs and
    /// may differ. The restored engine continues bit-compatibly: fine buckets
    /// resume with their exact RNG and counter-structure state, and the salted
    /// snapshot-seed sequence continues where the checkpoint left off.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on filesystem failures, [`PersistError::Corrupt`]
    /// (or the more specific decode errors) on damaged files or a `config`
    /// that disagrees with the manifest.
    pub fn restore<P: AsRef<std::path::Path>>(
        dir: P,
        config: TemporalConfig,
    ) -> Result<Self, PersistError> {
        let dir = dir.as_ref();
        let manifest =
            persist::decode_temporal_manifest(&std::fs::read(dir.join(Self::MANIFEST_FILE))?)?;
        let expected = persist::TemporalMeta::from_config(&config);
        if manifest.meta != expected {
            return Err(PersistError::Corrupt(format!(
                "config {expected:?} does not match the checkpoint {:?}",
                manifest.meta
            )));
        }
        let mut stores = Vec::with_capacity(config.shards);
        let mut rows = 0u64;
        let mut max_time = 0u64;
        for shard in 0..config.shards {
            let bytes = std::fs::read(dir.join(Self::shard_file_name(shard)))?;
            let (index, file_meta, store) = persist::decode_temporal_shard(&bytes)?;
            if index != shard as u64 {
                return Err(PersistError::Corrupt(format!(
                    "file {} holds shard {index}",
                    Self::shard_file_name(shard)
                )));
            }
            if file_meta != manifest.meta {
                return Err(PersistError::Corrupt(format!(
                    "shard {shard} was written by a different engine than the manifest"
                )));
            }
            rows += store.rows_processed();
            max_time = max_time.max(store.last_time());
            stores.push(store);
        }
        if rows != manifest.rows {
            return Err(PersistError::Corrupt(format!(
                "shard files hold {rows} rows but the manifest records {}",
                manifest.rows
            )));
        }
        Ok(Self::spawn(config, stores, manifest.snapshots, rows, max_time))
    }

    /// The manifest file name inside a checkpoint directory.
    pub const MANIFEST_FILE: &'static str = "temporal-manifest.uss";

    /// The bucket-ring file name for shard `i` inside a checkpoint directory.
    #[must_use]
    pub fn shard_file_name(shard: usize) -> String {
        format!("window-{shard:04}.uss")
    }

    /// Stops every worker after it drains its queue, joins them, and folds the
    /// whole history with the unbiased PPS merge under the same unsalted seeds
    /// the non-temporal engine's `finish` uses. Stop producers first, exactly
    /// as with [`crate::engine::ShardedIngestEngine::finish`].
    #[must_use]
    pub fn finish(self) -> WeightedSpaceSaving {
        let seed = self.config.window.seed;
        let capacity = self.config.window.capacity;
        let stores = self.finish_stores();
        fold_unbiased(
            capacity,
            seed ^ FOLD_MERGE_SALT,
            seed ^ FOLD_OUT_SALT,
            stores
                .iter()
                .flat_map(|s| s.range_reports(0, u64::MAX))
                .map(|r| (r.entries, r.rows)),
        )
    }

    /// Stops and joins the workers, returning each shard's final store (for
    /// callers that want the per-bucket structure rather than a merged fold).
    #[must_use]
    pub fn finish_stores(mut self) -> Vec<WindowedSketchStore> {
        for link in &self.links {
            // A worker is only gone if it panicked; join below surfaces that.
            link.send_lossy(TemporalMsg::Shutdown);
        }
        self.links.clear();
        self.workers
            .drain(..)
            .map(|worker| worker.join().expect("temporal ingest worker panicked"))
            .collect()
    }
}

impl SnapshotSource for TemporalIngestEngine {
    /// Captures the whole history ([`TimeRange::All`]) through the range cache.
    fn capture(&self) -> SketchSnapshot {
        (*self.range_capture(&TimeRange::All)).clone()
    }

    fn rows_hint(&self) -> u64 {
        self.rows_enqueued()
    }
}

/// A [`SnapshotSource`] view of one [`TimeRange`] of a
/// [`TemporalIngestEngine`], served through the merged-range cache. Put a
/// [`crate::query::QueryServer`] in front to answer typed queries over the
/// range.
#[derive(Debug, Clone, Copy)]
pub struct TemporalRangeSource<'a> {
    engine: &'a TemporalIngestEngine,
    range: TimeRange,
}

impl TemporalRangeSource<'_> {
    /// The range this source serves.
    #[must_use]
    pub fn range(&self) -> TimeRange {
        self.range
    }
}

impl SnapshotSource for TemporalRangeSource<'_> {
    fn capture(&self) -> SketchSnapshot {
        (*self.engine.range_capture(&self.range)).clone()
    }

    fn rows_hint(&self) -> u64 {
        self.engine.rows_enqueued()
    }
}

/// A producer-side handle for timestamped rows: routes by item hash (every
/// occurrence of an item lands on the same shard, keeping frequent-item counts
/// sharp) and ships `(item, timestamp)` pairs in recycled [`RowBlock`]s over
/// per-shard SPSC rings, exactly like the non-temporal
/// [`crate::engine::IngestHandle`]. Rows still in the handle's partial blocks
/// are sent on drop (best-effort) or by [`flush`](Self::flush).
#[derive(Debug)]
pub struct TemporalIngestHandle {
    /// Engine endpoints, kept for ring registration on [`Clone`].
    links: Vec<ShardLink<TemporalMsg>>,
    /// One block sender per shard; this handle is the ring's single producer.
    senders: Vec<BlockSender<(u64, u64)>>,
    /// The partially filled block per shard, swapped out when full.
    // Boxed: the ring transports blocks as `Box<RowBlock>` so a send moves one
    // pointer, never the multi-KiB payload.
    #[allow(clippy::vec_box)]
    blocks: Vec<Box<RowBlock<(u64, u64)>>>,
    ring_blocks: usize,
    rows_enqueued: Arc<AtomicU64>,
    max_time: Arc<AtomicU64>,
}

impl TemporalIngestHandle {
    /// Builds a handle wired to `links`: one block channel per shard, each
    /// registered with its worker before any row can be sent over it.
    fn connect(
        links: &[ShardLink<TemporalMsg>],
        ring_blocks: usize,
        rows_enqueued: &Arc<AtomicU64>,
        max_time: &Arc<AtomicU64>,
    ) -> Result<Self, EngineError> {
        let mut senders = Vec::with_capacity(links.len());
        let mut blocks = Vec::with_capacity(links.len());
        for (shard, link) in links.iter().enumerate() {
            let (tx, rx) = block_channel_with_counters(
                ring_blocks,
                Arc::clone(link.waker()),
                Arc::clone(link.ring_counters()),
            );
            link.try_send(TemporalMsg::Register(rx))
                .map_err(|()| EngineError::ShardDown { shard })?;
            blocks.push(RowBlock::boxed());
            senders.push(tx);
        }
        Ok(Self {
            links: links.to_vec(),
            senders,
            blocks,
            ring_blocks,
            rows_enqueued: Arc::clone(rows_enqueued),
            max_time: Arc::clone(max_time),
        })
    }

    /// Offers one row of `item` stamped `ts`. Lock-free; parks only when the
    /// destination shard's ring is full (the engine's backpressure).
    #[inline]
    pub fn offer_at(&mut self, item: u64, ts: u64) {
        let shard = self.route(item);
        if self.blocks[shard].push((item, ts)) {
            self.dispatch(shard);
        }
    }

    /// Fallible [`offer_at`](Self::offer_at): a dead destination worker fails
    /// this row's dispatch with [`EngineError::ShardDown`] instead of
    /// panicking.
    #[inline]
    pub fn try_offer_at(&mut self, item: u64, ts: u64) -> Result<(), EngineError> {
        let shard = self.route(item);
        if self.blocks[shard].push((item, ts)) {
            self.try_dispatch(shard)?;
        }
        Ok(())
    }

    /// Offers a batch of `(item, timestamp)` rows.
    pub fn offer_batch_at(&mut self, rows: &[(u64, u64)]) {
        for &(item, ts) in rows {
            self.offer_at(item, ts);
        }
    }

    /// Fallible [`offer_batch_at`](Self::offer_batch_at); stops at the first
    /// row whose destination worker is gone.
    ///
    /// # Errors
    ///
    /// [`EngineError::ShardDown`] naming the dead shard.
    pub fn try_offer_batch_at(&mut self, rows: &[(u64, u64)]) -> Result<(), EngineError> {
        for &(item, ts) in rows {
            self.try_offer_at(item, ts)?;
        }
        Ok(())
    }

    /// Ships every partially filled block to its shard, emptying the handle.
    pub fn flush(&mut self) {
        for shard in 0..self.blocks.len() {
            if !self.blocks[shard].is_empty() {
                self.dispatch(shard);
            }
        }
    }

    /// Fallible [`flush`](Self::flush). Keeps going past dead shards so every
    /// healthy shard still receives its rows, then reports the first failure.
    ///
    /// # Errors
    ///
    /// [`EngineError::ShardDown`] naming the first dead shard encountered.
    pub fn try_flush(&mut self) -> Result<(), EngineError> {
        let mut first_err = Ok(());
        for shard in 0..self.blocks.len() {
            if !self.blocks[shard].is_empty() {
                let result = self.try_dispatch(shard);
                if first_err.is_ok() {
                    first_err = result;
                }
            }
        }
        first_err
    }

    #[inline]
    fn route(&self, item: u64) -> usize {
        if self.senders.len() == 1 {
            return 0;
        }
        // The same multiply-shift routing as the non-temporal IngestHandle.
        ((u128::from(splitmix64(item)) * self.senders.len() as u128) >> 64) as usize
    }

    /// Advances the enqueue counters for an outgoing block and returns it.
    fn account(&self, block: Box<RowBlock<(u64, u64)>>) -> Box<RowBlock<(u64, u64)>> {
        self.rows_enqueued
            .fetch_add(block.len() as u64, Ordering::Relaxed);
        let newest = block.as_slice().iter().map(|&(_, ts)| ts).max();
        if let Some(ts) = newest {
            self.max_time.fetch_max(ts, Ordering::Relaxed);
        }
        block
    }

    /// Sends the current block (recycling a spent one in its place), parking
    /// while the ring is full.
    fn dispatch(&mut self, shard: usize) {
        if self.try_dispatch(shard).is_err() {
            panic!("temporal shard worker disconnected");
        }
    }

    /// Fallible [`dispatch`]: a closed ring (dead worker) drops the block's
    /// rows and reports [`EngineError::ShardDown`] instead of panicking.
    fn try_dispatch(&mut self, shard: usize) -> Result<(), EngineError> {
        let block = std::mem::replace(&mut self.blocks[shard], self.senders[shard].acquire());
        // Accounting happens before the send (the order the range cache's
        // `applied >= rows` soundness guard is written against); a failed send
        // leaves a small overcount on a shard that is already reported dead.
        let block = self.account(block);
        self.senders[shard]
            .send(block)
            .map_err(|_| EngineError::ShardDown { shard })
    }
}

impl Clone for TemporalIngestHandle {
    /// Clones the routing state with fresh rings of its own: the new handle
    /// registers one new block channel per shard and starts with empty blocks.
    ///
    /// # Panics
    ///
    /// Panics if a worker is gone (use [`TemporalIngestEngine::try_handle`] on
    /// the engine to get the typed error instead).
    fn clone(&self) -> Self {
        match Self::connect(
            &self.links,
            self.ring_blocks,
            &self.rows_enqueued,
            &self.max_time,
        ) {
            Ok(handle) => handle,
            Err(err) => panic!("{err}"),
        }
    }
}

impl Drop for TemporalIngestHandle {
    /// Best-effort flush so producer threads cannot silently drop buffered rows.
    /// Dropping the senders afterwards closes the rings, which is what lets
    /// each worker retire them once drained.
    fn drop(&mut self) {
        for shard in 0..self.blocks.len() {
            if !self.blocks[shard].is_empty() {
                let block = std::mem::replace(&mut self.blocks[shard], RowBlock::boxed());
                let block = self.account(block);
                // After `finish` the workers are gone; losing the send then is fine.
                let _ = self.senders[shard].send(block);
            }
        }
    }
}

/// Per-ring budget of blocks drained per scan pass, bounding how long a pass
/// can run before the worker re-checks the control channel. Matches the
/// non-temporal engine's budget.
const DRAIN_BUDGET: usize = 64;

/// A temporal shard worker's mutable state: its store, the producer rings it
/// polls, and the scratch buffer for timestamp runs.
struct TemporalWorker {
    store: WindowedSketchStore,
    rings: Vec<BlockReceiver<(u64, u64)>>,
    /// Scratch buffer for runs of equal timestamps, reused across blocks.
    run_items: Vec<u64>,
    metrics: Arc<ShardMetrics>,
}

impl TemporalWorker {
    /// Applies one block of `(item, timestamp)` rows. Real blocks are dominated
    /// by runs of equal timestamps; applying each run through `offer_batch_at`
    /// (exactly equivalent to per-row offers) pays the bucket resolution once
    /// per run instead of once per row. Metrics cost: two Relaxed adds per
    /// block, never per row.
    fn apply(&mut self, rows: &[(u64, u64)]) {
        self.metrics.rows.add(rows.len() as u64);
        self.metrics.blocks.inc();
        let mut i = 0;
        while i < rows.len() {
            let ts = rows[i].1;
            let mut j = i + 1;
            while j < rows.len() && rows[j].1 == ts {
                j += 1;
            }
            if j - i == 1 {
                self.store.offer_at(rows[i].0, ts);
            } else {
                self.run_items.clear();
                self.run_items
                    .extend(rows[i..j].iter().map(|&(item, _)| item));
                self.store.offer_batch_at(&self.run_items, ts);
            }
            i = j;
        }
    }

    /// One bounded scan over all rings. Returns `true` if any block was
    /// applied. Rings whose producer is gone and which are fully drained are
    /// retired.
    fn scan_rings(&mut self) -> bool {
        let mut progressed = false;
        for i in 0..self.rings.len() {
            for _ in 0..DRAIN_BUDGET {
                match self.rings[i].recv() {
                    Some(block) => {
                        progressed = true;
                        self.apply(block.as_slice());
                        self.rings[i].recycle(block);
                    }
                    None => break,
                }
            }
        }
        self.rings.retain(|ring| !ring.is_finished());
        progressed
    }

    /// Drains a *cut* of every ring — exactly the blocks queued at the moment
    /// this is called — then settles deferred compaction, so the store's tier
    /// state is canonical before it is observed. Blocks pushed concurrently
    /// with the drain are left for the normal scan, so a fast producer cannot
    /// stall a quiesce.
    fn quiesce(&mut self) {
        for i in 0..self.rings.len() {
            let cut = self.rings[i].queued();
            for _ in 0..cut {
                // Every counted block is already published; recv cannot fail here.
                let block = self.rings[i].recv().expect("queued block vanished");
                self.apply(block.as_slice());
                self.rings[i].recycle(block);
            }
        }
        self.rings.retain(|ring| !ring.is_finished());
        self.store.settle_all();
    }
}

/// The temporal shard worker loop: poll producer rings and the control channel,
/// apply timestamped blocks (rotating the window as time advances), answer
/// range reports and checkpoint requests, park when idle, and hand the final
/// store back through the join handle.
///
/// Maintenance — deferred tier compaction and dyadic-ladder node builds — runs
/// one bounded unit at a time, and only once the worker has *parked* since the
/// last applied block: a park means the producers were genuinely quiet, not
/// just refilling a block. Momentary ring gaps during active ingest therefore
/// never pay a compaction or ladder fold — on few-core hosts that maintenance
/// steals the producer's cycles and was the dominant cost of the
/// rotating-ingest path. Every request that observes store state quiesces
/// first (ring cut + settle), so deferral is invisible to queries, checkpoints
/// and the final store.
fn run_worker(
    control: &Receiver<TemporalMsg>,
    waker: &Waker,
    store: WindowedSketchStore,
    metrics: &Arc<ShardMetrics>,
) -> WindowedSketchStore {
    let mut w = TemporalWorker {
        store,
        rings: Vec::new(),
        run_items: Vec::new(),
        metrics: Arc::clone(metrics),
    };
    w.store.set_defer_compaction(true);
    let mut engine_alive = true;
    // Whether the worker has parked since it last applied a block — the
    // "producers are genuinely quiet" signal that admits idle maintenance.
    let mut quiet = true;
    loop {
        let mut progressed = false;
        // Control first: registrations and quiesce requests.
        loop {
            match control.try_recv() {
                Ok(msg) => {
                    progressed = true;
                    if handle_control(&mut w, msg) == Flow::Stop {
                        w.store.set_defer_compaction(false);
                        return w.store;
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    // Engine and every handle are gone: no new rings, no requests.
                    engine_alive = false;
                    break;
                }
            }
        }
        if w.scan_rings() {
            progressed = true;
            quiet = false;
        }
        if !engine_alive && w.rings.is_empty() {
            // Nothing can ever arrive again (the engine was dropped without
            // `finish`); exit so the thread does not leak.
            w.store.set_defer_compaction(false);
            return w.store;
        }
        if !progressed {
            if quiet && (w.store.settle_one() || w.store.ladder_idle_step()) {
                // One bounded unit of idle maintenance, then re-check inputs.
                continue;
            }
            waker.prepare();
            // Re-check under the raised flag: a producer push or control send
            // between the empty scan and `prepare` would otherwise be missed.
            let pending = w.rings.iter().any(|ring| !ring.is_empty())
                || w.rings.iter().any(BlockReceiver::is_finished);
            match control.try_recv() {
                Ok(msg) => {
                    waker.cancel();
                    if handle_control(&mut w, msg) == Flow::Stop {
                        w.store.set_defer_compaction(false);
                        return w.store;
                    }
                }
                Err(TryRecvError::Disconnected) => {
                    waker.cancel();
                    engine_alive = false;
                }
                Err(TryRecvError::Empty) => {
                    if pending {
                        waker.cancel();
                    } else {
                        waker.park();
                        quiet = true;
                    }
                }
            }
        }
    }
}

/// Whether the worker keeps running after a control message.
#[derive(PartialEq, Eq)]
enum Flow {
    Continue,
    Stop,
}

/// Handles one control message; requests that observe store state quiesce
/// (ring cut + settle) first.
fn handle_control(w: &mut TemporalWorker, msg: TemporalMsg) -> Flow {
    match msg {
        TemporalMsg::Register(ring) => w.rings.push(ring),
        TemporalMsg::Range {
            start,
            end,
            leaf,
            reply,
        } => {
            w.quiesce();
            let (reports, raw) = if leaf {
                (w.store.range_reports(start, end), true)
            } else {
                w.store.indexed_range_reports(start, end)
            };
            let _ = reply.send((reports, raw, w.store.rows_processed()));
        }
        TemporalMsg::Checkpoint(reply) => {
            w.quiesce();
            let _ = reply.send(w.store.clone());
        }
        TemporalMsg::Shutdown => {
            w.quiesce();
            return Flow::Stop;
        }
        // Test-only fault injection; see `debug_kill_shard`.
        TemporalMsg::Poison => panic!("temporal shard worker poisoned by debug_kill_shard"),
    }
    Flow::Continue
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(width: u64, fine: usize, tiers: usize, factor: usize) -> WindowedSketchStore {
        WindowedSketchStore::new(
            WindowConfig::new(32, 9, width, fine).with_retention(tiers, factor),
        )
    }

    #[test]
    fn rows_land_in_their_time_bucket() {
        let mut s = store(10, 4, 2, 4);
        s.offer_at(1, 0);
        s.offer_at(2, 9);
        s.offer_at(3, 10);
        s.offer_at(4, 25);
        let indices: Vec<u64> = s.fine_sketches().map(|(i, _)| i).collect();
        assert_eq!(indices, vec![0, 1, 2]);
        let rows: Vec<u64> = s.fine_sketches().map(|(_, sk)| sk.rows_processed()).collect();
        assert_eq!(rows, vec![2, 1, 1]);
        assert_eq!(s.rows_processed(), 4);
        assert_eq!(s.last_time(), 25);
    }

    #[test]
    fn rotation_expires_into_tiers_and_conserves_mass() {
        let mut s = store(1, 2, 1, 2);
        for ts in 0u64..10 {
            for _ in 0..5 {
                s.offer_at(ts % 3, ts);
            }
        }
        // 10 buckets, 2 fine retained; the rest compacted below.
        assert_eq!(s.fine_sketches().count(), 2);
        let retained: u64 = s.fine_sketches().map(|(_, sk)| sk.rows_processed()).sum::<u64>()
            + s.tier_buckets(0).iter().map(|b| b.rows).sum::<u64>()
            + s.terminal_bucket().map_or(0, |b| b.rows);
        assert_eq!(retained, 50);
        assert_eq!(s.rows_processed(), 50);
        // The full-range fold conserves the mass exactly.
        let folded = s.fold_range(0, u64::MAX, 1, 2);
        let mass: f64 = folded.entries().iter().map(|(_, c)| c).sum();
        assert!((mass - 50.0).abs() < 1e-6, "mass {mass}");
        assert_eq!(folded.rows_processed(), 50);
    }

    #[test]
    fn out_of_order_in_window_rows_land_exactly_and_late_rows_clamp() {
        let mut s = store(10, 3, 1, 2);
        s.offer_at(1, 50); // bucket 5
        s.offer_at(2, 35); // bucket 3: in-window, lands exactly (created late)
        let indices: Vec<u64> = s.fine_sketches().map(|(i, _)| i).collect();
        assert_eq!(indices, vec![3, 5]);
        assert_eq!(s.late_rows(), 0);
        s.offer_at(3, 5); // bucket 0: older than the window -> clamped into 3
        assert_eq!(s.late_rows(), 1);
        let (oldest, sk) = s.fine_sketches().next().unwrap();
        assert_eq!(oldest, 3);
        assert_eq!(sk.rows_processed(), 2);
        assert_eq!(s.rows_processed(), 3);
    }

    #[test]
    fn offer_batch_at_matches_sequential_offers() {
        let mut a = store(10, 4, 2, 4);
        let mut b = store(10, 4, 2, 4);
        let items: Vec<u64> = (0..500u64).map(|i| i % 17).collect();
        a.offer_batch_at(&items, 42);
        for &item in &items {
            b.offer_at(item, 42);
        }
        let ea: Vec<_> = a.fine_sketches().map(|(i, sk)| (i, sk.entries())).collect();
        let eb: Vec<_> = b.fine_sketches().map(|(i, sk)| (i, sk.entries())).collect();
        assert_eq!(ea, eb);
        assert_eq!(a.rows_processed(), b.rows_processed());
    }

    #[test]
    fn one_bucket_store_is_bit_identical_to_a_plain_sketch() {
        // Everything in bucket 0 => the bucket sketch is seeded with the base
        // seed itself, so it tracks a plain sketch bit for bit.
        let mut s = store(1_000_000, 4, 2, 4);
        let mut plain = UnbiasedSpaceSaving::with_seed(32, 9);
        for i in 0..5_000u64 {
            s.offer_at(i % 300, i % 100);
            plain.offer(i % 300);
        }
        let (_, sk) = s.fine_sketches().next().unwrap();
        assert_eq!(sk.entries(), plain.entries());
    }

    #[test]
    fn terminal_bucket_absorbs_ancient_history() {
        let mut s = store(1, 1, 1, 2);
        for ts in 0u64..20 {
            s.offer_at(ts, ts);
        }
        assert!(s.terminal_bucket().is_some());
        let term = s.terminal_bucket().unwrap();
        assert_eq!(term.start(), 0);
        assert!(term.end() > 0);
        assert_eq!(s.rows_processed(), 20);
    }

    #[test]
    fn range_reports_come_back_oldest_first_and_respect_overlap() {
        let mut s = store(1, 2, 1, 2);
        for ts in 0u64..8 {
            s.offer_at(ts, ts);
        }
        // Only the newest fine buckets.
        let fine_only = s.range_reports(6, 8);
        assert_eq!(fine_only.len(), 2);
        // Empty and inverted ranges are empty.
        assert!(s.range_reports(3, 3).is_empty());
        assert!(s.range_reports(5, 2).is_empty());
        // A full range covers every retained row.
        let all = s.range_reports(0, u64::MAX);
        let rows: u64 = all.iter().map(|r| r.rows).sum();
        assert_eq!(rows, 8);
    }

    #[test]
    fn engine_range_query_answers_a_sliding_window() {
        let engine = TemporalIngestEngine::new(
            TemporalConfig::new(2, 64, 3, 10, 4).with_batch_rows(64),
        );
        let mut handle = engine.handle();
        // Buckets 0..10; item 7 appears only in the last 2 buckets.
        for ts in 0u64..100 {
            for i in 0..20u64 {
                let item = if ts >= 80 && i < 10 { 7 } else { 100 + i };
                handle.offer_at(item, ts);
            }
        }
        handle.flush();
        let recent = engine.range_snapshot(&TimeRange::LastBuckets(2));
        assert_eq!(recent.rows_processed(), 2 * 10 * 20);
        let est = recent.estimate(7);
        assert!((est - 200.0).abs() < 60.0, "estimate {est}");
        // The whole stream still answers.
        let all = engine.range_snapshot(&TimeRange::All);
        assert_eq!(all.rows_processed(), 2_000);
        let _ = engine.finish();
    }

    #[test]
    fn between_ranges_round_to_bucket_boundaries() {
        let engine = TemporalIngestEngine::new(TemporalConfig::new(1, 32, 5, 10, 8));
        let mut handle = engine.handle();
        for ts in 0u64..50 {
            handle.offer_at(ts % 6, ts);
        }
        handle.flush();
        assert_eq!(engine.resolve_range(&TimeRange::Between { start: 0, end: 50 }), (0, 5));
        assert_eq!(engine.resolve_range(&TimeRange::Between { start: 12, end: 38 }), (1, 4));
        assert_eq!(engine.resolve_range(&TimeRange::Between { start: 7, end: 7 }), (0, 0));
        let middle = engine.range_snapshot(&TimeRange::Between { start: 12, end: 38 });
        assert_eq!(middle.rows_processed(), 30); // buckets 1, 2, 3
        let _ = engine.finish();
    }

    #[test]
    fn window_config_try_new_returns_typed_errors() {
        assert_eq!(
            WindowConfig::try_new(0, 7, 10, 4).unwrap_err(),
            WindowConfigError::ZeroCapacity
        );
        assert_eq!(
            WindowConfig::try_new(32, 7, 0, 4).unwrap_err(),
            WindowConfigError::ZeroBucketWidth
        );
        assert_eq!(
            WindowConfig::try_new(32, 7, 10, 0).unwrap_err(),
            WindowConfigError::ZeroFineBuckets
        );
        // The fields are public: a hand-built degenerate tier factor must be
        // caught by validate (and by the engine) rather than panicking later.
        let mut config = WindowConfig::new(32, 7, 10, 4);
        config.tier_factor = 1;
        assert_eq!(config.validate().unwrap_err(), WindowConfigError::TierFactorTooSmall);
        assert!(WindowConfig::try_new(32, 7, 10, 4).is_ok());
    }

    #[test]
    fn temporal_config_try_new_returns_typed_errors() {
        assert_eq!(
            TemporalConfig::try_new(0, 32, 7, 10, 4).unwrap_err(),
            TemporalConfigError::ZeroShards
        );
        assert_eq!(
            TemporalConfig::try_new(2, 32, 7, 0, 4).unwrap_err(),
            TemporalConfigError::Window(WindowConfigError::ZeroBucketWidth)
        );
        let mut config = TemporalConfig::new(2, 32, 7, 10, 4);
        config.queue_depth = 0;
        assert_eq!(config.validate().unwrap_err(), TemporalConfigError::ZeroQueueDepth);
        let mut config = TemporalConfig::new(2, 32, 7, 10, 4);
        config.batch_rows = 0;
        assert_eq!(config.validate().unwrap_err(), TemporalConfigError::ZeroBatchRows);
        match TemporalIngestEngine::try_new(TemporalConfig {
            shards: 0,
            ..TemporalConfig::new(1, 32, 7, 10, 4)
        }) {
            Err(TemporalConfigError::ZeroShards) => {}
            other => panic!("expected ZeroShards, got {:?}", other.map(|_| ())),
        }
        let engine = TemporalIngestEngine::try_new(TemporalConfig::new(1, 32, 7, 10, 4))
            .expect("valid config spawns");
        let _ = engine.finish();
    }

    #[test]
    fn poisoned_worker_degrades_to_typed_errors() {
        // Regression for the daemon contract: a deliberately-panicked worker
        // must surface as EngineError::ShardDown from every fallible control
        // path, and a checkpoint must still write the healthy shards' files.
        let dir = std::env::temp_dir().join(format!(
            "uss-temporal-poison-{}",
            std::process::id()
        ));
        let engine =
            TemporalIngestEngine::new(TemporalConfig::new(2, 64, 13, 10, 4).with_batch_rows(64));
        let mut handle = engine.handle();
        for ts in 0u64..50 {
            for row in 0u64..40 {
                handle.offer_at(row, ts);
            }
        }
        handle.flush();
        engine.debug_kill_shard(1);

        match engine.try_range_capture(&TimeRange::All) {
            Err(EngineError::ShardDown { shard: 1 }) => {}
            other => panic!("expected ShardDown {{ shard: 1 }}, got {:?}", other.map(|_| ())),
        }
        match engine.try_range_snapshot(&TimeRange::LastBuckets(4)) {
            Err(EngineError::ShardDown { shard: 1 }) => {}
            other => panic!("expected ShardDown {{ shard: 1 }}, got {:?}", other.map(|_| ())),
        }
        match engine.try_handle() {
            Err(EngineError::ShardDown { shard: 1 }) => {}
            other => panic!("expected ShardDown {{ shard: 1 }}, got {:?}", other.map(|_| ())),
        }

        // Checkpoint keeps writing healthy shards and reports the dead one.
        match engine.checkpoint(&dir) {
            Err(EngineError::CheckpointIncomplete { failures }) => {
                assert_eq!(failures.len(), 1);
                assert_eq!(failures[0].shard, 1);
                assert!(matches!(failures[0].fault, ShardFault::Down));
            }
            other => panic!("expected CheckpointIncomplete, got {other:?}"),
        }
        assert!(dir.join(TemporalIngestEngine::shard_file_name(0)).exists());
        // No manifest: a manifest must only ever describe a complete checkpoint.
        assert!(!dir.join(TemporalIngestEngine::MANIFEST_FILE).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn range_capture_is_cached_at_a_fixed_watermark() {
        let engine = TemporalIngestEngine::new(TemporalConfig::new(2, 32, 4, 10, 4));
        let mut handle = engine.handle();
        for ts in 0u64..40 {
            handle.offer_at(ts % 9, ts);
        }
        handle.flush();
        let a = engine.range_capture(&TimeRange::All);
        let b = engine.range_capture(&TimeRange::All);
        // Identical Arc: the second capture hit the cache, no new fold (and no
        // new salt) happened.
        assert!(Arc::ptr_eq(&a, &b));
        // New ingest moves the watermark and invalidates.
        handle.offer_at(1, 41);
        handle.flush();
        let c = engine.range_capture(&TimeRange::All);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.rows_processed(), 41);
        let _ = engine.finish();
    }

    #[test]
    fn finish_matches_rows_and_conserves_mass() {
        let engine = TemporalIngestEngine::new(
            TemporalConfig::new(3, 64, 8, 5, 3).with_batch_rows(128),
        );
        std::thread::scope(|scope| {
            for producer in 0..3u64 {
                let mut handle = engine.handle();
                scope.spawn(move || {
                    for i in 0..2_000u64 {
                        handle.offer_at(producer * 1_000 + i % 150, i / 40);
                    }
                });
            }
        });
        let merged = engine.finish();
        assert_eq!(merged.rows_processed(), 6_000);
        let mass: f64 = merged.entries().iter().map(|(_, c)| c).sum();
        assert!((mass - 6_000.0).abs() < 1e-6, "mass {mass}");
    }

    #[test]
    fn maximal_timestamp_lands_in_the_last_representable_bucket() {
        // Regression: ts / width == u64::MAX used to overflow span arithmetic
        // (index + 1) in debug builds and silently escape every range query in
        // release — the row clamps into bucket u64::MAX - 1 instead.
        let mut s = store(1, 4, 1, 2);
        s.offer_at(42, u64::MAX);
        s.offer_at(43, u64::MAX - 1);
        assert_eq!(s.newest_bucket(), Some(u64::MAX - 1));
        let all = s.range_reports(0, u64::MAX);
        assert_eq!(all.iter().map(|r| r.rows).sum::<u64>(), 2);
        let folded = s.fold_range(0, u64::MAX, 1, 2);
        assert_eq!(folded.rows_processed(), 2);
    }

    /// Runs the worker's idle builder to quiescence and returns how many nodes
    /// it built, so tests can exercise the same code path the shard threads do.
    fn build_ladder(s: &mut WindowedSketchStore) -> usize {
        let mut steps = 0;
        while s.ladder_idle_step() {
            steps += 1;
            assert!(steps < 10_000, "idle builder failed to reach quiescence");
        }
        s.ladder_node_count()
    }

    /// Total rows held by the fine buckets covering `[start, end)`.
    fn leaf_rows(s: &WindowedSketchStore, start: u64, end: u64) -> u64 {
        s.fine_sketches()
            .filter(|&(i, _)| i >= start && i < end)
            .map(|(_, sk)| sk.rows_processed())
            .sum()
    }

    #[test]
    fn idle_steps_build_every_sealed_aligned_node_exactly_once() {
        // 8 fine buckets, all retained (window wider than the stream): newest
        // is 7, so sealed buckets are 0..7. Level 1 can host [0,2), [2,4) and
        // [4,6) ([6,8) would cover the open bucket); level 2 only [0,4);
        // level 3 nothing. Every node's rows must equal its leaves' exactly.
        let mut s = store(1, 8, 1, 2);
        for ts in 0u64..8 {
            for _ in 0..(ts + 1) * 3 {
                s.offer_at(ts % 5, ts);
            }
        }
        assert_eq!(ladder_max_level(8), 2);
        assert_eq!(build_ladder(&mut s), 4);
        for (idx, level) in s.ladder_levels().iter().enumerate() {
            let len = 1u64 << (idx + 1);
            for (&start, node) in level {
                assert_eq!(start % len, 0, "level {} start {start}", idx + 1);
                assert_eq!(node.end, start + len);
                assert_eq!(node.rows, leaf_rows(&s, node.start, node.end));
                let mass: f64 = node.entries.iter().map(|&(_, c)| c).sum();
                assert!((mass - node.rows as f64).abs() < 1e-6);
            }
        }
        // A second pass is a no-op: everything buildable is already built.
        assert!(!s.ladder_idle_step());
    }

    #[test]
    fn dyadic_reports_conserve_rows_and_match_the_leaf_path_when_raw() {
        let mut s = store(1, 16, 2, 4);
        for ts in 0u64..16 {
            for i in 0..20u64 {
                s.offer_at(i % 9, ts);
            }
        }
        build_ladder(&mut s);
        // A wide range goes through pre-merged nodes (flag false) and
        // conserves the covered rows exactly.
        let (wide, raw) = s.range_reports_dyadic(0, 16);
        assert!(!raw, "a 16-bucket span must use the ladder");
        assert_eq!(wide.iter().map(|r| r.rows).sum::<u64>(), 16 * 20);
        // A single-bucket range is answered raw, byte-identical to the
        // pre-ladder leaf path.
        let (one, raw) = s.range_reports_dyadic(15, 16);
        assert!(raw);
        assert_eq!(one, s.range_reports(15, 16));
        // Degenerate ranges are empty and raw.
        let (none, raw) = s.range_reports_dyadic(5, 5);
        assert!(none.is_empty() && raw);
    }

    #[test]
    fn out_of_order_rows_invalidate_exactly_the_covering_nodes() {
        let mut s = store(1, 8, 1, 2);
        for ts in 0u64..8 {
            s.offer_at(ts, ts);
        }
        assert_eq!(build_ladder(&mut s), 4);
        // A late in-window row lands in sealed bucket 1: the covering nodes
        // ([0,2) at level 1, [0,4) at level 2) are dropped, the others stay.
        s.offer_at(99, 1);
        assert_eq!(s.ladder_node_count(), 2);
        // Rebuilt nodes reflect the mutated leaf — the dyadic answer stays
        // exactly mass-conserving.
        let (reports, _) = s.range_reports_dyadic(0, 8);
        assert_eq!(reports.iter().map(|r| r.rows).sum::<u64>(), 9);
        assert_eq!(s.ladder_node_count(), 4);
    }

    #[test]
    fn rotation_retires_expired_nodes_without_touching_live_ones() {
        let mut s = store(1, 8, 1, 2);
        for ts in 0u64..8 {
            s.offer_at(ts, ts);
        }
        assert_eq!(build_ladder(&mut s), 4);
        // Advancing to bucket 9 drops buckets 0 and 1 out of the window
        // (min_live 2): node [0,2) and the level-2 [0,4) start below the floor
        // and retire; [2,4) and [4,6) survive.
        s.offer_at(1, 9);
        assert_eq!(s.ladder_node_count(), 2);
        for (idx, level) in s.ladder_levels().iter().enumerate() {
            for (&start, node) in level {
                assert!(start >= 2, "level {} node {start} escaped retirement", idx + 1);
                assert_eq!(node.rows, leaf_rows(&s, node.start, node.end));
            }
        }
        // The idle builder resumes past the retired spans and re-covers the
        // newly sealed buckets.
        build_ladder(&mut s);
        let (reports, _) = s.range_reports_dyadic(0, u64::MAX);
        let total: u64 = reports.iter().map(|r| r.rows).sum();
        assert_eq!(total, 9);
    }

    #[test]
    fn indexed_reports_premerge_wide_spans_into_one_memoized_report() {
        let mut s = store(1, 16, 2, 4);
        for ts in 0u64..16 {
            for i in 0..15u64 {
                s.offer_at(i, ts);
            }
        }
        let (first, raw) = s.indexed_range_reports(0, 16);
        assert!(!raw);
        assert_eq!(first.len(), 1, "wide spans answer with one span report");
        assert_eq!(first[0].rows, 16 * 15);
        // Same span at the same watermark: the memo returns the identical
        // report without re-merging.
        let (again, raw) = s.indexed_range_reports(0, 16);
        assert!(!raw);
        assert_eq!(again, first);
        // Ingest moves the watermark; the memo self-invalidates.
        s.offer_at(7, 15);
        let (fresh, _) = s.indexed_range_reports(0, 16);
        assert_eq!(fresh[0].rows, 16 * 15 + 1);
    }

    #[test]
    fn single_bucket_indexed_fold_is_bit_identical_to_the_leaf_fold() {
        // The no-regression guarantee: a span touching one retained bucket
        // takes the raw path, so the indexed fold is the exact sequential fold
        // — same bytes, not merely the same distribution.
        let mut s = store(1, 8, 1, 2);
        for ts in 0u64..8 {
            for i in 0..50u64 {
                s.offer_at(i % 40, ts);
            }
        }
        build_ladder(&mut s);
        for b in 0..8u64 {
            let indexed = s.fold_range_indexed(b, b + 1, 11, 13);
            let leaf = s.fold_range(b, b + 1, 11, 13);
            assert_eq!(indexed.entries(), leaf.entries(), "bucket {b}");
            assert_eq!(indexed.rows_processed(), leaf.rows_processed());
        }
    }

    #[test]
    fn dyadic_walk_survives_the_maximal_bucket_index() {
        // Regression companion to the maximal-timestamp clamp: the dyadic
        // walk's span arithmetic (x + 2^level, next_multiple_of) must not
        // overflow when the newest bucket is u64::MAX - 1.
        let mut s = store(1, 4, 1, 2);
        s.offer_at(42, u64::MAX);
        s.offer_at(43, u64::MAX - 1);
        build_ladder(&mut s);
        let (reports, _) = s.range_reports_dyadic(0, u64::MAX);
        assert_eq!(reports.iter().map(|r| r.rows).sum::<u64>(), 2);
        let folded = s.fold_range_indexed(0, u64::MAX, 1, 2);
        assert_eq!(folded.rows_processed(), 2);
    }

    #[test]
    fn attach_ladder_rejects_images_that_disagree_with_the_leaves() {
        let mut s = store(1, 8, 1, 2);
        for ts in 0u64..8 {
            s.offer_at(ts, ts);
        }
        // A canonical node image attaches cleanly.
        let good = s.ladder_node_fold(
            0,
            2,
            [0u64, 1].iter().filter_map(|&b| s.leaf_report(b)).collect(),
        );
        assert!(s.attach_ladder(vec![(1, good.clone())]).is_ok());
        // Duplicates, misalignment, bad levels, rows disagreeing with the
        // leaves, and spans over the open bucket are all corrupt.
        assert!(s.attach_ladder(vec![(1, good.clone())]).is_err(), "duplicate");
        let mut s2 = store(1, 8, 1, 2);
        for ts in 0u64..8 {
            s2.offer_at(ts, ts);
        }
        let mut wrong_rows = good.clone();
        wrong_rows.rows += 1;
        assert!(s2.attach_ladder(vec![(1, wrong_rows)]).is_err(), "rows");
        let mut misaligned = good.clone();
        misaligned.start = 1;
        misaligned.end = 3;
        assert!(s2.attach_ladder(vec![(1, misaligned)]).is_err(), "alignment");
        assert!(s2.attach_ladder(vec![(0, good.clone())]).is_err(), "level 0");
        assert!(s2.attach_ladder(vec![(9, good.clone())]).is_err(), "level 9");
        let open = TierBucket {
            start: 6,
            end: 8,
            rows: leaf_rows(&s2, 6, 8),
            entries: Vec::new(),
        };
        assert!(s2.attach_ladder(vec![(1, open)]).is_err(), "covers the open bucket");
    }

    #[test]
    fn late_batch_accounting_matches_per_row_offers_exactly() {
        // Satellite check: a clamped batch must account late rows per item,
        // identically to offering each row alone — counters and sketch bytes.
        let mut a = store(10, 3, 1, 2);
        let mut b = store(10, 3, 1, 2);
        a.offer_at(1, 50);
        b.offer_at(1, 50);
        let late_items: Vec<u64> = (0..40u64).collect();
        a.offer_batch_at(&late_items, 5); // bucket 0: older than the window
        for &item in &late_items {
            b.offer_at(item, 5);
        }
        assert_eq!(a.late_rows(), 40);
        assert_eq!(a.late_rows(), b.late_rows());
        assert_eq!(a.rows_processed(), b.rows_processed());
        let ea: Vec<_> = a.fine_sketches().map(|(i, sk)| (i, sk.entries())).collect();
        let eb: Vec<_> = b.fine_sketches().map(|(i, sk)| (i, sk.entries())).collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn degenerate_ranges_answer_a_well_formed_empty_snapshot() {
        // Satellite regression: `Between { start: 7, end: 7 }` resolves to
        // (0, 0) — the engine must answer a deterministic empty sketch, not
        // fold whatever overlaps (0, 0) or consume a snapshot salt.
        let engine = TemporalIngestEngine::new(TemporalConfig::new(2, 32, 5, 10, 8));
        let mut handle = engine.handle();
        for ts in 0u64..50 {
            handle.offer_at(ts % 6, ts);
        }
        handle.flush();
        for range in [
            TimeRange::Between { start: 7, end: 7 },
            TimeRange::Between { start: 9, end: 3 },
            TimeRange::LastBuckets(0),
        ] {
            let snap = engine.range_snapshot(&range);
            assert_eq!(snap.rows_processed(), 0, "{range:?}");
            assert!(snap.entries().is_empty(), "{range:?}");
            assert_eq!(snap.total_weight(), 0.0, "{range:?}");
            let leaf = engine.range_snapshot_leaf(&range);
            assert_eq!(leaf.entries(), snap.entries(), "{range:?}");
            let captured = engine.range_capture(&range);
            assert_eq!(captured.rows_processed(), 0, "{range:?}");
            assert!(captured.entries().is_empty(), "{range:?}");
        }
        // None of those consumed a salt: the next real snapshot still matches
        // a twin engine that never saw a degenerate poll.
        let twin = TemporalIngestEngine::new(TemporalConfig::new(2, 32, 5, 10, 8));
        let mut th = twin.handle();
        for ts in 0u64..50 {
            th.offer_at(ts % 6, ts);
        }
        th.flush();
        let a = engine.range_snapshot(&TimeRange::All);
        let b = twin.range_snapshot(&TimeRange::All);
        assert_eq!(a.entries(), b.entries());
        let _ = engine.finish();
        let _ = twin.finish();
    }

    #[test]
    #[should_panic(expected = "bucket_width")]
    fn zero_bucket_width_panics() {
        let _ = WindowConfig::new(8, 1, 0, 4);
    }

    #[test]
    #[should_panic(expected = "tier_factor")]
    fn tier_factor_below_two_panics() {
        let _ = WindowConfig::new(8, 1, 10, 4).with_retention(2, 1);
    }
}
