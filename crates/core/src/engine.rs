//! Concurrent sharded ingest engine: live, queryable sketching of heavy streams.
//!
//! The plain sketches in [`crate::space_saving`] are single-threaded values: one
//! owner, one `offer` call per row. This module scales the same algorithmic content to
//! a production-shaped ingest path built around the property that makes it correct —
//! Ting's unbiased PPS merge (section 5.5), under which sharded sketches can be folded
//! at any time into a single sketch that stays unbiased for every after-the-fact
//! subset-sum query.
//!
//! A [`ShardedIngestEngine`] owns `N` worker shards, each an OS thread with a private
//! [`UnbiasedSpaceSaving`] sketch. Producers obtain cheap cloneable
//! [`IngestHandle`]s, which route rows to shards *by item hash* (so every occurrence
//! of an item lands on the same shard and frequent-item counts stay sharp) and move
//! them over bounded queues in coarse batches. Each worker optionally runs a
//! *map-side combiner*: incoming batches are pre-aggregated into `(item, count)`
//! pairs and applied with [`UnbiasedSpaceSaving::offer_many`] multi-increments — the
//! weighted update of section 5.3, which preserves unbiasedness for any grouping —
//! so on skewed traffic the sketch sees orders of magnitude fewer updates than rows.
//!
//! [`ShardedIngestEngine::snapshot`] serves queries while ingest continues: it asks
//! every shard (through the same FIFO queues, so all previously enqueued batches are
//! drained first) for its current entries and folds them with the unbiased PPS merge.
//! [`ShardedIngestEngine::finish`] closes the queues, joins the workers, and folds
//! their final sketches the same way.
//!
//! [`ShardedIngestEngine::checkpoint`] persists the whole engine — one
//! [`crate::persist`] file per shard plus a manifest — and
//! [`ShardedIngestEngine::restore`] resumes from such a directory bit-compatibly,
//! which is what lets an engine survive a restart or ship its shards to another
//! node and keep the statistical guarantees of a single uninterrupted run.
//!
//! # Engine or plain sketch?
//!
//! Use a plain [`UnbiasedSpaceSaving`] when one thread owns the stream and exact
//! row-order reproducibility matters (experiments, tests, small streams). Use the
//! engine when rows arrive from many producers, when ingest must overlap with
//! queries, or when throughput matters more than row-level determinism: the combiner
//! reorders rows *within* a flush window, which changes no expectation (every subset
//! sum stays unbiased) but does change individual sample paths.
//! [`crate::distributed::DistributedSketcher`] remains the deterministic map-reduce
//! convenience wrapper over this engine.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::hash::{splitmix64, FxHashMap};
use crate::persist::{self, PersistError};
use crate::space_saving::{UnbiasedSpaceSaving, WeightedSpaceSaving};
use crate::traits::StreamSketch;

/// Configuration for a [`ShardedIngestEngine`].
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Number of worker shards (one OS thread and one sketch each).
    pub shards: usize,
    /// Bins per shard sketch, and in every merged snapshot.
    pub capacity: usize,
    /// Base RNG seed: shard `i` sketches with `seed + i`; merges derive their seeds
    /// from `seed` exactly as [`crate::distributed::DistributedSketcher`] does.
    pub seed: u64,
    /// Bound of each shard's queue, in batches. Producers block once a shard is this
    /// many batches behind — the engine's backpressure.
    pub queue_depth: usize,
    /// Rows buffered per shard inside an [`IngestHandle`] before a batch is sent.
    pub batch_rows: usize,
    /// Maximum distinct items held in a worker's map-side combiner before it is
    /// flushed into the sketch with unbiased multi-increments. `0` disables the
    /// combiner: rows are then applied in arrival order through
    /// [`StreamSketch::offer_batch`], which is row-for-row equivalent to sequential
    /// `offer` calls.
    pub combiner_items: usize,
}

impl EngineConfig {
    /// A sensible default configuration: queue depth 4, 4096-row batches, and a
    /// combiner bounded at 65 536 distinct items per shard.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `capacity` is zero.
    #[must_use]
    pub fn new(shards: usize, capacity: usize, seed: u64) -> Self {
        assert!(shards > 0, "engine needs at least one shard");
        assert!(capacity > 0, "capacity must be positive");
        Self {
            shards,
            capacity,
            seed,
            queue_depth: 4,
            batch_rows: 4096,
            combiner_items: 1 << 16,
        }
    }

    /// Overrides the per-shard combiner bound (`0` disables combining).
    #[must_use]
    pub fn with_combiner_items(mut self, combiner_items: usize) -> Self {
        self.combiner_items = combiner_items;
        self
    }

    /// Overrides the producer-side batch size, in rows.
    ///
    /// # Panics
    ///
    /// Panics if `batch_rows` is zero.
    #[must_use]
    pub fn with_batch_rows(mut self, batch_rows: usize) -> Self {
        assert!(batch_rows > 0, "batch_rows must be positive");
        self.batch_rows = batch_rows;
        self
    }

    /// Overrides the per-shard queue bound, in batches.
    ///
    /// # Panics
    ///
    /// Panics if `queue_depth` is zero.
    #[must_use]
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        assert!(queue_depth > 0, "queue_depth must be positive");
        self.queue_depth = queue_depth;
        self
    }
}

/// What a worker reports when asked for a snapshot: its live entries and row count.
/// Also the unit the crate-internal [`fold_reports`] merge folds over.
pub(crate) struct ShardReport {
    pub(crate) entries: Vec<(u64, f64)>,
    pub(crate) rows: u64,
}

enum ShardMsg {
    /// A batch of unit-weight rows for this shard.
    Rows(Vec<u64>),
    /// Flush the combiner and report the shard's current state.
    Report(Sender<ShardReport>),
    /// Flush the combiner and reply with a full clone of the shard's sketch
    /// (entries, RNG and counter-structure state) for a durable checkpoint.
    Checkpoint(Sender<UnbiasedSpaceSaving>),
    /// Stop after the queue drained this far, even if producer handles (and thus
    /// clones of the shard's sender) are still alive.
    Shutdown,
}

/// A live, concurrently-fed, queryable sharded sketch. See the [module docs](self)
/// for the architecture and for when to prefer it over a plain sketch.
#[derive(Debug)]
pub struct ShardedIngestEngine {
    config: EngineConfig,
    senders: Vec<SyncSender<ShardMsg>>,
    workers: Vec<JoinHandle<UnbiasedSpaceSaving>>,
    snapshots: AtomicU64,
    /// Rows enqueued to the shards so far, shared with every [`IngestHandle`]. A
    /// cheap monotone progress hint (updated once per dispatched batch) used by the
    /// query layer's staleness policy; it leads `rows_processed` by whatever is
    /// still queued.
    rows_enqueued: Arc<AtomicU64>,
}

impl ShardedIngestEngine {
    /// Spawns the worker shards and returns the running engine.
    #[must_use]
    pub fn new(config: EngineConfig) -> Self {
        assert!(config.shards > 0, "engine needs at least one shard");
        assert!(config.capacity > 0, "capacity must be positive");
        let sketches = (0..config.shards)
            .map(|shard| {
                UnbiasedSpaceSaving::with_seed(config.capacity, config.seed + shard as u64)
            })
            .collect();
        Self::spawn(config, sketches, 0, 0)
    }

    /// Spawns one worker per sketch; shared by [`new`](Self::new) (fresh sketches)
    /// and [`restore`](Self::restore) (checkpointed sketches).
    fn spawn(
        config: EngineConfig,
        sketches: Vec<UnbiasedSpaceSaving>,
        snapshots: u64,
        rows_enqueued: u64,
    ) -> Self {
        let mut senders = Vec::with_capacity(sketches.len());
        let mut workers = Vec::with_capacity(sketches.len());
        for sketch in sketches {
            let (tx, rx) = sync_channel(config.queue_depth);
            let combiner_items = config.combiner_items;
            workers.push(std::thread::spawn(move || {
                run_worker(rx, sketch, combiner_items)
            }));
            senders.push(tx);
        }
        Self {
            config,
            senders,
            workers,
            snapshots: AtomicU64::new(snapshots),
            rows_enqueued: Arc::new(AtomicU64::new(rows_enqueued)),
        }
    }

    /// Number of rows handed to the shard queues so far (a cheap, monotone ingest
    /// progress hint — it does not include rows still buffered inside
    /// [`IngestHandle`]s, and leads [`StreamSketch::rows_processed`] of a snapshot by
    /// whatever is queued but not yet applied).
    #[must_use]
    pub fn rows_enqueued(&self) -> u64 {
        self.rows_enqueued.load(Ordering::Relaxed)
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Number of worker shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// Creates a producer handle. Handles are independent (each has its own batch
    /// buffers) and cheap; create one per producer thread.
    #[must_use]
    pub fn handle(&self) -> IngestHandle {
        IngestHandle {
            senders: self.senders.clone(),
            buffers: (0..self.senders.len())
                .map(|_| Vec::with_capacity(self.config.batch_rows))
                .collect(),
            batch_rows: self.config.batch_rows,
            rows_enqueued: Arc::clone(&self.rows_enqueued),
        }
    }

    /// Sends a batch of rows directly to an explicit shard, bypassing hash routing.
    /// This is the partition-oriented entry point used by
    /// [`crate::distributed::DistributedSketcher`], where "shard" means "partition of
    /// the input" rather than "slice of the item space". Blocks while the shard's
    /// queue is full.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range or the engine's workers have been torn down.
    pub fn ingest_to_shard(&self, shard: usize, rows: Vec<u64>) {
        if rows.is_empty() {
            return;
        }
        self.rows_enqueued
            .fetch_add(rows.len() as u64, Ordering::Relaxed);
        self.senders[shard]
            .send(ShardMsg::Rows(rows))
            .expect("shard worker disconnected");
    }

    /// Folds the live shards into one queryable [`WeightedSpaceSaving`] without
    /// stopping ingest: every shard drains the batches already queued to it (the
    /// report request travels the same FIFO queue), flushes its combiner, and reports
    /// its entries, which are then merged with the unbiased PPS merge. Rows still
    /// buffered inside [`IngestHandle`]s are *not* included — call
    /// [`IngestHandle::flush`] first if they must be.
    ///
    /// Each snapshot uses a fresh merge seed, so repeated snapshots are independent
    /// draws of the merge's sampling step.
    #[must_use]
    pub fn snapshot(&self) -> WeightedSpaceSaving {
        let n = self.snapshots.fetch_add(1, Ordering::Relaxed);
        let salt = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        // Request every shard's report before awaiting any, so the per-shard
        // combiner flushes run concurrently on the workers.
        let receivers: Vec<_> = self
            .senders
            .iter()
            .map(|sender| {
                let (tx, rx) = std::sync::mpsc::channel();
                sender
                    .send(ShardMsg::Report(tx))
                    .expect("shard worker disconnected");
                rx
            })
            .collect();
        let reports: Vec<ShardReport> = receivers
            .into_iter()
            .map(|rx| rx.recv().expect("shard worker dropped its report"))
            .collect();
        fold_reports(
            self.config.capacity,
            self.config.seed ^ 0xD15C0 ^ salt,
            self.config.seed ^ 0xFEED ^ salt,
            reports,
        )
    }

    /// Writes a durable checkpoint of the engine into `dir`: one
    /// [`crate::persist::SketchKind::EngineShard`] file per shard
    /// (`shard-0000.uss`, …) holding that shard's *full* sketch state — entries,
    /// RNG, counter-structure layout — plus a `manifest.uss` tying them together.
    /// [`restore`](Self::restore) resumes from such a directory bit-compatibly.
    ///
    /// Like [`snapshot`](Self::snapshot), the checkpoint request travels each
    /// shard's FIFO queue, so it quiesces the shard: every batch enqueued before
    /// the call is applied (and the map-side combiner flushed) before the shard's
    /// state is captured, while ingest continues unhindered afterwards. Rows still
    /// buffered inside [`IngestHandle`]s are *not* included — flush first if they
    /// must be. With the combiner enabled, the forced flush is itself a reordering
    /// event (exactly as it is for `snapshot`), so checkpoint/restore is
    /// bit-compatible with an uninterrupted run when the combiner is disabled and
    /// statistically equivalent otherwise.
    ///
    /// Files are written atomically (temp file + rename), so a crash mid-checkpoint
    /// can leave stray `.tmp` files but never a torn sketch file.
    ///
    /// # Errors
    ///
    /// Any filesystem failure is returned as [`PersistError::Io`].
    pub fn checkpoint<P: AsRef<std::path::Path>>(&self, dir: P) -> Result<(), PersistError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(PersistError::Io)?;
        // Request every shard's clone before awaiting any, so queue drains and
        // combiner flushes run concurrently across the workers.
        let receivers: Vec<_> = self
            .senders
            .iter()
            .map(|sender| {
                let (tx, rx) = std::sync::mpsc::channel();
                sender
                    .send(ShardMsg::Checkpoint(tx))
                    .expect("shard worker disconnected");
                rx
            })
            .collect();
        let sketches: Vec<UnbiasedSpaceSaving> = receivers
            .into_iter()
            .map(|rx| rx.recv().expect("shard worker dropped its checkpoint"))
            .collect();
        let meta = persist::EngineMeta {
            shards: self.config.shards as u64,
            capacity: self.config.capacity as u64,
            seed: self.config.seed,
        };
        let mut rows = 0u64;
        for (shard, sketch) in sketches.iter().enumerate() {
            rows += sketch.rows_processed();
            persist::write_file(
                &dir.join(Self::shard_file_name(shard)),
                &persist::encode_shard(shard as u64, meta, sketch),
            )?;
        }
        let manifest = persist::EngineManifest {
            meta,
            snapshots: self.snapshots.load(Ordering::Relaxed),
            rows,
        };
        persist::write_file(&dir.join(Self::MANIFEST_FILE), &persist::encode_manifest(&manifest))
    }

    /// Resumes an engine from a [`checkpoint`](Self::checkpoint) directory. The
    /// engine identity in `config` (shards, capacity, seed) must match the
    /// manifest; queue depth, batch size and combiner bound are operational knobs
    /// and may differ. Under the same seeds and batch boundaries (combiner
    /// disabled), the restored engine continues *bit-compatibly*: feeding it the
    /// remainder of a stream yields exactly the entries an uninterrupted engine
    /// would have produced, and its snapshot-salt sequence continues where the
    /// checkpointed engine left off.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on filesystem failures, [`PersistError::Corrupt`] (or
    /// the more specific decode errors) on damaged files or when `config`
    /// disagrees with the manifest.
    pub fn restore<P: AsRef<std::path::Path>>(
        dir: P,
        config: EngineConfig,
    ) -> Result<Self, PersistError> {
        let dir = dir.as_ref();
        let manifest =
            persist::decode_manifest(&std::fs::read(dir.join(Self::MANIFEST_FILE))?)?;
        let meta = manifest.meta;
        if config.shards as u64 != meta.shards
            || config.capacity as u64 != meta.capacity
            || config.seed != meta.seed
        {
            return Err(PersistError::Corrupt(format!(
                "config (shards {}, capacity {}, seed {}) does not match the checkpoint \
                 (shards {}, capacity {}, seed {})",
                config.shards, config.capacity, config.seed,
                meta.shards, meta.capacity, meta.seed,
            )));
        }
        let mut sketches = Vec::with_capacity(config.shards);
        let mut rows = 0u64;
        for shard in 0..config.shards {
            let bytes = std::fs::read(dir.join(Self::shard_file_name(shard)))?;
            let (index, file_meta, sketch) = persist::decode_shard(&bytes)?;
            if index != shard as u64 {
                return Err(PersistError::Corrupt(format!(
                    "file {} holds shard {index}",
                    Self::shard_file_name(shard)
                )));
            }
            if file_meta != meta {
                return Err(PersistError::Corrupt(format!(
                    "shard {shard} was written by a different engine than the manifest"
                )));
            }
            rows += sketch.rows_processed();
            sketches.push(sketch);
        }
        if rows != manifest.rows {
            return Err(PersistError::Corrupt(format!(
                "shard files hold {rows} rows but the manifest records {}",
                manifest.rows
            )));
        }
        Ok(Self::spawn(config, sketches, manifest.snapshots, rows))
    }

    /// The manifest file name inside a checkpoint directory.
    pub const MANIFEST_FILE: &'static str = "manifest.uss";

    /// The shard file name for shard `i` inside a checkpoint directory.
    #[must_use]
    pub fn shard_file_name(shard: usize) -> String {
        format!("shard-{shard:04}.uss")
    }

    /// Stops every worker after it drains the batches already queued to it, joins the
    /// workers, and folds their final sketches with the unbiased PPS merge. Uses the
    /// same merge seeds as [`crate::distributed::DistributedSketcher::reduce`], so a
    /// partition-fed engine reproduces the map-reduce simulation exactly.
    ///
    /// Stop producers before finishing: [`IngestHandle`]s may outlive the engine, but
    /// rows offered concurrently with or after `finish` race the shutdown — they are
    /// dropped if they enqueue behind the stop message, and panic the offering thread
    /// ("shard worker disconnected") once the worker is gone. Rows still buffered in
    /// a handle when `finish` runs are likewise lost — flush first.
    #[must_use]
    pub fn finish(mut self) -> WeightedSpaceSaving {
        for sender in &self.senders {
            // A worker is only gone if it panicked; join below surfaces that.
            let _ = sender.send(ShardMsg::Shutdown);
        }
        self.senders.clear();
        let reports: Vec<ShardReport> = self
            .workers
            .drain(..)
            .map(|worker| {
                let sketch = worker.join().expect("ingest worker panicked");
                ShardReport {
                    entries: sketch.entries(),
                    rows: sketch.rows_processed(),
                }
            })
            .collect();
        fold_reports(
            self.config.capacity,
            self.config.seed ^ 0xD15C0,
            self.config.seed ^ 0xFEED,
            reports,
        )
    }
}

/// A producer-side handle: routes rows to shards by item hash and ships them in
/// batches. Unflushed rows are sent on drop (best-effort) or by [`flush`](Self::flush).
#[derive(Debug)]
pub struct IngestHandle {
    senders: Vec<SyncSender<ShardMsg>>,
    buffers: Vec<Vec<u64>>,
    batch_rows: usize,
    rows_enqueued: Arc<AtomicU64>,
}

impl IngestHandle {
    /// Offers one row. Blocks only when the destination shard's queue is full.
    #[inline]
    pub fn offer(&mut self, item: u64) {
        let shard = self.route(item);
        self.buffers[shard].push(item);
        if self.buffers[shard].len() >= self.batch_rows {
            self.dispatch(shard);
        }
    }

    /// Offers a batch of rows.
    pub fn offer_batch(&mut self, items: &[u64]) {
        for &item in items {
            self.offer(item);
        }
    }

    /// Sends every buffered row to its shard, emptying the handle's buffers.
    pub fn flush(&mut self) {
        for shard in 0..self.buffers.len() {
            if !self.buffers[shard].is_empty() {
                self.dispatch(shard);
            }
        }
    }

    #[inline]
    fn route(&self, item: u64) -> usize {
        if self.senders.len() == 1 {
            return 0;
        }
        // Multiply-shift of the avalanched hash: an unbiased map onto 0..shards.
        ((u128::from(splitmix64(item)) * self.senders.len() as u128) >> 64) as usize
    }

    fn dispatch(&mut self, shard: usize) {
        let batch = std::mem::replace(
            &mut self.buffers[shard],
            Vec::with_capacity(self.batch_rows),
        );
        self.rows_enqueued
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        self.senders[shard]
            .send(ShardMsg::Rows(batch))
            .expect("shard worker disconnected");
    }
}

impl Clone for IngestHandle {
    /// Clones the routing state; the new handle starts with empty buffers.
    fn clone(&self) -> Self {
        Self {
            senders: self.senders.clone(),
            buffers: (0..self.senders.len())
                .map(|_| Vec::with_capacity(self.batch_rows))
                .collect(),
            batch_rows: self.batch_rows,
            rows_enqueued: Arc::clone(&self.rows_enqueued),
        }
    }
}

impl Drop for IngestHandle {
    /// Best-effort flush so producer threads cannot silently drop buffered rows.
    fn drop(&mut self) {
        for shard in 0..self.buffers.len() {
            if !self.buffers[shard].is_empty() {
                let batch = std::mem::take(&mut self.buffers[shard]);
                self.rows_enqueued
                    .fetch_add(batch.len() as u64, Ordering::Relaxed);
                // After `finish` the workers are gone; losing the send then is fine.
                let _ = self.senders[shard].send(ShardMsg::Rows(batch));
            }
        }
    }
}

/// The shard worker loop: drain batches, combine or apply them, answer reports, and
/// hand the final sketch back through the thread's join handle.
fn run_worker(
    rx: Receiver<ShardMsg>,
    mut sketch: UnbiasedSpaceSaving,
    combiner_items: usize,
) -> UnbiasedSpaceSaving {
    let mut combiner: FxHashMap<u64, u64> = FxHashMap::default();
    for msg in rx {
        match msg {
            ShardMsg::Rows(rows) => {
                if combiner_items == 0 {
                    sketch.offer_batch(&rows);
                } else {
                    for &item in &rows {
                        *combiner.entry(item).or_insert(0) += 1;
                    }
                    if combiner.len() >= combiner_items {
                        flush_combiner(&mut combiner, &mut sketch);
                    }
                }
            }
            ShardMsg::Report(reply) => {
                flush_combiner(&mut combiner, &mut sketch);
                let _ = reply.send(ShardReport {
                    entries: sketch.entries(),
                    rows: sketch.rows_processed(),
                });
            }
            ShardMsg::Checkpoint(reply) => {
                flush_combiner(&mut combiner, &mut sketch);
                let _ = reply.send(sketch.clone());
            }
            ShardMsg::Shutdown => break,
        }
    }
    flush_combiner(&mut combiner, &mut sketch);
    sketch
}

/// Applies the combiner's `(item, count)` aggregates as unbiased multi-increments.
fn flush_combiner(combiner: &mut FxHashMap<u64, u64>, sketch: &mut UnbiasedSpaceSaving) {
    for (item, count) in combiner.drain() {
        sketch.offer_many(item, count);
    }
}

/// Folds per-shard reports into one weighted sketch with the unbiased PPS merge,
/// in shard order. `merge_seed` drives the PPS sampling, `out_seed` the result
/// sketch's own RNG — the same split [`crate::distributed::DistributedSketcher`]
/// has always used, which keeps the wrapper bit-for-bit compatible. A thin
/// adapter over [`crate::merge::fold_unbiased`], the public multi-way fold.
pub(crate) fn fold_reports<I>(
    capacity: usize,
    merge_seed: u64,
    out_seed: u64,
    reports: I,
) -> WeightedSpaceSaving
where
    I: IntoIterator<Item = ShardReport>,
{
    crate::merge::fold_unbiased(
        capacity,
        merge_seed,
        out_seed,
        reports.into_iter().map(|r| (r.entries, r.rows)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_routed_ingest_conserves_mass() {
        let engine = ShardedIngestEngine::new(EngineConfig::new(4, 64, 1).with_batch_rows(128));
        let mut handle = engine.handle();
        for i in 0..10_000u64 {
            handle.offer(i % 500);
        }
        handle.flush();
        let merged = engine.finish();
        assert_eq!(merged.rows_processed(), 10_000);
        let mass: f64 = merged.entries().iter().map(|(_, c)| c).sum();
        assert!((mass - 10_000.0).abs() < 1e-6);
        assert!(merged.retained_len() <= 64);
    }

    #[test]
    fn snapshot_serves_queries_while_ingest_continues() {
        let engine = ShardedIngestEngine::new(EngineConfig::new(2, 32, 2).with_batch_rows(64));
        let mut handle = engine.handle();
        for i in 0..2_000u64 {
            handle.offer(i % 40);
        }
        handle.flush();
        let early = engine.snapshot();
        assert_eq!(early.rows_processed(), 2_000);
        // The engine keeps accepting rows after a snapshot.
        for i in 0..1_000u64 {
            handle.offer(i % 40);
        }
        handle.flush();
        let late = engine.snapshot();
        assert_eq!(late.rows_processed(), 3_000);
        let merged = engine.finish();
        assert_eq!(merged.rows_processed(), 3_000);
    }

    #[test]
    fn dropping_a_handle_flushes_buffered_rows() {
        // Regression: without the Drop impl a producer that never called flush()
        // silently lost up to batch_rows - 1 buffered rows per shard.
        let engine = ShardedIngestEngine::new(EngineConfig::new(3, 16, 3).with_batch_rows(1024));
        {
            let mut handle = engine.handle();
            for i in 0..100u64 {
                handle.offer(i);
            }
            // Well under batch_rows: everything is still buffered here.
        }
        let merged = engine.finish();
        // Exact mass conservation: every buffered row arrived, none twice.
        assert_eq!(merged.rows_processed(), 100);
        let mass: f64 = merged.entries().iter().map(|(_, c)| c).sum();
        assert!((mass - 100.0).abs() < 1e-9, "mass {mass}");
    }

    #[test]
    fn dropping_unflushed_handles_from_producer_threads_conserves_mass() {
        // The concurrent variant: four producers each end with a partial batch in
        // their handle and rely on Drop (not an explicit flush) to deliver it.
        let engine = ShardedIngestEngine::new(EngineConfig::new(2, 64, 9).with_batch_rows(512));
        std::thread::scope(|scope| {
            for producer in 0..4u64 {
                let mut handle = engine.handle();
                scope.spawn(move || {
                    for i in 0..1_111u64 {
                        handle.offer(producer * 10_000 + i % 300);
                    }
                });
            }
        });
        let merged = engine.finish();
        assert_eq!(merged.rows_processed(), 4 * 1_111);
        let mass: f64 = merged.entries().iter().map(|(_, c)| c).sum();
        assert!((mass - 4.0 * 1_111.0).abs() < 1e-9, "mass {mass}");
    }

    #[test]
    fn concurrent_producers_all_arrive() {
        let engine = ShardedIngestEngine::new(EngineConfig::new(4, 128, 4).with_batch_rows(256));
        std::thread::scope(|scope| {
            for producer in 0..4u64 {
                let mut handle = engine.handle();
                scope.spawn(move || {
                    for i in 0..5_000u64 {
                        handle.offer((producer * 31 + i) % 700);
                    }
                });
            }
        });
        let merged = engine.finish();
        assert_eq!(merged.rows_processed(), 20_000);
    }

    #[test]
    fn combiner_and_exact_paths_agree_on_heavy_items() {
        // Item 7 takes ~25% of the stream; both ingest modes must nail its count.
        let rows: Vec<u64> = (0..40_000u64)
            .map(|i| if i % 4 == 0 { 7 } else { 100 + i % 3000 })
            .collect();
        let truth = rows.iter().filter(|&&i| i == 7).count() as f64;
        for combiner_items in [0usize, 1 << 12] {
            let config = EngineConfig::new(4, 256, 5).with_combiner_items(combiner_items);
            let engine = ShardedIngestEngine::new(config);
            let mut handle = engine.handle();
            handle.offer_batch(&rows);
            handle.flush();
            let merged = engine.finish();
            let est = merged.estimate(7);
            assert!(
                (est - truth).abs() / truth < 0.1,
                "combiner_items={combiner_items}: estimate {est} vs truth {truth}"
            );
        }
    }

    #[test]
    fn explicit_shard_routing_reaches_the_named_shard() {
        // Feed disjoint ranges to explicit shards with the combiner off; every row
        // must be accounted for and heavy items stay heavy.
        let engine = ShardedIngestEngine::new(
            EngineConfig::new(2, 64, 6).with_combiner_items(0),
        );
        engine.ingest_to_shard(0, vec![1; 500]);
        engine.ingest_to_shard(1, vec![2; 300]);
        let merged = engine.finish();
        assert_eq!(merged.rows_processed(), 800);
        assert!(merged.estimate(1) > 0.0);
        assert!(merged.estimate(2) > 0.0);
    }

    #[test]
    fn checkpoint_restore_smoke() {
        let dir = std::env::temp_dir().join(format!("uss-engine-ckpt-{}", std::process::id()));
        let config = EngineConfig::new(2, 32, 42).with_batch_rows(128);
        let engine = ShardedIngestEngine::new(config);
        let mut handle = engine.handle();
        for i in 0..3_000u64 {
            handle.offer(i % 77);
        }
        handle.flush();
        let _ = engine.snapshot(); // advance the snapshot-salt counter
        engine.checkpoint(&dir).unwrap();
        // The checkpointed engine keeps serving after the checkpoint.
        assert_eq!(engine.snapshot().rows_processed(), 3_000);
        drop(engine.finish());

        let restored = ShardedIngestEngine::restore(&dir, config).unwrap();
        assert_eq!(restored.rows_enqueued(), 3_000);
        // The snapshot counter resumed where the checkpoint recorded it (one
        // snapshot had been taken), so future merge salts continue the sequence.
        assert_eq!(restored.snapshots.load(Ordering::Relaxed), 1);
        let merged = restored.finish();
        assert_eq!(merged.rows_processed(), 3_000);
        let mass: f64 = merged.entries().iter().map(|(_, c)| c).sum();
        assert!((mass - 3_000.0).abs() < 1e-9);

        // A mismatched identity is refused.
        assert!(ShardedIngestEngine::restore(&dir, EngineConfig::new(3, 32, 42)).is_err());
        assert!(ShardedIngestEngine::restore(&dir, EngineConfig::new(2, 32, 43)).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[should_panic(expected = "shard")]
    fn zero_shards_panics() {
        let _ = EngineConfig::new(0, 10, 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = EngineConfig::new(2, 0, 1);
    }
}
