//! Concurrent sharded ingest engine: live, queryable sketching of heavy streams.
//!
//! The plain sketches in [`crate::space_saving`] are single-threaded values: one
//! owner, one `offer` call per row. This module scales the same algorithmic content to
//! a production-shaped ingest path built around the property that makes it correct —
//! Ting's unbiased PPS merge (section 5.5), under which sharded sketches can be folded
//! at any time into a single sketch that stays unbiased for every after-the-fact
//! subset-sum query.
//!
//! A [`ShardedIngestEngine`] owns `N` worker shards, each an OS thread with a private
//! [`UnbiasedSpaceSaving`] sketch. Producers obtain cheap cloneable
//! [`IngestHandle`]s, which route rows to shards *by item hash* (so every occurrence
//! of an item lands on the same shard and frequent-item counts stay sharp) and move
//! them over lock-free channels in coarse blocks. Each worker optionally runs a
//! *map-side combiner*: incoming batches are pre-aggregated into `(item, count)`
//! pairs and applied with [`UnbiasedSpaceSaving::offer_many`] multi-increments — the
//! weighted update of section 5.3, which preserves unbiasedness for any grouping —
//! so on skewed traffic the sketch sees orders of magnitude fewer updates than rows.
//!
//! # Transport: SPSC block rings
//!
//! The producer→shard hop is a [`crate::spsc`] *block channel* per (handle, shard)
//! pair: a lock-free single-producer/single-consumer ring of cache-line-aligned
//! [`crate::spsc::RowBlock`]s, with a reverse ring recycling spent blocks back to
//! the producer so steady-state ingest allocates nothing and never takes a lock —
//! threads park only on genuine empty/full transitions. Because each channel has
//! exactly one producer, rows from any single handle reach their shard in offer
//! order (which is what makes the combiner-off path row-for-row deterministic);
//! rows from different handles interleave arbitrarily, exactly as they did when
//! handles shared one queue.
//!
//! Handles register their rings with the worker over a small control channel that
//! also carries snapshot/checkpoint/shutdown requests and the explicit-shard batches
//! of [`ShardedIngestEngine::ingest_to_shard`]. Control requests quiesce a shard by
//! *cut*: the worker records how many blocks each ring holds at the moment the
//! request is seen and drains exactly that many, so everything enqueued before the
//! request is applied without letting a fast concurrent producer postpone the reply
//! indefinitely.
//!
//! [`ShardedIngestEngine::snapshot`] serves queries while ingest continues: it asks
//! every shard (a quiesce cut, so all previously enqueued blocks are drained first)
//! for its current entries and folds them with the unbiased PPS merge.
//! [`ShardedIngestEngine::finish`] closes the channels, joins the workers, and folds
//! their final sketches the same way.
//!
//! [`ShardedIngestEngine::checkpoint`] persists the whole engine — one
//! [`crate::persist`] file per shard plus a manifest — and
//! [`ShardedIngestEngine::restore`] resumes from such a directory bit-compatibly,
//! which is what lets an engine survive a restart or ship its shards to another
//! node and keep the statistical guarantees of a single uninterrupted run.
//!
//! # Engine or plain sketch?
//!
//! Use a plain [`UnbiasedSpaceSaving`] when one thread owns the stream and exact
//! row-order reproducibility matters (experiments, tests, small streams). Use the
//! engine when rows arrive from many producers, when ingest must overlap with
//! queries, or when throughput matters more than row-level determinism: the combiner
//! reorders rows *within* a flush window, which changes no expectation (every subset
//! sum stays unbiased) but does change individual sample paths.
//! [`crate::distributed::DistributedSketcher`] remains the deterministic map-reduce
//! convenience wrapper over this engine.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::hash::{splitmix64, FxHashMap};
use crate::merge::{FOLD_MERGE_SALT, FOLD_OUT_SALT};
use crate::metrics::{EngineMetrics, RingCounters, ShardMetrics};
use crate::persist::{self, PersistError};
use crate::space_saving::{UnbiasedSpaceSaving, WeightedSpaceSaving};
use crate::spsc::{
    block_channel_with_counters, BlockReceiver, BlockSender, RowBlock, Waker, BLOCK_CAP,
};
use crate::traits::StreamSketch;

/// Why an [`EngineConfig`] cannot drive an engine. Construction through
/// [`EngineConfig::new`] and the `with_*` builders rejects these values eagerly,
/// but the fields are public, so the engines re-validate with
/// [`EngineConfig::validate`] before spawning anything and surface this typed
/// error instead of panicking deep inside worker spawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineConfigError {
    /// `shards == 0`: there would be no worker to route any row to.
    ZeroShards,
    /// `capacity == 0`: shard sketches cannot hold zero counters.
    ZeroCapacity,
    /// `queue_depth == 0`: every send would block forever on a zero-slot queue.
    ZeroQueueDepth,
    /// `batch_rows == 0`: a handle would never accumulate a sendable batch.
    ZeroBatchRows,
}

impl std::fmt::Display for EngineConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ZeroShards => write!(f, "engine needs at least one shard"),
            Self::ZeroCapacity => write!(f, "capacity must be positive"),
            Self::ZeroQueueDepth => write!(f, "queue_depth must be positive"),
            Self::ZeroBatchRows => write!(f, "batch_rows must be positive"),
        }
    }
}

impl std::error::Error for EngineConfigError {}

/// What went wrong inside one shard during a fallible engine operation.
#[derive(Debug)]
pub enum ShardFault {
    /// The shard's worker thread is gone (it panicked, or the engine is being
    /// used after `finish`), so the request could not be served.
    Down,
    /// The shard's state was captured but persisting it failed.
    Persist(PersistError),
}

impl std::fmt::Display for ShardFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Down => write!(f, "worker disconnected"),
            Self::Persist(err) => write!(f, "persist failed: {err}"),
        }
    }
}

/// A per-shard failure record inside [`EngineError::CheckpointIncomplete`].
#[derive(Debug)]
pub struct ShardFailure {
    /// Index of the failing shard.
    pub shard: usize,
    /// What went wrong on that shard.
    pub fault: ShardFault,
}

impl std::fmt::Display for ShardFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard {}: {}", self.shard, self.fault)
    }
}

/// Typed failure of a running engine's control path.
///
/// Worker threads only exit by request or by panicking, so historically every
/// control-plane send/receive `expect`ed success — which turned one poisoned
/// shard into a panic in whatever thread happened to snapshot next. A long-lived
/// daemon serving many tenants cannot afford that: the fallible variants
/// ([`ShardedIngestEngine::try_snapshot`], [`ShardedIngestEngine::checkpoint`],
/// and the temporal equivalents) surface this error instead, degrading the one
/// request while the process (and every healthy shard) keeps running.
#[derive(Debug)]
#[non_exhaustive]
pub enum EngineError {
    /// A shard's worker thread is gone: it panicked, or the engine was used
    /// after teardown. Requests that need all shards cannot be served.
    ShardDown {
        /// Index of the dead shard.
        shard: usize,
    },
    /// A persistence failure not attributable to one shard (creating the
    /// checkpoint directory, writing the manifest).
    Persist(PersistError),
    /// A checkpoint captured and wrote every healthy shard but some shards
    /// failed; the listed shards have no fresh file and no manifest was
    /// written (a manifest must only ever describe a complete checkpoint).
    /// Healthy shards' files are on disk and can still be salvaged by hand.
    CheckpointIncomplete {
        /// One record per failing shard, in shard order.
        failures: Vec<ShardFailure>,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ShardDown { shard } => write!(f, "shard {shard} worker disconnected"),
            Self::Persist(err) => write!(f, "persist failed: {err}"),
            Self::CheckpointIncomplete { failures } => {
                write!(f, "checkpoint incomplete ({} shard(s) failed: ", failures.len())?;
                for (i, failure) in failures.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{failure}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Persist(err) => Some(err),
            _ => None,
        }
    }
}

impl From<PersistError> for EngineError {
    fn from(err: PersistError) -> Self {
        Self::Persist(err)
    }
}

/// Configuration for a [`ShardedIngestEngine`].
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Number of worker shards (one OS thread and one sketch each).
    pub shards: usize,
    /// Bins per shard sketch, and in every merged snapshot.
    pub capacity: usize,
    /// Base RNG seed: shard `i` sketches with `seed + i`; merges derive their seeds
    /// from `seed` exactly as [`crate::distributed::DistributedSketcher`] does.
    pub seed: u64,
    /// Bound of each shard's queue, in batches. Producers block once a shard is this
    /// many batches behind — the engine's backpressure.
    pub queue_depth: usize,
    /// Rows buffered per shard inside an [`IngestHandle`] before a batch is sent.
    pub batch_rows: usize,
    /// Maximum distinct items held in a worker's map-side combiner before it is
    /// flushed into the sketch with unbiased multi-increments. `0` disables the
    /// combiner: rows are then applied in arrival order through
    /// [`StreamSketch::offer_batch`], which is row-for-row equivalent to sequential
    /// `offer` calls.
    pub combiner_items: usize,
}

impl EngineConfig {
    /// A sensible default configuration: queue depth 4, 4096-row batches, and a
    /// combiner bounded at 65 536 distinct items per shard.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `capacity` is zero.
    #[must_use]
    pub fn new(shards: usize, capacity: usize, seed: u64) -> Self {
        assert!(shards > 0, "engine needs at least one shard");
        assert!(capacity > 0, "capacity must be positive");
        Self {
            shards,
            capacity,
            seed,
            queue_depth: 4,
            batch_rows: 4096,
            combiner_items: 1 << 16,
        }
    }

    /// Overrides the per-shard combiner bound (`0` disables combining).
    #[must_use]
    pub fn with_combiner_items(mut self, combiner_items: usize) -> Self {
        self.combiner_items = combiner_items;
        self
    }

    /// Overrides the producer-side batch size, in rows.
    ///
    /// # Panics
    ///
    /// Panics if `batch_rows` is zero.
    #[must_use]
    pub fn with_batch_rows(mut self, batch_rows: usize) -> Self {
        assert!(batch_rows > 0, "batch_rows must be positive");
        self.batch_rows = batch_rows;
        self
    }

    /// Overrides the per-shard queue bound, in batches.
    ///
    /// # Panics
    ///
    /// Panics if `queue_depth` is zero.
    #[must_use]
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        assert!(queue_depth > 0, "queue_depth must be positive");
        self.queue_depth = queue_depth;
        self
    }

    /// Checks the configuration for values no engine can run with. The fields are
    /// public, so a config built by hand (rather than through [`new`](Self::new)
    /// and the builders) may carry zeros; the engines call this before spawning
    /// workers and return the error instead of panicking mid-spawn.
    ///
    /// # Errors
    ///
    /// The first [`EngineConfigError`] found, checking shards, capacity, queue
    /// depth, then batch size.
    pub fn validate(&self) -> Result<(), EngineConfigError> {
        if self.shards == 0 {
            return Err(EngineConfigError::ZeroShards);
        }
        if self.capacity == 0 {
            return Err(EngineConfigError::ZeroCapacity);
        }
        if self.queue_depth == 0 {
            return Err(EngineConfigError::ZeroQueueDepth);
        }
        if self.batch_rows == 0 {
            return Err(EngineConfigError::ZeroBatchRows);
        }
        Ok(())
    }

    /// The per-(handle, shard) ring bound, in blocks: the block-channel equivalent
    /// of "`queue_depth` batches of `batch_rows` rows" of producer backpressure.
    pub(crate) fn ring_blocks(&self) -> usize {
        (self.queue_depth * self.batch_rows).div_ceil(BLOCK_CAP).max(2)
    }
}

/// What a worker reports when asked for a snapshot: its live entries and row count.
/// Also the unit the crate-internal [`fold_reports`] merge folds over.
pub(crate) struct ShardReport {
    pub(crate) entries: Vec<(u64, f64)>,
    pub(crate) rows: u64,
}

/// Control-plane messages to a shard worker. Data rides the SPSC block rings; this
/// (unbounded, rarely used) channel carries everything else. Every control request
/// that observes sketch state first drains a *cut* of the data rings — see the
/// [module docs](self).
pub(crate) enum ControlMsg {
    /// A new producer ring to poll: sent when an [`IngestHandle`] is created or
    /// cloned. The worker retires the ring once the handle drops it and the
    /// remaining blocks are drained.
    Register(BlockReceiver<u64>),
    /// A batch of unit-weight rows for this shard, bypassing the rings. The
    /// partition-oriented path of [`ShardedIngestEngine::ingest_to_shard`], kept on
    /// the control channel so explicit-shard feeds stay strictly FIFO with the
    /// quiesce requests around them.
    Rows(Vec<u64>),
    /// Drain a cut, flush the combiner, and report the shard's current state.
    Report(Sender<ShardReport>),
    /// Drain a cut, flush the combiner, and reply with a full clone of the shard's
    /// sketch (entries, RNG and counter-structure state) for a durable checkpoint.
    Checkpoint(Sender<UnbiasedSpaceSaving>),
    /// Drain a cut, then stop — even if producer handles (and thus rings feeding
    /// this shard) are still alive.
    Shutdown,
    /// Panic the worker immediately. A test-only fault injector (reachable via
    /// `debug_kill_shard`) used to prove that control paths degrade into
    /// [`EngineError::ShardDown`] instead of killing the calling thread.
    Poison,
}

/// The engine's per-shard endpoint: the control sender plus the worker's parking
/// slot, which must be woken after every control send so a parked worker sees the
/// message. Generic over the control-message type so the temporal engine reuses
/// it with its own message set.
pub(crate) struct ShardLink<M = ControlMsg> {
    control: Sender<M>,
    waker: Arc<Waker>,
    /// The shard's ring telemetry, shared by every block channel wired to it.
    ring_counters: Arc<RingCounters>,
}

impl<M> ShardLink<M> {
    pub(crate) fn new(
        control: Sender<M>,
        waker: Arc<Waker>,
        ring_counters: Arc<RingCounters>,
    ) -> Self {
        Self {
            control,
            waker,
            ring_counters,
        }
    }

    /// The worker's parking slot, for wiring new block channels to it.
    pub(crate) fn waker(&self) -> &Arc<Waker> {
        &self.waker
    }

    /// The shard's shared ring telemetry, for wiring new block channels to it.
    pub(crate) fn ring_counters(&self) -> &Arc<RingCounters> {
        &self.ring_counters
    }

    /// Sends a control message and wakes the worker.
    ///
    /// # Panics
    ///
    /// Panics if the worker is gone (it only exits by panicking or after
    /// `Shutdown`, so a failed send means the engine is being misused after
    /// `finish` — mirroring the old "shard worker disconnected" behavior).
    pub(crate) fn send(&self, msg: M) {
        self.try_send(msg).expect("shard worker disconnected");
    }

    /// Sends a control message and wakes the worker, reporting a dead worker
    /// instead of panicking. The fallible control paths build their
    /// [`EngineError::ShardDown`] from this.
    pub(crate) fn try_send(&self, msg: M) -> Result<(), ()> {
        match self.control.send(msg) {
            Ok(()) => {
                self.waker.wake();
                Ok(())
            }
            Err(_) => Err(()),
        }
    }

    /// Like [`send`](Self::send), but quietly drops the message when the worker is
    /// gone (used from `Drop` paths that must not panic).
    pub(crate) fn send_lossy(&self, msg: M) {
        if self.control.send(msg).is_ok() {
            self.waker.wake();
        }
    }
}

impl<M> Clone for ShardLink<M> {
    fn clone(&self) -> Self {
        Self {
            control: self.control.clone(),
            waker: Arc::clone(&self.waker),
            ring_counters: Arc::clone(&self.ring_counters),
        }
    }
}

impl<M> std::fmt::Debug for ShardLink<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardLink").finish_non_exhaustive()
    }
}

/// A live, concurrently-fed, queryable sharded sketch. See the [module docs](self)
/// for the architecture and for when to prefer it over a plain sketch.
#[derive(Debug)]
pub struct ShardedIngestEngine {
    config: EngineConfig,
    links: Vec<ShardLink>,
    workers: Vec<JoinHandle<UnbiasedSpaceSaving>>,
    snapshots: AtomicU64,
    /// Rows enqueued to the shards so far, shared with every [`IngestHandle`]. A
    /// cheap monotone progress hint (updated once per dispatched batch) used by the
    /// query layer's staleness policy; it leads `rows_processed` by whatever is
    /// still queued.
    rows_enqueued: Arc<AtomicU64>,
    /// Runtime telemetry: per-shard rows/blocks/ring counters plus engine-level
    /// checkpoint counters. Shared with workers and producer handles.
    metrics: Arc<EngineMetrics>,
}

impl ShardedIngestEngine {
    /// Spawns the worker shards and returns the running engine.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration (see [`EngineConfig::validate`]); use
    /// [`try_new`](Self::try_new) to get the typed error instead.
    #[must_use]
    pub fn new(config: EngineConfig) -> Self {
        match Self::try_new(config) {
            Ok(engine) => engine,
            Err(err) => panic!("{err}"),
        }
    }

    /// Validates the configuration and spawns the worker shards.
    ///
    /// # Errors
    ///
    /// [`EngineConfigError`] when `config` carries a zero where a positive value is
    /// required — caught here, before any worker thread exists.
    pub fn try_new(config: EngineConfig) -> Result<Self, EngineConfigError> {
        config.validate()?;
        let sketches = (0..config.shards)
            .map(|shard| {
                UnbiasedSpaceSaving::with_seed(config.capacity, config.seed + shard as u64)
            })
            .collect();
        Ok(Self::spawn(config, sketches, 0, 0))
    }

    /// Spawns one worker per sketch; shared by [`new`](Self::new) (fresh sketches)
    /// and [`restore`](Self::restore) (checkpointed sketches). The caller has
    /// already validated `config`.
    fn spawn(
        config: EngineConfig,
        sketches: Vec<UnbiasedSpaceSaving>,
        snapshots: u64,
        rows_enqueued: u64,
    ) -> Self {
        let metrics = Arc::new(EngineMetrics::with_shards(sketches.len()));
        let mut links = Vec::with_capacity(sketches.len());
        let mut workers = Vec::with_capacity(sketches.len());
        for (shard, sketch) in sketches.into_iter().enumerate() {
            let (tx, rx) = std::sync::mpsc::channel();
            let waker = Arc::new(Waker::new());
            let combiner_items = config.combiner_items;
            let worker_waker = Arc::clone(&waker);
            let shard_metrics = Arc::clone(&metrics.shards[shard]);
            workers.push(std::thread::spawn(move || {
                run_worker(&rx, &worker_waker, sketch, combiner_items, &shard_metrics)
            }));
            links.push(ShardLink {
                control: tx,
                waker,
                ring_counters: Arc::clone(&metrics.shards[shard].ring),
            });
        }
        Self {
            config,
            links,
            workers,
            snapshots: AtomicU64::new(snapshots),
            rows_enqueued: Arc::new(AtomicU64::new(rows_enqueued)),
            metrics,
        }
    }

    /// The engine's runtime telemetry (live counters — read them any time; they
    /// are exact after a quiesce point such as a snapshot or checkpoint).
    #[must_use]
    pub fn metrics(&self) -> &Arc<EngineMetrics> {
        &self.metrics
    }

    /// Number of rows handed to the shard queues so far (a cheap, monotone ingest
    /// progress hint — it does not include rows still buffered inside
    /// [`IngestHandle`]s, and leads [`StreamSketch::rows_processed`] of a snapshot by
    /// whatever is queued but not yet applied).
    #[must_use]
    pub fn rows_enqueued(&self) -> u64 {
        self.rows_enqueued.load(Ordering::Relaxed)
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Number of worker shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.links.len()
    }

    /// Creates a producer handle. Handles are independent — each owns one SPSC
    /// block ring per shard, registered with the workers here — and cheap; create
    /// one per producer thread.
    ///
    /// # Panics
    ///
    /// Panics if a worker is gone; [`try_handle`](Self::try_handle) degrades
    /// that into a typed error instead.
    #[must_use]
    pub fn handle(&self) -> IngestHandle {
        match self.try_handle() {
            Ok(handle) => handle,
            Err(err) => panic!("{err}"),
        }
    }

    /// Fallible variant of [`handle`](Self::handle), for callers (like a serving
    /// daemon) that must survive a dead worker.
    ///
    /// # Errors
    ///
    /// [`EngineError::ShardDown`] naming the first shard whose worker could not
    /// register the new ring.
    pub fn try_handle(&self) -> Result<IngestHandle, EngineError> {
        IngestHandle::connect(&self.links, self.config.ring_blocks(), &self.rows_enqueued)
    }

    /// Sends a batch of rows directly to an explicit shard, bypassing hash routing.
    /// This is the partition-oriented entry point used by
    /// [`crate::distributed::DistributedSketcher`], where "shard" means "partition of
    /// the input" rather than "slice of the item space". Rides the control channel,
    /// so explicit-shard batches apply in send order, FIFO with snapshot and
    /// checkpoint requests.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range or the engine's workers have been torn down.
    pub fn ingest_to_shard(&self, shard: usize, rows: Vec<u64>) {
        if rows.is_empty() {
            return;
        }
        self.rows_enqueued
            .fetch_add(rows.len() as u64, Ordering::Relaxed);
        self.links[shard].send(ControlMsg::Rows(rows));
    }

    /// Folds the live shards into one queryable [`WeightedSpaceSaving`] without
    /// stopping ingest: every shard drains the blocks already queued to it (a cut
    /// of each producer ring at the moment the request is seen, so a fast producer
    /// cannot postpone the reply), flushes its combiner, and reports
    /// its entries, which are then merged with the unbiased PPS merge. Rows still
    /// buffered inside [`IngestHandle`]s are *not* included — call
    /// [`IngestHandle::flush`] first if they must be.
    ///
    /// Each snapshot uses a fresh merge seed, so repeated snapshots are independent
    /// draws of the merge's sampling step.
    #[must_use]
    pub fn snapshot(&self) -> WeightedSpaceSaving {
        match self.try_snapshot() {
            Ok(merged) => merged,
            Err(err) => panic!("{err}"),
        }
    }

    /// Fallible variant of [`snapshot`](Self::snapshot): a dead worker degrades
    /// this request into [`EngineError::ShardDown`] instead of panicking the
    /// calling thread — the contract a long-lived daemon needs.
    ///
    /// The snapshot-salt counter advances even on failure, so a successful
    /// retry is a fresh, independent draw of the merge's sampling step.
    ///
    /// # Errors
    ///
    /// [`EngineError::ShardDown`] naming the first dead shard found.
    pub fn try_snapshot(&self) -> Result<WeightedSpaceSaving, EngineError> {
        let n = self.snapshots.fetch_add(1, Ordering::Relaxed);
        let salt = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        // Request every shard's report before awaiting any, so the per-shard
        // cut drains and combiner flushes run concurrently on the workers.
        let receivers: Vec<_> = self
            .links
            .iter()
            .enumerate()
            .map(|(shard, link)| {
                let (tx, rx) = std::sync::mpsc::channel();
                link.try_send(ControlMsg::Report(tx))
                    .map_err(|()| EngineError::ShardDown { shard })?;
                Ok(rx)
            })
            .collect::<Result<_, EngineError>>()?;
        let reports: Vec<ShardReport> = receivers
            .into_iter()
            .enumerate()
            .map(|(shard, rx)| {
                // The send above raced a dying worker if this recv fails.
                rx.recv().map_err(|_| EngineError::ShardDown { shard })
            })
            .collect::<Result<_, EngineError>>()?;
        Ok(fold_reports(
            self.config.capacity,
            self.config.seed ^ FOLD_MERGE_SALT ^ salt,
            self.config.seed ^ FOLD_OUT_SALT ^ salt,
            reports,
        ))
    }

    /// Writes a durable checkpoint of the engine into `dir`: one
    /// [`crate::persist::SketchKind::EngineShard`] file per shard
    /// (`shard-0000.uss`, …) holding that shard's *full* sketch state — entries,
    /// RNG, counter-structure layout — plus a `manifest.uss` tying them together.
    /// [`restore`](Self::restore) resumes from such a directory bit-compatibly.
    ///
    /// Like [`snapshot`](Self::snapshot), the checkpoint request quiesces the
    /// shard by draining a cut of its rings: every block enqueued before
    /// the call is applied (and the map-side combiner flushed) before the shard's
    /// state is captured, while ingest continues unhindered afterwards. Rows still
    /// buffered inside [`IngestHandle`]s are *not* included — flush first if they
    /// must be. With the combiner enabled, the forced flush is itself a reordering
    /// event (exactly as it is for `snapshot`), so checkpoint/restore is
    /// bit-compatible with an uninterrupted run when the combiner is disabled and
    /// statistically equivalent otherwise.
    ///
    /// Files are written atomically (temp file + rename), so a crash mid-checkpoint
    /// can leave stray `.tmp` files but never a torn sketch file.
    ///
    /// The checkpoint is *resilient per shard*: a dead worker or a failed write on
    /// one shard does not abort the remaining shards' writes — every healthy
    /// shard's file still lands on disk, and the failures are reported together in
    /// [`EngineError::CheckpointIncomplete`]. The manifest is only written when
    /// every shard succeeded, so a manifest on disk always describes a complete,
    /// restorable checkpoint.
    ///
    /// # Errors
    ///
    /// [`EngineError::Persist`] when the directory cannot be created or the
    /// manifest cannot be written; [`EngineError::CheckpointIncomplete`] listing
    /// the per-shard failures otherwise.
    pub fn checkpoint<P: AsRef<std::path::Path>>(&self, dir: P) -> Result<(), EngineError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(PersistError::Io)?;
        let meta = persist::EngineMeta {
            shards: self.config.shards as u64,
            capacity: self.config.capacity as u64,
            seed: self.config.seed,
        };
        // Request every shard's clone before awaiting any, so ring drains and
        // combiner flushes run concurrently across the workers.
        let receivers: Vec<_> = self
            .links
            .iter()
            .map(|link| {
                let (tx, rx) = std::sync::mpsc::channel();
                link.try_send(ControlMsg::Checkpoint(tx)).map(|()| rx)
            })
            .collect();
        let mut failures = Vec::new();
        let mut rows = 0u64;
        for (shard, receiver) in receivers.into_iter().enumerate() {
            let sketch = match receiver.map(|rx| rx.recv()) {
                Ok(Ok(sketch)) => sketch,
                Ok(Err(_)) | Err(()) => {
                    failures.push(ShardFailure { shard, fault: ShardFault::Down });
                    continue;
                }
            };
            rows += sketch.rows_processed();
            match persist::write_file(
                &dir.join(Self::shard_file_name(shard)),
                &persist::encode_shard(shard as u64, meta, &sketch),
            ) {
                Ok(bytes) => {
                    self.metrics.checkpoint_bytes.add(bytes);
                    self.metrics.checkpoint_frames.inc();
                }
                Err(err) => {
                    self.metrics.checkpoint_failures.inc();
                    failures.push(ShardFailure { shard, fault: ShardFault::Persist(err) });
                }
            }
        }
        if !failures.is_empty() {
            return Err(EngineError::CheckpointIncomplete { failures });
        }
        let manifest = persist::EngineManifest {
            meta,
            snapshots: self.snapshots.load(Ordering::Relaxed),
            rows,
        };
        let bytes =
            persist::write_file(&dir.join(Self::MANIFEST_FILE), &persist::encode_manifest(&manifest))
                .map_err(EngineError::Persist)?;
        self.metrics.checkpoint_bytes.add(bytes);
        self.metrics.checkpoint_frames.inc();
        Ok(())
    }

    /// Kills the worker thread of `shard` by making it panic. Fault injection
    /// for tests only: this is how the regression suite proves that a poisoned
    /// shard degrades control requests into [`EngineError::ShardDown`] instead
    /// of taking the process down. The control channel is FIFO, so any request
    /// sent after this observes the dead worker deterministically.
    #[doc(hidden)]
    pub fn debug_kill_shard(&self, shard: usize) {
        self.links[shard].send_lossy(ControlMsg::Poison);
        // Wait for the unwind to drop the worker's control receiver, so the
        // *next* control request fails at send time rather than racing.
        while self.links[shard].try_send(ControlMsg::Rows(Vec::new())).is_ok() {
            std::thread::yield_now();
        }
    }

    /// Resumes an engine from a [`checkpoint`](Self::checkpoint) directory. The
    /// engine identity in `config` (shards, capacity, seed) must match the
    /// manifest; queue depth, batch size and combiner bound are operational knobs
    /// and may differ. Under the same seeds and batch boundaries (combiner
    /// disabled), the restored engine continues *bit-compatibly*: feeding it the
    /// remainder of a stream yields exactly the entries an uninterrupted engine
    /// would have produced, and its snapshot-salt sequence continues where the
    /// checkpointed engine left off.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] on filesystem failures, [`PersistError::Corrupt`] (or
    /// the more specific decode errors) on damaged files or when `config`
    /// disagrees with the manifest.
    pub fn restore<P: AsRef<std::path::Path>>(
        dir: P,
        config: EngineConfig,
    ) -> Result<Self, PersistError> {
        let dir = dir.as_ref();
        let manifest =
            persist::decode_manifest(&std::fs::read(dir.join(Self::MANIFEST_FILE))?)?;
        let meta = manifest.meta;
        if config.shards as u64 != meta.shards
            || config.capacity as u64 != meta.capacity
            || config.seed != meta.seed
        {
            return Err(PersistError::Corrupt(format!(
                "config (shards {}, capacity {}, seed {}) does not match the checkpoint \
                 (shards {}, capacity {}, seed {})",
                config.shards, config.capacity, config.seed,
                meta.shards, meta.capacity, meta.seed,
            )));
        }
        let mut sketches = Vec::with_capacity(config.shards);
        let mut rows = 0u64;
        for shard in 0..config.shards {
            let bytes = std::fs::read(dir.join(Self::shard_file_name(shard)))?;
            let (index, file_meta, sketch) = persist::decode_shard(&bytes)?;
            if index != shard as u64 {
                return Err(PersistError::Corrupt(format!(
                    "file {} holds shard {index}",
                    Self::shard_file_name(shard)
                )));
            }
            if file_meta != meta {
                return Err(PersistError::Corrupt(format!(
                    "shard {shard} was written by a different engine than the manifest"
                )));
            }
            rows += sketch.rows_processed();
            sketches.push(sketch);
        }
        if rows != manifest.rows {
            return Err(PersistError::Corrupt(format!(
                "shard files hold {rows} rows but the manifest records {}",
                manifest.rows
            )));
        }
        Ok(Self::spawn(config, sketches, manifest.snapshots, rows))
    }

    /// The manifest file name inside a checkpoint directory.
    pub const MANIFEST_FILE: &'static str = "manifest.uss";

    /// The shard file name for shard `i` inside a checkpoint directory.
    #[must_use]
    pub fn shard_file_name(shard: usize) -> String {
        format!("shard-{shard:04}.uss")
    }

    /// Stops every worker after it drains the batches already queued to it, joins the
    /// workers, and folds their final sketches with the unbiased PPS merge. Uses the
    /// same merge seeds as [`crate::distributed::DistributedSketcher::reduce`], so a
    /// partition-fed engine reproduces the map-reduce simulation exactly.
    ///
    /// Stop producers before finishing: [`IngestHandle`]s may outlive the engine, but
    /// rows offered concurrently with or after `finish` race the shutdown — they are
    /// dropped if they enqueue behind the stop message, and panic the offering thread
    /// ("shard worker disconnected") once the worker is gone. Rows still buffered in
    /// a handle when `finish` runs are likewise lost — flush first.
    #[must_use]
    pub fn finish(mut self) -> WeightedSpaceSaving {
        for link in &self.links {
            // A worker is only gone if it panicked; join below surfaces that.
            link.send_lossy(ControlMsg::Shutdown);
        }
        self.links.clear();
        let reports: Vec<ShardReport> = self
            .workers
            .drain(..)
            .map(|worker| {
                let sketch = worker.join().expect("ingest worker panicked");
                ShardReport {
                    entries: sketch.entries(),
                    rows: sketch.rows_processed(),
                }
            })
            .collect();
        fold_reports(
            self.config.capacity,
            self.config.seed ^ FOLD_MERGE_SALT,
            self.config.seed ^ FOLD_OUT_SALT,
            reports,
        )
    }
}

/// A producer-side handle: routes rows to shards by item hash and ships them in
/// recycled [`RowBlock`]s over per-shard SPSC rings. Rows still in the handle's
/// partial blocks are sent on drop (best-effort) or by [`flush`](Self::flush).
#[derive(Debug)]
pub struct IngestHandle {
    /// Engine endpoints, kept for ring registration on [`Clone`].
    links: Vec<ShardLink>,
    /// One block sender per shard; this handle is the ring's single producer.
    senders: Vec<BlockSender<u64>>,
    /// The partially filled block per shard, swapped out when full.
    // Boxed: the ring transports blocks as `Box<RowBlock>` so a send moves one
    // pointer, never the 2 KiB payload.
    #[allow(clippy::vec_box)]
    blocks: Vec<Box<RowBlock<u64>>>,
    ring_blocks: usize,
    rows_enqueued: Arc<AtomicU64>,
}

impl IngestHandle {
    /// Builds a handle wired to `links`: one block channel per shard, each
    /// registered with its worker before any row can be sent over it.
    fn connect(
        links: &[ShardLink],
        ring_blocks: usize,
        rows_enqueued: &Arc<AtomicU64>,
    ) -> Result<Self, EngineError> {
        let mut senders = Vec::with_capacity(links.len());
        let mut blocks = Vec::with_capacity(links.len());
        for (shard, link) in links.iter().enumerate() {
            let (tx, rx) = block_channel_with_counters(
                ring_blocks,
                Arc::clone(&link.waker),
                Arc::clone(&link.ring_counters),
            );
            link.try_send(ControlMsg::Register(rx))
                .map_err(|()| EngineError::ShardDown { shard })?;
            blocks.push(RowBlock::boxed());
            senders.push(tx);
        }
        Ok(Self {
            links: links.to_vec(),
            senders,
            blocks,
            ring_blocks,
            rows_enqueued: Arc::clone(rows_enqueued),
        })
    }

    /// Offers one row. Lock-free; parks only when the destination shard's ring is
    /// full (the engine's backpressure).
    #[inline]
    pub fn offer(&mut self, item: u64) {
        let shard = self.route(item);
        if self.blocks[shard].push(item) {
            self.dispatch(shard);
        }
    }

    /// Fallible [`offer`](Self::offer): a dead destination worker fails this
    /// row's dispatch with [`EngineError::ShardDown`] instead of panicking.
    #[inline]
    pub fn try_offer(&mut self, item: u64) -> Result<(), EngineError> {
        let shard = self.route(item);
        if self.blocks[shard].push(item) {
            self.try_dispatch(shard)?;
        }
        Ok(())
    }

    /// Offers a batch of rows.
    pub fn offer_batch(&mut self, items: &[u64]) {
        for &item in items {
            self.offer(item);
        }
    }

    /// Fallible [`offer_batch`](Self::offer_batch); stops at the first row whose
    /// destination worker is gone.
    ///
    /// # Errors
    ///
    /// [`EngineError::ShardDown`] naming the dead shard.
    pub fn try_offer_batch(&mut self, items: &[u64]) -> Result<(), EngineError> {
        for &item in items {
            self.try_offer(item)?;
        }
        Ok(())
    }

    /// Ships every partially filled block to its shard, emptying the handle.
    pub fn flush(&mut self) {
        for shard in 0..self.blocks.len() {
            if !self.blocks[shard].is_empty() {
                self.dispatch(shard);
            }
        }
    }

    /// Fallible [`flush`](Self::flush). Keeps going past dead shards so every
    /// healthy shard still receives its rows, then reports the first failure.
    ///
    /// # Errors
    ///
    /// [`EngineError::ShardDown`] naming the first dead shard encountered.
    pub fn try_flush(&mut self) -> Result<(), EngineError> {
        let mut first_err = Ok(());
        for shard in 0..self.blocks.len() {
            if !self.blocks[shard].is_empty() {
                let result = self.try_dispatch(shard);
                if first_err.is_ok() {
                    first_err = result;
                }
            }
        }
        first_err
    }

    #[inline]
    fn route(&self, item: u64) -> usize {
        if self.senders.len() == 1 {
            return 0;
        }
        // Multiply-shift of the avalanched hash: an unbiased map onto 0..shards.
        ((u128::from(splitmix64(item)) * self.senders.len() as u128) >> 64) as usize
    }

    /// Sends the current block (recycling a spent one in its place), parking while
    /// the ring is full.
    fn dispatch(&mut self, shard: usize) {
        if self.try_dispatch(shard).is_err() {
            panic!("shard worker disconnected");
        }
    }

    /// Fallible [`dispatch`]: a closed ring (dead worker) drops the block's rows
    /// and reports [`EngineError::ShardDown`] instead of panicking.
    fn try_dispatch(&mut self, shard: usize) -> Result<(), EngineError> {
        let block = std::mem::replace(&mut self.blocks[shard], self.senders[shard].acquire());
        // Accounting happens before the send, exactly as it always has; a
        // failed send leaves a small overcount on a shard already reported dead.
        self.rows_enqueued
            .fetch_add(block.len() as u64, Ordering::Relaxed);
        self.senders[shard]
            .send(block)
            .map_err(|_| EngineError::ShardDown { shard })
    }
}

impl Clone for IngestHandle {
    /// Clones the routing state with fresh rings of its own: the new handle
    /// registers one new block channel per shard and starts with empty blocks.
    ///
    /// # Panics
    ///
    /// Panics if a worker is gone (use [`ShardedIngestEngine::try_handle`] on
    /// the engine to get the typed error instead).
    fn clone(&self) -> Self {
        match Self::connect(&self.links, self.ring_blocks, &self.rows_enqueued) {
            Ok(handle) => handle,
            Err(err) => panic!("{err}"),
        }
    }
}

impl Drop for IngestHandle {
    /// Best-effort flush so producer threads cannot silently drop buffered rows.
    /// Dropping the senders afterwards closes the rings, which is what lets each
    /// worker retire them once drained.
    fn drop(&mut self) {
        for shard in 0..self.blocks.len() {
            if !self.blocks[shard].is_empty() {
                let block = std::mem::replace(&mut self.blocks[shard], RowBlock::boxed());
                self.rows_enqueued
                    .fetch_add(block.len() as u64, Ordering::Relaxed);
                // After `finish` the workers are gone; losing the send then is fine.
                let _ = self.senders[shard].send(block);
            }
        }
    }
}

/// Per-ring budget of blocks drained per scan pass, bounding how long a pass can
/// run before the worker re-checks the control channel.
const DRAIN_BUDGET: usize = 64;

/// A shard worker's mutable state: its sketch, optional map-side combiner, and the
/// producer rings it currently polls.
struct ShardWorker {
    sketch: UnbiasedSpaceSaving,
    combiner: FxHashMap<u64, u64>,
    combiner_items: usize,
    rings: Vec<BlockReceiver<u64>>,
    metrics: Arc<ShardMetrics>,
}

impl ShardWorker {
    /// Applies one block of rows through the combiner (or directly, when the
    /// combiner is disabled). Metrics cost: two Relaxed adds per *block*
    /// (254 rows), never per row.
    fn apply(&mut self, rows: &[u64]) {
        self.metrics.rows.add(rows.len() as u64);
        self.metrics.blocks.inc();
        if self.combiner_items == 0 {
            self.sketch.offer_batch(rows);
        } else {
            for &item in rows {
                *self.combiner.entry(item).or_insert(0) += 1;
            }
            if self.combiner.len() >= self.combiner_items {
                self.flush_combiner();
            }
        }
    }

    /// Applies the combiner's `(item, count)` aggregates as unbiased
    /// multi-increments.
    fn flush_combiner(&mut self) {
        for (item, count) in self.combiner.drain() {
            self.sketch.offer_many(item, count);
        }
    }

    /// One bounded scan over all rings. Returns `true` if any block was applied.
    /// Rings whose producer is gone and which are fully drained are retired.
    fn scan_rings(&mut self) -> bool {
        let mut progressed = false;
        for i in 0..self.rings.len() {
            for _ in 0..DRAIN_BUDGET {
                match self.rings[i].recv() {
                    Some(block) => {
                        progressed = true;
                        self.apply(block.as_slice());
                        self.rings[i].recycle(block);
                    }
                    None => break,
                }
            }
        }
        self.rings.retain(|ring| !ring.is_finished());
        progressed
    }

    /// Drains a *cut* of every ring: exactly the blocks that were queued at the
    /// moment this is called. Blocks pushed concurrently with the drain are left
    /// for the normal scan, so a fast producer cannot stall a quiesce.
    fn drain_cut(&mut self) {
        for i in 0..self.rings.len() {
            let cut = self.rings[i].queued();
            for _ in 0..cut {
                // Every counted block is already published; recv cannot fail here.
                let block = self.rings[i].recv().expect("queued block vanished");
                self.apply(block.as_slice());
                self.rings[i].recycle(block);
            }
        }
        self.rings.retain(|ring| !ring.is_finished());
    }
}

/// The shard worker loop: poll producer rings and the control channel, combine or
/// apply row blocks, answer quiesce requests, park when idle, and hand the final
/// sketch back through the thread's join handle.
fn run_worker(
    control: &Receiver<ControlMsg>,
    waker: &Waker,
    sketch: UnbiasedSpaceSaving,
    combiner_items: usize,
    metrics: &Arc<ShardMetrics>,
) -> UnbiasedSpaceSaving {
    let mut w = ShardWorker {
        sketch,
        combiner: FxHashMap::default(),
        combiner_items,
        rings: Vec::new(),
        metrics: Arc::clone(metrics),
    };
    let mut engine_alive = true;
    loop {
        let mut progressed = false;
        // Control first: registrations, explicit-shard rows, quiesce requests.
        loop {
            match control.try_recv() {
                Ok(msg) => {
                    progressed = true;
                    if handle_control(&mut w, msg) == Flow::Stop {
                        w.flush_combiner();
                        return w.sketch;
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    // Engine and every handle are gone: no new rings, no requests.
                    engine_alive = false;
                    break;
                }
            }
        }
        progressed |= w.scan_rings();
        if !engine_alive && w.rings.is_empty() {
            // Nothing can ever arrive again (the engine was dropped without
            // `finish`); exit so the thread does not leak.
            w.flush_combiner();
            return w.sketch;
        }
        if !progressed {
            waker.prepare();
            // Re-check under the raised flag: a producer push or control send
            // between the empty scan and `prepare` would otherwise be missed.
            let pending = w.rings.iter().any(|ring| !ring.is_empty())
                || w.rings.iter().any(BlockReceiver::is_finished);
            match control.try_recv() {
                Ok(msg) => {
                    waker.cancel();
                    if handle_control(&mut w, msg) == Flow::Stop {
                        w.flush_combiner();
                        return w.sketch;
                    }
                }
                Err(TryRecvError::Disconnected) => {
                    waker.cancel();
                    engine_alive = false;
                }
                Err(TryRecvError::Empty) => {
                    if pending {
                        waker.cancel();
                    } else {
                        waker.park();
                    }
                }
            }
        }
    }
}

/// Whether the worker keeps running after a control message.
#[derive(PartialEq, Eq)]
enum Flow {
    Continue,
    Stop,
}

/// Handles one control message; quiesce requests drain a ring cut first.
fn handle_control(w: &mut ShardWorker, msg: ControlMsg) -> Flow {
    match msg {
        ControlMsg::Register(ring) => w.rings.push(ring),
        ControlMsg::Rows(rows) => w.apply(&rows),
        ControlMsg::Report(reply) => {
            w.drain_cut();
            w.flush_combiner();
            // Quiesce points sample the sketch's resident size: the O(1) read
            // stays entirely off the per-block path.
            w.metrics.sketch_memory.record_max(w.sketch.memory_bytes());
            let _ = reply.send(ShardReport {
                entries: w.sketch.entries(),
                rows: w.sketch.rows_processed(),
            });
        }
        ControlMsg::Checkpoint(reply) => {
            w.drain_cut();
            w.flush_combiner();
            w.metrics.sketch_memory.record_max(w.sketch.memory_bytes());
            let _ = reply.send(w.sketch.clone());
        }
        ControlMsg::Shutdown => {
            w.drain_cut();
            return Flow::Stop;
        }
        // Test-only fault injection; see `debug_kill_shard`.
        ControlMsg::Poison => panic!("shard worker poisoned by debug_kill_shard"),
    }
    Flow::Continue
}

/// Folds per-shard reports into one weighted sketch with the unbiased PPS merge,
/// in shard order. `merge_seed` drives the PPS sampling, `out_seed` the result
/// sketch's own RNG — the same split [`crate::distributed::DistributedSketcher`]
/// has always used, which keeps the wrapper bit-for-bit compatible. A thin
/// adapter over [`crate::merge::fold_unbiased`], the public multi-way fold.
pub(crate) fn fold_reports<I>(
    capacity: usize,
    merge_seed: u64,
    out_seed: u64,
    reports: I,
) -> WeightedSpaceSaving
where
    I: IntoIterator<Item = ShardReport>,
{
    crate::merge::fold_unbiased(
        capacity,
        merge_seed,
        out_seed,
        reports.into_iter().map(|r| (r.entries, r.rows)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_routed_ingest_conserves_mass() {
        let engine = ShardedIngestEngine::new(EngineConfig::new(4, 64, 1).with_batch_rows(128));
        let mut handle = engine.handle();
        for i in 0..10_000u64 {
            handle.offer(i % 500);
        }
        handle.flush();
        let merged = engine.finish();
        assert_eq!(merged.rows_processed(), 10_000);
        let mass: f64 = merged.entries().iter().map(|(_, c)| c).sum();
        assert!((mass - 10_000.0).abs() < 1e-6);
        assert!(merged.retained_len() <= 64);
    }

    #[test]
    fn snapshot_serves_queries_while_ingest_continues() {
        let engine = ShardedIngestEngine::new(EngineConfig::new(2, 32, 2).with_batch_rows(64));
        let mut handle = engine.handle();
        for i in 0..2_000u64 {
            handle.offer(i % 40);
        }
        handle.flush();
        let early = engine.snapshot();
        assert_eq!(early.rows_processed(), 2_000);
        // The engine keeps accepting rows after a snapshot.
        for i in 0..1_000u64 {
            handle.offer(i % 40);
        }
        handle.flush();
        let late = engine.snapshot();
        assert_eq!(late.rows_processed(), 3_000);
        let merged = engine.finish();
        assert_eq!(merged.rows_processed(), 3_000);
    }

    #[test]
    fn dropping_a_handle_flushes_buffered_rows() {
        // Regression: without the Drop impl a producer that never called flush()
        // silently lost up to batch_rows - 1 buffered rows per shard.
        let engine = ShardedIngestEngine::new(EngineConfig::new(3, 16, 3).with_batch_rows(1024));
        {
            let mut handle = engine.handle();
            for i in 0..100u64 {
                handle.offer(i);
            }
            // Well under batch_rows: everything is still buffered here.
        }
        let merged = engine.finish();
        // Exact mass conservation: every buffered row arrived, none twice.
        assert_eq!(merged.rows_processed(), 100);
        let mass: f64 = merged.entries().iter().map(|(_, c)| c).sum();
        assert!((mass - 100.0).abs() < 1e-9, "mass {mass}");
    }

    #[test]
    fn dropping_unflushed_handles_from_producer_threads_conserves_mass() {
        // The concurrent variant: four producers each end with a partial batch in
        // their handle and rely on Drop (not an explicit flush) to deliver it.
        let engine = ShardedIngestEngine::new(EngineConfig::new(2, 64, 9).with_batch_rows(512));
        std::thread::scope(|scope| {
            for producer in 0..4u64 {
                let mut handle = engine.handle();
                scope.spawn(move || {
                    for i in 0..1_111u64 {
                        handle.offer(producer * 10_000 + i % 300);
                    }
                });
            }
        });
        let merged = engine.finish();
        assert_eq!(merged.rows_processed(), 4 * 1_111);
        let mass: f64 = merged.entries().iter().map(|(_, c)| c).sum();
        assert!((mass - 4.0 * 1_111.0).abs() < 1e-9, "mass {mass}");
    }

    #[test]
    fn concurrent_producers_all_arrive() {
        let engine = ShardedIngestEngine::new(EngineConfig::new(4, 128, 4).with_batch_rows(256));
        std::thread::scope(|scope| {
            for producer in 0..4u64 {
                let mut handle = engine.handle();
                scope.spawn(move || {
                    for i in 0..5_000u64 {
                        handle.offer((producer * 31 + i) % 700);
                    }
                });
            }
        });
        let merged = engine.finish();
        assert_eq!(merged.rows_processed(), 20_000);
    }

    #[test]
    fn combiner_and_exact_paths_agree_on_heavy_items() {
        // Item 7 takes ~25% of the stream; both ingest modes must nail its count.
        let rows: Vec<u64> = (0..40_000u64)
            .map(|i| if i % 4 == 0 { 7 } else { 100 + i % 3000 })
            .collect();
        let truth = rows.iter().filter(|&&i| i == 7).count() as f64;
        for combiner_items in [0usize, 1 << 12] {
            let config = EngineConfig::new(4, 256, 5).with_combiner_items(combiner_items);
            let engine = ShardedIngestEngine::new(config);
            let mut handle = engine.handle();
            handle.offer_batch(&rows);
            handle.flush();
            let merged = engine.finish();
            let est = merged.estimate(7);
            assert!(
                (est - truth).abs() / truth < 0.1,
                "combiner_items={combiner_items}: estimate {est} vs truth {truth}"
            );
        }
    }

    #[test]
    fn explicit_shard_routing_reaches_the_named_shard() {
        // Feed disjoint ranges to explicit shards with the combiner off; every row
        // must be accounted for and heavy items stay heavy.
        let engine = ShardedIngestEngine::new(
            EngineConfig::new(2, 64, 6).with_combiner_items(0),
        );
        engine.ingest_to_shard(0, vec![1; 500]);
        engine.ingest_to_shard(1, vec![2; 300]);
        let merged = engine.finish();
        assert_eq!(merged.rows_processed(), 800);
        assert!(merged.estimate(1) > 0.0);
        assert!(merged.estimate(2) > 0.0);
    }

    #[test]
    fn checkpoint_restore_smoke() {
        let dir = std::env::temp_dir().join(format!("uss-engine-ckpt-{}", std::process::id()));
        let config = EngineConfig::new(2, 32, 42).with_batch_rows(128);
        let engine = ShardedIngestEngine::new(config);
        let mut handle = engine.handle();
        for i in 0..3_000u64 {
            handle.offer(i % 77);
        }
        handle.flush();
        let _ = engine.snapshot(); // advance the snapshot-salt counter
        engine.checkpoint(&dir).unwrap();
        // The checkpointed engine keeps serving after the checkpoint.
        assert_eq!(engine.snapshot().rows_processed(), 3_000);
        drop(engine.finish());

        let restored = ShardedIngestEngine::restore(&dir, config).unwrap();
        assert_eq!(restored.rows_enqueued(), 3_000);
        // The snapshot counter resumed where the checkpoint recorded it (one
        // snapshot had been taken), so future merge salts continue the sequence.
        assert_eq!(restored.snapshots.load(Ordering::Relaxed), 1);
        let merged = restored.finish();
        assert_eq!(merged.rows_processed(), 3_000);
        let mass: f64 = merged.entries().iter().map(|(_, c)| c).sum();
        assert!((mass - 3_000.0).abs() < 1e-9);

        // A mismatched identity is refused.
        assert!(ShardedIngestEngine::restore(&dir, EngineConfig::new(3, 32, 42)).is_err());
        assert!(ShardedIngestEngine::restore(&dir, EngineConfig::new(2, 32, 43)).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[should_panic(expected = "shard")]
    fn zero_shards_panics() {
        let _ = EngineConfig::new(0, 10, 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = EngineConfig::new(2, 0, 1);
    }

    #[test]
    fn try_new_returns_typed_errors_for_degenerate_configs() {
        // The builder panics on zeros, but the fields are public — a hand-built
        // config must be rejected with a typed error before any thread spawns.
        let good = EngineConfig::new(2, 8, 1);
        for (mutate, expected) in [
            (
                (|c: &mut EngineConfig| c.shards = 0) as fn(&mut EngineConfig),
                EngineConfigError::ZeroShards,
            ),
            (|c| c.capacity = 0, EngineConfigError::ZeroCapacity),
            (|c| c.queue_depth = 0, EngineConfigError::ZeroQueueDepth),
            (|c| c.batch_rows = 0, EngineConfigError::ZeroBatchRows),
        ] {
            let mut bad = good;
            mutate(&mut bad);
            assert_eq!(bad.validate().unwrap_err(), expected);
            assert_eq!(ShardedIngestEngine::try_new(bad).unwrap_err(), expected);
        }
        let engine = ShardedIngestEngine::try_new(good).expect("valid config spawns");
        let merged = engine.finish();
        assert_eq!(merged.rows_processed(), 0);
    }

    #[test]
    fn poisoned_worker_degrades_to_typed_errors() {
        // Regression for the daemon contract: a deliberately-panicked worker must
        // surface as EngineError::ShardDown from every fallible control path, and
        // a checkpoint must still write the healthy shards' files.
        let dir = std::env::temp_dir().join(format!("uss-engine-poison-{}", std::process::id()));
        let engine = ShardedIngestEngine::new(EngineConfig::new(2, 32, 11).with_batch_rows(64));
        let mut handle = engine.handle();
        for i in 0..1_000u64 {
            handle.offer(i % 50);
        }
        handle.flush();
        engine.debug_kill_shard(1);

        match engine.try_snapshot() {
            Err(EngineError::ShardDown { shard: 1 }) => {}
            other => panic!("expected ShardDown {{ shard: 1 }}, got {other:?}"),
        }
        match engine.try_handle() {
            Err(EngineError::ShardDown { shard: 1 }) => {}
            other => panic!("expected ShardDown {{ shard: 1 }}, got {:?}", other.map(|_| ())),
        }

        // Checkpoint keeps writing healthy shards and reports the dead one.
        match engine.checkpoint(&dir) {
            Err(EngineError::CheckpointIncomplete { failures }) => {
                assert_eq!(failures.len(), 1);
                assert_eq!(failures[0].shard, 1);
                assert!(matches!(failures[0].fault, ShardFault::Down));
            }
            other => panic!("expected CheckpointIncomplete, got {other:?}"),
        }
        assert!(dir.join(ShardedIngestEngine::shard_file_name(0)).exists());
        // No manifest: a manifest must only ever describe a complete checkpoint.
        assert!(!dir.join(ShardedIngestEngine::MANIFEST_FILE).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dropping_engine_without_finish_lets_workers_exit() {
        // No Shutdown is ever sent; workers must notice the disconnected control
        // channel plus closed rings and return instead of leaking parked threads.
        let engine = ShardedIngestEngine::new(EngineConfig::new(2, 16, 8));
        let mut handle = engine.handle();
        for i in 0..500u64 {
            handle.offer(i % 60);
        }
        drop(handle);
        drop(engine);
        // Nothing to assert directly (the threads are detached); this test's value
        // is failing under a future regression that makes Drop hang or panic.
    }
}
